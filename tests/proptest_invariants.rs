//! Property-based tests on the core invariants, spanning crates:
//!
//! * blocking never changes program semantics (apply-block soundness);
//! * the symbolic simplifier is value-preserving and idempotent;
//! * the engine's merge operators agree with set/multiset models;
//! * the flat-batch codec and batch operations agree with the per-row
//!   reference codec and boundary-row semantics;
//! * result-size estimation is a sound upper bound on actual sizes.

use ocal::{parse, Evaluator, Value};
use ocas_symbolic::{eval as sym_eval, simplify, Env, Expr as Sym};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn pair_value(items: &[(i64, i64)]) -> Value {
    Value::pair_list(items)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// for (x [k] <- R) ... must equal the unblocked loop for every k.
    #[test]
    fn blocking_preserves_join_semantics(
        r in proptest::collection::vec((0i64..20, 0i64..100), 0..40),
        s in proptest::collection::vec((0i64..20, 0i64..100), 0..40),
        k1 in 1u64..16,
        k2 in 1u64..16,
    ) {
        let naive = parse(
            "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []",
        ).unwrap();
        let blocked = parse(
            "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
             if x.1 == y.1 then [<x, y>] else []",
        ).unwrap();
        let inputs: BTreeMap<String, Value> = [
            ("R".to_string(), pair_value(&r)),
            ("S".to_string(), pair_value(&s)),
        ].into_iter().collect();
        let a = Evaluator::new().run(&naive, &inputs).unwrap();
        let b = Evaluator::new()
            .with_param("k1", k1)
            .with_param("k2", k2)
            .run(&blocked, &inputs)
            .unwrap();
        // Same multiset (blocking reorders pairs).
        let canon = |v: &Value| {
            let mut xs: Vec<String> =
                v.as_list().unwrap().iter().map(|x| x.to_string()).collect();
            xs.sort();
            xs
        };
        prop_assert_eq!(canon(&a), canon(&b));
    }

    /// simplify() preserves the numeric value of expressions and is
    /// idempotent.
    #[test]
    fn simplify_preserves_value(
        ax in 1i64..50, bx in 1i64..50, cx in 1i64..50,
        x in 1.0f64..1000.0, y in 1.0f64..1000.0,
    ) {
        let e = (Sym::var("x") * Sym::int(ax as i128) + Sym::var("y") / Sym::int(bx as i128))
            * Sym::int(cx as i128)
            + Sym::var("x") * Sym::var("y") / (Sym::var("x") + Sym::int(1))
            + Sym::sum("j", Sym::int(0), Sym::int(ax as i128), Sym::var("j") * Sym::var("y"));
        let s = simplify(&e);
        let env = Env::new().with("x", x).with("y", y);
        let v1 = sym_eval(&e, &env).unwrap();
        let v2 = sym_eval(&s, &env).unwrap();
        prop_assert!((v1 - v2).abs() <= 1e-6 * v1.abs().max(1.0),
            "simplify changed value: {} vs {}", v1, v2);
        prop_assert_eq!(simplify(&s), s.clone(), "not idempotent");
    }

    /// Engine merge ops match set/multiset models.
    #[test]
    fn merge_ops_match_models(
        mut a in proptest::collection::vec(0i64..30, 0..50),
        mut b in proptest::collection::vec(0i64..30, 0..50),
    ) {
        use ocas_engine::exec::merge_rows;
        use ocas_engine::MergeKind;
        a.sort();
        b.sort();
        let ar: Vec<Vec<i64>> = a.iter().map(|v| vec![*v]).collect();
        let br: Vec<Vec<i64>> = b.iter().map(|v| vec![*v]).collect();

        // Multiset union = sorted concatenation.
        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        concat.sort();
        let got: Vec<i64> = merge_rows(&ar, &br, MergeKind::MultisetUnionSorted)
            .into_iter().map(|r| r[0]).collect();
        prop_assert_eq!(got, concat);

        // Set union over deduplicated inputs = BTreeSet union.
        let ad: Vec<Vec<i64>> = {
            let mut v = a.clone(); v.dedup(); v.into_iter().map(|x| vec![x]).collect()
        };
        let bd: Vec<Vec<i64>> = {
            let mut v = b.clone(); v.dedup(); v.into_iter().map(|x| vec![x]).collect()
        };
        let want: Vec<i64> = a.iter().chain(b.iter()).copied()
            .collect::<std::collections::BTreeSet<i64>>()
            .into_iter().collect();
        let got: Vec<i64> = merge_rows(&ad, &bd, MergeKind::SetUnion)
            .into_iter().map(|r| r[0]).collect();
        prop_assert_eq!(got, want);

        // Multiset difference respects multiplicities.
        let mut counts: BTreeMap<i64, i64> = BTreeMap::new();
        for v in &a { *counts.entry(*v).or_default() += 1; }
        for v in &b { *counts.entry(*v).or_default() -= 1; }
        let want: Vec<i64> = counts.iter()
            .flat_map(|(v, c)| std::iter::repeat(*v).take((*c).max(0) as usize))
            .collect();
        let got: Vec<i64> = merge_rows(&ar, &br, MergeKind::MultisetDiffSorted)
            .into_iter().map(|r| r[0]).collect();
        prop_assert_eq!(got, want);
    }

    /// Figure 5's worst-case size analysis upper-bounds the true output
    /// cardinality of the join for arbitrary inputs.
    #[test]
    fn size_estimate_is_upper_bound(
        r in proptest::collection::vec((0i64..10, 0i64..100), 0..30),
        s in proptest::collection::vec((0i64..10, 0i64..100), 0..30),
    ) {
        use ocas_cost::{result_size, Annot, SizeCtx};
        let program = parse(
            "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []",
        ).unwrap();
        let mut gamma = BTreeMap::new();
        gamma.insert("R".to_string(), Annot::relation(Sym::int(r.len() as i128), 2, 8));
        gamma.insert("S".to_string(), Annot::relation(Sym::int(s.len() as i128), 2, 8));
        let annot = result_size(&program, &SizeCtx::new(gamma, 8)).unwrap();
        let bound = sym_eval(&annot.card().unwrap(), &Env::new()).unwrap();

        let inputs: BTreeMap<String, Value> = [
            ("R".to_string(), pair_value(&r)),
            ("S".to_string(), pair_value(&s)),
        ].into_iter().collect();
        let actual = Evaluator::new().run(&program, &inputs).unwrap()
            .as_list().unwrap().len() as f64;
        prop_assert!(actual <= bound + 0.5,
            "estimate {} below actual {}", bound, actual);
    }

    /// Pretty-print → parse round trip on the join family.
    #[test]
    fn join_programs_round_trip(
        k1 in 1u64..100, k2 in 1u64..100, key in 0i64..5,
    ) {
        let src = format!(
            "for (xB [{k1}] <- R) for (yB [{k2}] <- S) for (x <- xB) for (y <- yB) \
             if x.1 == y.1 && x.2 == {key} then [<x, y>] else []"
        );
        let e = parse(&src).unwrap();
        let printed = ocal::pretty(&e);
        let e2 = parse(&printed).unwrap();
        prop_assert_eq!(e.alpha_canonical(), e2.alpha_canonical());
    }

    /// The flat-batch codec is byte-identical to the per-row reference
    /// codec, both directions, for every width.
    #[test]
    fn rowbuf_codec_matches_reference_codec(
        rows in proptest::collection::vec(
            proptest::collection::vec(-4_000_000_000_000i64..4_000_000_000_000, 3..4), 0..50),
    ) {
        use ocas_engine::{decode_rows, encode_rows, RowBuf};
        let buf = RowBuf::from_rows(&rows);
        let reference = encode_rows(&rows);
        // Encode: flat batch == per-row reference, byte for byte.
        prop_assert_eq!(&buf.encode(), &reference);
        // Decode: both decoders reconstruct the same rows.
        prop_assert_eq!(RowBuf::decode(&reference, 3).to_rows(), buf.to_rows());
        prop_assert_eq!(decode_rows(&reference, 3), buf.to_rows());
        // Trailing partial rows are dropped by both decoders.
        if !reference.is_empty() {
            let truncated = &reference[..reference.len() - 5];
            prop_assert_eq!(
                RowBuf::decode(truncated, 3).to_rows(),
                decode_rows(truncated, 3)
            );
        }
    }

    /// Narrow-column encoding (col_bytes < 8) agrees with truncating each
    /// reference-encoded column to its low-order bytes.
    #[test]
    fn rowbuf_narrow_encode_matches_reference(
        vals in proptest::collection::vec(-4_000_000_000_000i64..4_000_000_000_000, 0..60),
        cb in 1usize..8,
    ) {
        use ocas_engine::RowBuf;
        let rows: Vec<Vec<i64>> = vals.iter().map(|v| vec![*v]).collect();
        let buf = RowBuf::from_rows(&rows);
        let mut got = Vec::new();
        buf.encode_into(cb, &mut got);
        let want: Vec<u8> = vals
            .iter()
            .flat_map(|v| v.to_le_bytes()[..cb].to_vec())
            .collect();
        prop_assert_eq!(got, want);
    }

    /// In-place flat sort and dedup agree with the boundary-row semantics
    /// the engine used before the flat-batch data path.
    #[test]
    fn rowbuf_sort_dedup_match_row_semantics(
        mut rows in proptest::collection::vec(
            proptest::collection::vec(0i64..10, 2..3), 0..60),
    ) {
        use ocas_engine::RowBuf;
        let mut buf = RowBuf::from_rows(&rows);
        buf.sort();
        rows.sort();
        prop_assert_eq!(buf.to_rows(), rows.clone());
        prop_assert!(buf.is_sorted());
        let mut deduped = buf.clone();
        deduped.dedup();
        rows.dedup();
        prop_assert_eq!(deduped.to_rows(), rows);
    }
}
