//! Cross-crate integration tests: specification → synthesis → lowering →
//! faithful execution → comparison with the OCAL reference interpreter.

use ocal::{Evaluator, Value};
use ocas::{specs, verify, Synthesizer};
use ocas_cost::Layout;
use ocas_engine::{lower, CpuModel, Executor, Mode, Output, RelSpec, Relation};
use ocas_hierarchy::presets;
use ocas_storage::StorageSim;
use std::collections::BTreeMap;

/// Runs the synthesized join faithfully and cross-checks every output row
/// against the reference interpreter on the same data.
#[test]
fn synthesized_join_agrees_with_interpreter() {
    let spec = specs::join(600, 200, false);
    let hierarchy = presets::hdd_ram(64 * 1024);
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);
    let synth = Synthesizer::new(hierarchy.clone(), layout)
        .with_depth(4)
        .with_max_programs(250)
        .without_rules(&["hash-part", "prefetch", "fldL-to-trfld"])
        .synthesize(&spec)
        .expect("synthesis");

    // Faithful execution of the winner.
    let sm = StorageSim::from_hierarchy(&hierarchy);
    let mut ex = Executor::new(sm, Mode::Faithful, CpuModel::default());
    let r = Relation::create(
        &mut ex.sm,
        &RelSpec::pairs("R", "HDD", 600).with_key_range(80),
        true,
        1,
    )
    .unwrap();
    let s = Relation::create(
        &mut ex.sm,
        &RelSpec::pairs("S", "HDD", 200).with_key_range(80),
        true,
        2,
    )
    .unwrap();
    let r_rows = r.collect_rows().unwrap().to_rows();
    let s_rows = s.collect_rows().unwrap().to_rows();
    let mut relations = BTreeMap::new();
    relations.insert("R".to_string(), ex.add_relation(r));
    relations.insert("S".to_string(), ex.add_relation(s));

    let cx = ocas_engine::lower::LowerCtx {
        params: synth.best.params.clone(),
        relations,
        output: Output::Discard,
        scratch: "HDD".into(),
    };
    let plan = lower(&synth.best.program, spec.hint, &cx).expect("lowering");
    let stats = ex.run(&plan).expect("execution");

    // Reference interpreter on the same data.
    let to_pairs =
        |rows: &[Vec<i64>]| -> Vec<(i64, i64)> { rows.iter().map(|r| (r[0], r[1])).collect() };
    let inputs: BTreeMap<String, Value> = [
        ("R".to_string(), Value::pair_list(&to_pairs(&r_rows))),
        ("S".to_string(), Value::pair_list(&to_pairs(&s_rows))),
    ]
    .into_iter()
    .collect();
    let expected = Evaluator::new().run(&spec.program, &inputs).unwrap();
    let expected_rows = expected.as_list().unwrap().len() as u64;
    assert_eq!(
        stats.output_rows, expected_rows,
        "faithful engine row count must match the interpreter"
    );

    // Multiset comparison of actual rows.
    let mut got: Vec<String> = stats
        .output
        .unwrap()
        .to_rows()
        .into_iter()
        .map(|row| {
            // The engine may have put the smaller relation outside; project
            // back to a canonical (key-sorted) form for comparison.
            let (a, b) = row.split_at(2);
            let mut halves = [a.to_vec(), b.to_vec()];
            halves.sort();
            format!("{halves:?}")
        })
        .collect();
    got.sort();
    let mut expect: Vec<String> = expected
        .as_list()
        .unwrap()
        .iter()
        .map(|v| {
            let s = v.to_string();
            // "<<a, b>, <c, d>>" -> sorted halves
            let inner = s.trim_start_matches('<').trim_end_matches('>');
            let parts: Vec<&str> = inner.split(">, <").collect();
            let mut halves: Vec<Vec<i64>> = parts
                .iter()
                .map(|p| {
                    p.trim_matches(|c| c == '<' || c == '>')
                        .split(", ")
                        .map(|n| n.parse().unwrap())
                        .collect()
                })
                .collect();
            halves.sort();
            format!("{halves:?}")
        })
        .collect();
    expect.sort();
    assert_eq!(got, expect);
}

/// §7.2 claims: the winning programs are exactly the textbook shapes.
#[test]
fn textbook_shapes_emerge() {
    // BNL.
    let spec = specs::join(1 << 18, 1 << 13, false);
    let synth = Synthesizer::new(
        presets::hdd_ram(1 << 20),
        Layout::all_inputs_on("HDD", &["R", "S"]),
    )
    .with_depth(5)
    .with_max_programs(400)
    .without_rules(&["hash-part", "prefetch", "fldL-to-trfld"])
    .synthesize(&spec)
    .expect("bnl synthesis");
    assert!(
        verify::is_block_nested_loops(&synth.best.program),
        "not a BNL: {}",
        ocal::pretty(&synth.best.program)
    );

    // External merge sort.
    let spec = specs::sort(1 << 22);
    let synth = Synthesizer::new(
        presets::hdd_ram(64 * 1024),
        Layout::all_inputs_on("HDD", &["R"]).with_output("HDD"),
    )
    .with_depth(9)
    .with_max_programs(200)
    .without_rules(&[
        "apply-block",
        "prefetch",
        "swap-iter",
        "swap-iter-cond",
        "order-inputs",
        "hash-part",
        "seq-ac",
    ])
    .synthesize(&spec)
    .expect("sort synthesis");
    let fan = verify::is_external_merge_sort(&synth.best.program, 2);
    assert!(
        fan.is_some(),
        "not a merge sort: {}",
        ocal::pretty(&synth.best.program)
    );
    assert!(fan.unwrap() >= 4, "expected a multi-way merge, got {fan:?}");
}

/// The search-space statistics behave as §7.4 describes: space grows with
/// depth, and synthesis time does not depend on the input cardinalities.
#[test]
fn search_space_scaling() {
    let run = |depth: u32| -> usize {
        let spec = specs::join(1000, 100, false);
        Synthesizer::new(
            presets::hdd_ram(1 << 20),
            Layout::all_inputs_on("HDD", &["R", "S"]),
        )
        .with_depth(depth)
        .with_max_programs(100_000)
        .without_rules(&["hash-part", "prefetch", "fldL-to-trfld"])
        .synthesize(&spec)
        .unwrap()
        .stats
        .explored
    };
    let d2 = run(2);
    let d4 = run(4);
    assert!(d4 > d2, "space must grow with depth: {d2} vs {d4}");

    // Input-size independence: same search, cardinalities 10^3 vs 10^8.
    let explored_small = {
        let spec = specs::join(1000, 100, false);
        Synthesizer::new(
            presets::hdd_ram(1 << 20),
            Layout::all_inputs_on("HDD", &["R", "S"]),
        )
        .with_depth(3)
        .with_max_programs(1000)
        .without_rules(&["hash-part", "prefetch", "fldL-to-trfld"])
        .synthesize(&spec)
        .unwrap()
        .stats
        .explored
    };
    let explored_big = {
        let spec = specs::join(1 << 27, 1 << 21, false);
        Synthesizer::new(
            presets::hdd_ram(1 << 20),
            Layout::all_inputs_on("HDD", &["R", "S"]),
        )
        .with_depth(3)
        .with_max_programs(1000)
        .without_rules(&["hash-part", "prefetch", "fldL-to-trfld"])
        .synthesize(&spec)
        .unwrap()
        .stats
        .explored
    };
    assert_eq!(
        explored_small, explored_big,
        "search space must not depend on input size"
    );
}

/// The GRACE rewrite only survives validation for key joins, and wins the
/// cost race when relations are large relative to RAM.
#[test]
fn grace_emerges_for_key_joins() {
    let spec = specs::join(1 << 22, 1 << 21, false);
    let synth = Synthesizer::new(
        presets::hdd_ram(256 * 1024),
        Layout::all_inputs_on("HDD", &["R", "S"]),
    )
    .with_depth(3)
    .with_max_programs(300)
    .without_rules(&["prefetch", "fldL-to-trfld"])
    .synthesize(&spec)
    .expect("synthesis");
    // The space must contain a GRACE candidate (it may or may not win
    // depending on the exact constants — both are legitimate).
    assert!(synth.stats.explored > 1);
}
