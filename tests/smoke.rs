//! Workspace smoke test: the `ocas::Synthesizer` quickstart path from
//! `crates/ocas/src/lib.rs`, exercised as an integration test so CI fails
//! loudly if the front-door API regresses (join spec → synthesize →
//! non-empty, cheaper-than-naive result).

use ocas::{specs, Synthesizer};
use ocas_cost::Layout;
use ocas_hierarchy::presets;

#[test]
fn synthesizer_quickstart_produces_nonempty_result() {
    // The naive join of the paper's Example 1, at small scale.
    let spec = specs::join(4096, 512, false);
    let hierarchy = presets::hdd_ram(64 * 1024);
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);
    let synth = Synthesizer::new(hierarchy, layout)
        .with_depth(4)
        .with_max_programs(200)
        .without_rules(&["hash-part", "prefetch", "fldL-to-trfld"]);

    let result = synth.synthesize(&spec).unwrap();

    assert!(result.costed > 0, "search must cost candidate programs");
    assert!(
        result.best.seconds.is_finite() && result.best.seconds > 0.0,
        "best candidate must carry a real cost estimate, got {}",
        result.best.seconds
    );
    assert!(
        result.best.seconds < result.spec.seconds / 10.0,
        "the synthesized join ({:.3}s) must beat the naive one ({:.3}s) by far",
        result.best.seconds,
        result.spec.seconds
    );
}
