//! Column-store reads and the OCAL↔C path.
//!
//! Synthesizes the blocked column-zip for a 5-column read (Table 1 row 13),
//! then demonstrates the OCAL-to-C backend on the join family.
//!
//! Run with: `cargo run --release --example column_store`

use ocas::experiments;
use ocas_codegen::{CInput, Codegen};
use std::collections::BTreeMap;

fn main() {
    // Part 1: the column-store read experiment.
    let exp = experiments::column_store_read(5);
    match exp.run() {
        Ok(row) => {
            println!("Column Store Read 5 cols.");
            println!("    spec estimate: {:.3e} s", row.spec_seconds);
            println!("    opt  estimate: {:.0} s", row.opt_seconds);
            println!("    simulated:     {:.0} s", row.act_seconds);
            println!("    best program:  {}", row.best_program);
        }
        Err(e) => println!("column read failed: {e}"),
    }

    // Part 2: generate C for a blocked join (the paper's output format).
    let program = ocal::parse(
        "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
         if x.1 == y.1 then [<x, y>] else []",
    )
    .unwrap();
    let params: BTreeMap<String, u64> = [("k1".to_string(), 262144u64), ("k2".to_string(), 131072)]
        .into_iter()
        .collect();
    let c = Codegen::new(params)
        .emit_program(
            &program,
            &[
                CInput {
                    name: "R".into(),
                    width: 2,
                },
                CInput {
                    name: "S".into(),
                    width: 2,
                },
            ],
        )
        .expect("codegen");
    println!("\n--- generated C (blocked BNL join) ---\n{c}");
}
