//! From insertion sort to 2ᵏ-way External Merge-Sort (paper §7.2).
//!
//! The specification is `foldL([], unfoldR(mrg))` over a list of singleton
//! lists — an O(n²) insertion sort when run naively against a disk. The
//! rules *fldL-to-trfld*, *funcPow-intro*, *inc-branching* (repeatedly) and
//! the blocked-unfoldR variant of *apply-block* derive the external
//! merge-sort family; the cost model plus the non-linear parameter
//! optimizer then pick the merge fan-in 2ᵏ and the buffer sizes.
//!
//! Run with: `cargo run --release --example external_sort`

use ocas::{experiments, verify};

fn main() {
    let exp = experiments::external_sorting();
    println!("specification:\n    {}\n", ocal::pretty(&exp.spec.program));

    let synth = exp.synthesize().expect("synthesis");
    println!("explored {} programs", synth.stats.explored);
    println!(
        "naive (insertion sort) estimate: {:.3e} s",
        synth.spec.seconds
    );
    println!(
        "synthesized estimate:            {:.0} s",
        synth.best.seconds
    );
    println!(
        "\nsynthesized algorithm:\n    {}",
        ocal::pretty(&synth.best.program)
    );

    let fan = verify::is_external_merge_sort(&synth.best.program, 2)
        .expect("winner should be an external merge sort");
    println!("\n=> a {fan}-way External Merge-Sort with buffers:");
    for (k, v) in &synth.best.params {
        println!("    {k} = {v}");
    }

    let act = exp.execute(&synth).expect("execution");
    println!(
        "\nsimulated measured time: {act:.0} s (estimate {:.0} s)",
        synth.best.seconds
    );
}
