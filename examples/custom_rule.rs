//! Extensibility: adding a custom transformation rule.
//!
//! The paper's architecture lets developers extend the rule library "as new
//! hardware platforms become available and new algorithms are proposed".
//! This example defines a (deliberately simple) rule — eliminating a
//! double input-ordering wrapper — registers it next to the defaults, and
//! shows the search using it.
//!
//! Run with: `cargo run --release --example custom_rule`

use ocal::{parse, pretty, Expr, Type, TypeEnv};
use ocas_hierarchy::presets;
use ocas_rewrite::{default_rules, search, Rule, RuleCtx, SearchConfig};
use std::collections::BTreeMap;

/// A toy rule: `[e] ++ [] ⇒ [e]` (right-identity of list union).
struct UnionIdentity;

impl Rule for UnionIdentity {
    fn name(&self) -> &'static str {
        "union-identity"
    }

    fn apply(&self, e: &Expr, _cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        if let Expr::Union { left, right } = e {
            if matches!(**right, Expr::Empty) {
                return vec![(**left).clone()];
            }
            if matches!(**left, Expr::Empty) {
                return vec![(**right).clone()];
            }
        }
        vec![]
    }
}

fn main() {
    let env: TypeEnv = [(
        "R".to_string(),
        Type::list(Type::tuple(vec![Type::Int, Type::Int])),
    )]
    .into_iter()
    .collect();
    let inputs: BTreeMap<String, String> =
        [("R".to_string(), "HDD".to_string())].into_iter().collect();
    let h = presets::hdd_ram(1 << 20);

    // A program with a redundant `++ []`.
    let spec = parse("for (x <- R) ([x] ++ [])").unwrap();
    println!("spec: {}", pretty(&spec));

    let mut rules = default_rules();
    rules.push(Box::new(UnionIdentity));

    let result = search(
        &spec,
        &env,
        &h,
        &inputs,
        None,
        &rules,
        &SearchConfig {
            max_depth: 3,
            max_programs: 200,
            validation: None,
            workers: 0,
        },
    )
    .unwrap();

    println!("explored {} programs:", result.stats.explored);
    for (p, depth) in result.programs.iter().take(8) {
        println!("  [depth {depth}] {}", pretty(p));
    }
    let simplified = result
        .programs
        .iter()
        .any(|(p, _)| pretty(p) == "for (x <- R) [x]");
    assert!(simplified, "the custom rule must fire");
    println!("\n=> custom rule `union-identity` participated in the search.");
}
