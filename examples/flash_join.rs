//! Hierarchy-sensitivity: the same naive join specification synthesized
//! for three different hierarchies — output to the input disk, to a second
//! disk, and to a flash drive — reproducing the paper's §7.2 discussion
//! ("algorithms specialized for memory hierarchies that are not yet found
//! in textbooks, such as a join algorithm for flash drives").
//!
//! Run with: `cargo run --release --example flash_join`

use ocas::experiments;

fn main() {
    println!("Product join writing its output to three different devices.");
    println!("Same specification, same rules - different hierarchies:\n");
    for exp in [
        experiments::bnl_writeout_same_hdd(),
        experiments::bnl_writeout_other_hdd(),
        experiments::bnl_writeout_flash(),
    ] {
        match exp.run() {
            Ok(row) => println!(
                "{:<24} estimate {:>8.0} s   simulated-measured {:>8.0} s",
                row.name, row.opt_seconds, row.act_seconds
            ),
            Err(e) => println!("{:<24} FAILED: {e}", exp.name),
        }
    }
    println!(
        "\nExpected shape (paper Table 1 rows 4-6): same-disk output is the\n\
         slowest (read/write interference thrashes the disk head), a second\n\
         disk restores sequential access, and flash output is fastest thanks\n\
         to its higher sequential write bandwidth - the InitCom events now\n\
         model erase-before-write instead of seeks."
    );
}
