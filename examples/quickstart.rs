//! Quickstart: synthesize a Block Nested Loops join from the naive
//! two-loop specification of the paper's Example 1.
//!
//! Run with: `cargo run --release --example quickstart`

use ocas::{specs, Synthesizer};
use ocas_cost::Layout;
use ocas_hierarchy::presets;

fn main() {
    // 1. The naive, memory-hierarchy-oblivious algorithm (Example 1):
    //        for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []
    //    with R = 2^22 tuples and S = 2^18 tuples of 16 bytes each.
    let spec = specs::join(1 << 22, 1 << 18, false);
    println!("specification:\n    {}\n", ocal::pretty(&spec.program));

    // 2. The memory hierarchy: 4 MiB of RAM over one hard disk
    //    (Figure 7 constants: 15 ms seeks, 30 MiB/s transfers).
    let hierarchy = presets::hdd_ram(4 << 20);
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);

    // 3. Synthesize.
    let synthesizer = Synthesizer::new(hierarchy, layout)
        .with_depth(5)
        .with_max_programs(400)
        .without_rules(&["hash-part", "prefetch", "fldL-to-trfld"]);
    let result = synthesizer.synthesize(&spec).expect("synthesis");

    println!("explored {} equivalent programs", result.stats.explored);
    println!(
        "naive estimate:       {:>14.1} s  (one seek per tuple)",
        result.spec.seconds
    );
    println!(
        "synthesized estimate: {:>14.1} s  ({}x better)",
        result.best.seconds,
        (result.spec.seconds / result.best.seconds) as u64
    );
    println!(
        "\nsynthesized algorithm:\n    {}",
        ocal::pretty(&result.best.program)
    );
    println!("\ntuned parameters:");
    for (k, v) in &result.best.params {
        println!("    {k} = {v}");
    }
    assert!(ocas::verify::is_block_nested_loops(&result.best.program));
    println!("\n=> the canonical Block Nested Loops Join, derived automatically.");
}
