//! Umbrella crate for the OCAS reproduction: re-exports every workspace
//! crate and hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`). See README.md for the tour.

#![forbid(unsafe_code)]

pub use ocal;
pub use ocas;
pub use ocas_codegen;
pub use ocas_cost;
pub use ocas_engine;
pub use ocas_hierarchy;
pub use ocas_obs;
pub use ocas_opt;
pub use ocas_rewrite;
pub use ocas_runtime;
pub use ocas_storage;
pub use ocas_symbolic;
