//! Annotated types (paper §5.1).
//!
//! An annotated type keeps the *structure* of a value while replacing every
//! list type with a symbolic cardinality:
//!
//! ```text
//! α ::= [α]ₓ | ⟨α₁, …, αₙ⟩ | c
//! ```
//!
//! Cardinalities are symbolic arithmetic expressions, so result sizes are
//! functions of the input sizes and of tunable parameters — the paper's
//! requirement that "we can express the result size as a function of the
//! input sizes … without having to recompute the cost of a program every
//! time the size of its inputs … changes".

use ocal::{CardHint, SizeHint};
use ocas_symbolic::{simplify, Expr as Sym};

/// An annotated type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Annot {
    /// An atomic (or opaque) value occupying a fixed number of bytes.
    Atom(Sym),
    /// A tuple of annotated components.
    Tuple(Vec<Annot>),
    /// A list `[elem]_card`.
    List {
        /// Element annotation.
        elem: Box<Annot>,
        /// Symbolic cardinality.
        card: Sym,
    },
    /// The zero annotation — the result size of `[]` (paper Figure 4 gives
    /// `R(Γ, []) = 0`). Identity for [`Annot::add`] and bottom for
    /// [`Annot::join`].
    Zero,
}

impl Annot {
    /// An atomic value of `n` bytes.
    pub fn atom(n: u64) -> Annot {
        Annot::Atom(Sym::int(n as i128))
    }

    /// A list annotation.
    pub fn list(elem: Annot, card: Sym) -> Annot {
        Annot::List {
            elem: Box::new(elem),
            card,
        }
    }

    /// A list of `card` tuples of `width` integer-like fields of `field`
    /// bytes each — the shape of every relation in the evaluation.
    pub fn relation(card: Sym, width: usize, field: u64) -> Annot {
        let elem = if width == 1 {
            Annot::atom(field)
        } else {
            Annot::Tuple(vec![Annot::atom(field); width])
        };
        Annot::list(elem, card)
    }

    /// Total size in bytes as a symbolic expression.
    pub fn size(&self) -> Sym {
        match self {
            Annot::Atom(s) => s.clone(),
            Annot::Tuple(items) => {
                let mut acc = Sym::zero();
                for i in items {
                    acc = acc + i.size();
                }
                acc
            }
            Annot::List { elem, card } => card.clone() * elem.size(),
            Annot::Zero => Sym::zero(),
        }
    }

    /// List cardinality, if this is a list (`Zero` counts as an empty list).
    pub fn card(&self) -> Option<Sym> {
        match self {
            Annot::List { card, .. } => Some(card.clone()),
            Annot::Zero => Some(Sym::zero()),
            _ => None,
        }
    }

    /// List element annotation, if this is a list.
    pub fn elem(&self) -> Option<&Annot> {
        match self {
            Annot::List { elem, .. } => Some(elem),
            _ => None,
        }
    }

    /// 1-based tuple projection.
    pub fn proj(&self, index: u32) -> Option<Annot> {
        match self {
            Annot::Tuple(items) => items.get((index as usize).checked_sub(1)?).cloned(),
            _ => None,
        }
    }

    /// True if this annotation contains no lists (constant size).
    pub fn is_scalar(&self) -> bool {
        match self {
            Annot::Atom(_) => true,
            Annot::Tuple(items) => items.iter().all(Annot::is_scalar),
            Annot::List { .. } => false,
            Annot::Zero => true,
        }
    }

    /// Worst-case join (the `max` of Figure 5's `if` rule). Shapes are
    /// joined structurally; mismatched shapes degrade to an atom of the
    /// maximum byte size.
    pub fn join(&self, other: &Annot) -> Annot {
        match (self, other) {
            (Annot::Zero, a) | (a, Annot::Zero) => a.clone(),
            (Annot::Atom(a), Annot::Atom(b)) => {
                if a == b {
                    Annot::Atom(a.clone())
                } else {
                    Annot::Atom(simplify(&a.clone().max(b.clone())))
                }
            }
            (Annot::Tuple(xs), Annot::Tuple(ys)) if xs.len() == ys.len() => {
                Annot::Tuple(xs.iter().zip(ys).map(|(x, y)| x.join(y)).collect())
            }
            (Annot::List { elem: e1, card: c1 }, Annot::List { elem: e2, card: c2 }) => {
                let card = if c1 == c2 {
                    c1.clone()
                } else {
                    simplify(&c1.clone().max(c2.clone()))
                };
                Annot::list(e1.join(e2), card)
            }
            (a, b) => Annot::Atom(simplify(&a.size().max(b.size()))),
        }
    }

    /// Size addition (`⊔` rule): concatenating two lists adds cardinalities;
    /// mismatched shapes degrade to an atom of the summed byte size.
    pub fn add(&self, other: &Annot) -> Annot {
        match (self, other) {
            (Annot::Zero, a) | (a, Annot::Zero) => a.clone(),
            (Annot::List { elem: e1, card: c1 }, Annot::List { elem: e2, card: c2 }) => {
                Annot::list(e1.join(e2), simplify(&(c1.clone() + c2.clone())))
            }
            (a, b) => Annot::Atom(simplify(&(a.size() + b.size()))),
        }
    }

    /// Multiplies the outermost cardinality by `factor` (the `for` rule's
    /// `card/k · R(body)`). Scaling a non-list scales its byte size.
    pub fn scale(&self, factor: &Sym) -> Annot {
        match self {
            Annot::Zero => Annot::Zero,
            Annot::List { elem, card } => {
                Annot::list((**elem).clone(), simplify(&(factor.clone() * card.clone())))
            }
            other => Annot::Atom(simplify(&(factor.clone() * other.size()))),
        }
    }

    /// Converts a programmer [`SizeHint`] into an annotation.
    pub fn from_hint(hint: &SizeHint) -> Annot {
        match hint {
            SizeHint::Atom(n) => Annot::atom(*n),
            SizeHint::Tuple(items) => Annot::Tuple(items.iter().map(Annot::from_hint).collect()),
            SizeHint::List(elem, card) => Annot::list(Annot::from_hint(elem), card_to_sym(card)),
        }
    }

    /// Simplifies all embedded symbolic expressions.
    pub fn simplified(&self) -> Annot {
        match self {
            Annot::Atom(s) => Annot::Atom(simplify(s)),
            Annot::Tuple(items) => Annot::Tuple(items.iter().map(Annot::simplified).collect()),
            Annot::List { elem, card } => Annot::list(elem.simplified(), simplify(card)),
            Annot::Zero => Annot::Zero,
        }
    }
}

/// Converts a programmer cardinality hint into a symbolic expression.
pub fn card_to_sym(c: &CardHint) -> Sym {
    match c {
        CardHint::Const(n) => Sym::int(*n as i128),
        CardHint::Var(v) => Sym::var(v.clone()),
        CardHint::Add(a, b) => card_to_sym(a) + card_to_sym(b),
        CardHint::Mul(a, b) => card_to_sym(a) * card_to_sym(b),
        CardHint::Div(a, b) => (card_to_sym(a) / card_to_sym(b)).ceil(),
    }
}

impl std::fmt::Display for Annot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Annot::Atom(s) => write!(f, "{s}"),
            Annot::Tuple(items) => {
                write!(f, "<")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ">")
            }
            Annot::List { elem, card } => write!(f, "[{elem}]_({card})"),
            Annot::Zero => write!(f, "0"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Sym {
        Sym::var("x")
    }

    #[test]
    fn sizes() {
        // <[[1]_y]_x, [<1,1>]_z> from the paper's §5.1 example.
        let a = Annot::Tuple(vec![
            Annot::list(Annot::list(Annot::atom(1), Sym::var("y")), x()),
            Annot::list(
                Annot::Tuple(vec![Annot::atom(1), Annot::atom(1)]),
                Sym::var("z"),
            ),
        ]);
        let size = simplify(&a.size());
        let expect = simplify(&(x() * Sym::var("y") + Sym::int(2) * Sym::var("z")));
        assert_eq!(size, expect);
        assert_eq!(a.to_string(), "<[[1]_(y)]_(x), [<1, 1>]_(z)>");
    }

    #[test]
    fn join_is_max() {
        let a = Annot::list(Annot::atom(1), Sym::int(5));
        let b = Annot::list(Annot::atom(1), Sym::int(9));
        match a.join(&b) {
            Annot::List { card, .. } => assert_eq!(card, Sym::int(9)),
            other => panic!("expected list, got {other}"),
        }
        // Zero is the identity.
        assert_eq!(a.join(&Annot::Zero), a);
    }

    #[test]
    fn add_concatenates() {
        let a = Annot::list(Annot::atom(4), x());
        let b = Annot::list(Annot::atom(4), Sym::var("y"));
        match a.add(&b) {
            Annot::List { card, .. } => {
                assert_eq!(card, simplify(&(x() + Sym::var("y"))));
            }
            other => panic!("expected list, got {other}"),
        }
    }

    #[test]
    fn scale_multiplies_cardinality() {
        let a = Annot::list(Annot::atom(2), Sym::var("k"));
        let s = a.scale(&(x() / Sym::var("k")));
        match s {
            Annot::List { card, .. } => assert_eq!(card, x()),
            other => panic!("expected list, got {other}"),
        }
    }

    #[test]
    fn relation_shapes() {
        let r = Annot::relation(x(), 2, 4);
        assert_eq!(simplify(&r.size()), simplify(&(Sym::int(8) * x())));
        let unary = Annot::relation(x(), 1, 1);
        assert_eq!(simplify(&unary.size()), x());
    }

    #[test]
    fn hint_conversion() {
        let hint = SizeHint::List(
            Box::new(SizeHint::Atom(8)),
            CardHint::Div(
                Box::new(CardHint::Var("x".into())),
                Box::new(CardHint::Const(4)),
            ),
        );
        let a = Annot::from_hint(&hint);
        let size = simplify(&a.size());
        let expect = simplify(&(Sym::int(8) * (x() / Sym::int(4)).ceil()));
        assert_eq!(size, expect);
    }

    #[test]
    fn mismatched_shapes_degrade_to_atoms() {
        let a = Annot::list(Annot::atom(1), x());
        let b = Annot::Tuple(vec![Annot::atom(2)]);
        match a.join(&b) {
            Annot::Atom(_) => {}
            other => panic!("expected atom fallback, got {other}"),
        }
    }
}
