//! Automated cost estimation for OCAL programs (paper §5).
//!
//! Costing never runs the program: it derives, per directed hierarchy edge,
//! symbolic counts of **InitCom** (transfer initiations — disk seeks, flash
//! erases) and **UnitTr** (bytes moved) events, then folds them into a single
//! seconds formula over the tunable parameters (block sizes `k1, k2, …`,
//! buffer sizes `b_in`, `b_out`). Three layers:
//!
//! * [`Annot`] — annotated types `α ::= [α]ₓ | ⟨α,…⟩ | c` (§5.1);
//! * [`result_size`] — the worst-case size rules of Figure 5;
//! * [`CostEngine`] — the event rules of Figure 6, with the paper's implicit
//!   data-transfer model (§5.2): dedicated input/output buffers per level,
//!   spilling of oversized intermediates, sequentiality annotations
//!   (*seq-ac*), and per-definition cost plugins (§5.3).
//!
//! The engine also emits the capacity [`Constraint`]s that the parameter
//! optimizer must respect (e.g. `k1·8 + k2·8 + b_out ≤ RAM`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod annot;
mod events;
mod size;

pub use annot::{card_to_sym, Annot};
pub use events::{Constraint, CostEngine, CostReport, EdgeEvents, Events, Layout, B_IN, B_OUT};
pub use size::{block_sym, match_ordered_pair, result_size, spine, SizeCtx};

use std::fmt;

/// Errors produced by size estimation or event counting.
#[derive(Debug, Clone, PartialEq)]
pub enum CostError {
    /// A variable had no annotation in `Γ`.
    UnboundVariable(String),
    /// A value had the wrong shape for the rule.
    BadShape {
        /// Which rule failed.
        context: &'static str,
    },
    /// The construct has no size/cost rule (and no plugin).
    Unsupported(&'static str),
    /// A named hierarchy node was not found.
    UnknownNode(String),
    /// An intermediate outgrew the root but no spill node exists.
    NoSpillNode,
    /// Hierarchy lookup failed.
    Hierarchy(ocas_hierarchy::HierarchyError),
}

impl fmt::Display for CostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostError::UnboundVariable(v) => write!(f, "no annotation for variable `{v}`"),
            CostError::BadShape { context } => {
                write!(f, "annotated type has the wrong shape in {context}")
            }
            CostError::Unsupported(what) => write!(f, "no cost rule for {what}"),
            CostError::UnknownNode(n) => write!(f, "unknown hierarchy node `{n}`"),
            CostError::NoSpillNode => write!(
                f,
                "an intermediate result exceeds the root but no spill node is configured"
            ),
            CostError::Hierarchy(e) => write!(f, "hierarchy error: {e}"),
        }
    }
}

impl std::error::Error for CostError {}
