//! Transfer-event counting — the `C(Γ,e)`/`T(Γ,e)` rules of Figure 6.
//!
//! The engine walks an OCAL program and accumulates, per directed hierarchy
//! edge, two symbolic quantities: the number of **InitCom** events (seeks /
//! erases) and the number of bytes moved (**UnitTr**). Data transfers are
//! modelled implicitly (paper §5.2): whenever an iteration construct binds a
//! value that lives below the root, the engine charges the transfers needed
//! to bring it up, and whenever an intermediate result exceeds the root's
//! capacity it is *spilled* to a designated storage node and charged again
//! when consumed. The paper's §5.2 buffer model appears as the `b_in`/`b_out`
//! parameters and per-node capacity constraints that the engine emits for
//! the parameter optimizer.

use crate::annot::Annot;
use crate::size::{
    apply_fn_size, block_sym, def_size_with_annots, match_ordered_pair, result_size, spine,
    zip_unfold_size, SizeCtx,
};
use crate::CostError;
use ocal::{BlockSize, DefName, Expr, SeqAnnot};
use ocas_hierarchy::{Hierarchy, NodeId};
use ocas_symbolic::{eval, simplify, Env, EvalError, Expr as Sym};
use std::collections::{BTreeMap, BTreeSet};

/// Symbolic event totals for one directed edge.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeEvents {
    /// Number of InitCom events (seeks, erases).
    pub init: Sym,
    /// Number of bytes transferred (UnitTr units).
    pub bytes: Sym,
}

impl EdgeEvents {
    fn zero() -> EdgeEvents {
        EdgeEvents {
            init: Sym::zero(),
            bytes: Sym::zero(),
        }
    }
}

/// Symbolic event totals over all directed edges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Events {
    edges: BTreeMap<(NodeId, NodeId), EdgeEvents>,
}

impl Events {
    /// No events.
    pub fn zero() -> Events {
        Events::default()
    }

    /// The per-edge totals.
    pub fn edges(&self) -> &BTreeMap<(NodeId, NodeId), EdgeEvents> {
        &self.edges
    }

    /// Event totals for one directed edge (zero if absent).
    pub fn edge(&self, from: NodeId, to: NodeId) -> EdgeEvents {
        self.edges
            .get(&(from, to))
            .cloned()
            .unwrap_or_else(EdgeEvents::zero)
    }

    fn entry(&mut self, from: NodeId, to: NodeId) -> &mut EdgeEvents {
        self.edges
            .entry((from, to))
            .or_insert_with(EdgeEvents::zero)
    }

    fn add_init(&mut self, from: NodeId, to: NodeId, n: Sym) {
        let e = self.entry(from, to);
        e.init = e.init.clone() + n;
    }

    fn add_bytes(&mut self, from: NodeId, to: NodeId, n: Sym) {
        let e = self.entry(from, to);
        e.bytes = e.bytes.clone() + n;
    }

    fn merge(&mut self, other: Events) {
        for ((f, t), ev) in other.edges {
            let e = self.entry(f, t);
            e.init = e.init.clone() + ev.init;
            e.bytes = e.bytes.clone() + ev.bytes;
        }
    }

    fn scaled(&self, factor: &Sym) -> Events {
        Events {
            edges: self
                .edges
                .iter()
                .map(|(k, v)| {
                    (
                        *k,
                        EdgeEvents {
                            init: factor.clone() * v.init.clone(),
                            bytes: factor.clone() * v.bytes.clone(),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Worst case of two alternatives (per-edge max) — the `if` rule.
    fn join(&self, other: &Events) -> Events {
        let mut keys: BTreeSet<(NodeId, NodeId)> = self.edges.keys().copied().collect();
        keys.extend(other.edges.keys().copied());
        let mut out = Events::zero();
        for k in keys {
            let a = self.edges.get(&k).cloned().unwrap_or_else(EdgeEvents::zero);
            let b = other
                .edges
                .get(&k)
                .cloned()
                .unwrap_or_else(EdgeEvents::zero);
            out.edges.insert(
                k,
                EdgeEvents {
                    init: a.init.max(b.init),
                    bytes: a.bytes.max(b.bytes),
                },
            );
        }
        out
    }

    /// Simplifies every embedded expression.
    pub fn simplified(&self) -> Events {
        Events {
            edges: self
                .edges
                .iter()
                .map(|(k, v)| {
                    (
                        *k,
                        EdgeEvents {
                            init: simplify(&v.init),
                            bytes: simplify(&v.bytes),
                        },
                    )
                })
                .collect(),
        }
    }

    /// Converts the event totals into seconds using the hierarchy's edge
    /// weights: `Σ init·InitCom + bytes·UnitTr`.
    pub fn seconds(&self, h: &Hierarchy) -> Result<Sym, CostError> {
        let mut total = Sym::zero();
        for ((from, to), ev) in &self.edges {
            let pair = h.edge(*from, *to).map_err(CostError::Hierarchy)?;
            let init = Sym::rat(pair.init_com.num(), pair.init_com.den());
            let unit = Sym::rat(pair.unit_tr.num(), pair.unit_tr.den());
            total = total + ev.init.clone() * init + ev.bytes.clone() * unit;
        }
        Ok(simplify(&total))
    }
}

/// A constraint `lhs ≤ rhs` handed to the parameter optimizer.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// Human-readable origin (e.g. `"RAM capacity"`).
    pub label: String,
    /// Left-hand side (symbolic, mentions parameters).
    pub lhs: Sym,
    /// Right-hand side.
    pub rhs: Sym,
}

/// Where a program's inputs live and where its output goes.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    /// Input name → hierarchy node name.
    pub inputs: BTreeMap<String, String>,
    /// Output node name; `None` means the output is consumed by the CPU.
    pub output: Option<String>,
    /// Node for intermediates that exceed the root's capacity; defaults to
    /// the (unique) input device.
    pub spill: Option<String>,
}

impl Layout {
    /// All inputs on `node`, output discarded.
    pub fn all_inputs_on(node: &str, inputs: &[&str]) -> Layout {
        Layout {
            inputs: inputs
                .iter()
                .map(|i| (i.to_string(), node.to_string()))
                .collect(),
            output: None,
            spill: None,
        }
    }

    /// Sets the output node, builder style.
    pub fn with_output(mut self, node: &str) -> Layout {
        self.output = Some(node.to_string());
        self
    }

    /// Sets the spill node, builder style.
    pub fn with_spill(mut self, node: &str) -> Layout {
        self.spill = Some(node.to_string());
        self
    }
}

/// The full cost analysis result for one program.
#[derive(Debug, Clone)]
pub struct CostReport {
    /// Result-size annotation of the whole program.
    pub result: Annot,
    /// Per-edge symbolic event totals (simplified).
    pub events: Events,
    /// Total estimated seconds as a function of the tunable parameters.
    pub seconds: Sym,
    /// Capacity and sequence-length constraints for the optimizer.
    pub constraints: Vec<Constraint>,
    /// Names of the tunable parameters appearing in `seconds`.
    pub params: BTreeSet<String>,
}

/// Name of the engine-introduced output-buffer parameter (bytes).
pub const B_OUT: &str = "b_out";
/// Name of the engine-introduced input-buffer parameter (bytes) used by
/// streaming definitions (`hashPartition`, `partition`).
pub const B_IN: &str = "b_in";

/// The cost estimation engine (one per program × hierarchy × layout).
pub struct CostEngine<'h> {
    h: &'h Hierarchy,
    inputs: BTreeMap<String, (Annot, NodeId)>,
    output: Option<NodeId>,
    spill: Option<NodeId>,
    stats: Env,
    int_size: u64,
}

#[derive(Debug, Clone)]
struct Outcome {
    annot: Annot,
    loc: NodeId,
    ev: Events,
}

#[derive(Debug, Clone, Default)]
struct Ctx {
    gamma: BTreeMap<String, (Annot, NodeId)>,
    usage: BTreeMap<NodeId, Vec<Sym>>,
    seq_constraints: Vec<Constraint>,
    used_b_out: bool,
}

impl<'h> CostEngine<'h> {
    /// Builds an engine.
    ///
    /// * `annots` — annotated types of the named inputs (cards may be
    ///   symbolic, e.g. `x`);
    /// * `stats` — concrete values for those cardinality variables, used
    ///   only for *placement* decisions (does a value fit in the root?);
    /// * `int_size` — byte width of integers.
    pub fn new(
        h: &'h Hierarchy,
        layout: &Layout,
        annots: BTreeMap<String, Annot>,
        stats: Env,
        int_size: u64,
    ) -> Result<CostEngine<'h>, CostError> {
        let resolve = |name: &str| {
            h.by_name(name)
                .ok_or_else(|| CostError::UnknownNode(name.to_string()))
        };
        let mut inputs = BTreeMap::new();
        for (input, annot) in annots {
            let node = match layout.inputs.get(&input) {
                Some(n) => resolve(n)?,
                None => h.root(),
            };
            inputs.insert(input, (annot, node));
        }
        let output = layout.output.as_deref().map(resolve).transpose()?;
        let spill = match &layout.spill {
            Some(n) => Some(resolve(n)?),
            None => {
                // Default: the device holding the first input, else the
                // first storage node.
                inputs
                    .values()
                    .map(|(_, n)| *n)
                    .find(|n| *n != h.root())
                    .or_else(|| h.storage_nodes().first().copied())
            }
        };
        Ok(CostEngine {
            h,
            inputs,
            output,
            spill,
            stats,
            int_size,
        })
    }

    fn root(&self) -> NodeId {
        self.h.root()
    }

    /// Root capacity in bytes (placement budget).
    fn budget(&self) -> f64 {
        self.h.node(self.root()).size as f64
    }

    /// Numeric evaluation for placement decisions. Cardinality variables
    /// come from `stats`. Unknown *parameters* are still free at this point;
    /// the optimizer will choose them to satisfy the capacity constraints,
    /// so the placement question is "can any parameter choice make this
    /// fit?" — approximated by taking the minimum over a small and a large
    /// parameter assignment.
    fn numeric(&self, s: &Sym) -> f64 {
        let simplified = simplify(s);
        let try_with = |default: f64| -> f64 {
            let mut env = self.stats.clone();
            for _ in 0..16 {
                match eval(&simplified, &env) {
                    Ok(v) => return v,
                    Err(EvalError::UnboundVariable(v)) => env.set(v, default),
                    Err(_) => return f64::INFINITY,
                }
            }
            f64::INFINITY
        };
        try_with(1.0).min(try_with(1e9))
    }

    /// Runs the analysis on a program.
    pub fn cost(&self, program: &Expr) -> Result<CostReport, CostError> {
        let w0 = ocas_obs::wall_now();
        let out = self.cost_inner(program);
        if ocas_obs::enabled() {
            // Fires only on threads that carry a recorder — the main
            // thread's sequential/refinement costing; the pipelined cost
            // workers record their spans at the synthesizer's
            // deterministic merge instead.
            ocas_obs::counter(ocas_obs::Clock::Wall, "cost", "estimates", w0, 1.0);
            ocas_obs::span(
                ocas_obs::Clock::Wall,
                "cost",
                "estimate",
                w0,
                ocas_obs::wall_now() - w0,
                &[],
            );
        }
        out
    }

    fn cost_inner(&self, program: &Expr) -> Result<CostReport, CostError> {
        let mut ctx = Ctx {
            gamma: self.inputs.clone(),
            ..Ctx::default()
        };
        let out = self.go(program, &mut ctx)?;
        let mut ev = out.ev;
        // Results that still sit below the root (lazy views over device
        // data) must reach the processing unit to be consumed: charge the
        // element-wise read the naive consumer would perform.
        if out.loc != self.root() {
            if let (Some(card), Some(elem)) = (out.annot.card(), out.annot.elem()) {
                self.charge_elementwise_read(&mut ev, out.loc, &card, &simplify(&elem.size()));
            } else {
                let size = simplify(&out.annot.size());
                self.charge_elementwise_read(&mut ev, out.loc, &Sym::one(), &size);
            }
        }
        // Top-level output write.
        if let Some(mo) = self.output {
            if out.loc != mo {
                let size = out.annot.size();
                self.charge_write_path(&mut ev, self.root(), mo, &size, &mut ctx);
            }
        }
        let events = ev.simplified();
        let seconds = events.seconds(self.h)?;
        // Assemble constraints.
        let mut constraints = ctx.seq_constraints.clone();
        if ctx.used_b_out {
            ctx.usage
                .entry(self.root())
                .or_default()
                .push(Sym::var(B_OUT));
        }
        for (node, terms) in &ctx.usage {
            let mut lhs = Sym::zero();
            for t in terms {
                lhs = lhs + t.clone();
            }
            let lhs = simplify(&lhs);
            if lhs.vars().is_empty() {
                continue; // Constant usage: nothing for the optimizer.
            }
            constraints.push(Constraint {
                label: format!("{} capacity", self.h.node(*node).name),
                lhs,
                rhs: Sym::int(self.h.node(*node).size as i128),
            });
        }
        let mut params: BTreeSet<String> = seconds.vars();
        for c in &constraints {
            params.extend(c.lhs.vars());
        }
        // Cardinality variables are not parameters.
        for v in self.stats.iter().map(|(k, _)| k.to_string()) {
            params.remove(&v);
        }
        Ok(CostReport {
            result: out.annot,
            events,
            seconds,
            constraints,
            params,
        })
    }

    fn size_ctx(&self, ctx: &Ctx) -> SizeCtx {
        SizeCtx::new(
            ctx.gamma
                .iter()
                .map(|(k, (a, _))| (k.clone(), a.clone()))
                .collect(),
            self.int_size,
        )
    }

    fn annot_of(&self, e: &Expr, ctx: &Ctx) -> Result<Annot, CostError> {
        result_size(e, &self.size_ctx(ctx))
    }

    /// Where a consumed value effectively lives; spills oversized
    /// root-resident intermediates to the spill node (charging the write).
    fn effective_source(
        &self,
        out: Outcome,
        ctx: &mut Ctx,
    ) -> Result<(NodeId, Annot, Events), CostError> {
        if out.loc != self.root() {
            return Ok((out.loc, out.annot, out.ev));
        }
        let size = out.annot.size();
        if self.numeric(&size) > self.budget() {
            let spill = self.spill.ok_or(CostError::NoSpillNode)?;
            let mut ev = out.ev;
            self.charge_write_path(&mut ev, self.root(), spill, &size, ctx);
            return Ok((spill, out.annot, ev));
        }
        Ok((self.root(), out.annot, out.ev))
    }

    /// Like [`Self::effective_source`], but for *streaming* consumers
    /// (`foldL`, `avg`, another `for`): a `for`-shaped source is pipelined —
    /// only one block is resident at a time — so it never spills regardless
    /// of its total size.
    fn effective_source_streaming(
        &self,
        src_expr: &Expr,
        out: Outcome,
        ctx: &mut Ctx,
    ) -> Result<(NodeId, Annot, Events), CostError> {
        let pipelined = matches!(
            strip_sized(src_expr),
            Expr::For { .. } | Expr::FlatMap { .. }
        );
        if pipelined && out.loc == self.root() {
            return Ok((self.root(), out.annot, out.ev));
        }
        self.effective_source(out, ctx)
    }

    /// Charges a buffered bulk write of `size` bytes along the tree path
    /// `from → to` (toward a leaf): `size` UnitTr plus InitCom events.
    ///
    /// When the destination device holds none of the program's inputs, reads
    /// never interleave with the writes, so the stream is fully sequential
    /// (paper §7.2: "If the memory hierarchy changes so that another hard
    /// disk HDD2 stores the output, reading and writing do not interfere,
    /// so both can be executed sequentially"): InitCom collapses to
    /// `max(1, size/maxSeqW)`. Otherwise every buffer flush is assumed to
    /// seek: `size / min(b_out, maxSeqW)`.
    fn charge_write_path(
        &self,
        ev: &mut Events,
        from: NodeId,
        to: NodeId,
        size: &Sym,
        ctx: &mut Ctx,
    ) {
        let dedicated = self.inputs.values().all(|(_, n)| *n != to);
        let mut path = self.h.path_to_root(to);
        path.reverse(); // root … to
        let start = path.iter().position(|n| *n == from).unwrap_or(0);
        for pair in path[start..].windows(2) {
            let (a, b) = (pair[0], pair[1]);
            ev.add_bytes(a, b, size.clone());
            if dedicated {
                let init = match self.h.node(b).max_seq_write {
                    Some(m) => Sym::one().max(size.clone() / Sym::int(m as i128)),
                    None => Sym::one(),
                };
                ev.add_init(a, b, init);
            } else {
                let mut denom = Sym::var(B_OUT);
                ctx.used_b_out = true;
                if let Some(m) = self.h.node(b).max_seq_write {
                    denom = denom.min(Sym::int(m as i128));
                }
                ev.add_init(a, b, size.clone() / denom);
            }
        }
    }

    /// Charges an element-at-a-time read of a list (`card` elements of
    /// `elem_bytes` each) along the path `from → root`.
    fn charge_elementwise_read(&self, ev: &mut Events, from: NodeId, card: &Sym, elem_bytes: &Sym) {
        let path = self.h.path_to_root(from);
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let page = self.h.node(a).pagesize;
            ev.add_init(a, b, card.clone());
            let per_elem = if page > 1 {
                elem_bytes.clone().max(Sym::int(page as i128))
            } else {
                elem_bytes.clone()
            };
            ev.add_bytes(a, b, card.clone() * per_elem);
        }
    }

    fn go(&self, e: &Expr, ctx: &mut Ctx) -> Result<Outcome, CostError> {
        let root = self.root();
        match e {
            Expr::Var(v) => {
                let (annot, loc) = ctx
                    .gamma
                    .get(v)
                    .cloned()
                    .ok_or_else(|| CostError::UnboundVariable(v.clone()))?;
                Ok(Outcome {
                    annot,
                    loc,
                    ev: Events::zero(),
                })
            }
            Expr::Int(_)
            | Expr::Bool(_)
            | Expr::Str(_)
            | Expr::Empty
            | Expr::Lam { .. }
            | Expr::DefRef(_)
            | Expr::FlatMap { .. }
            | Expr::FoldL { .. } => Ok(Outcome {
                annot: self.annot_of(e, ctx)?,
                loc: root,
                ev: Events::zero(),
            }),
            Expr::Tuple(items) => {
                let mut ev = Events::zero();
                let mut annots = Vec::with_capacity(items.len());
                let mut locs = Vec::with_capacity(items.len());
                for i in items {
                    let o = self.go(i, ctx)?;
                    ev.merge(o.ev);
                    annots.push(o.annot);
                    locs.push(o.loc);
                }
                let loc = common_loc(&locs, root);
                Ok(Outcome {
                    annot: Annot::Tuple(annots),
                    loc,
                    ev,
                })
            }
            Expr::Proj { tuple, index } => {
                let o = self.go(tuple, ctx)?;
                let annot = o.annot.proj(*index).ok_or(CostError::BadShape {
                    context: "projection",
                })?;
                Ok(Outcome {
                    annot,
                    loc: o.loc,
                    ev: o.ev,
                })
            }
            Expr::Singleton(inner) => {
                let o = self.go(inner, ctx)?;
                Ok(Outcome {
                    annot: Annot::list(o.annot, Sym::one()),
                    loc: root,
                    ev: o.ev,
                })
            }
            Expr::Union { left, right } => {
                let l = self.go(left, ctx)?;
                let r = self.go(right, ctx)?;
                let mut ev = l.ev;
                ev.merge(r.ev);
                Ok(Outcome {
                    annot: l.annot.add(&r.annot),
                    loc: root,
                    ev,
                })
            }
            Expr::Prim { args, .. } => {
                let mut ev = Events::zero();
                for a in args {
                    let o = self.go(a, ctx)?;
                    ev.merge(o.ev);
                }
                Ok(Outcome {
                    annot: self.annot_of(e, ctx)?,
                    loc: root,
                    ev,
                })
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if let Some((a, b)) = match_ordered_pair(e) {
                    // order-inputs selector: a pure, zero-cost permutation.
                    let (a, b) = (a.clone(), b.clone());
                    let oa = self.go(&a, ctx)?;
                    let ob = self.go(&b, ctx)?;
                    let annot = self.annot_of(e, ctx)?;
                    let loc = common_loc(&[oa.loc, ob.loc], root);
                    let mut ev = oa.ev;
                    ev.merge(ob.ev);
                    return Ok(Outcome { annot, loc, ev });
                }
                let c = self.go(cond, ctx)?;
                let t = self.go(then_branch, ctx)?;
                let f = self.go(else_branch, ctx)?;
                let mut ev = c.ev;
                ev.merge(t.ev.join(&f.ev));
                Ok(Outcome {
                    annot: t.annot.join(&f.annot),
                    loc: root,
                    ev,
                })
            }
            Expr::Sized { expr, .. } => {
                let o = self.go(expr, ctx)?;
                Ok(Outcome {
                    annot: self.annot_of(e, ctx)?,
                    loc: o.loc,
                    ev: o.ev,
                })
            }
            Expr::For { .. } => self.cost_for(e, ctx),
            Expr::App { .. } => self.cost_app(e, ctx),
        }
    }

    fn cost_for(&self, e: &Expr, ctx: &mut Ctx) -> Result<Outcome, CostError> {
        let Expr::For {
            var,
            block,
            source,
            body,
            seq,
            ..
        } = e
        else {
            unreachable!()
        };
        let root = self.root();
        let src = self.go(source, ctx)?;
        let (ms, src_annot, mut ev) = self.effective_source_streaming(source, src, ctx)?;
        let card = src_annot.card().ok_or(CostError::BadShape {
            context: "for source",
        })?;
        let elem = src_annot.elem().cloned().unwrap_or(Annot::Zero);
        let elem_bytes = simplify(&elem.size());
        let k = block_sym(block);
        let blocks = simplify(&(card.clone() / k.clone()));

        // A block can never exceed its source's cardinality; without this
        // bound the optimizer could drive iteration counts below one.
        if !block.is_one() {
            ctx.seq_constraints.push(Constraint {
                label: "block within source".to_string(),
                lhs: k.clone(),
                rhs: card.clone(),
            });
        }
        let (bound_loc, md) = if ms == root {
            (root, root)
        } else {
            let md = self.h.parent(ms).unwrap_or(root);
            // Input transfer over the ms → md edge.
            let total = simplify(&(card.clone() * elem_bytes.clone()));
            let is_seq = matches!(seq, Some(sa) if self.seq_matches(sa, ms, md));
            let init = if is_seq {
                self.seq_init_count(ms, md, &total)
            } else {
                blocks.clone()
            };
            ev.add_init(ms, md, init);
            let page = self.h.node(ms).pagesize;
            // A sequential scan streams whole pages contiguously, so it
            // never pays the page-granularity penalty of random element
            // reads.
            let bytes = if page > 1 && !is_seq {
                total.clone().max(blocks.clone() * Sym::int(page as i128))
            } else {
                total.clone()
            };
            ev.add_bytes(ms, md, bytes);
            // The bound element/block must fit at md while processed.
            if block.is_one() && !elem_bytes.vars().is_empty() {
                ctx.usage.entry(md).or_default().push(elem_bytes.clone());
            }
            // Block buffer occupies space at md.
            if !block.is_one() {
                ctx.usage
                    .entry(md)
                    .or_default()
                    .push(simplify(&(k.clone() * elem_bytes.clone())));
                if let Some(msr) = self.h.node(ms).max_seq_read {
                    ctx.seq_constraints.push(Constraint {
                        label: format!("maxSeqR of {}", self.h.node(ms).name),
                        lhs: simplify(&(k.clone() * elem_bytes.clone())),
                        rhs: Sym::int(msr as i128),
                    });
                }
            }
            (md, md)
        };

        let bound_annot = if block.is_one() {
            elem.clone()
        } else {
            Annot::list(elem.clone(), k.clone())
        };
        let shadowed = ctx.gamma.insert(var.clone(), (bound_annot, bound_loc));
        let body_out = self.go(body, ctx);
        restore(&mut ctx.gamma, var, shadowed);
        let body_out = body_out?;

        let mut per_iter = body_out.ev;
        // If the bound value still sits below the root and the body consumes
        // it directly (no nested for over it), charge the remaining hops
        // element-wise — the naive access pattern.
        if md != root && !contains_for_over(body, var) {
            self.charge_elementwise_read(&mut per_iter, md, &k, &elem_bytes);
        }
        ev.merge(per_iter.scaled(&blocks));

        let annot = body_out.annot.scale(&blocks);
        Ok(Outcome {
            annot: annot.simplified(),
            loc: root,
            ev,
        })
    }

    fn seq_matches(&self, sa: &SeqAnnot, ms: NodeId, md: NodeId) -> bool {
        self.h.node(ms).name == sa.from && self.h.node(md).name == sa.to
    }

    /// The *seq-ac* InitCom count: `max(1, total / min(maxSeqR, maxSeqW))`.
    fn seq_init_count(&self, ms: NodeId, md: NodeId, total: &Sym) -> Sym {
        let mut cap: Option<u64> = None;
        if let Some(r) = self.h.node(ms).max_seq_read {
            cap = Some(cap.map_or(r, |c| c.min(r)));
        }
        if let Some(w) = self.h.node(md).max_seq_write {
            cap = Some(cap.map_or(w, |c| c.min(w)));
        }
        match cap {
            None => Sym::one(),
            Some(c) => Sym::one().max(total.clone() / Sym::int(c as i128)),
        }
    }

    fn cost_app(&self, e: &Expr, ctx: &mut Ctx) -> Result<Outcome, CostError> {
        let (head, args) = spine(e);
        let head = head.clone();
        let args: Vec<Expr> = args.into_iter().cloned().collect();
        match &head {
            Expr::Lam { .. } => self.cost_app_lam(&head, &args, ctx),
            Expr::FlatMap { func } => {
                let [src] = args.as_slice() else {
                    return Err(CostError::Unsupported("flatMap arity"));
                };
                self.cost_flatmap(func, src, ctx)
            }
            Expr::FoldL { init, func } => {
                let [src] = args.as_slice() else {
                    return Err(CostError::Unsupported("foldL arity"));
                };
                self.cost_fold(init, func, src, ctx)
            }
            Expr::DefRef(def) => self.cost_def(def, &args, ctx),
            Expr::Sized { expr, .. } => {
                // Re-associate: ((@sized f) a b) costs like (f a b) with the
                // size override applied to the head only.
                let mut rebuilt = (**expr).clone();
                for a in &args {
                    rebuilt = rebuilt.app(a.clone());
                }
                self.go(&rebuilt, ctx)
            }
            _ => Err(CostError::Unsupported("application head")),
        }
    }

    fn cost_app_lam(&self, lam: &Expr, args: &[Expr], ctx: &mut Ctx) -> Result<Outcome, CostError> {
        // Bind arguments one at a time (lazy: no transfer at binding —
        // consumption charges them; see DESIGN.md on lazy App vs Figure 6).
        let mut current = lam.clone();
        let mut ev = Events::zero();
        let mut bindings: Vec<(String, Option<(Annot, NodeId)>)> = Vec::new();
        let mut result = None;
        for (i, arg) in args.iter().enumerate() {
            let a = self.go(arg, ctx)?;
            ev.merge(a.ev.clone());
            match current {
                Expr::Lam { param, body } => {
                    let shadowed = ctx.gamma.insert(param.clone(), (a.annot, a.loc));
                    bindings.push((param, shadowed));
                    current = (*body).clone();
                    if i + 1 == args.len() {
                        result = Some(self.go(&current, ctx));
                    }
                }
                _ => {
                    result = Some(Err(CostError::Unsupported("over-applied lambda")));
                    break;
                }
            }
        }
        for (param, shadowed) in bindings.into_iter().rev() {
            restore(&mut ctx.gamma, &param, shadowed);
        }
        let out = result.ok_or(CostError::Unsupported("unapplied lambda"))??;
        ev.merge(out.ev);
        Ok(Outcome {
            annot: out.annot,
            loc: out.loc,
            ev,
        })
    }

    fn cost_flatmap(&self, f: &Expr, src: &Expr, ctx: &mut Ctx) -> Result<Outcome, CostError> {
        let root = self.root();
        let s = self.go(src, ctx)?;
        let (ms, annot, mut ev) = self.effective_source_streaming(src, s, ctx)?;
        let card = annot.card().ok_or(CostError::BadShape {
            context: "flatMap source",
        })?;
        let elem = annot.elem().cloned().unwrap_or(Annot::Zero);
        let elem_bytes = simplify(&elem.size());
        if ms != root {
            self.charge_elementwise_read(&mut ev, ms, &card, &elem_bytes);
            // Each element must fit in the root while processed (this is
            // what bounds the partition count of a hash join from below).
            if !elem_bytes.vars().is_empty() {
                ctx.usage.entry(root).or_default().push(elem_bytes.clone());
            }
        }
        let body = self.cost_apply_fn(f, elem, root, ctx)?;
        ev.merge(body.ev.scaled(&card));
        Ok(Outcome {
            annot: body.annot.scale(&card).simplified(),
            loc: root,
            ev,
        })
    }

    /// `foldL` events (Figure 6's third rule): element-at-a-time source
    /// consumption plus, when the accumulator outgrows the root, the
    /// linearly-growing per-iteration round trip whose closed form is the
    /// paper's `x·InitCom + x(x+1)/2·(…)` insertion-sort formula.
    fn cost_fold(
        &self,
        init: &Expr,
        func: &Expr,
        src: &Expr,
        ctx: &mut Ctx,
    ) -> Result<Outcome, CostError> {
        let root = self.root();
        let s = self.go(src, ctx)?;
        let (ms, src_annot, mut ev) = self.effective_source_streaming(src, s, ctx)?;
        let card = src_annot.card().ok_or(CostError::BadShape {
            context: "foldL source",
        })?;
        let elem = src_annot.elem().cloned().unwrap_or(Annot::Zero);
        let elem_bytes = simplify(&elem.size());

        let init_out = self.go(init, ctx)?;
        ev.merge(init_out.ev);
        let c_annot = init_out.annot;

        // Element-wise source reads.
        if ms != root {
            self.charge_elementwise_read(&mut ev, ms, &card, &elem_bytes);
        }

        // One fold step for size growth.
        let mut sctx = self.size_ctx(ctx);
        let step_arg = Annot::Tuple(vec![c_annot.clone(), elem.clone()]);
        let one_step = apply_fn_size(func, step_arg.clone(), &mut sctx)?;
        let c_size = simplify(&c_annot.size());
        let delta = simplify(&(one_step.size() - c_size.clone()));

        // Final accumulator size via the linear-growth model.
        let final_annot = {
            let whole = Expr::fold_l(init.clone(), func.clone());
            let _ = whole;
            // R(c) + card·(R(step) − R(c)) on byte sizes:
            simplify(&(c_size.clone() + card.clone() * delta.clone()))
        };

        if self.numeric(&final_annot) > self.budget() {
            // Accumulator spills: per-iteration round trip of the growing
            // prefix (paper §7.2's naive insertion-sort derivation).
            let spill = self.spill.ok_or(CostError::NoSpillNode)?;
            let j = Sym::var("j");
            let acc_j = c_size.clone() + (j.clone() + Sym::one()) * delta.clone();
            let sum = Sym::sum("j", Sym::zero(), card.clone() - Sym::one(), acc_j);
            ev.add_bytes(root, spill, sum.clone());
            ev.add_bytes(spill, root, sum.clone());
            // Element-wise writes (one InitCom per written element).
            ev.add_init(root, spill, sum);
        }

        // Step-function events (bound at the root), once per element.
        let step_out = self.cost_apply_fn(func, step_arg, root, ctx)?;
        ev.merge(step_out.ev.scaled(&card));

        // Result annotation from the size rules.
        let annot = {
            let whole = Expr::fold_l(init.clone(), func.clone()).app(src.clone());
            self.annot_of(&whole, ctx)?
        };
        Ok(Outcome {
            annot,
            loc: root,
            ev,
        })
    }

    /// Costs a function expression applied to an argument annotation.
    fn cost_apply_fn(
        &self,
        f: &Expr,
        arg: Annot,
        arg_loc: NodeId,
        ctx: &mut Ctx,
    ) -> Result<Outcome, CostError> {
        match f {
            Expr::Lam { param, body } => {
                let shadowed = ctx.gamma.insert(param.clone(), (arg, arg_loc));
                let r = self.go(body, ctx);
                restore(&mut ctx.gamma, param, shadowed);
                r
            }
            // Definitions and partial applications are pure at the root;
            // their I/O (if any) is charged by the dedicated plugins when
            // they appear applied to device-resident data.
            _ => {
                let mut sctx = self.size_ctx(ctx);
                let annot = apply_fn_size(f, arg, &mut sctx)?;
                Ok(Outcome {
                    annot,
                    loc: self.root(),
                    ev: Events::zero(),
                })
            }
        }
    }

    fn cost_def(&self, def: &DefName, args: &[Expr], ctx: &mut Ctx) -> Result<Outcome, CostError> {
        let root = self.root();
        if args.len() < def.arity() {
            // Partial application: a pure function value; argument events
            // still count (e.g. a treeFold seed expression).
            let mut ev = Events::zero();
            for a in args {
                let o = self.go(a, ctx)?;
                ev.merge(o.ev);
            }
            return Ok(Outcome {
                annot: Annot::atom(0),
                loc: root,
                ev,
            });
        }
        match def {
            DefName::Length => {
                // O(1) plugin: cardinality metadata, no transfers.
                let o = self.go(&args[0], ctx)?;
                Ok(Outcome {
                    annot: Annot::atom(self.int_size),
                    loc: root,
                    ev: o.ev,
                })
            }
            DefName::Head => {
                let o = self.go(&args[0], ctx)?;
                let elem = o
                    .annot
                    .elem()
                    .cloned()
                    .ok_or(CostError::BadShape { context: "head" })?;
                let mut ev = o.ev;
                if o.loc != root {
                    self.charge_elementwise_read(&mut ev, o.loc, &Sym::one(), &elem.size());
                }
                Ok(Outcome {
                    annot: elem,
                    loc: root,
                    ev,
                })
            }
            DefName::Tail => {
                // A view: stays where the list is.
                let o = self.go(&args[0], ctx)?;
                let card = o
                    .annot
                    .card()
                    .ok_or(CostError::BadShape { context: "tail" })?;
                let elem = o
                    .annot
                    .elem()
                    .cloned()
                    .ok_or(CostError::BadShape { context: "tail" })?;
                Ok(Outcome {
                    annot: Annot::list(elem, simplify(&(card - Sym::one()))),
                    loc: o.loc,
                    ev: o.ev,
                })
            }
            DefName::Avg => {
                // Naive streaming aggregate: element-at-a-time scan.
                let o = self.go(&args[0], ctx)?;
                let card = o
                    .annot
                    .card()
                    .ok_or(CostError::BadShape { context: "avg" })?;
                let elem_bytes = o
                    .annot
                    .elem()
                    .map(|e| simplify(&e.size()))
                    .unwrap_or_else(Sym::zero);
                let mut ev = o.ev;
                if o.loc != root {
                    self.charge_elementwise_read(&mut ev, o.loc, &card, &elem_bytes);
                }
                Ok(Outcome {
                    annot: Annot::atom(self.int_size),
                    loc: root,
                    ev,
                })
            }
            DefName::Mrg | DefName::Zip(_) | DefName::FuncPow(_) => {
                // Pure step functions.
                let mut ev = Events::zero();
                let mut annots = Vec::new();
                for a in args {
                    let o = self.go(a, ctx)?;
                    ev.merge(o.ev);
                    annots.push(o.annot);
                }
                let mut sctx = self.size_ctx(ctx);
                let annot = def_size_with_annots(def, &annots, &mut sctx)?;
                Ok(Outcome {
                    annot,
                    loc: root,
                    ev,
                })
            }
            DefName::Partition | DefName::HashPartition(_) => {
                self.cost_partition(def, &args[0], ctx)
            }
            DefName::UnfoldR { b_in, b_out } => {
                if args.len() != 2 {
                    return Err(CostError::Unsupported("partially applied unfoldR"));
                }
                self.cost_unfoldr(&args[0], &args[1], b_in, b_out, ctx)
            }
            DefName::TreeFold(m) => {
                if args.len() != 2 {
                    return Err(CostError::Unsupported("partially applied treeFold"));
                }
                self.cost_treefold(m, &args[0], &args[1], ctx)
            }
        }
    }

    /// `partition`/`hashPartition`: one streaming pass over the input
    /// (blocked by `b_in`), buckets written back out when they exceed the
    /// root budget; the result then lives on the spill node.
    fn cost_partition(
        &self,
        def: &DefName,
        src: &Expr,
        ctx: &mut Ctx,
    ) -> Result<Outcome, CostError> {
        let root = self.root();
        let s = self.go(src, ctx)?;
        let (ms, src_annot, mut ev) = self.effective_source(s, ctx)?;
        let card = src_annot.card().ok_or(CostError::BadShape {
            context: "partition",
        })?;
        let elem_bytes = src_annot
            .elem()
            .map(|e| simplify(&e.size()))
            .unwrap_or_else(Sym::zero);
        let total = simplify(&(card.clone() * elem_bytes.clone()));
        if ms != root {
            let md = self.h.parent(ms).unwrap_or(root);
            // Streaming blocked read: b_in is a byte-sized buffer.
            ev.add_init(ms, md, total.clone() / Sym::var(B_IN));
            ev.add_bytes(ms, md, total.clone());
            ctx.usage.entry(root).or_default().push(Sym::var(B_IN));
        }
        let mut sctx = self.size_ctx(ctx);
        let annot = def_size_with_annots(def, &[src_annot], &mut sctx)?;
        // Bucket write-back when the whole partitioned output cannot stay
        // resident.
        let out_size = simplify(&annot.size());
        let loc = if self.numeric(&out_size) > self.budget() {
            let spill = self.spill.ok_or(CostError::NoSpillNode)?;
            match def {
                DefName::HashPartition(s) => {
                    // `s`-way spill under a shared `b_in`-byte staging
                    // buffer: each bucket owns `b_in / s` bytes, and every
                    // bucket-buffer flush lands on its own spill region —
                    // a seek per flush (`size·s / b_in` of them), with each
                    // flush rounded up to the spill device's page. This is
                    // exactly the request pattern the engine's partition
                    // pass issues; charging it here is what keeps GRACE
                    // estimates honest (act/opt ≈ 1) instead of the
                    // b_out-streaming assumption that undercharged seeks
                    // ~75x and let the optimizer pick absurd `s`.
                    let s_sym = block_sym(s);
                    let flushes = simplify(
                        &(out_size.clone() * s_sym.clone() / Sym::var(B_IN)).max(Sym::one()),
                    );
                    ctx.usage.entry(root).or_default().push(Sym::var(B_IN));
                    let mut path = self.h.path_to_root(spill);
                    path.reverse(); // root … spill
                    let start = path.iter().position(|n| *n == root).unwrap_or(0);
                    for pair in path[start..].windows(2) {
                        let (a, b) = (pair[0], pair[1]);
                        let page = self.h.node(b).pagesize;
                        let rounded = out_size
                            .clone()
                            .max(flushes.clone() * Sym::int(page as i128));
                        ev.add_bytes(a, b, rounded);
                        ev.add_init(a, b, flushes.clone());
                    }
                }
                _ => self.charge_write_path(&mut ev, root, spill, &out_size, ctx),
            }
            spill
        } else {
            root
        };
        Ok(Outcome { annot, loc, ev })
    }

    fn cost_unfoldr(
        &self,
        f: &Expr,
        seed: &Expr,
        b_in: &BlockSize,
        _b_out: &BlockSize,
        ctx: &mut Ctx,
    ) -> Result<Outcome, CostError> {
        let root = self.root();
        // Cost components individually when the seed is a literal tuple so
        // each list keeps its own location.
        let components: Vec<Outcome> = match seed {
            Expr::Tuple(items) => items
                .iter()
                .map(|i| self.go(i, ctx))
                .collect::<Result<_, _>>()?,
            other => {
                let o = self.go(other, ctx)?;
                let Annot::Tuple(items) = o.annot.clone() else {
                    return Err(CostError::BadShape { context: "unfoldR" });
                };
                items
                    .into_iter()
                    .map(|annot| Outcome {
                        annot,
                        loc: o.loc,
                        ev: Events::zero(),
                    })
                    .chain(std::iter::once(Outcome {
                        annot: Annot::Zero,
                        loc: root,
                        ev: o.ev.clone(),
                    }))
                    .collect()
            }
        };

        let is_zip = matches!(f, Expr::DefRef(DefName::Zip(_)));
        let mut ev = Events::zero();
        let b_in_sym = block_sym(b_in);

        // Resolve per-component effective sources first.
        let mut resolved: Vec<(NodeId, Annot)> = Vec::new();
        for comp in components {
            if matches!(comp.annot, Annot::Zero) && comp.loc == root {
                ev.merge(comp.ev);
                continue;
            }
            let (ms, annot, comp_ev) = self.effective_source(comp, ctx)?;
            ev.merge(comp_ev);
            resolved.push((ms, annot));
        }

        // An *unblocked* `unfoldR(zip)` over co-located device lists is a
        // *view*: zipping reorders nothing and transfers nothing by itself;
        // the consumer (flatMap/for) charges the reads. This prevents
        // double-spilling the partitions of a GRACE hash join. A *blocked*
        // zip (apply-block applied) materializes rows through its buffers
        // and is charged below.
        if is_zip && b_in.is_one() {
            let locs: Vec<NodeId> = resolved.iter().map(|(m, _)| *m).collect();
            let seed_annot = Annot::Tuple(resolved.iter().map(|(_, a)| a.clone()).collect());
            let annot = zip_unfold_size(&seed_annot)?;
            let loc = common_loc(&locs, root);
            if loc != root {
                return Ok(Outcome { annot, loc, ev });
            }
            // Mixed / in-root locations: charge device components below.
        }

        let mut annots: Vec<Annot> = Vec::new();
        for (ms, annot) in &resolved {
            if let Some(card) = annot.card() {
                let elem_bytes = annot
                    .elem()
                    .map(|e| simplify(&e.size()))
                    .unwrap_or_else(Sym::zero);
                if *ms != root {
                    let md = self.h.parent(*ms).unwrap_or(root);
                    let total = simplify(&(card.clone() * elem_bytes.clone()));
                    ev.add_init(*ms, md, simplify(&(card.clone() / b_in_sym.clone())));
                    let page = self.h.node(*ms).pagesize;
                    let bytes = if page > 1 && b_in.is_one() {
                        card.clone() * Sym::int(page as i128).max(elem_bytes.clone())
                    } else {
                        total
                    };
                    ev.add_bytes(*ms, md, bytes);
                    if !b_in.is_one() {
                        ctx.usage
                            .entry(md)
                            .or_default()
                            .push(simplify(&(b_in_sym.clone() * elem_bytes.clone())));
                    }
                }
            }
            annots.push(annot.clone());
        }

        let seed_annot = Annot::Tuple(annots);
        let mut sctx = self.size_ctx(ctx);
        let annot = if is_zip {
            zip_unfold_size(&seed_annot)?
        } else {
            def_size_with_annots(
                &DefName::UnfoldR {
                    b_in: b_in.clone(),
                    b_out: _b_out.clone(),
                },
                &[Annot::atom(0), seed_annot],
                &mut sctx,
            )?
        };
        Ok(Outcome {
            annot,
            loc: root,
            ev,
        })
    }

    /// `treeFold[m](⟨c, step⟩)(seed)` — the external-sort cost plugin.
    ///
    /// When the seed lives below the root, each of the
    /// `⌈log₂(runs)/log₂(m)⌉` merge levels streams all bytes down and back
    /// up, seeking once per `b_in` elements on reads and once per
    /// `min(b_out·elem, maxSeqW)` bytes on writes (paper §7.2's 2ᵏ-way
    /// External Merge-Sort formula). The root must hold `m` input buffers
    /// plus one output buffer.
    fn cost_treefold(
        &self,
        m: &BlockSize,
        cf: &Expr,
        seed: &Expr,
        ctx: &mut Ctx,
    ) -> Result<Outcome, CostError> {
        let root = self.root();
        let BlockSize::Const(m_val) = m else {
            return Err(CostError::Unsupported("symbolic treeFold arity"));
        };
        let m_val = *m_val;
        let cf_out = self.go(cf, ctx)?;
        let seed_out = self.go(seed, ctx)?;
        let mut ev = cf_out.ev;
        let (ms, seed_annot, seed_ev) = self.effective_source(seed_out, ctx)?;
        ev.merge(seed_ev);

        let mut sctx = self.size_ctx(ctx);
        let annot = def_size_with_annots(
            &DefName::TreeFold(m.clone()),
            &[cf_out.annot, seed_annot.clone()],
            &mut sctx,
        )?;

        if ms == root {
            return Ok(Outcome {
                annot,
                loc: root,
                ev,
            });
        }
        let md = self.h.parent(ms).unwrap_or(root);
        let runs = seed_annot.card().ok_or(CostError::BadShape {
            context: "treeFold seed",
        })?;
        let total_bytes = simplify(&seed_annot.size());
        let elems = match seed_annot.elem() {
            Some(Annot::List { card: inner, .. }) => simplify(&(runs.clone() * inner.clone())),
            _ => runs.clone(),
        };
        let elem_bytes = match seed_annot.elem() {
            Some(Annot::List { elem, .. }) => simplify(&elem.size()),
            Some(other) => simplify(&other.size()),
            None => Sym::one(),
        };

        // Blocking parameters from the embedded (possibly blocked) unfoldR.
        let (b_in, b_out) = find_unfoldr_blocks(cf).unwrap_or((BlockSize::one(), BlockSize::one()));
        let b_in_sym = block_sym(&b_in);
        let b_out_sym = block_sym(&b_out);

        // Merge levels.
        if m_val < 2 || !m_val.is_power_of_two() {
            return Err(CostError::Unsupported("treeFold arity must be 2^k"));
        }
        let k_log = Sym::int(m_val.trailing_zeros() as i128);
        let levels = simplify(&(runs.clone().log2() / k_log).ceil().max(Sym::one()));

        // Per level: read everything, write everything.
        let read_init = simplify(&(elems.clone() / b_in_sym.clone()));
        let mut write_block = b_out_sym.clone() * elem_bytes.clone();
        if let Some(w) = self.h.node(ms).max_seq_write {
            write_block = write_block.min(Sym::int(w as i128));
        }
        let write_init = simplify(&(total_bytes.clone() / write_block));
        let page = self.h.node(ms).pagesize;
        let read_bytes = if page > 1 && b_in.is_one() {
            simplify(&(elems.clone() * Sym::int(page as i128).max(elem_bytes.clone())))
        } else {
            total_bytes.clone()
        };
        let mut level_ev = Events::zero();
        level_ev.add_init(ms, md, read_init);
        level_ev.add_bytes(ms, md, read_bytes);
        level_ev.add_init(md, ms, write_init);
        level_ev.add_bytes(md, ms, total_bytes.clone());
        ev.merge(level_ev.scaled(&levels));

        // Buffer constraint: m input blocks + 1 output block at the root.
        if b_in.param_name().is_some() || b_out.param_name().is_some() {
            ctx.usage.entry(md).or_default().push(simplify(
                &(Sym::int(m_val as i128) * b_in_sym * elem_bytes.clone() + b_out_sym * elem_bytes),
            ));
        }
        Ok(Outcome {
            annot,
            loc: root,
            ev,
        })
    }
}

fn strip_sized(e: &Expr) -> &Expr {
    match e {
        Expr::Sized { expr, .. } => strip_sized(expr),
        other => other,
    }
}

fn restore(
    gamma: &mut BTreeMap<String, (Annot, NodeId)>,
    name: &str,
    old: Option<(Annot, NodeId)>,
) {
    match old {
        Some(v) => {
            gamma.insert(name.to_string(), v);
        }
        None => {
            gamma.remove(name);
        }
    }
}

fn common_loc(locs: &[NodeId], root: NodeId) -> NodeId {
    let mut iter = locs.iter().copied();
    let first = iter.next().unwrap_or(root);
    if iter.all(|l| l == first) {
        first
    } else {
        root
    }
}

/// True if `body` contains a `for` iterating directly over `var`.
fn contains_for_over(body: &Expr, var: &str) -> bool {
    if let Expr::For { source, .. } = body {
        if let Expr::Var(v) = &**source {
            if v == var {
                return true;
            }
        }
    }
    body.children().iter().any(|c| contains_for_over(c, var))
}

/// Finds the blocking of the first `unfoldR` inside an expression (used by
/// the treeFold plugin to locate the step's buffers).
fn find_unfoldr_blocks(e: &Expr) -> Option<(BlockSize, BlockSize)> {
    if let Expr::DefRef(DefName::UnfoldR { b_in, b_out }) = e {
        return Some((b_in.clone(), b_out.clone()));
    }
    e.children().iter().find_map(|c| find_unfoldr_blocks(c))
}
