//! Result-size estimation — the `R(Γ, e)` rules of Figure 5.
//!
//! The analysis is worst-case: `if` takes the larger branch, nested lists
//! take the maximum inner length, and definitions fall back to conservative
//! plugins. Programmers can override any subexpression with a `Sized`
//! annotation (paper §5.1) — this is what makes the multiset-difference
//! estimate of §7.3 exact.

use crate::annot::Annot;
use crate::CostError;
use ocal::{BlockSize, DefName, Expr, PrimOp};
use ocas_symbolic::{simplify, Expr as Sym};
use std::collections::BTreeMap;

/// Context for size estimation: `Γ` plus configuration.
#[derive(Debug, Clone)]
pub struct SizeCtx {
    /// Variable annotations.
    pub gamma: BTreeMap<String, Annot>,
    /// Byte width of `Int`/`hash` results (the paper's Figure 4 example uses
    /// 1; the experiments use machine-width integers).
    pub int_size: u64,
}

impl SizeCtx {
    /// Creates a context from input annotations with the given `Int` width.
    pub fn new(gamma: BTreeMap<String, Annot>, int_size: u64) -> SizeCtx {
        SizeCtx { gamma, int_size }
    }
}

/// Converts a block size into a symbolic expression.
pub fn block_sym(b: &BlockSize) -> Sym {
    match b {
        BlockSize::Const(n) => Sym::int(*n as i128),
        BlockSize::Param(p) => Sym::var(p.clone()),
    }
}

/// Splits an application chain into its head and argument list.
pub fn spine(e: &Expr) -> (&Expr, Vec<&Expr>) {
    let mut head = e;
    let mut args = Vec::new();
    while let Expr::App { func, arg } = head {
        args.push(&**arg);
        head = &**func;
    }
    args.reverse();
    (head, args)
}

/// Recognizes the *order-inputs* selector
/// `if length(a) <= length(b) then <a, b> else <b, a>`
/// and returns the two list expressions `(a, b)`.
pub fn match_ordered_pair(e: &Expr) -> Option<(&Expr, &Expr)> {
    let Expr::If {
        cond,
        then_branch,
        else_branch,
    } = e
    else {
        return None;
    };
    let Expr::Prim {
        op: PrimOp::Le,
        args,
    } = &**cond
    else {
        return None;
    };
    let len_arg = |e: &Expr| -> Option<Expr> {
        let (head, args) = spine(e);
        match (head, args.as_slice()) {
            (Expr::DefRef(DefName::Length), [l]) => Some((*l).clone()),
            _ => None,
        }
    };
    let a = len_arg(&args[0])?;
    let b = len_arg(&args[1])?;
    match (&**then_branch, &**else_branch) {
        (Expr::Tuple(t), Expr::Tuple(f)) if t.len() == 2 && f.len() == 2 => {
            if t[0] == a && t[1] == b && f[0] == b && f[1] == a {
                // Indices into the branches keep borrows simple.
                if let (Expr::Tuple(t), _) = (&**then_branch, ()) {
                    return Some((&t[0], &t[1]));
                }
            }
            None
        }
        _ => None,
    }
}

/// `R(Γ, e)` — the result size of `e` as an annotated type.
pub fn result_size(e: &Expr, ctx: &SizeCtx) -> Result<Annot, CostError> {
    let a = go(e, &mut ctx.clone())?;
    Ok(a.simplified())
}

fn go(e: &Expr, ctx: &mut SizeCtx) -> Result<Annot, CostError> {
    match e {
        Expr::Var(v) => ctx
            .gamma
            .get(v)
            .cloned()
            .ok_or_else(|| CostError::UnboundVariable(v.clone())),
        Expr::Int(_) => Ok(Annot::atom(ctx.int_size)),
        Expr::Bool(_) => Ok(Annot::atom(1)),
        Expr::Str(s) => Ok(Annot::atom(s.len() as u64)),
        // Function-forming expressions occupy no data space themselves.
        Expr::Lam { .. } | Expr::DefRef(_) | Expr::FlatMap { .. } | Expr::FoldL { .. } => {
            Ok(Annot::atom(0))
        }
        Expr::Tuple(items) => {
            let mut out = Vec::with_capacity(items.len());
            for i in items {
                out.push(go(i, ctx)?);
            }
            Ok(Annot::Tuple(out))
        }
        Expr::Proj { tuple, index } => {
            let t = go(tuple, ctx)?;
            t.proj(*index).ok_or(CostError::BadShape {
                context: "projection",
            })
        }
        Expr::Singleton(inner) => Ok(Annot::list(go(inner, ctx)?, Sym::one())),
        Expr::Empty => Ok(Annot::Zero),
        Expr::Union { left, right } => {
            let l = go(left, ctx)?;
            let r = go(right, ctx)?;
            Ok(l.add(&r))
        }
        Expr::If { .. } => {
            if let Some((a, b)) = match_ordered_pair(e) {
                // order-inputs selector: the result is the same pair with the
                // smaller list first — exactly representable with min/max.
                let aa = go(&a.clone(), ctx)?;
                let bb = go(&b.clone(), ctx)?;
                if let (Some(ca), Some(cb)) = (aa.card(), bb.card()) {
                    let elem = aa
                        .elem()
                        .map(|e| e.join(bb.elem().unwrap_or(&Annot::Zero)))
                        .unwrap_or(Annot::Zero);
                    let min = simplify(&ca.clone().min(cb.clone()));
                    let max = simplify(&ca.max(cb));
                    return Ok(Annot::Tuple(vec![
                        Annot::list(elem.clone(), min),
                        Annot::list(elem, max),
                    ]));
                }
            }
            let Expr::If {
                then_branch,
                else_branch,
                ..
            } = e
            else {
                unreachable!()
            };
            let t = go(then_branch, ctx)?;
            let f = go(else_branch, ctx)?;
            Ok(t.join(&f))
        }
        Expr::Prim { op, .. } => Ok(match op {
            PrimOp::Eq
            | PrimOp::Ne
            | PrimOp::Lt
            | PrimOp::Le
            | PrimOp::Gt
            | PrimOp::Ge
            | PrimOp::And
            | PrimOp::Or
            | PrimOp::Not => Annot::atom(1),
            _ => Annot::atom(ctx.int_size),
        }),
        Expr::For {
            var,
            block,
            source,
            body,
            ..
        } => {
            let src = go(source, ctx)?;
            let card = src.card().ok_or(CostError::BadShape {
                context: "for source",
            })?;
            let elem = src.elem().cloned().unwrap_or(Annot::Zero);
            let k = block_sym(block);
            let bound = if block.is_one() {
                elem
            } else {
                Annot::list(elem, k.clone())
            };
            let shadowed = ctx.gamma.insert(var.clone(), bound);
            let body_annot = go(body, ctx);
            restore(&mut ctx.gamma, var, shadowed);
            let body_annot = body_annot?;
            Ok(body_annot.scale(&(card / k)))
        }
        Expr::Sized { hint, .. } => Ok(Annot::from_hint(hint)),
        Expr::App { .. } => app_size(e, ctx),
    }
}

fn restore(gamma: &mut BTreeMap<String, Annot>, name: &str, old: Option<Annot>) {
    match old {
        Some(a) => {
            gamma.insert(name.to_string(), a);
        }
        None => {
            gamma.remove(name);
        }
    }
}

fn app_size(e: &Expr, ctx: &mut SizeCtx) -> Result<Annot, CostError> {
    let (head, args) = spine(e);
    match head {
        Expr::Lam { .. } => {
            // β-reduce the spine ((λx.…)(a1))(a2)…: spine arguments are
            // syntactically outside the lambdas, so size them all in the
            // outer scope, then bind each under its lambda and size the
            // innermost body with every binding in scope.
            let mut sized = Vec::with_capacity(args.len());
            for arg in args.iter().copied() {
                sized.push(go(arg, ctx)?);
            }
            let mut current: &Expr = head;
            let mut bound: Vec<(String, Option<Annot>)> = Vec::new();
            let mut over_applied = false;
            for a in sized {
                match current {
                    Expr::Lam { param, body } => {
                        bound.push((param.clone(), ctx.gamma.insert(param.clone(), a)));
                        current = body;
                    }
                    _ => {
                        over_applied = true;
                        break;
                    }
                }
            }
            let result = if over_applied {
                Err(CostError::Unsupported("over-applied lambda"))
            } else {
                go(current, ctx)
            };
            for (name, old) in bound.into_iter().rev() {
                restore(&mut ctx.gamma, &name, old);
            }
            result
        }
        Expr::FlatMap { func } => {
            let [src] = args.as_slice() else {
                return Err(CostError::Unsupported("flatMap arity"));
            };
            let s = go(&(*src).clone(), ctx)?;
            let card = s.card().ok_or(CostError::BadShape {
                context: "flatMap source",
            })?;
            let elem = s.elem().cloned().unwrap_or(Annot::Zero);
            let body = apply_fn_size(func, elem, ctx)?;
            Ok(body.scale(&card))
        }
        Expr::FoldL { init, func } => {
            let [src] = args.as_slice() else {
                return Err(CostError::Unsupported("foldL arity"));
            };
            let s = go(&(*src).clone(), ctx)?;
            let card = s.card().ok_or(CostError::BadShape {
                context: "foldL source",
            })?;
            let elem = s.elem().cloned().unwrap_or(Annot::Zero);
            fold_size(init, func, &elem, &card, ctx)
        }
        Expr::DefRef(def) => {
            if args.len() < def.arity() {
                // Partial application: a function value, no data size.
                return Ok(Annot::atom(0));
            }
            def_size(def, &args, ctx)
        }
        Expr::Sized { hint, .. } => {
            let _ = args;
            Ok(Annot::from_hint(hint))
        }
        _ => Err(CostError::Unsupported("application head")),
    }
}

/// Applies a function expression to an argument *annotation* and sizes the
/// result (used for `flatMap`/`foldL` bodies and definition arguments).
pub fn apply_fn_size(f: &Expr, arg: Annot, ctx: &mut SizeCtx) -> Result<Annot, CostError> {
    match f {
        Expr::Lam { param, body } => {
            let shadowed = ctx.gamma.insert(param.clone(), arg);
            let r = go(body, ctx);
            restore(&mut ctx.gamma, param, shadowed);
            r
        }
        Expr::Sized { hint, .. } => Ok(Annot::from_hint(hint)),
        Expr::DefRef(def) => {
            // A unary definition applied to a pre-sized argument.
            def_size_with_annots(def, &[arg], ctx)
        }
        Expr::App { .. } => {
            // Partially applied definition, e.g. `unfoldR(mrg)` as the
            // foldL step function.
            let (head, pre_args) = spine(f);
            if let Expr::DefRef(def) = head {
                let mut annots = Vec::with_capacity(pre_args.len() + 1);
                for a in pre_args {
                    annots.push(go(&a.clone(), ctx)?);
                }
                annots.push(arg);
                return def_size_with_annots(def, &annots, ctx);
            }
            Err(CostError::Unsupported("function application head"))
        }
        _ => Err(CostError::Unsupported("function position expression")),
    }
}

/// Figure 6's linear-growth model for `foldL`:
/// `R = R(c) + card · (R(step(⟨c, elem⟩)) − R(c))`.
fn fold_size(
    init: &Expr,
    func: &Expr,
    elem: &Annot,
    card: &Sym,
    ctx: &mut SizeCtx,
) -> Result<Annot, CostError> {
    let c = go(init, ctx)?;
    let step_arg = Annot::Tuple(vec![c.clone(), elem.clone()]);
    let one_step = apply_fn_size(func, step_arg, ctx)?;
    // Combine shape-wise: list cards grow linearly; scalars keep the
    // one-step size (the common accumulate-a-counter case).
    Ok(linear_growth(&c, &one_step, card))
}

fn linear_growth(c: &Annot, step: &Annot, card: &Sym) -> Annot {
    match (c, step) {
        (Annot::Zero, Annot::Zero) => Annot::Zero,
        (Annot::List { card: c0, elem: e0 }, Annot::List { card: c1, elem: e1 }) => {
            let delta = simplify(&(c1.clone() - c0.clone()));
            let grown = simplify(&(c0.clone() + card.clone() * delta));
            Annot::list(e0.join(e1), grown)
        }
        (Annot::Zero, Annot::List { card: c1, elem }) => {
            let grown = simplify(&(card.clone() * c1.clone()));
            Annot::list((**elem).clone(), grown)
        }
        (Annot::Tuple(xs), Annot::Tuple(ys)) if xs.len() == ys.len() => Annot::Tuple(
            xs.iter()
                .zip(ys)
                .map(|(x, y)| linear_growth(x, y, card))
                .collect(),
        ),
        // Scalar accumulators keep their per-step size.
        (_, s) if s.is_scalar() => s.clone(),
        (c0, s) => {
            // Fallback: linear growth on the byte size.
            let delta = simplify(&(s.size() - c0.size()));
            Annot::Atom(simplify(&(c0.size() + card.clone() * delta)))
        }
    }
}

fn def_size(def: &DefName, args: &[&Expr], ctx: &mut SizeCtx) -> Result<Annot, CostError> {
    let mut annots = Vec::with_capacity(args.len());
    for a in args {
        annots.push(go(&(*a).clone(), ctx)?);
    }
    def_size_with_annots(def, &annots, ctx)
}

/// Size plugins for the named definitions (paper §5.3: "our system also
/// allows the developer to define custom costs for definitions").
pub fn def_size_with_annots(
    def: &DefName,
    args: &[Annot],
    ctx: &mut SizeCtx,
) -> Result<Annot, CostError> {
    let wrong = || CostError::BadShape {
        context: "definition argument",
    };
    match def {
        DefName::Head => args[0].elem().cloned().ok_or_else(wrong),
        DefName::Tail => {
            let card = args[0].card().ok_or_else(wrong)?;
            let elem = args[0].elem().cloned().ok_or_else(wrong)?;
            Ok(Annot::list(elem, simplify(&(card - Sym::one()))))
        }
        DefName::Length | DefName::Avg => Ok(Annot::atom(ctx.int_size)),
        DefName::Mrg => {
            // One merge step: emits at most one element.
            let elem = match &args[0] {
                Annot::Tuple(items) if !items.is_empty() => {
                    items[0].elem().cloned().unwrap_or(Annot::Zero)
                }
                _ => return Err(wrong()),
            };
            let out = Annot::list(elem, Sym::one());
            Ok(Annot::Tuple(vec![out, args[0].clone()]))
        }
        DefName::Zip(_) => {
            let Annot::Tuple(items) = &args[0] else {
                return Err(wrong());
            };
            let heads: Vec<Annot> = items
                .iter()
                .map(|l| l.elem().cloned().unwrap_or(Annot::Zero))
                .collect();
            let out = Annot::list(Annot::Tuple(heads), Sym::one());
            Ok(Annot::Tuple(vec![out, args[0].clone()]))
        }
        DefName::Partition => {
            // Worst-case: every tuple forms its own group (documented
            // overestimate; the costed experiments use hashPartition).
            let card = args[0].card().ok_or_else(wrong)?;
            let elem = args[0].elem().cloned().ok_or_else(wrong)?;
            let (key, rest) = match &elem {
                Annot::Tuple(items) if items.len() >= 2 => {
                    let key = items[0].clone();
                    let rest = if items.len() == 2 {
                        items[1].clone()
                    } else {
                        Annot::Tuple(items[1..].to_vec())
                    };
                    (key, rest)
                }
                _ => return Err(wrong()),
            };
            Ok(Annot::list(
                Annot::Tuple(vec![key, Annot::list(rest, card.clone())]),
                card,
            ))
        }
        DefName::HashPartition(s) => {
            let card = args[0].card().ok_or_else(wrong)?;
            let elem = args[0].elem().cloned().ok_or_else(wrong)?;
            let s = block_sym(s);
            let per_bucket = simplify(&(card / s.clone()).ceil());
            Ok(Annot::list(Annot::list(elem, per_bucket), s))
        }
        DefName::UnfoldR { .. } => {
            if args.len() != 2 {
                return Err(CostError::Unsupported("partially applied unfoldR"));
            }
            let Annot::Tuple(lists) = &args[1] else {
                return Err(wrong());
            };
            // The step function decides the output shape; args[0] sized the
            // step (opaque). We conservatively emit the *sum* of input
            // cardinalities (exact for merges, the worst case otherwise) —
            // except when every input has the same elem and the step is a
            // zip, which the events engine special-cases before calling us.
            let mut card = Sym::zero();
            let mut elem = Annot::Zero;
            for l in lists {
                card = card + l.card().ok_or_else(wrong)?;
                elem = elem.join(l.elem().unwrap_or(&Annot::Zero));
            }
            Ok(Annot::list(elem, simplify(&card)))
        }
        DefName::TreeFold(_) => {
            if args.len() != 2 {
                return Err(CostError::Unsupported("partially applied treeFold"));
            }
            let seed = &args[1];
            let card = seed.card().ok_or_else(wrong)?;
            match seed.elem().ok_or_else(wrong)? {
                Annot::List {
                    elem: inner,
                    card: inner_card,
                } => {
                    // Size-preserving aggregation (merge): all leaf elements
                    // survive into the single result list.
                    let total = simplify(&(card * inner_card.clone()));
                    Ok(Annot::list((**inner).clone(), total))
                }
                scalar => Ok(scalar.clone()),
            }
        }
        DefName::FuncPow(_) => Err(CostError::Unsupported(
            "funcPow outside unfoldR/treeFold context",
        )),
    }
}

/// Sizes `unfoldR(zip)` applied to a tuple of lists: cardinality is the
/// *minimum* of the inputs (zip stops at the first exhausted list).
pub fn zip_unfold_size(lists: &Annot) -> Result<Annot, CostError> {
    let Annot::Tuple(items) = lists else {
        return Err(CostError::BadShape { context: "zip" });
    };
    let mut card: Option<Sym> = None;
    let mut heads = Vec::with_capacity(items.len());
    for l in items {
        let c = l.card().ok_or(CostError::BadShape { context: "zip" })?;
        card = Some(match card {
            None => c,
            Some(prev) => {
                if prev == c {
                    prev
                } else {
                    prev.min(c)
                }
            }
        });
        heads.push(l.elem().cloned().unwrap_or(Annot::Zero));
    }
    Ok(Annot::list(
        Annot::Tuple(heads),
        simplify(&card.unwrap_or_else(Sym::zero)),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocal::parse;

    fn ctx_binary_join() -> SizeCtx {
        let mut gamma = BTreeMap::new();
        gamma.insert("R".into(), Annot::relation(Sym::var("x"), 1, 1));
        gamma.insert("S".into(), Annot::relation(Sym::var("y"), 1, 1));
        SizeCtx::new(gamma, 1)
    }

    #[test]
    fn figure4_result_sizes() {
        // The Figure 4 example: unary relations, Int size 1.
        let ctx = ctx_binary_join();
        let program = parse(
            "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
             if x == y then [<x, y>] else []",
        )
        .unwrap();
        let annot = result_size(&program, &ctx).unwrap();
        // [<1,1>]_{x·y}
        let expect = Annot::list(
            Annot::Tuple(vec![Annot::atom(1), Annot::atom(1)]),
            simplify(&(Sym::var("x") * Sym::var("y"))),
        );
        assert_eq!(annot, expect);
    }

    #[test]
    fn curried_application_binds_every_argument() {
        // ((λx. λy. <x, y>)(R))(S): sizing the innermost body must see
        // BOTH bindings. Regression test for the early return that bound
        // only the first spine argument and sized the remaining lambda
        // to an empty atom.
        let ctx = ctx_binary_join();
        let e = Expr::lam(
            "x",
            Expr::lam("y", Expr::tuple(vec![Expr::var("x"), Expr::var("y")])),
        )
        .app(Expr::var("R"))
        .app(Expr::var("S"));
        let annot = result_size(&e, &ctx).unwrap();
        let expect = Annot::Tuple(vec![
            Annot::relation(Sym::var("x"), 1, 1),
            Annot::relation(Sym::var("y"), 1, 1),
        ]);
        assert_eq!(annot, expect);
    }

    #[test]
    fn figure4_intermediate_rows() {
        let ctx = ctx_binary_join();
        // Row 4: for (y <- yB) ... with xB, yB, x in scope.
        let mut inner_ctx = ctx.clone();
        inner_ctx
            .gamma
            .insert("xB".into(), Annot::relation(Sym::var("k1"), 1, 1));
        inner_ctx
            .gamma
            .insert("yB".into(), Annot::relation(Sym::var("k2"), 1, 1));
        inner_ctx.gamma.insert("x".into(), Annot::atom(1));
        let row4 = parse("for (y <- yB) if x == y then [<x, y>] else []").unwrap();
        let annot = result_size(&row4, &inner_ctx).unwrap();
        let expect = Annot::list(
            Annot::Tuple(vec![Annot::atom(1), Annot::atom(1)]),
            Sym::var("k2"),
        );
        assert_eq!(annot, expect, "row 4 of Figure 4");
    }

    #[test]
    fn if_takes_worst_case() {
        let ctx = ctx_binary_join();
        let e = parse("if true then R else []").unwrap();
        let annot = result_size(&e, &ctx).unwrap();
        assert_eq!(annot, Annot::relation(Sym::var("x"), 1, 1));
    }

    #[test]
    fn union_adds() {
        let ctx = ctx_binary_join();
        let e = parse("R ++ S").unwrap();
        let annot = result_size(&e, &ctx).unwrap();
        assert_eq!(
            annot.card().unwrap(),
            simplify(&(Sym::var("x") + Sym::var("y")))
        );
    }

    #[test]
    fn fold_sum_is_scalar() {
        let ctx = ctx_binary_join();
        let e = parse("foldL(0, \\a. a.1 + a.2)(R)").unwrap();
        let annot = result_size(&e, &ctx).unwrap();
        assert_eq!(annot, Annot::atom(1));
    }

    #[test]
    fn fold_append_grows_linearly() {
        let ctx = ctx_binary_join();
        // foldL([], λa. a.1 ++ [a.2]) — the identity-ish accumulation.
        let e = parse("foldL([], \\a. a.1 ++ [a.2])(R)").unwrap();
        let annot = result_size(&e, &ctx).unwrap();
        assert_eq!(annot.card().unwrap(), Sym::var("x"));
    }

    #[test]
    fn insertion_sort_size() {
        // foldL([], unfoldR(mrg)) over [[Int]_1]_x yields [Int]_x.
        let mut gamma = BTreeMap::new();
        gamma.insert(
            "R".into(),
            Annot::list(Annot::list(Annot::atom(1), Sym::one()), Sym::var("x")),
        );
        let ctx = SizeCtx::new(gamma, 1);
        let e = parse("foldL([], unfoldR(mrg))(R)").unwrap();
        let annot = result_size(&e, &ctx).unwrap();
        assert_eq!(annot.card().unwrap(), Sym::var("x"));
    }

    #[test]
    fn treefold_merge_sort_size() {
        let mut gamma = BTreeMap::new();
        gamma.insert(
            "R".into(),
            Annot::list(Annot::list(Annot::atom(1), Sym::one()), Sym::var("x")),
        );
        let ctx = SizeCtx::new(gamma, 1);
        let e = parse("treeFold[4](<[], unfoldR(funcPow[2](mrg))>)(R)").unwrap();
        let annot = result_size(&e, &ctx).unwrap();
        assert_eq!(annot.card().unwrap(), Sym::var("x"));
    }

    #[test]
    fn hash_partition_buckets_size() {
        let ctx = ctx_binary_join();
        let e = parse("hashPartition[s1](R)").unwrap();
        let annot = result_size(&e, &ctx).unwrap();
        assert_eq!(annot.card().unwrap(), Sym::var("s1"));
        let bucket = annot.elem().unwrap();
        assert_eq!(
            bucket.card().unwrap(),
            simplify(&(Sym::var("x") / Sym::var("s1")).ceil())
        );
        // Total size is preserved up to the ceiling.
        let total = simplify(&annot.size());
        let expect = simplify(&(Sym::var("s1") * (Sym::var("x") / Sym::var("s1")).ceil()));
        assert_eq!(total, expect);
    }

    #[test]
    fn order_inputs_selector_gives_min_max() {
        let ctx = ctx_binary_join();
        let e = parse("if length(R) <= length(S) then <R, S> else <S, R>").unwrap();
        let annot = result_size(&e, &ctx).unwrap();
        let Annot::Tuple(items) = &annot else {
            panic!("expected pair, got {annot}");
        };
        let x = Sym::var("x");
        let y = Sym::var("y");
        assert_eq!(
            items[0].card().unwrap(),
            simplify(&x.clone().min(y.clone()))
        );
        assert_eq!(items[1].card().unwrap(), simplify(&x.max(y)));
    }

    #[test]
    fn sized_annotation_overrides() {
        let ctx = ctx_binary_join();
        let base = parse("R ++ S").unwrap();
        let e = base.sized(ocal::SizeHint::List(
            Box::new(ocal::SizeHint::Atom(1)),
            ocal::CardHint::Var("x".into()),
        ));
        let annot = result_size(&e, &ctx).unwrap();
        assert_eq!(annot.card().unwrap(), Sym::var("x"));
    }
}
