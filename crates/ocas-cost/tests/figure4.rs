//! Replays the paper's Figure 4: the per-edge event counts of a blocked
//! Block-Nested-Loops join over two unary `[Int]` relations (`Int` size 1)
//! on an HDD + RAM hierarchy, with output written back to the HDD.
//!
//! Expected totals (top row of the figure, which includes all sub-rows):
//!
//! | quantity              | value            |
//! |-----------------------|------------------|
//! | UnitTr HDD→RAM bytes  | `x + (x/k1)·y`   |
//! | UnitTr RAM→HDD bytes  | `2·x·y`          |
//! | InitCom HDD→RAM count | `x/k1 + x·y/(k1·k2)` |
//! | InitCom RAM→HDD count | `2·x·y/b_out`    |

use ocal::parse;
use ocas_cost::{Annot, CostEngine, Layout};
use ocas_hierarchy::{CostPair, DeviceKind, EdgeCosts, Hierarchy, NodeProps, Rat};
use ocas_symbolic::{simplify, Env, Expr as Sym};
use std::collections::BTreeMap;

/// HDD+RAM hierarchy with byte-granular pages so the figure's counts match
/// exactly (the paper's example ignores paging).
fn figure4_hierarchy() -> Hierarchy {
    let mut h = Hierarchy::new(NodeProps::new("RAM", 1 << 34, DeviceKind::Ram)).unwrap();
    h.add_child(
        "RAM",
        NodeProps::new("HDD", 1 << 40, DeviceKind::Hdd),
        EdgeCosts::symmetric(CostPair::new(
            Rat::millis(15),
            Rat::new(1, 30 * 1024 * 1024),
        )),
    )
    .unwrap();
    h
}

fn v(n: &str) -> Sym {
    Sym::var(n)
}

#[test]
fn figure4_event_counts() {
    let h = figure4_hierarchy();
    let program = parse(
        "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
         if x == y then [<x, y>] else []",
    )
    .unwrap();

    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(v("x"), 1, 1));
    annots.insert("S".to_string(), Annot::relation(v("y"), 1, 1));
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]).with_output("HDD");
    let stats = Env::new().with("x", 1000.0).with("y", 100.0);

    let engine = CostEngine::new(&h, &layout, annots, stats, 1).unwrap();
    let report = engine.cost(&program).unwrap();

    let ram = h.by_name("RAM").unwrap();
    let hdd = h.by_name("HDD").unwrap();

    let read = report.events.edge(hdd, ram);
    let write = report.events.edge(ram, hdd);

    let x = v("x");
    let y = v("y");
    let k1 = v("k1");
    let k2 = v("k2");

    assert_eq!(
        read.bytes,
        simplify(&(x.clone() + x.clone() * y.clone() / k1.clone())),
        "UnitTr HDD→RAM must be x + (x/k1)·y"
    );
    assert_eq!(
        read.init,
        simplify(&(x.clone() / k1.clone() + x.clone() * y.clone() / (k1.clone() * k2.clone()))),
        "InitCom HDD→RAM must be x/k1 + x·y/(k1·k2)"
    );
    assert_eq!(
        write.bytes,
        simplify(&(Sym::int(2) * x.clone() * y.clone())),
        "UnitTr RAM→HDD must be 2·x·y"
    );
    assert_eq!(
        write.init,
        simplify(&(Sym::int(2) * x.clone() * y.clone() / v("b_out"))),
        "InitCom RAM→HDD must be 2·x·y/b_out (the figure's k_o)"
    );

    // Result size matches the figure: [<1,1>]_{x·y}.
    assert_eq!(
        report.result.card().unwrap(),
        simplify(&(x.clone() * y.clone()))
    );
    // The RAM capacity constraint mentions both block parameters.
    let cap = report
        .constraints
        .iter()
        .find(|c| c.label.contains("RAM"))
        .expect("RAM capacity constraint");
    let vars = cap.lhs.vars();
    assert!(vars.contains("k1") && vars.contains("k2"), "{}", cap.lhs);
    assert!(report.params.contains("k1"));
    assert!(report.params.contains("b_out"));
}

#[test]
fn naive_join_charges_one_seek_per_tuple() {
    let h = figure4_hierarchy();
    let program = parse("for (x <- R) for (y <- S) if x == y then [<x, y>] else []").unwrap();
    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(v("x"), 1, 1));
    annots.insert("S".to_string(), Annot::relation(v("y"), 1, 1));
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);
    let stats = Env::new().with("x", 1000.0).with("y", 100.0);
    let engine = CostEngine::new(&h, &layout, annots, stats, 1).unwrap();
    let report = engine.cost(&program).unwrap();
    let ram = h.by_name("RAM").unwrap();
    let hdd = h.by_name("HDD").unwrap();
    let read = report.events.edge(hdd, ram);
    let x = v("x");
    let y = v("y");
    // One seek per tuple: x + x·y.
    assert_eq!(read.init, simplify(&(x.clone() + x.clone() * y.clone())));
    assert_eq!(read.bytes, simplify(&(x.clone() + x * y)));
    // No output events (consumed by the CPU).
    assert!(report.events.edge(ram, hdd).bytes.is_zero());
}

#[test]
fn seq_annotation_collapses_inner_scan_seeks() {
    let h = figure4_hierarchy();
    // The paper's derivation step: seq-ac on the inner loop over S.
    let program = parse(
        "for (xB [k1] <- R) for[HDD >> RAM] (yB [k2] <- S) for (x <- xB) for (y <- yB) \
         if x == y then [<x, y>] else []",
    )
    .unwrap();
    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(v("x"), 1, 1));
    annots.insert("S".to_string(), Annot::relation(v("y"), 1, 1));
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);
    let stats = Env::new().with("x", 1000.0).with("y", 100.0);
    let engine = CostEngine::new(&h, &layout, annots, stats, 1).unwrap();
    let report = engine.cost(&program).unwrap();
    let ram = h.by_name("RAM").unwrap();
    let hdd = h.by_name("HDD").unwrap();
    let read = report.events.edge(hdd, ram);
    // InitCom: x/k1 for R plus ONE per full sequential scan of S
    // (HDD has unlimited maxSeqR): x/k1 + x/k1 = 2·x/k1.
    let x = v("x");
    assert_eq!(
        read.init,
        simplify(&(Sym::int(2) * x / v("k1"))),
        "seq-ac must collapse the inner scan's seeks"
    );
}

#[test]
fn insertion_sort_cost_has_quadratic_closed_form() {
    // §7.2: foldL([], unfoldR(mrg)) over x singletons on disk costs
    // x·InitCom + x(x+1)/2·(UnitTr up + UnitTr down + InitCom down) — the
    // arithmetic engine must produce the closed form automatically.
    let h = figure4_hierarchy();
    let program = parse("foldL([], unfoldR(mrg))(R)").unwrap();
    let mut annots = BTreeMap::new();
    annots.insert(
        "R".to_string(),
        Annot::list(Annot::list(Annot::atom(1), Sym::one()), v("x")),
    );
    let layout = Layout::all_inputs_on("HDD", &["R"]);
    // Large x so the accumulator spills past RAM (2^34).
    let stats = Env::new().with("x", 3e10);
    let engine = CostEngine::new(&h, &layout, annots, stats, 1).unwrap();
    let report = engine.cost(&program).unwrap();
    let ram = h.by_name("RAM").unwrap();
    let hdd = h.by_name("HDD").unwrap();

    let x = v("x");
    let triangle = simplify(&(x.clone() * (x.clone() + Sym::one()) / Sym::int(2)));

    let write = report.events.edge(ram, hdd);
    assert_eq!(write.bytes, triangle, "accumulator write-back is x(x+1)/2");
    assert_eq!(write.init, triangle, "element-wise writes seek per element");

    let read = report.events.edge(hdd, ram);
    // x singleton reads plus the growing accumulator read-back.
    assert_eq!(
        read.bytes,
        simplify(&(x.clone() + triangle.clone())),
        "reads are x + x(x+1)/2"
    );
    assert_eq!(read.init, simplify(&x), "one seek per consumed element");
}

#[test]
fn external_merge_sort_cost_scales_with_levels() {
    // treeFold[2^k]([], unfoldR[bin,bout](funcPow[k](mrg))) over x singleton
    // runs: ⌈log₂(x)/k⌉ levels, each moving all bytes both ways.
    let h = figure4_hierarchy();
    let mut annots = BTreeMap::new();
    annots.insert(
        "R".to_string(),
        Annot::list(Annot::list(Annot::atom(1), Sym::one()), v("x")),
    );
    let layout = Layout::all_inputs_on("HDD", &["R"]);
    let stats = Env::new().with("x", 3e10);

    let cost_for_k = |k: u32| -> f64 {
        let m = 1u64 << k;
        let program = parse(&format!(
            "treeFold[{m}](<[], unfoldR[bin, bout](funcPow[{k}](mrg))>)(R)"
        ))
        .unwrap();
        let engine = CostEngine::new(&h, &layout, annots.clone(), stats.clone(), 1).unwrap();
        let report = engine.cost(&program).unwrap();
        let env = Env::new()
            .with("x", 1e9)
            .with("bin", 64.0 * 1024.0)
            .with("bout", 64.0 * 1024.0);
        ocas_symbolic::eval(&report.seconds, &env).unwrap()
    };

    let c1 = cost_for_k(1); // 2-way
    let c3 = cost_for_k(3); // 8-way
    let c5 = cost_for_k(5); // 32-way
    assert!(
        c1 > c3 && c3 > c5,
        "more merge ways fewer passes: {c1} > {c3} > {c5}"
    );
    // 2-way needs ~30 levels for 1e9 runs, 32-way needs 6: roughly 5x.
    let ratio = c1 / c5;
    assert!((4.0..6.5).contains(&ratio), "level ratio ≈ 5, got {ratio}");
}

#[test]
fn grace_hash_join_reads_data_twice() {
    // hash-part (§6.2): partition both relations, then join bucket pairs.
    // All data is read twice and written once in between.
    let h = figure4_hierarchy();
    let program = parse(
        "flatMap(\\q. for (x <- q.1) for (y <- q.2) if x == y then [<x, y>] else [])\
         (unfoldR(zip[2])(<hashPartition[s1](R), hashPartition[s1](S)>))",
    )
    .unwrap();
    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(v("x"), 1, 1));
    annots.insert("S".to_string(), Annot::relation(v("y"), 1, 1));
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);
    // Inputs far larger than RAM so partitions spill.
    let big = 1e12;
    let stats = Env::new().with("x", big).with("y", big / 8.0);
    let engine = CostEngine::new(&h, &layout, annots, stats, 1).unwrap();
    let report = engine.cost(&program).unwrap();

    let ram = h.by_name("RAM").unwrap();
    let hdd = h.by_name("HDD").unwrap();
    let read = report.events.edge(hdd, ram);
    let write = report.events.edge(ram, hdd);

    // Bytes read ≈ 2(x+y) (partitioning pass + join pass), written ≈ x+y.
    let env = Env::new()
        .with("x", big)
        .with("y", big / 8.0)
        .with("s1", 1024.0)
        .with("b_in", 1_048_576.0)
        .with("b_out", 1_048_576.0);
    let read_bytes = ocas_symbolic::eval(&read.bytes, &env).unwrap();
    let write_bytes = ocas_symbolic::eval(&write.bytes, &env).unwrap();
    let total = big + big / 8.0;
    assert!(
        (read_bytes / total - 2.0).abs() < 0.05,
        "read ≈ 2(x+y), got {read_bytes} vs {total}"
    );
    assert!(
        (write_bytes / total - 1.0).abs() < 0.05,
        "write ≈ (x+y), got {write_bytes} vs {total}"
    );

    // A capacity constraint must force bucket pairs to fit in RAM.
    assert!(
        report
            .constraints
            .iter()
            .any(|c| c.lhs.vars().contains("s1")),
        "expected a constraint mentioning s1: {:?}",
        report.constraints
    );
}

#[test]
fn column_store_read_is_one_sequential_pass() {
    let h = figure4_hierarchy();
    let program = parse("unfoldR[bin, bout](zip[2])(<C1, C2>)").unwrap();
    let mut annots = BTreeMap::new();
    annots.insert("C1".to_string(), Annot::relation(v("n"), 1, 1));
    annots.insert("C2".to_string(), Annot::relation(v("n"), 1, 1));
    let layout = Layout::all_inputs_on("HDD", &["C1", "C2"]);
    let stats = Env::new().with("n", 1e9);
    let engine = CostEngine::new(&h, &layout, annots, stats, 1).unwrap();
    let report = engine.cost(&program).unwrap();
    let ram = h.by_name("RAM").unwrap();
    let hdd = h.by_name("HDD").unwrap();
    let read = report.events.edge(hdd, ram);
    let n = v("n");
    assert_eq!(read.bytes, simplify(&(Sym::int(2) * n.clone())));
    assert_eq!(
        read.init,
        simplify(&(Sym::int(2) * n / v("bin"))),
        "blocked reads of both columns"
    );
    // Result: [<1,1>]_n.
    assert_eq!(report.result.card().unwrap(), v("n"));
}

/// Curried-application regression for the event analysis (the companion of
/// `app_size`'s fix in `size.rs`): a fully-applied curried wrapper
/// `((λa. λb. body)(R))(S)` must cost exactly like the unwrapped body —
/// `cost_app_lam` binds every spine argument, not just the first.
#[test]
fn curried_wrapper_costs_like_the_unwrapped_body() {
    let h = figure4_hierarchy();
    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(v("x"), 1, 1));
    annots.insert("S".to_string(), Annot::relation(v("y"), 1, 1));
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);
    let stats = Env::new().with("x", 1000.0).with("y", 100.0);
    let engine = CostEngine::new(&h, &layout, annots, stats, 1).unwrap();

    let plain = parse(
        "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
         if x == y then [<x, y>] else []",
    )
    .unwrap();
    let curried = parse(
        "((\\a. \\b. for (xB [k1] <- a) for (yB [k2] <- b) for (x <- xB) for (y <- yB) \
         if x == y then [<x, y>] else [])(R))(S)",
    )
    .unwrap();

    let plain_report = engine.cost(&plain).unwrap();
    let curried_report = engine.cost(&curried).unwrap();
    let ram = h.by_name("RAM").unwrap();
    let hdd = h.by_name("HDD").unwrap();
    assert_eq!(
        plain_report.events.edge(hdd, ram).bytes,
        curried_report.events.edge(hdd, ram).bytes,
        "curried wrapper must not change the read bytes"
    );
    assert_eq!(
        plain_report.events.edge(hdd, ram).init,
        curried_report.events.edge(hdd, ram).init,
    );
    assert_eq!(plain_report.seconds, curried_report.seconds);
}
