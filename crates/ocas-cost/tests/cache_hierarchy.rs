//! Three-level (Cache ← RAM ← HDD) costing: the loop-tiling experiment's
//! cost-model side. A doubly-blocked join must charge events on *both*
//! edges, and increasing the inner tile size must reduce the RAM→Cache
//! initiation count — the signal that makes the synthesizer tile.

use ocal::parse;
use ocas_cost::{Annot, CostEngine, Layout};
use ocas_hierarchy::presets;
use ocas_symbolic::{eval, Env, Expr as Sym};
use std::collections::BTreeMap;

fn engine_report(program: &str) -> (ocas_cost::CostReport, ocas_hierarchy::Hierarchy) {
    let h = presets::hdd_ram_cache(8 << 20);
    let p = parse(program).unwrap();
    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(Sym::var("x"), 2, 8));
    annots.insert("S".to_string(), Annot::relation(Sym::var("y"), 2, 8));
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);
    let stats = Env::new().with("x", 1e7).with("y", 1e5);
    let engine = CostEngine::new(&h, &layout, annots, stats, 8).unwrap();
    let report = engine.cost(&p).unwrap();
    (report, h)
}

#[test]
fn tiled_join_charges_both_edges() {
    let (report, h) = engine_report(
        "for (xB [k1] <- R) for (yB [k2] <- S) for (xT [k3] <- xB) for (yT [k4] <- yB) \
         for (x <- xT) for (y <- yT) if x.1 == y.1 then [<x, y>] else []",
    );
    let hdd = h.by_name("HDD").unwrap();
    let ram = h.by_name("RAM").unwrap();
    let cache = h.by_name("Cache").unwrap();
    let disk = report.events.edge(hdd, ram);
    let upper = report.events.edge(ram, cache);
    assert!(!disk.init.is_zero(), "HDD→RAM events missing");
    assert!(!upper.init.is_zero(), "RAM→Cache events missing");
    // The RAM→Cache initiations shrink with the tile sizes k3/k4.
    let base = Env::new()
        .with("x", 1e7)
        .with("y", 1e5)
        .with("k1", 65536.0)
        .with("k2", 65536.0);
    let small = eval(&upper.init, &base.clone().with("k3", 8.0).with("k4", 8.0)).unwrap();
    let large = eval(&upper.init, &base.with("k3", 512.0).with("k4", 512.0)).unwrap();
    assert!(
        large < small / 10.0,
        "bigger tiles must cut cache initiations: {small} -> {large}"
    );
}

#[test]
fn untiled_join_pays_per_element_cache_initiations() {
    let (report, h) = engine_report(
        "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
         if x.1 == y.1 then [<x, y>] else []",
    );
    let ram = h.by_name("RAM").unwrap();
    let cache = h.by_name("Cache").unwrap();
    let upper = report.events.edge(ram, cache);
    // Element-at-a-time consumption of the RAM-resident blocks: the inner
    // loops charge k per execution — the tiled program beats this.
    let env = Env::new()
        .with("x", 1e7)
        .with("y", 1e5)
        .with("k1", 65536.0)
        .with("k2", 65536.0);
    let untiled = eval(&upper.init, &env).unwrap();
    assert!(
        untiled > 1e6,
        "expected heavy per-element initiations, got {untiled}"
    );
}

#[test]
fn capacity_constraints_cover_both_levels() {
    let (report, _) = engine_report(
        "for (xB [k1] <- R) for (yB [k2] <- S) for (xT [k3] <- xB) for (yT [k4] <- yB) \
         for (x <- xT) for (y <- yT) if x.1 == y.1 then [<x, y>] else []",
    );
    let labels: Vec<&str> = report
        .constraints
        .iter()
        .map(|c| c.label.as_str())
        .collect();
    assert!(
        labels.iter().any(|l| l.contains("RAM")),
        "RAM constraint missing: {labels:?}"
    );
    assert!(
        labels.iter().any(|l| l.contains("Cache")),
        "Cache constraint missing: {labels:?}"
    );
    // k3/k4 participate in the Cache capacity constraint.
    let cache_c = report
        .constraints
        .iter()
        .find(|c| c.label.contains("Cache"))
        .unwrap();
    let vars = cache_c.lhs.vars();
    assert!(
        vars.contains("k3") && vars.contains("k4"),
        "tile sizes must be capacity-bounded: {}",
        cache_c.lhs
    );
}
