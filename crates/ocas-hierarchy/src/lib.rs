//! Memory & storage model for OCAS (paper §4, Figures 3 and 7).
//!
//! A memory hierarchy is a **tree** whose nodes are hardware components able
//! to store data and whose edges represent the ability to transfer data
//! between adjacent components. The root is the fastest level — the only one
//! the (single) processing unit can compute on. Each node carries the
//! properties of Figure 3 (`size`, `pagesize`, `maxSeqR`, `maxSeqW`); each
//! edge carries two directional cost metrics:
//!
//! * **InitCom** — the cost of initiating a transfer (a *seek* for hard
//!   disks, an *erase* for flash),
//! * **UnitTr** — the cost of transferring one byte.
//!
//! Costs are exact rationals in seconds (resp. seconds/byte), so the cost
//! estimator can simplify formulas deterministically.
//!
//! [`presets`] reproduces every hierarchy used in the paper's evaluation
//! with the constants of Figure 7.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

mod rat;

pub use rat::Rat;

/// Identifies a node within a [`Hierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// What kind of hardware a node models; drives the behaviour of the storage
/// simulator (seek modelling for disks, erase blocks for flash, line-grain
/// miss counting for caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Random-access memory: no positional state.
    Ram,
    /// Rotating disk: sequential access is cheap, moving the head costs a
    /// full `InitCom` (seek).
    Hdd,
    /// Flash/SSD: random reads are cheap; writes must erase a block first
    /// (`InitCom` per erase, with `maxSeqW` bytes writable per erase).
    Flash,
    /// CPU cache: set-associative, line-granular.
    Cache,
}

/// Per-node properties (paper Figure 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeProps {
    /// Device name used in programs' sequentiality annotations (`HDD`, `RAM`).
    pub name: String,
    /// Capacity in bytes. Must be positive.
    pub size: u64,
    /// Access granularity in bytes; `1` means byte-addressable.
    pub pagesize: u64,
    /// Maximum bytes readable with a single I/O request (`None` = unlimited).
    pub max_seq_read: Option<u64>,
    /// Maximum bytes writable with a single I/O request (`None` = unlimited).
    /// For flash drives this equals the erase-block size.
    pub max_seq_write: Option<u64>,
    /// Device kind for the simulator.
    pub kind: DeviceKind,
}

impl NodeProps {
    /// Convenience constructor with byte-addressable, unlimited-sequence
    /// defaults.
    pub fn new(name: impl Into<String>, size: u64, kind: DeviceKind) -> NodeProps {
        NodeProps {
            name: name.into(),
            size,
            pagesize: 1,
            max_seq_read: None,
            max_seq_write: None,
            kind,
        }
    }

    /// Sets the page size, builder style.
    pub fn with_pagesize(mut self, pagesize: u64) -> NodeProps {
        self.pagesize = pagesize;
        self
    }

    /// Sets the maximum read-sequence length, builder style.
    pub fn with_max_seq_read(mut self, bytes: u64) -> NodeProps {
        self.max_seq_read = Some(bytes);
        self
    }

    /// Sets the maximum write-sequence length, builder style.
    pub fn with_max_seq_write(mut self, bytes: u64) -> NodeProps {
        self.max_seq_write = Some(bytes);
        self
    }
}

/// One direction of an edge's costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostPair {
    /// Seconds to initiate one transfer.
    pub init_com: Rat,
    /// Seconds per byte transferred.
    pub unit_tr: Rat,
}

impl CostPair {
    /// A zero-cost direction (the paper: "costs not included are assumed to
    /// be zero").
    pub const FREE: CostPair = CostPair {
        init_com: Rat::ZERO,
        unit_tr: Rat::ZERO,
    };

    /// Builds a cost pair.
    pub fn new(init_com: Rat, unit_tr: Rat) -> CostPair {
        CostPair { init_com, unit_tr }
    }
}

/// Costs of the edge between a node and its parent, in both directions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeCosts {
    /// Child → parent (toward the root; e.g. `HDD → RAM`).
    pub up: CostPair,
    /// Parent → child (away from the root; e.g. `RAM → HDD`).
    pub down: CostPair,
}

impl EdgeCosts {
    /// Symmetric costs in both directions.
    pub fn symmetric(pair: CostPair) -> EdgeCosts {
        EdgeCosts {
            up: pair,
            down: pair,
        }
    }
}

/// Errors building or querying a hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierarchyError {
    /// Node name already used.
    DuplicateName(String),
    /// Referenced node does not exist.
    UnknownNode(String),
    /// A node property is invalid (zero size, zero pagesize, …).
    InvalidProps {
        /// Node name.
        node: String,
        /// What is wrong.
        reason: String,
    },
    /// The two nodes are not adjacent in the tree.
    NotAdjacent(String, String),
}

impl fmt::Display for HierarchyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HierarchyError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            HierarchyError::UnknownNode(n) => write!(f, "unknown node `{n}`"),
            HierarchyError::InvalidProps { node, reason } => {
                write!(f, "invalid properties for `{node}`: {reason}")
            }
            HierarchyError::NotAdjacent(a, b) => {
                write!(f, "nodes `{a}` and `{b}` are not adjacent")
            }
        }
    }
}

impl std::error::Error for HierarchyError {}

/// A tree-shaped memory hierarchy.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    nodes: Vec<NodeProps>,
    parents: Vec<Option<(NodeId, EdgeCosts)>>,
}

impl Hierarchy {
    /// Creates a hierarchy whose root is the given (fastest) node.
    pub fn new(root: NodeProps) -> Result<Hierarchy, HierarchyError> {
        validate_props(&root)?;
        Ok(Hierarchy {
            nodes: vec![root],
            parents: vec![None],
        })
    }

    /// Adds a child below `parent`, connected with `costs`.
    pub fn add_child(
        &mut self,
        parent: &str,
        props: NodeProps,
        costs: EdgeCosts,
    ) -> Result<NodeId, HierarchyError> {
        validate_props(&props)?;
        if self.by_name(&props.name).is_some() {
            return Err(HierarchyError::DuplicateName(props.name));
        }
        let parent_id = self
            .by_name(parent)
            .ok_or_else(|| HierarchyError::UnknownNode(parent.to_string()))?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(props);
        self.parents.push(Some((parent_id, costs)));
        Ok(id)
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Node properties by id.
    pub fn node(&self, id: NodeId) -> &NodeProps {
        &self.nodes[id.0]
    }

    /// Looks a node up by name.
    pub fn by_name(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the hierarchy has only a root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Iterates over all node ids.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId)
    }

    /// The parent of a node (`None` for the root).
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.parents[id.0].as_ref().map(|(p, _)| *p)
    }

    /// Direct children of a node.
    pub fn children(&self, id: NodeId) -> Vec<NodeId> {
        self.parents
            .iter()
            .enumerate()
            .filter_map(|(i, p)| match p {
                Some((parent, _)) if *parent == id => Some(NodeId(i)),
                _ => None,
            })
            .collect()
    }

    /// Depth of a node (root = 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            cur = p;
            d += 1;
        }
        d
    }

    /// The path from `id` up to the root, inclusive on both ends.
    pub fn path_to_root(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = vec![id];
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    /// Transfer costs for the directed adjacent move `from → to`.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Result<CostPair, HierarchyError> {
        if let Some((p, costs)) = &self.parents[from.0] {
            if *p == to {
                return Ok(costs.up);
            }
        }
        if let Some((p, costs)) = &self.parents[to.0] {
            if *p == from {
                return Ok(costs.down);
            }
        }
        Err(HierarchyError::NotAdjacent(
            self.node(from).name.clone(),
            self.node(to).name.clone(),
        ))
    }

    /// `InitCom[from → to]` in seconds for adjacent nodes.
    pub fn init_com(&self, from: NodeId, to: NodeId) -> Result<Rat, HierarchyError> {
        Ok(self.edge(from, to)?.init_com)
    }

    /// `UnitTr[from → to]` in seconds per byte for adjacent nodes.
    pub fn unit_tr(&self, from: NodeId, to: NodeId) -> Result<Rat, HierarchyError> {
        Ok(self.edge(from, to)?.unit_tr)
    }

    /// All storage (non-root) nodes.
    pub fn storage_nodes(&self) -> Vec<NodeId> {
        self.ids().filter(|id| *id != self.root()).collect()
    }
}

fn validate_props(p: &NodeProps) -> Result<(), HierarchyError> {
    let err = |reason: &str| HierarchyError::InvalidProps {
        node: p.name.clone(),
        reason: reason.to_string(),
    };
    if p.name.is_empty() {
        return Err(err("empty name"));
    }
    if p.size == 0 {
        return Err(err("size must be positive"));
    }
    if p.pagesize == 0 {
        return Err(err("pagesize must be positive"));
    }
    if let Some(m) = p.max_seq_read {
        if m == 0 {
            return Err(err("maxSeqR must be positive when set"));
        }
    }
    if let Some(m) = p.max_seq_write {
        if m == 0 {
            return Err(err("maxSeqW must be positive when set"));
        }
    }
    Ok(())
}

pub mod presets {
    //! The hierarchies of the paper's evaluation with the Figure 7 constants:
    //!
    //! ```text
    //! Hard disk:   size 1T,  pagesize 4K
    //! Flash drive: size 512G, maxSeqW = 256K
    //! Cache:       size 3M,  pagesize 512B
    //! InitCom[HDD ↔ RAM] = 15 ms       UnitTr[HDD ↔ RAM] = 1 s / 30 MiB
    //! InitCom[RAM → SSD] = 1.7 ms      UnitTr[SSD ↔ RAM] = 1 s / 120 MiB
    //! InitCom[RAM → Cache] = 0.1 ms
    //! ```
    //!
    //! Costs not listed are zero, as in the paper.

    use super::*;

    const KIB: u64 = 1024;
    const MIB: u64 = 1024 * KIB;
    const GIB: u64 = 1024 * MIB;
    const TIB: u64 = 1024 * GIB;

    /// Hard-disk properties of Figure 7.
    pub fn hdd_props(name: &str) -> NodeProps {
        NodeProps::new(name, TIB, DeviceKind::Hdd).with_pagesize(4 * KIB)
    }

    /// Flash-drive properties of Figure 7 (erase block = `maxSeqW` = 256 KiB).
    pub fn flash_props(name: &str) -> NodeProps {
        NodeProps::new(name, 512 * GIB, DeviceKind::Flash).with_max_seq_write(256 * KIB)
    }

    /// Cache properties of Figure 7.
    pub fn cache_props(name: &str) -> NodeProps {
        NodeProps::new(name, 3 * MIB, DeviceKind::Cache).with_pagesize(512)
    }

    /// RAM with a given capacity ("total buffer" column of Table 1).
    pub fn ram_props(name: &str, size: u64) -> NodeProps {
        NodeProps::new(name, size, DeviceKind::Ram)
    }

    /// `InitCom[HDD↔RAM] = 15 ms`, `UnitTr = 1 s / 30 MiB`, symmetric.
    pub fn hdd_edge() -> EdgeCosts {
        EdgeCosts::symmetric(CostPair::new(
            Rat::millis(15),
            Rat::per_bytes_of_second(30 * MIB as i128),
        ))
    }

    /// Flash edge: reads are free to initiate (no seek); writes pay the
    /// 1.7 ms erase; both directions move 120 MiB/s.
    pub fn flash_edge() -> EdgeCosts {
        let unit = Rat::per_bytes_of_second(120 * MIB as i128);
        EdgeCosts {
            up: CostPair::new(Rat::ZERO, unit),
            down: CostPair::new(Rat::new(17, 10_000), unit),
        }
    }

    /// Cache edge: `InitCom[RAM → Cache] = 0.1 ms`, transfers free.
    pub fn cache_edge() -> EdgeCosts {
        EdgeCosts {
            up: CostPair::FREE,
            down: CostPair::new(Rat::new(1, 10_000), Rat::ZERO),
        }
    }

    /// RAM (root) with a single HDD below — the hierarchy of Example 1 and
    /// of the BNL/GRACE/sort rows of Table 1.
    pub fn hdd_ram(ram_size: u64) -> Hierarchy {
        let mut h = Hierarchy::new(ram_props("RAM", ram_size)).expect("valid root");
        h.add_child("RAM", hdd_props("HDD"), hdd_edge())
            .expect("valid child");
        h
    }

    /// Cache-extended hierarchy: Cache (root) ← RAM ← HDD, used by the
    /// "BNL with cache" row (loop tiling).
    pub fn hdd_ram_cache(ram_size: u64) -> Hierarchy {
        let mut h = Hierarchy::new(cache_props("Cache")).expect("valid root");
        h.add_child("Cache", ram_props("RAM", ram_size), cache_edge())
            .expect("valid child");
        h.add_child("RAM", hdd_props("HDD"), hdd_edge())
            .expect("valid child");
        h
    }

    /// RAM with two independent hard disks (reads from one, writes to the
    /// other) — the "BNL wr. to other HDD" row.
    pub fn two_hdd_ram(ram_size: u64) -> Hierarchy {
        let mut h = Hierarchy::new(ram_props("RAM", ram_size)).expect("valid root");
        h.add_child("RAM", hdd_props("HDD"), hdd_edge())
            .expect("valid child");
        h.add_child("RAM", hdd_props("HDD2"), hdd_edge())
            .expect("valid child");
        h
    }

    /// RAM with a hard disk (input) and a flash drive (output) — the
    /// "BNL writing to flash" row.
    pub fn hdd_flash_ram(ram_size: u64) -> Hierarchy {
        let mut h = Hierarchy::new(ram_props("RAM", ram_size)).expect("valid root");
        h.add_child("RAM", hdd_props("HDD"), hdd_edge())
            .expect("valid child");
        h.add_child("RAM", flash_props("SSD"), flash_edge())
            .expect("valid child");
        h
    }

    /// The full experimental platform of Figure 7 (HDD + SSD + cache) —
    /// not used directly by any single Table 1 row but handy for examples.
    pub fn paper_platform(ram_size: u64) -> Hierarchy {
        let mut h = Hierarchy::new(cache_props("Cache")).expect("valid root");
        h.add_child("Cache", ram_props("RAM", ram_size), cache_edge())
            .expect("valid child");
        h.add_child("RAM", hdd_props("HDD"), hdd_edge())
            .expect("valid child");
        h.add_child("RAM", flash_props("SSD"), flash_edge())
            .expect("valid child");
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_constants() {
        let h = presets::hdd_ram(32 * 1024 * 1024);
        let ram = h.by_name("RAM").unwrap();
        let hdd = h.by_name("HDD").unwrap();
        assert_eq!(h.init_com(hdd, ram).unwrap(), Rat::new(3, 200)); // 15 ms
        assert_eq!(h.init_com(ram, hdd).unwrap(), Rat::new(3, 200));
        assert_eq!(h.unit_tr(hdd, ram).unwrap(), Rat::new(1, 30 * 1024 * 1024));
        assert_eq!(h.node(hdd).pagesize, 4096);
        assert_eq!(h.node(hdd).size, 1 << 40);
    }

    #[test]
    fn flash_reads_free_writes_erase() {
        let h = presets::hdd_flash_ram(1 << 28);
        let ram = h.by_name("RAM").unwrap();
        let ssd = h.by_name("SSD").unwrap();
        assert!(h.init_com(ssd, ram).unwrap().is_zero());
        assert_eq!(h.init_com(ram, ssd).unwrap(), Rat::new(17, 10_000));
        assert_eq!(h.node(ssd).max_seq_write, Some(256 * 1024));
    }

    #[test]
    fn cache_hierarchy_shape() {
        let h = presets::hdd_ram_cache(1 << 25);
        let cache = h.by_name("Cache").unwrap();
        let ram = h.by_name("RAM").unwrap();
        let hdd = h.by_name("HDD").unwrap();
        assert_eq!(h.root(), cache);
        assert_eq!(h.parent(ram), Some(cache));
        assert_eq!(h.parent(hdd), Some(ram));
        assert_eq!(h.depth(hdd), 2);
        assert_eq!(h.path_to_root(hdd), vec![hdd, ram, cache]);
        assert_eq!(h.node(cache).pagesize, 512);
        assert_eq!(h.node(cache).size, 3 * 1024 * 1024);
    }

    #[test]
    fn adjacency_is_enforced() {
        let h = presets::hdd_ram_cache(1 << 25);
        let cache = h.by_name("Cache").unwrap();
        let hdd = h.by_name("HDD").unwrap();
        assert!(matches!(
            h.edge(hdd, cache),
            Err(HierarchyError::NotAdjacent(_, _))
        ));
    }

    #[test]
    fn two_hdds_are_siblings() {
        let h = presets::two_hdd_ram(1 << 28);
        let ram = h.by_name("RAM").unwrap();
        let kids = h.children(ram);
        assert_eq!(kids.len(), 2);
        assert_eq!(h.storage_nodes().len(), 2);
    }

    #[test]
    fn builder_validation() {
        assert!(Hierarchy::new(NodeProps::new("", 10, DeviceKind::Ram)).is_err());
        assert!(Hierarchy::new(NodeProps::new("X", 0, DeviceKind::Ram)).is_err());
        let mut h = Hierarchy::new(NodeProps::new("RAM", 10, DeviceKind::Ram)).unwrap();
        assert!(matches!(
            h.add_child("nope", presets::hdd_props("HDD"), presets::hdd_edge()),
            Err(HierarchyError::UnknownNode(_))
        ));
        h.add_child("RAM", presets::hdd_props("HDD"), presets::hdd_edge())
            .unwrap();
        assert!(matches!(
            h.add_child("RAM", presets::hdd_props("HDD"), presets::hdd_edge()),
            Err(HierarchyError::DuplicateName(_))
        ));
    }

    #[test]
    fn rational_constants_are_exact() {
        // 1 GiB over the HDD edge: 1024/30 s = 512/15 s ≈ 34.13 s.
        let unit = Rat::per_bytes_of_second(30 * 1024 * 1024);
        let total = unit * Rat::new(1 << 30, 1);
        assert_eq!(total, Rat::new(512, 15));
        assert!((total.to_f64() - 34.1333).abs() < 1e-3);
    }
}
