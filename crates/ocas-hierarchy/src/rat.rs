//! Exact rational cost constants.
//!
//! The hierarchy crate sits below `ocas-symbolic` in the dependency graph,
//! so it carries its own minimal rational type; the cost estimator converts
//! these constants into its symbolic representation losslessly via
//! `num()`/`den()`.

use std::fmt;
use std::ops::{Add, Mul};

/// An exact non-negative rational number of seconds (or seconds/byte).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Rat {
    num: i128,
    den: i128,
}

fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// Zero seconds.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };

    /// Builds `num/den` seconds.
    ///
    /// # Panics
    /// Panics if `den == 0` or the value is negative.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        let r = Rat {
            num: sign * num / g,
            den: sign * den / g,
        };
        assert!(r.num >= 0, "cost constants must be non-negative");
        r
    }

    /// Milliseconds constructor: `Rat::millis(15)` is 15 ms.
    pub fn millis(ms: i128) -> Rat {
        Rat::new(ms, 1000)
    }

    /// `1 second / bytes` — a transfer rate expressed as s/byte.
    pub fn per_bytes_of_second(bytes: i128) -> Rat {
        Rat::new(1, bytes)
    }

    /// Numerator.
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator (positive).
    pub fn den(self) -> i128 {
        self.den
    }

    /// True if zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// Lossy conversion for numeric work.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        Rat::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rat::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Rat::millis(15), Rat::new(3, 200));
        assert_eq!(Rat::per_bytes_of_second(4), Rat::new(1, 4));
        assert!(Rat::ZERO.is_zero());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        let _ = Rat::new(-1, 2);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(Rat::new(1, 2) + Rat::new(1, 3), Rat::new(5, 6));
        assert_eq!(Rat::new(2, 3) * Rat::new(3, 4), Rat::new(1, 2));
    }
}
