//! Non-linear parameter optimization for OCAS.
//!
//! The cost estimator characterizes a candidate program's running time as a
//! possibly non-linear function of block and buffer sizes (`k1`, `k2`,
//! `b_in`, `b_out`, `s1`, …) subject to capacity constraints (paper §1:
//! "We have also implemented the non-linear optimization solver described in
//! [19] (Liuzzi, Lucidi, Sciandrone) to tune the values of parameters so as
//! to minimize the cost estimate").
//!
//! This crate implements that scheme as a **sequential-penalty,
//! derivative-free pattern search**:
//!
//! 1. constraints `g(x) ≤ 0` are folded into a penalized objective
//!    `f(x) + (1/ε)·Σ max(0, g(x)/scale)`;
//! 2. an inner coordinate/pattern search minimizes the penalized objective
//!    in *log₂ space* (parameters are positive and span many orders of
//!    magnitude), halving steps on failure;
//! 3. the penalty parameter `ε` is reduced and the search restarted from the
//!    incumbent until the iterate is feasible and the step small;
//! 4. the result is rounded to integers, repairing feasibility downward.
//!
//! A simple [`ladder_search`] (powers of two, exhaustive per coordinate) is
//! provided as the ablation baseline the paper's "maximize k" heuristic
//! corresponds to.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ocas_symbolic::{eval, Env, Expr as Sym};
use std::collections::BTreeMap;
use std::fmt;

/// One tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSpec {
    /// Parameter name as it appears in the objective.
    pub name: String,
    /// Lower bound (inclusive), usually 1.
    pub lo: f64,
    /// Upper bound (inclusive); defaults to 2⁴⁰ when absent.
    pub hi: Option<f64>,
}

impl ParamSpec {
    /// A parameter in `[1, hi]`.
    pub fn new(name: impl Into<String>, hi: Option<f64>) -> ParamSpec {
        ParamSpec {
            name: name.into(),
            lo: 1.0,
            hi,
        }
    }

    fn hi(&self) -> f64 {
        self.hi.unwrap_or(2f64.powi(40))
    }
}

/// A constrained minimization problem over positive parameters.
#[derive(Debug, Clone)]
pub struct Problem {
    /// Objective (seconds) as a symbolic expression.
    pub objective: Sym,
    /// The decision variables.
    pub params: Vec<ParamSpec>,
    /// Constraints `lhs ≤ rhs`.
    pub constraints: Vec<(Sym, Sym)>,
    /// Fixed variables (input cardinalities).
    pub fixed: Env,
}

/// Result of an optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimum {
    /// Chosen parameter values (integral).
    pub values: BTreeMap<String, u64>,
    /// Objective at the optimum.
    pub objective: f64,
    /// Whether all constraints hold at the returned point.
    pub feasible: bool,
    /// Number of objective evaluations spent.
    pub evals: u64,
}

/// Optimization failures.
#[derive(Debug, Clone, PartialEq)]
pub enum OptError {
    /// The objective could not be evaluated at any probed point.
    Unevaluable(String),
    /// No feasible point was found.
    Infeasible,
}

impl fmt::Display for OptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptError::Unevaluable(v) => {
                write!(f, "objective not evaluable (first failure: {v})")
            }
            OptError::Infeasible => write!(f, "no feasible parameter assignment found"),
        }
    }
}

impl std::error::Error for OptError {}

struct Evaluator<'p> {
    problem: &'p Problem,
    evals: u64,
    first_error: Option<String>,
}

impl<'p> Evaluator<'p> {
    fn env(&self, x: &[f64]) -> Env {
        let mut env = self.problem.fixed.clone();
        for (spec, v) in self.problem.params.iter().zip(x) {
            env.set(spec.name.clone(), *v);
        }
        env
    }

    fn objective(&mut self, x: &[f64]) -> Option<f64> {
        self.evals += 1;
        let env = self.env(x);
        match eval(&self.problem.objective, &env) {
            Ok(v) if v.is_finite() => Some(v),
            Ok(_) => None,
            Err(e) => {
                if self.first_error.is_none() {
                    self.first_error = Some(e.to_string());
                }
                None
            }
        }
    }

    /// Total relative violation `Σ max(0, (lhs−rhs)/max(rhs,1))`.
    fn violation(&mut self, x: &[f64]) -> Option<f64> {
        let env = self.env(x);
        let mut total = 0.0;
        for (lhs, rhs) in &self.problem.constraints {
            let l = eval(lhs, &env).ok()?;
            let r = eval(rhs, &env).ok()?;
            let scale = r.abs().max(1.0);
            total += ((l - r) / scale).max(0.0);
        }
        Some(total)
    }

    fn penalized(&mut self, x: &[f64], inv_eps: f64) -> Option<f64> {
        let f = self.objective(x)?;
        let v = self.violation(x)?;
        Some(f + inv_eps * v * f.abs().max(1.0))
    }
}

/// Clamps each coordinate into its box.
fn clamp(x: &mut [f64], params: &[ParamSpec]) {
    for (v, p) in x.iter_mut().zip(params) {
        *v = v.max(p.lo).min(p.hi());
    }
}

/// Pattern (coordinate) search in log₂ space.
fn pattern_search(ev: &mut Evaluator<'_>, start: &[f64], inv_eps: f64, max_iters: u32) -> Vec<f64> {
    let params: Vec<ParamSpec> = ev.problem.params.clone();
    let mut x: Vec<f64> = start.to_vec();
    clamp(&mut x, &params);
    let mut best = ev.penalized(&x, inv_eps).unwrap_or(f64::INFINITY);
    let mut step = 4.0; // log₂ step: ×16 moves initially.
    let mut iters = 0;
    while step > 0.01 && iters < max_iters {
        iters += 1;
        let mut improved = false;
        for i in 0..x.len() {
            for dir in [step, -step] {
                let mut cand = x.clone();
                cand[i] = (cand[i].max(1e-9).log2() + dir).exp2();
                clamp(&mut cand, &params);
                if (cand[i] - x[i]).abs() < f64::EPSILON {
                    continue;
                }
                if let Some(val) = ev.penalized(&cand, inv_eps) {
                    if val < best {
                        best = val;
                        x = cand;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            step /= 2.0;
        }
    }
    x
}

/// Sequential-penalty derivative-free minimization.
pub fn optimize(problem: &Problem) -> Result<Optimum, OptError> {
    if problem.params.is_empty() {
        let env = problem.fixed.clone();
        let objective =
            eval(&problem.objective, &env).map_err(|e| OptError::Unevaluable(e.to_string()))?;
        return Ok(Optimum {
            values: BTreeMap::new(),
            objective,
            feasible: true,
            evals: 1,
        });
    }
    let mut ev = Evaluator {
        problem,
        evals: 0,
        first_error: None,
    };
    let n = problem.params.len();

    // Multi-start: geometric low / mid / high points.
    let starts: Vec<Vec<f64>> = vec![
        problem.params.iter().map(|p| p.lo.max(1.0)).collect(),
        problem
            .params
            .iter()
            .map(|p| (p.lo.max(1.0) * p.hi()).sqrt())
            .collect(),
        problem.params.iter().map(|p| p.hi()).collect(),
        problem
            .params
            .iter()
            .map(|p| (p.hi() / (n as f64 + 1.0)).max(p.lo))
            .collect(),
    ];

    let mut incumbent: Option<(Vec<f64>, f64)> = None;
    for start in &starts {
        // Sequential penalty: tighten ε across outer iterations.
        let mut x = start.clone();
        for inv_eps in [1e2, 1e4, 1e6, 1e9] {
            x = pattern_search(&mut ev, &x, inv_eps, 200);
        }
        let feas = ev.violation(&x).is_some_and(|v| v <= 1e-9);
        if let Some(obj) = ev.objective(&x) {
            let score = if feas { obj } else { f64::INFINITY };
            match &incumbent {
                Some((_, best)) if *best <= score => {}
                _ => incumbent = Some((x.clone(), score)),
            }
        }
    }

    let Some((x, _)) = incumbent else {
        return Err(OptError::Unevaluable(
            ev.first_error
                .unwrap_or_else(|| "no evaluable start point".to_string()),
        ));
    };

    // Integer rounding with downward feasibility repair.
    let mut rounded: Vec<f64> = x.iter().map(|v| v.round().max(1.0)).collect();
    clamp(&mut rounded, &problem.params);
    for _ in 0..128 {
        match ev.violation(&rounded) {
            Some(v) if v <= 1e-9 => break,
            Some(_) => {
                // Shrink the largest coordinate still above its lower bound.
                if let Some((i, _)) = rounded
                    .iter()
                    .enumerate()
                    .filter(|(i, v)| **v > problem.params[*i].lo)
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                {
                    rounded[i] = (rounded[i] / 2.0).floor().max(problem.params[i].lo);
                } else {
                    break;
                }
            }
            None => break,
        }
    }
    let feasible = ev.violation(&rounded).is_some_and(|v| v <= 1e-9);
    if !feasible {
        return Err(OptError::Infeasible);
    }
    let objective = ev
        .objective(&rounded)
        .ok_or_else(|| OptError::Unevaluable("rounded point".to_string()))?;
    Ok(Optimum {
        values: problem
            .params
            .iter()
            .zip(&rounded)
            .map(|(p, v)| (p.name.clone(), *v as u64))
            .collect(),
        objective,
        feasible,
        evals: ev.evals,
    })
}

/// An admissible lower bound on the constrained optimum of `problem`,
/// used by the synthesizer's opt-in branch-and-bound prune.
///
/// The objective is simplified to a sum of terms and each term is
/// minimized **independently** over the `{lo, hi}` corners of the
/// parameters it mentions (constraints ignored). Since
/// `min_x Σᵢ tᵢ(x) ≥ Σᵢ min_x tᵢ(x)` and relaxing the constraints only
/// lowers each per-term minimum further, the sum of per-term minima never
/// exceeds the candidate's true constrained optimum whenever every term is
/// coordinate-monotone — which the cost annotator's transfer terms
/// (posynomials in the block sizes, optionally under `ceil`) are. Terms
/// mentioning more than [`MAX_BOUND_PARAMS`] parameters, or not evaluable
/// at any corner, contribute zero (the bound stays valid for the
/// non-negative seconds formulas the annotator emits).
pub fn admissible_lower_bound(problem: &Problem) -> Result<f64, OptError> {
    let simplified = ocas_symbolic::simplify(&problem.objective);
    let terms: Vec<Sym> = match simplified {
        Sym::Add(ts) => ts,
        other => vec![other],
    };
    let mut total = 0.0f64;
    let mut any_evaluable = false;
    for term in &terms {
        let vars = term.vars();
        let involved: Vec<&ParamSpec> = problem
            .params
            .iter()
            .filter(|p| vars.contains(&p.name))
            .collect();
        if involved.len() > MAX_BOUND_PARAMS {
            continue; // Contributes 0; bound stays below the optimum.
        }
        let mut best: Option<f64> = None;
        for corner in 0..(1u32 << involved.len()) {
            let mut env = problem.fixed.clone();
            // Unmentioned parameters still need *some* value for eval.
            for p in &problem.params {
                env.set(p.name.clone(), p.lo.max(1.0));
            }
            for (bit, p) in involved.iter().enumerate() {
                let v = if corner & (1 << bit) == 0 {
                    p.lo.max(1.0)
                } else {
                    p.hi()
                };
                env.set(p.name.clone(), v);
            }
            if let Ok(v) = eval(term, &env) {
                if v.is_finite() {
                    best = Some(best.map_or(v, |b: f64| b.min(v)));
                    any_evaluable = true;
                }
            }
        }
        total += best.unwrap_or(0.0);
    }
    if !any_evaluable && !terms.is_empty() {
        return Err(OptError::Unevaluable(
            "no term evaluable at any corner".into(),
        ));
    }
    Ok(total)
}

/// Per-term parameter cap for [`admissible_lower_bound`]'s corner sweep.
pub const MAX_BOUND_PARAMS: usize = 12;

/// Exhaustive powers-of-two coordinate descent — the ablation baseline.
/// Each parameter sweeps `2⁰ … 2⁴⁰` (clamped to its box) while the others
/// stay fixed, repeating until no coordinate improves. Infeasible points are
/// skipped outright.
pub fn ladder_search(problem: &Problem) -> Result<Optimum, OptError> {
    if problem.params.is_empty() {
        return optimize(problem);
    }
    let mut ev = Evaluator {
        problem,
        evals: 0,
        first_error: None,
    };
    let mut x: Vec<f64> = problem.params.iter().map(|p| p.lo.max(1.0)).collect();
    fn feas_obj(ev: &mut Evaluator<'_>, x: &[f64]) -> Option<f64> {
        let v = ev.violation(x)?;
        if v > 1e-9 {
            return None;
        }
        ev.objective(x)
    }
    let mut best = feas_obj(&mut ev, &x).unwrap_or(f64::INFINITY);
    loop {
        let mut improved = false;
        for i in 0..x.len() {
            for e in 0..=40u32 {
                let cand_v = (2f64.powi(e as i32))
                    .max(problem.params[i].lo)
                    .min(problem.params[i].hi());
                let mut cand = x.clone();
                cand[i] = cand_v;
                if let Some(val) = feas_obj(&mut ev, &cand) {
                    if val < best {
                        best = val;
                        x = cand;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    if !best.is_finite() {
        return Err(OptError::Infeasible);
    }
    Ok(Optimum {
        values: problem
            .params
            .iter()
            .zip(&x)
            .map(|(p, v)| (p.name.clone(), *v as u64))
            .collect(),
        objective: best,
        feasible: true,
        evals: ev.evals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Sym {
        Sym::var(n)
    }

    #[test]
    fn unconstrained_single_blocksize() {
        // f(k) = 1000/k + k/100: minimum at k = √(100·1000) ≈ 316.
        let p = Problem {
            objective: Sym::int(1000) / v("k") + v("k") / Sym::int(100),
            params: vec![ParamSpec::new("k", Some(1e9))],
            constraints: vec![],
            fixed: Env::new(),
        };
        let o = optimize(&p).unwrap();
        let k = o.values["k"] as f64;
        assert!((150.0..700.0).contains(&k), "expected k near 316, got {k}");
        assert!(o.feasible);
        assert!(o.objective < 7.0, "objective {o:?}");
    }

    #[test]
    fn capacity_constraint_binds() {
        // f(k) = 1e6/k, s.t. k ≤ 4096: best is k = 4096.
        let p = Problem {
            objective: Sym::int(1_000_000) / v("k"),
            params: vec![ParamSpec::new("k", Some(1e9))],
            constraints: vec![(v("k"), Sym::int(4096))],
            fixed: Env::new(),
        };
        let o = optimize(&p).unwrap();
        assert!(o.feasible);
        let k = o.values["k"];
        assert!(
            (3500..=4096).contains(&k),
            "expected k at the 4096 boundary, got {k}"
        );
    }

    #[test]
    fn bnl_buffer_split_prefers_big_outer_block() {
        // BNL seeks: x/k1 + x·y/(k1·k2), subject to k1 + k2 ≤ M.
        let x = 1e9;
        let y = 3e7;
        let m = 1e6;
        let p = Problem {
            objective: v("x") / v("k1") + v("x") * v("y") / (v("k1") * v("k2")),
            params: vec![ParamSpec::new("k1", Some(m)), ParamSpec::new("k2", Some(m))],
            constraints: vec![(v("k1") + v("k2"), Sym::int(m as i128))],
            fixed: Env::new().with("x", x).with("y", y),
        };
        let o = optimize(&p).unwrap();
        assert!(o.feasible, "{o:?}");
        let k1 = o.values["k1"] as f64;
        let k2 = o.values["k2"] as f64;
        assert!(k1 + k2 <= m + 0.5);
        // The x·y/(k1·k2) term dominates, so the optimum maximizes the
        // product k1·k2 under k1 + k2 ≤ M — a near-even split.
        let mut brute = f64::INFINITY;
        for i in 1..1000 {
            let k1g = m * (i as f64) / 1000.0;
            let k2g = m - k1g;
            if k1g < 1.0 || k2g < 1.0 {
                continue;
            }
            let c = x / k1g + x * y / (k1g * k2g);
            brute = brute.min(c);
        }
        assert!(
            o.objective <= brute * 1.05,
            "optimizer {o:?} worse than grid {brute}"
        );
        assert!(
            (0.2..5.0).contains(&(k1 / k2)),
            "expected a balanced split, got k1={k1} k2={k2}"
        );
    }

    #[test]
    fn merge_sort_fanout_tradeoff() {
        // Cost ≈ ceil(30/k)·(T + penalty·2^k): more ways, fewer passes but
        // more buffer pressure: an interior k must win over k = 1.
        let p = Problem {
            objective: (Sym::int(30) / v("k")).ceil()
                * (Sym::int(100) + Sym::int(20) * v("two_k") / Sym::int(64))
                + v("two_k") * Sym::rat(1, 100),
            params: vec![
                ParamSpec::new("k", Some(20.0)),
                ParamSpec::new("two_k", Some(1e6)),
            ],
            constraints: vec![],
            fixed: Env::new(),
        };
        let o = optimize(&p).unwrap();
        assert!(o.feasible);
        assert!(o.values["k"] >= 2, "{o:?}");
    }

    #[test]
    fn infeasible_problem_detected() {
        let p = Problem {
            objective: v("k"),
            params: vec![ParamSpec::new("k", Some(1e9))],
            // k ≤ 0 is unsatisfiable with k ≥ 1.
            constraints: vec![(v("k"), Sym::int(0))],
            fixed: Env::new(),
        };
        assert_eq!(optimize(&p), Err(OptError::Infeasible));
    }

    #[test]
    fn no_params_returns_constant() {
        let p = Problem {
            objective: Sym::int(42),
            params: vec![],
            constraints: vec![],
            fixed: Env::new(),
        };
        let o = optimize(&p).unwrap();
        assert_eq!(o.objective, 42.0);
    }

    #[test]
    fn ladder_matches_pattern_search_on_simple_problem() {
        let p = Problem {
            objective: Sym::int(1_000_000) / v("k") + v("k"),
            params: vec![ParamSpec::new("k", Some(1e9))],
            constraints: vec![],
            fixed: Env::new(),
        };
        let a = optimize(&p).unwrap();
        let b = ladder_search(&p).unwrap();
        // Optimum at k = 1000 → f = 2000; the ladder reaches 1024 → ~2001.
        assert!(a.objective < 2100.0, "{a:?}");
        assert!(b.objective < 2100.0, "{b:?}");
        assert!((a.objective - b.objective).abs() / a.objective < 0.05);
    }

    #[test]
    fn admissible_lower_bound_never_exceeds_the_optimum() {
        // Posynomial-style problems of the kind the cost annotator emits:
        // the bound must sit at or below every optimizer's result.
        let problems = vec![
            Problem {
                objective: Sym::int(1000) / v("k") + v("k") / Sym::int(100),
                params: vec![ParamSpec::new("k", Some(1e9))],
                constraints: vec![],
                fixed: Env::new(),
            },
            Problem {
                objective: v("x") / v("k1") + v("x") * v("y") / (v("k1") * v("k2")),
                params: vec![
                    ParamSpec::new("k1", Some(1e6)),
                    ParamSpec::new("k2", Some(1e6)),
                ],
                constraints: vec![(v("k1") + v("k2"), Sym::int(1_000_000))],
                fixed: Env::new().with("x", 1e9).with("y", 3e7),
            },
            Problem {
                objective: (Sym::int(30) / v("k")).ceil() * Sym::int(100) + v("k"),
                params: vec![ParamSpec::new("k", Some(64.0))],
                constraints: vec![],
                fixed: Env::new(),
            },
        ];
        for p in &problems {
            let lb = admissible_lower_bound(p).unwrap();
            let opt = optimize(p).or_else(|_| ladder_search(p)).unwrap();
            assert!(
                lb <= opt.objective + 1e-9,
                "bound {lb} exceeds optimum {} for {p:?}",
                opt.objective
            );
            assert!(lb >= 0.0, "transfer-term bound went negative: {lb}");
        }
    }

    #[test]
    fn unbound_variable_is_reported() {
        let p = Problem {
            objective: v("k") + v("mystery"),
            params: vec![ParamSpec::new("k", Some(10.0))],
            constraints: vec![],
            fixed: Env::new(),
        };
        assert!(matches!(optimize(&p), Err(OptError::Unevaluable(_))));
    }
}
