//! Device timing models.

use ocas_hierarchy::{CostPair, DeviceKind, NodeProps};

/// Cumulative per-device statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// Seeks performed (HDD) — the simulator's InitCom events on reads.
    pub seeks: u64,
    /// Erase operations (flash).
    pub erases: u64,
    /// Bytes read from the device.
    pub bytes_read: u64,
    /// Bytes written to the device.
    pub bytes_written: u64,
    /// Total simulated seconds spent on this device.
    pub busy_seconds: f64,
}

/// Rotating-disk model: moving the head costs a seek (`InitCom`), transfers
/// run at the edge's `UnitTr` rate, and all accesses are rounded to page
/// boundaries.
#[derive(Debug, Clone)]
pub struct HddSim {
    name: String,
    head: u64,
    pagesize: u64,
    seek_seconds: f64,
    secs_per_byte_read: f64,
    secs_per_byte_write: f64,
    stats: DeviceStats,
}

impl HddSim {
    /// Builds the model from node properties and its edge costs.
    pub fn new(props: &NodeProps, up: CostPair, down: CostPair) -> HddSim {
        HddSim {
            name: props.name.clone(),
            head: 0,
            pagesize: props.pagesize.max(1),
            seek_seconds: up.init_com.to_f64(),
            secs_per_byte_read: up.unit_tr.to_f64(),
            secs_per_byte_write: down.unit_tr.to_f64(),
            stats: DeviceStats::default(),
        }
    }

    fn page_extent(&self, offset: u64, len: u64) -> (u64, u64) {
        let start = offset / self.pagesize * self.pagesize;
        let end = (offset + len).div_ceil(self.pagesize) * self.pagesize;
        (start, end - start)
    }

    /// Reads `len` bytes at `offset`; returns simulated seconds.
    ///
    /// Sequential sub-page reads are coalesced: a request that falls inside
    /// the page the head just passed is served from the device/OS read-ahead
    /// for free (otherwise an element-at-a-time sequential scan would be
    /// charged a full page per element, which no real stack does).
    pub fn read(&mut self, offset: u64, len: u64) -> f64 {
        let (start, span) = self.page_extent(offset, len);
        let end = start + span;
        // Fully covered by the page(s) just read: read-ahead hit.
        if start >= self.head.saturating_sub(self.pagesize) && end <= self.head {
            return 0.0;
        }
        let mut t = 0.0;
        let (charge_start, charged) =
            if start >= self.head.saturating_sub(self.pagesize) && start < self.head {
                // Overlaps the current read-ahead window: pay only the new
                // pages, no seek.
                (self.head, end - self.head)
            } else {
                if start != self.head {
                    t += self.seek_seconds;
                    self.stats.seeks += 1;
                }
                (start, span)
            };
        let _ = charge_start;
        t += charged as f64 * self.secs_per_byte_read;
        self.head = end;
        self.stats.bytes_read += charged;
        self.stats.busy_seconds += t;
        t
    }

    /// Writes `len` bytes at `offset`; returns simulated seconds.
    pub fn write(&mut self, offset: u64, len: u64) -> f64 {
        let (start, span) = self.page_extent(offset, len);
        let mut t = 0.0;
        if start != self.head {
            t += self.seek_seconds;
            self.stats.seeks += 1;
        }
        t += span as f64 * self.secs_per_byte_write;
        self.head = start + span;
        self.stats.bytes_written += span;
        self.stats.busy_seconds += t;
        t
    }
}

/// Flash model: reads are seek-free; writing into an erase block not written
/// since its last erase costs one erase (`InitCom`).
#[derive(Debug, Clone)]
pub struct FlashSim {
    name: String,
    erase_block: u64,
    erase_seconds: f64,
    secs_per_byte_read: f64,
    secs_per_byte_write: f64,
    /// Erase block currently "open" for appending.
    open_block: Option<u64>,
    stats: DeviceStats,
}

impl FlashSim {
    /// Builds the model from node properties and its edge costs.
    pub fn new(props: &NodeProps, up: CostPair, down: CostPair) -> FlashSim {
        FlashSim {
            name: props.name.clone(),
            erase_block: props.max_seq_write.unwrap_or(256 * 1024).max(1),
            erase_seconds: down.init_com.to_f64(),
            secs_per_byte_read: up.unit_tr.to_f64(),
            secs_per_byte_write: down.unit_tr.to_f64(),
            open_block: None,
            stats: DeviceStats::default(),
        }
    }

    /// Reads `len` bytes; returns simulated seconds (no seek component).
    pub fn read(&mut self, _offset: u64, len: u64) -> f64 {
        let t = len as f64 * self.secs_per_byte_read;
        self.stats.bytes_read += len;
        self.stats.busy_seconds += t;
        t
    }

    /// Writes `len` bytes at `offset`; erases every newly-touched block.
    pub fn write(&mut self, offset: u64, len: u64) -> f64 {
        let first = offset / self.erase_block;
        let last = (offset + len.max(1) - 1) / self.erase_block;
        let mut t = len as f64 * self.secs_per_byte_write;
        for b in first..=last {
            if self.open_block != Some(b) {
                t += self.erase_seconds;
                self.stats.erases += 1;
                self.open_block = Some(b);
            }
        }
        self.stats.bytes_written += len;
        self.stats.busy_seconds += t;
        t
    }
}

/// RAM model: transfers are free at this level (the paper zeroes RAM costs
/// for I/O-bound workloads); it exists so files can live "in memory".
#[derive(Debug, Clone)]
pub struct RamSim {
    name: String,
    stats: DeviceStats,
}

impl RamSim {
    /// Builds the model.
    pub fn new(props: &NodeProps) -> RamSim {
        RamSim {
            name: props.name.clone(),
            stats: DeviceStats::default(),
        }
    }
}

/// A simulated device of any kind.
#[derive(Debug, Clone)]
pub enum DeviceSim {
    /// Rotating disk.
    Hdd(HddSim),
    /// Flash drive.
    Flash(FlashSim),
    /// Main memory.
    Ram(RamSim),
}

impl DeviceSim {
    /// Builds the right model for a hierarchy node.
    pub fn for_node(props: &NodeProps, up: CostPair, down: CostPair) -> DeviceSim {
        match props.kind {
            DeviceKind::Hdd => DeviceSim::Hdd(HddSim::new(props, up, down)),
            DeviceKind::Flash => DeviceSim::Flash(FlashSim::new(props, up, down)),
            DeviceKind::Ram | DeviceKind::Cache => DeviceSim::Ram(RamSim::new(props)),
        }
    }

    /// Device name.
    pub fn name(&self) -> &str {
        match self {
            DeviceSim::Hdd(d) => &d.name,
            DeviceSim::Flash(d) => &d.name,
            DeviceSim::Ram(d) => &d.name,
        }
    }

    /// Reads and returns simulated seconds.
    pub fn read(&mut self, offset: u64, len: u64) -> f64 {
        match self {
            DeviceSim::Hdd(d) => d.read(offset, len),
            DeviceSim::Flash(d) => d.read(offset, len),
            DeviceSim::Ram(d) => {
                d.stats.bytes_read += len;
                0.0
            }
        }
    }

    /// Writes and returns simulated seconds.
    pub fn write(&mut self, offset: u64, len: u64) -> f64 {
        match self {
            DeviceSim::Hdd(d) => d.write(offset, len),
            DeviceSim::Flash(d) => d.write(offset, len),
            DeviceSim::Ram(d) => {
                d.stats.bytes_written += len;
                0.0
            }
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> DeviceStats {
        match self {
            DeviceSim::Hdd(d) => d.stats,
            DeviceSim::Flash(d) => d.stats,
            DeviceSim::Ram(d) => d.stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocas_hierarchy::presets;

    fn hdd() -> HddSim {
        let e = presets::hdd_edge();
        HddSim::new(&presets::hdd_props("HDD"), e.up, e.down)
    }

    #[test]
    fn sequential_reads_seek_once() {
        let mut d = hdd();
        let mut t = 0.0;
        for i in 0..100u64 {
            t += d.read(i * 4096, 4096);
        }
        assert_eq!(d.stats.seeks, 0, "offset 0 start means head is in place");
        // 100 pages at 30 MiB/s.
        let expect = 100.0 * 4096.0 / (30.0 * 1024.0 * 1024.0);
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn random_reads_seek_every_time() {
        let mut d = hdd();
        for i in 0..10u64 {
            d.read((10 - i) * (1 << 20), 4096);
        }
        assert_eq!(d.stats.seeks, 10);
        assert!(d.stats.busy_seconds > 10.0 * 0.015);
    }

    #[test]
    fn interleaved_read_write_thrashes_the_head() {
        let mut d = hdd();
        // Alternate reading the low region and writing the high region.
        for i in 0..50u64 {
            d.read(i * 4096, 4096);
            d.write((1 << 30) + i * 4096, 4096);
        }
        // Every access after the first moves the head.
        assert!(d.stats.seeks >= 99, "seeks: {}", d.stats.seeks);
    }

    #[test]
    fn page_rounding_inflates_small_reads() {
        let mut d = hdd();
        d.read(10, 8); // 8 bytes -> one full 4 KiB page
        assert_eq!(d.stats.bytes_read, 4096);
    }

    #[test]
    fn flash_erases_per_block() {
        let e = presets::flash_edge();
        let mut f = FlashSim::new(&presets::flash_props("SSD"), e.up, e.down);
        // Sequential write of 1 MiB = 4 erase blocks of 256 KiB.
        let mut offset = 0;
        while offset < 1 << 20 {
            f.write(offset, 64 * 1024);
            offset += 64 * 1024;
        }
        assert_eq!(f.stats.erases, 4);
        // Reads never erase or seek.
        let t = f.read(0, 1 << 20);
        let expect = (1 << 20) as f64 / (120.0 * 1024.0 * 1024.0);
        assert!((t - expect).abs() < 1e-9);
    }

    #[test]
    fn flash_random_writes_erase_more() {
        let e = presets::flash_edge();
        let mut f = FlashSim::new(&presets::flash_props("SSD"), e.up, e.down);
        // Alternating between two blocks erases on every write.
        for i in 0..10u64 {
            f.write((i % 2) * (1 << 20), 4096);
        }
        assert_eq!(f.stats.erases, 10);
    }

    #[test]
    fn ram_is_free() {
        let mut r = DeviceSim::Ram(RamSim::new(&presets::ram_props("RAM", 1 << 20)));
        assert_eq!(r.read(0, 1 << 19), 0.0);
        assert_eq!(r.write(0, 1 << 19), 0.0);
        assert_eq!(r.stats().bytes_read, 1 << 19);
    }
}
