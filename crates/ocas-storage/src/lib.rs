//! Simulated storage devices for the OCAS execution engine.
//!
//! The paper evaluates generated C programs on a real machine (1 TB WD hard
//! disk, Apple SSD, Intel CPU cache). This crate is the reproduction's
//! substitute (see DESIGN.md §1): device simulators that enact exactly the
//! I/O requests an algorithm issues and charge simulated time from the same
//! constants the cost model uses (Figure 7). Because the simulator tracks
//! *positional state* — the disk head, flash erase blocks, cache lines — it
//! reproduces the phenomena the paper's experiments rely on:
//!
//! * sequential vs. random hard-disk access (seek iff the head moved),
//! * read/write interference when input and output share a disk,
//! * erase-before-write on flash (one erase per touched erase block),
//! * cache misses under tiled vs. untiled access streams.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod cache;
pub mod device;
pub mod fault;
pub mod manager;

pub use backend::StorageBackend;
pub use cache::{CacheSim, CacheStats};
pub use device::{DeviceSim, DeviceStats, FlashSim, HddSim, RamSim};
pub use fault::{FaultKind, FaultOp, FaultPlan, FaultSpec, Faulted, RecoveryCounters, RetryPolicy};
pub use manager::{FileId, StorageError, StorageSim};
