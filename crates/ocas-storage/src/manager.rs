//! File allocation and clocked access across the simulated devices.

use crate::device::{DeviceSim, DeviceStats};
use ocas_hierarchy::{CostPair, Hierarchy, NodeId};
use std::collections::BTreeMap;
use std::fmt;

/// Identifies an allocated file (a contiguous extent on one device).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub usize);

#[derive(Debug, Clone)]
struct FileMeta {
    device: usize,
    offset: u64,
    len: u64,
}

/// Storage errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Unknown hierarchy node name.
    UnknownDevice(String),
    /// Access beyond a file's extent.
    OutOfBounds {
        /// The file.
        file: usize,
        /// Requested end offset.
        end: u64,
        /// File length.
        len: u64,
    },
    /// Device capacity exhausted.
    Full(String),
    /// Operating-system I/O failure (real backends only).
    Io(String),
    /// Unknown file handle (stale or foreign [`FileId`]).
    UnknownFile(usize),
    /// Transient I/O failure (an injected or real `EIO`/short transfer).
    /// Retryable: re-issuing the same request may succeed.
    Transient {
        /// Device the request targeted.
        device: String,
        /// Operation kind (`"read"`, `"write"`, `"alloc"`).
        op: &'static str,
        /// Per-device request index at which the failure fired.
        request: u64,
    },
    /// No space on a device for a specific allocation (`ENOSPC`).
    /// Not retryable, but degradable: callers may shrink the request or
    /// fail over to another spill device.
    NoSpace {
        /// Device that ran out of space.
        device: String,
        /// Bytes the failed allocation asked for.
        requested: u64,
    },
    /// A buffer-pool page failed its checksum on re-read — a torn or
    /// corrupted write-back was detected before it could become a wrong
    /// answer.
    CorruptPage {
        /// Device whose backing file holds the page.
        device: String,
        /// Page index within the device file.
        page: u64,
    },
}

impl StorageError {
    /// True for errors where re-issuing the same request may succeed
    /// (the retry loop's classification).
    pub fn is_transient(&self) -> bool {
        matches!(self, StorageError::Transient { .. })
    }

    /// True for capacity-style errors that degradation (shrink spill
    /// units / fail over to an alternate device) can handle.
    pub fn is_capacity(&self) -> bool {
        matches!(self, StorageError::Full(_) | StorageError::NoSpace { .. })
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownDevice(d) => write!(f, "unknown device `{d}`"),
            StorageError::OutOfBounds { file, end, len } => {
                write!(f, "access past end of file {file}: {end} > {len}")
            }
            StorageError::Full(d) => write!(f, "device `{d}` is full"),
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::UnknownFile(id) => write!(f, "unknown file handle {id}"),
            StorageError::Transient {
                device,
                op,
                request,
            } => {
                write!(
                    f,
                    "transient I/O failure: {op} request {request} on `{device}`"
                )
            }
            StorageError::NoSpace { device, requested } => {
                write!(f, "no space on `{device}` for {requested} bytes")
            }
            StorageError::CorruptPage { device, page } => {
                write!(
                    f,
                    "checksum mismatch on page {page} of `{device}` (torn write-back detected)"
                )
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// The clocked storage layer: devices built from a hierarchy, plus a bump
/// allocator of file extents per device and a global simulated clock.
#[derive(Debug)]
pub struct StorageSim {
    devices: Vec<DeviceSim>,
    device_by_name: BTreeMap<String, usize>,
    capacity: Vec<u64>,
    allocated: Vec<u64>,
    files: Vec<FileMeta>,
    clock_seconds: f64,
}

impl StorageSim {
    /// Builds one simulated device per storage node of the hierarchy (the
    /// root is memory and gets a free RAM device as well, so intermediates
    /// can be "allocated" uniformly).
    pub fn from_hierarchy(h: &Hierarchy) -> StorageSim {
        let mut devices = Vec::new();
        let mut device_by_name = BTreeMap::new();
        let mut capacity = Vec::new();
        for id in h.ids() {
            let props = h.node(id);
            let (up, down) = match h.parent(id) {
                Some(p) => (
                    h.edge(id, p).expect("parent edge"),
                    h.edge(p, id).expect("parent edge"),
                ),
                None => (CostPair::FREE, CostPair::FREE),
            };
            device_by_name.insert(props.name.clone(), devices.len());
            capacity.push(props.size);
            devices.push(DeviceSim::for_node(props, up, down));
        }
        let n = devices.len();
        StorageSim {
            devices,
            device_by_name,
            capacity,
            allocated: vec![0; n],
            files: Vec::new(),
            clock_seconds: 0.0,
        }
    }

    /// Allocates a file of `len` bytes on the named device.
    pub fn alloc(&mut self, device: &str, len: u64) -> Result<FileId, StorageError> {
        let d = *self
            .device_by_name
            .get(device)
            .ok_or_else(|| StorageError::UnknownDevice(device.to_string()))?;
        if self.allocated[d] + len > self.capacity[d] {
            return Err(StorageError::Full(device.to_string()));
        }
        let offset = self.allocated[d];
        self.allocated[d] += len;
        let id = FileId(self.files.len());
        self.files.push(FileMeta {
            device: d,
            offset,
            len,
        });
        Ok(id)
    }

    /// Allocates on the device of a hierarchy node id.
    pub fn alloc_on(
        &mut self,
        h: &Hierarchy,
        node: NodeId,
        len: u64,
    ) -> Result<FileId, StorageError> {
        let name = h.node(node).name.clone();
        self.alloc(&name, len)
    }

    fn meta(&self, file: FileId) -> &FileMeta {
        &self.files[file.0]
    }

    fn check(&self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        let m = self.meta(file);
        if offset + len > m.len {
            return Err(StorageError::OutOfBounds {
                file: file.0,
                end: offset + len,
                len: m.len,
            });
        }
        Ok(())
    }

    /// Reads `len` bytes at `offset` within `file`, advancing the clock.
    pub fn read(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        self.check(file, offset, len)?;
        let m = self.meta(file).clone();
        let seeks0 = self.obs_seeks(m.device);
        let t = self.devices[m.device].read(m.offset + offset, len);
        self.obs_span("read", m.device, t, len, seeks0);
        self.clock_seconds += t;
        Ok(())
    }

    /// Writes `len` bytes at `offset` within `file`, advancing the clock.
    pub fn write(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        self.check(file, offset, len)?;
        let m = self.meta(file).clone();
        let seeks0 = self.obs_seeks(m.device);
        let t = self.devices[m.device].write(m.offset + offset, len);
        self.obs_span("write", m.device, t, len, seeks0);
        self.clock_seconds += t;
        Ok(())
    }

    /// Seek count of a device, read only while tracing (the disabled-path
    /// cost of each request is the one `enabled()` check).
    fn obs_seeks(&self, device: usize) -> u64 {
        if ocas_obs::enabled() {
            self.devices[device].stats().seeks
        } else {
            0
        }
    }

    /// Records one request as a span on the device's simulated-clock
    /// track. The span durations on each `dev:*` track (plus the `cpu`
    /// track) sum to exactly the clock advance — the attribution
    /// property the acceptance test pins.
    fn obs_span(&self, name: &'static str, device: usize, t: f64, len: u64, seeks0: u64) {
        if ocas_obs::enabled() {
            let d = &self.devices[device];
            ocas_obs::span(
                ocas_obs::Clock::Sim,
                &format!("dev:{}", d.name()),
                name,
                self.clock_seconds,
                t,
                &[
                    ("bytes", len as f64),
                    ("seeks", (d.stats().seeks - seeks0) as f64),
                ],
            );
        }
    }

    /// Adds pure computation time to the clock (the engine's CPU model).
    pub fn charge_cpu(&mut self, seconds: f64) {
        if ocas_obs::enabled() && seconds > 0.0 {
            ocas_obs::span(
                ocas_obs::Clock::Sim,
                "cpu",
                "charge",
                self.clock_seconds,
                seconds,
                &[],
            );
        }
        self.clock_seconds += seconds;
    }

    /// Simulated seconds elapsed so far.
    pub fn clock(&self) -> f64 {
        self.clock_seconds
    }

    /// File length in bytes.
    pub fn len(&self, file: FileId) -> u64 {
        self.meta(file).len
    }

    /// True if the file is empty.
    pub fn is_empty(&self, file: FileId) -> bool {
        self.len(file) == 0
    }

    /// Device name holding the file.
    pub fn device_of(&self, file: FileId) -> &str {
        self.devices[self.meta(file).device].name()
    }

    /// Statistics for a device by name.
    pub fn device_stats(&self, device: &str) -> Option<DeviceStats> {
        self.device_by_name
            .get(device)
            .map(|d| self.devices[*d].stats())
    }

    /// Frees the *most recent* allocations down to `mark` bytes on a device
    /// (simple region deallocation for scratch space between merge levels).
    pub fn truncate_device(&mut self, device: &str, mark: u64) -> Result<(), StorageError> {
        let d = *self
            .device_by_name
            .get(device)
            .ok_or_else(|| StorageError::UnknownDevice(device.to_string()))?;
        self.allocated[d] = self.allocated[d].min(mark);
        Ok(())
    }

    /// Current allocation watermark of a device (pair with
    /// [`StorageSim::truncate_device`]).
    pub fn watermark(&self, device: &str) -> Option<u64> {
        self.device_by_name.get(device).map(|d| self.allocated[*d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocas_hierarchy::presets;

    #[test]
    fn alloc_read_write_and_clock() {
        let h = presets::hdd_ram(1 << 25);
        let mut sm = StorageSim::from_hierarchy(&h);
        let f = sm.alloc("HDD", 1 << 20).unwrap();
        sm.read(f, 0, 1 << 20).unwrap();
        let t1 = sm.clock();
        assert!(t1 > 0.0);
        // Sequential second read seeks back (head moved past the extent).
        sm.read(f, 0, 1 << 20).unwrap();
        assert!(sm.clock() > 2.0 * t1 * 0.99);
        let stats = sm.device_stats("HDD").unwrap();
        assert_eq!(stats.bytes_read, 2 << 20);
        assert_eq!(stats.seeks, 1);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let h = presets::hdd_ram(1 << 25);
        let mut sm = StorageSim::from_hierarchy(&h);
        let f = sm.alloc("HDD", 100).unwrap();
        assert!(matches!(
            sm.read(f, 64, 100),
            Err(StorageError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn capacity_enforced() {
        let h = presets::hdd_ram(1 << 20);
        let mut sm = StorageSim::from_hierarchy(&h);
        assert!(sm.alloc("RAM", 1 << 19).is_ok());
        assert!(matches!(
            sm.alloc("RAM", 1 << 20),
            Err(StorageError::Full(_))
        ));
        assert!(matches!(
            sm.alloc("nope", 1),
            Err(StorageError::UnknownDevice(_))
        ));
    }

    #[test]
    fn ram_files_are_free_to_access() {
        let h = presets::hdd_ram(1 << 25);
        let mut sm = StorageSim::from_hierarchy(&h);
        let f = sm.alloc("RAM", 1 << 20).unwrap();
        sm.read(f, 0, 1 << 20).unwrap();
        sm.write(f, 0, 1 << 20).unwrap();
        assert_eq!(sm.clock(), 0.0);
    }

    #[test]
    fn truncate_reuses_scratch_space() {
        let h = presets::hdd_ram(1 << 25);
        let mut sm = StorageSim::from_hierarchy(&h);
        let mark = sm.watermark("HDD").unwrap();
        sm.alloc("HDD", 1 << 30).unwrap();
        sm.truncate_device("HDD", mark).unwrap();
        // Space is reusable afterwards.
        for _ in 0..10 {
            let m = sm.watermark("HDD").unwrap();
            sm.alloc("HDD", 1 << 30).unwrap();
            sm.truncate_device("HDD", m).unwrap();
        }
    }

    #[test]
    fn flash_device_in_manager() {
        let h = presets::hdd_flash_ram(1 << 25);
        let mut sm = StorageSim::from_hierarchy(&h);
        let f = sm.alloc("SSD", 1 << 20).unwrap();
        sm.write(f, 0, 1 << 20).unwrap();
        let stats = sm.device_stats("SSD").unwrap();
        assert_eq!(stats.erases, 4, "1 MiB / 256 KiB erase blocks");
    }
}
