//! Deterministic, seeded fault injection over any [`StorageBackend`].
//!
//! A [`FaultPlan`] is a scriptable schedule: "the `at`-th storage request
//! on device `D` fails with kind `K`". Request indices are counted per
//! device across all operations (alloc/read/write, each *attempt*
//! consumes one index), so a plan replays bit-identically on any backend
//! that issues the same request stream — the property the error-parity
//! proptest pins between [`StorageSim`](crate::StorageSim) and the real
//! file backend.
//!
//! [`Faulted<B>`](Faulted) wraps a backend and applies a plan at the
//! [`StorageBackend`] trait seam, recovering where policy allows:
//!
//! * [`FaultKind::Transient`] and short transfers are retried under a
//!   [`RetryPolicy`] with exponential backoff charged to the backend's
//!   clock (simulated seconds on the simulator, wall-accounted seconds on
//!   a real backend);
//! * [`FaultKind::NoSpace`] surfaces as
//!   [`StorageError::NoSpace`] — not retryable, but callers
//!   (external sort, GRACE join) degrade by shrinking spill units or
//!   failing over to an alternate device;
//! * [`FaultKind::Latency`] charges extra seconds and proceeds;
//! * [`FaultKind::TornWriteBack`] is forwarded to the backend's buffer
//!   pool (real backends only): the next write-back of a dirty page on
//!   that device writes only half the page while recording the full
//!   intended checksum, so the tear is *detected* on re-read as a typed
//!   [`StorageError::CorruptPage`] instead of a wrong answer.
//!
//! Every injection and every retry is counted in [`RecoveryCounters`] and
//! emitted on the `fault:<device>` / `retry:<device>` observability
//! tracks, recorded on the calling (owning) thread per the PR 6
//! determinism policy.

use crate::backend::StorageBackend;
use crate::device::DeviceStats;
use crate::manager::{FileId, StorageError};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::BTreeMap;

/// Which storage operation a [`FaultSpec`] matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOp {
    /// Accounting or data reads.
    Read,
    /// Accounting or data writes (including `write_bytes`).
    Write,
    /// Extent allocation.
    Alloc,
    /// Any of the above.
    Any,
}

impl FaultOp {
    /// True if a spec declaring `self` fires on a request of kind `op`.
    pub fn matches(self, op: FaultOp) -> bool {
        self == FaultOp::Any || self == op
    }

    /// Stable lower-case name (used in error context and obs counters).
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Read => "read",
            FaultOp::Write => "write",
            FaultOp::Alloc => "alloc",
            FaultOp::Any => "any",
        }
    }
}

/// What goes wrong when a [`FaultSpec`] fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Transient `EIO`: this attempt fails; a retry re-issues it (the
    /// retry consumes the *next* request index, so a one-shot spec does
    /// not re-fire).
    Transient,
    /// Short read: half the requested bytes move (and are charged), then
    /// the request fails transiently. The retry re-issues the full
    /// idempotent request.
    ShortRead,
    /// Short write: as [`FaultKind::ShortRead`], on the write path.
    ShortWrite,
    /// `ENOSPC`: an allocation fails without reserving space. One-shot —
    /// a degraded (smaller or relocated) allocation consumes a later
    /// index and proceeds.
    NoSpace,
    /// Latency spike: the request succeeds after the given extra seconds
    /// are charged to the clock.
    Latency(f64),
    /// Torn page write-back: the next buffer-pool write-back on the
    /// device persists only half the page. Detected later as
    /// [`StorageError::CorruptPage`] by the per-page checksum. Ignored by
    /// backends without a pool (the simulator holds no data to tear).
    TornWriteBack,
}

impl FaultKind {
    /// Stable lower-case name (used in obs counters and bench rows).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Transient => "transient",
            FaultKind::ShortRead => "short_read",
            FaultKind::ShortWrite => "short_write",
            FaultKind::NoSpace => "no_space",
            FaultKind::Latency(_) => "latency",
            FaultKind::TornWriteBack => "torn_write_back",
        }
    }
}

/// One scheduled fault: fires when the `at`-th request (0-based, counted
/// per device across all operations) on `device` matches `op`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Device name the spec watches.
    pub device: String,
    /// Operation filter.
    pub op: FaultOp,
    /// Per-device request index at which to fire.
    pub at: u64,
    /// Failure to inject.
    pub kind: FaultKind,
}

/// A deterministic, scriptable schedule of storage faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// The scheduled faults. Multiple specs may target the same index;
    /// the first match wins.
    pub specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Builder: schedules `kind` at per-device request index `at` on
    /// `device`, filtered by `op`.
    pub fn with(mut self, device: &str, op: FaultOp, at: u64, kind: FaultKind) -> FaultPlan {
        self.specs.push(FaultSpec {
            device: device.to_string(),
            op,
            at,
            kind,
        });
        self
    }

    /// A deterministic randomized plan for chaos testing: `faults`
    /// entries spread over `devices` within the first `horizon` request
    /// indices. The same `seed` always produces the same plan.
    pub fn randomized(seed: u64, devices: &[&str], faults: usize, horizon: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = FaultPlan::new();
        if devices.is_empty() || horizon == 0 {
            return plan;
        }
        for _ in 0..faults {
            let device = devices[rng.gen_range(0..devices.len())];
            let at = rng.gen_range(0..horizon);
            let (op, kind) = match rng.gen_range(0u32..6) {
                0 => (FaultOp::Any, FaultKind::Transient),
                1 => (FaultOp::Read, FaultKind::ShortRead),
                2 => (FaultOp::Write, FaultKind::ShortWrite),
                3 => (FaultOp::Alloc, FaultKind::NoSpace),
                4 => (
                    FaultOp::Any,
                    FaultKind::Latency(rng.gen_range(0.0001f64..0.01)),
                ),
                _ => (FaultOp::Write, FaultKind::TornWriteBack),
            };
            plan = plan.with(device, op, at, kind);
        }
        plan
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// Bounded-retry policy for transient errors: up to `max_attempts` tries
/// per request, sleeping `backoff_seconds * backoff_factor^attempt`
/// between tries — charged to the backend clock, never actually slept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per request (1 = no retries).
    pub max_attempts: u32,
    /// Backoff before the first retry, in (charged) seconds.
    pub backoff_seconds: f64,
    /// Multiplier applied per subsequent retry.
    pub backoff_factor: f64,
}

impl Default for RetryPolicy {
    /// Four attempts, 1 ms initial backoff, ×8 per retry (1 ms → 8 ms →
    /// 64 ms): rides out a burst of a few transients without masking a
    /// persistent failure.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            backoff_seconds: 0.001,
            backoff_factor: 8.0,
        }
    }
}

impl RetryPolicy {
    /// No retries: every transient surfaces immediately.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_seconds: 0.0,
            backoff_factor: 1.0,
        }
    }

    /// Backoff charged before retry number `retry` (0-based).
    pub fn backoff_for(&self, retry: u32) -> f64 {
        self.backoff_seconds * self.backoff_factor.powi(retry as i32)
    }
}

/// Counters for everything the fault/recovery layer did: injections by
/// kind, retry outcomes, and the degradations callers recorded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounters {
    /// Total faults injected (all kinds).
    pub faults_injected: u64,
    /// Transient `EIO` injections.
    pub transient_faults: u64,
    /// Short read/write injections.
    pub short_transfers: u64,
    /// `ENOSPC` injections.
    pub no_space_faults: u64,
    /// Latency-spike injections.
    pub latency_spikes: u64,
    /// Torn write-backs scheduled.
    pub torn_write_backs: u64,
    /// Retry attempts issued after a transient failure.
    pub retries: u64,
    /// Requests that eventually succeeded after ≥1 retry.
    pub retry_successes: u64,
    /// Requests that exhausted the retry budget.
    pub gave_up: u64,
    /// ENOSPC degradations resolved by shrinking spill units.
    pub degraded_shrinks: u64,
    /// ENOSPC degradations resolved by failing over to another device.
    pub degraded_failovers: u64,
    /// Checksum mismatches detected on page re-read.
    pub corrupt_pages_detected: u64,
}

impl RecoveryCounters {
    /// Adds `other` into `self` field-wise.
    pub fn merge(&mut self, other: &RecoveryCounters) {
        self.faults_injected += other.faults_injected;
        self.transient_faults += other.transient_faults;
        self.short_transfers += other.short_transfers;
        self.no_space_faults += other.no_space_faults;
        self.latency_spikes += other.latency_spikes;
        self.torn_write_backs += other.torn_write_backs;
        self.retries += other.retries;
        self.retry_successes += other.retry_successes;
        self.gave_up += other.gave_up;
        self.degraded_shrinks += other.degraded_shrinks;
        self.degraded_failovers += other.degraded_failovers;
        self.corrupt_pages_detected += other.corrupt_pages_detected;
    }

    /// Records one injection of `kind`.
    pub fn note_fault(&mut self, kind: FaultKind) {
        self.faults_injected += 1;
        match kind {
            FaultKind::Transient => self.transient_faults += 1,
            FaultKind::ShortRead | FaultKind::ShortWrite => self.short_transfers += 1,
            FaultKind::NoSpace => self.no_space_faults += 1,
            FaultKind::Latency(_) => self.latency_spikes += 1,
            FaultKind::TornWriteBack => self.torn_write_backs += 1,
        }
    }

    /// Records a degradation event by its stable name (`"shrink"` /
    /// `"failover"`).
    pub fn note_degradation(&mut self, what: &str) {
        if what.contains("failover") {
            self.degraded_failovers += 1;
        } else {
            self.degraded_shrinks += 1;
        }
    }

    /// Total degradations of either flavor.
    pub fn degradations(&self) -> u64 {
        self.degraded_shrinks + self.degraded_failovers
    }
}

/// The runtime state of a plan: per-device request indices plus the
/// counters. Pure and deterministic — identical request streams produce
/// identical decisions regardless of backend or wall time.
#[derive(Debug, Clone, Default)]
pub struct FaultState {
    plan: FaultPlan,
    requests: BTreeMap<String, u64>,
    /// Everything injected / recovered so far.
    pub counters: RecoveryCounters,
}

impl FaultState {
    /// State for `plan` with all request indices at zero.
    pub fn new(plan: FaultPlan) -> FaultState {
        FaultState {
            plan,
            requests: BTreeMap::new(),
            counters: RecoveryCounters::default(),
        }
    }

    /// The plan driving this state.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decides the fate of the next request on `device`: consumes one
    /// per-device index (so a retry is judged at the *next* index) and
    /// returns `(index, injected fault)`. Injections are counted and
    /// emitted on the `fault:<device>` obs track at clock position `at`
    /// in `domain`.
    pub fn on_request(
        &mut self,
        device: &str,
        op: FaultOp,
        domain: ocas_obs::Clock,
        at: f64,
    ) -> (u64, Option<FaultKind>) {
        let idx = self.requests.entry(device.to_string()).or_insert(0);
        let i = *idx;
        *idx += 1;
        let hit = self
            .plan
            .specs
            .iter()
            .find(|s| s.at == i && s.op.matches(op) && s.device == device)
            .map(|s| s.kind);
        if let Some(kind) = hit {
            self.counters.note_fault(kind);
            if ocas_obs::enabled() {
                ocas_obs::counter(domain, &format!("fault:{device}"), kind.name(), at, 1.0);
            }
        }
        (i, hit)
    }

    /// Records one retry on the `retry:<device>` obs track.
    pub fn note_retry(&mut self, device: &str, domain: ocas_obs::Clock, at: f64) {
        self.counters.retries += 1;
        if ocas_obs::enabled() {
            ocas_obs::counter(domain, &format!("retry:{device}"), "attempt", at, 1.0);
        }
    }
}

/// A [`StorageBackend`] wrapper that injects a [`FaultPlan`] at the trait
/// seam and recovers per [`RetryPolicy`]. Works identically over the
/// simulator and real backends; see the module docs for semantics.
#[derive(Debug)]
pub struct Faulted<B: StorageBackend> {
    inner: B,
    state: FaultState,
    policy: RetryPolicy,
}

impl<B: StorageBackend> Faulted<B> {
    /// Wraps `inner`, applying `plan` under `policy`.
    pub fn new(inner: B, plan: FaultPlan, policy: RetryPolicy) -> Faulted<B> {
        Faulted {
            inner,
            state: FaultState::new(plan),
            policy,
        }
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped backend, mutably (bypasses injection — setup only).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// Unwraps, discarding the fault state.
    pub fn into_inner(self) -> B {
        self.inner
    }

    /// Counters accumulated so far (wrapper injections merged with any
    /// the inner backend tracked itself).
    pub fn counters(&self) -> RecoveryCounters {
        let mut c = self.state.counters;
        if let Some(inner) = self.inner.recovery_counters() {
            c.merge(&inner);
        }
        c
    }

    /// Runs one charged request of `len` bytes on `device` through the
    /// injection + retry machinery. `attempt(inner, take)` issues the
    /// real request for `take` bytes (short transfers re-issue with half
    /// the length to charge the partial work, then fail transiently).
    fn run_charged<T>(
        &mut self,
        device: &str,
        op: FaultOp,
        len: u64,
        mut attempt: impl FnMut(&mut B, u64) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let domain = self.inner.obs_clock();
        let mut retried = false;
        for try_no in 0..self.policy.max_attempts {
            let (idx, fault) = self
                .state
                .on_request(device, op, domain, self.inner.clock());
            let transient = match fault {
                None => {
                    let out = attempt(&mut self.inner, len)?;
                    if retried {
                        self.state.counters.retry_successes += 1;
                    }
                    return Ok(out);
                }
                Some(FaultKind::Latency(extra)) => {
                    self.inner.charge_penalty(extra);
                    let out = attempt(&mut self.inner, len)?;
                    if retried {
                        self.state.counters.retry_successes += 1;
                    }
                    return Ok(out);
                }
                Some(FaultKind::TornWriteBack) => {
                    // Pool-level fault: schedule it (real backends), then
                    // let the request itself proceed untouched.
                    self.inner.schedule_torn_write_back(device, 0);
                    let out = attempt(&mut self.inner, len)?;
                    if retried {
                        self.state.counters.retry_successes += 1;
                    }
                    return Ok(out);
                }
                Some(FaultKind::NoSpace) => {
                    return Err(StorageError::NoSpace {
                        device: device.to_string(),
                        requested: len,
                    });
                }
                Some(FaultKind::ShortRead | FaultKind::ShortWrite)
                    if len > 1 && op != FaultOp::Alloc =>
                {
                    // Move (and charge) half the request, then fail: the
                    // retry re-issues the full idempotent request.
                    attempt(&mut self.inner, len / 2)?;
                    StorageError::Transient {
                        device: device.to_string(),
                        op: op.name(),
                        request: idx,
                    }
                }
                Some(_) => StorageError::Transient {
                    device: device.to_string(),
                    op: op.name(),
                    request: idx,
                },
            };
            if try_no + 1 >= self.policy.max_attempts {
                self.state.counters.gave_up += 1;
                return Err(transient);
            }
            self.inner.charge_penalty(self.policy.backoff_for(try_no));
            self.state.note_retry(device, domain, self.inner.clock());
            retried = true;
        }
        unreachable!("loop returns before exhausting max_attempts");
    }
}

impl<B: StorageBackend> StorageBackend for Faulted<B> {
    fn alloc(&mut self, device: &str, len: u64) -> Result<FileId, StorageError> {
        self.run_charged(device, FaultOp::Alloc, len, |inner, _| {
            inner.alloc(device, len)
        })
    }

    fn read(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        let device = self.inner.device_of(file).to_string();
        self.run_charged(&device, FaultOp::Read, len, |inner, take| {
            inner.read(file, offset, take)
        })
    }

    fn write(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        let device = self.inner.device_of(file).to_string();
        self.run_charged(&device, FaultOp::Write, len, |inner, take| {
            inner.write(file, offset, take)
        })
    }

    fn write_bytes(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        let device = self.inner.device_of(file).to_string();
        self.run_charged(&device, FaultOp::Write, data.len() as u64, |inner, take| {
            inner.write_bytes(file, offset, &data[..take as usize])
        })
    }

    fn materialize(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        // Setup path: uncharged, not measured, not faulted.
        self.inner.materialize(file, offset, data)
    }

    fn charge_cpu(&mut self, seconds: f64) {
        self.inner.charge_cpu(seconds)
    }

    fn charge_penalty(&mut self, seconds: f64) {
        self.inner.charge_penalty(seconds)
    }

    fn clock(&self) -> f64 {
        self.inner.clock()
    }

    fn obs_clock(&self) -> ocas_obs::Clock {
        self.inner.obs_clock()
    }

    fn len(&self, file: FileId) -> u64 {
        self.inner.len(file)
    }

    fn device_of(&self, file: FileId) -> &str {
        self.inner.device_of(file)
    }

    fn device_stats(&self, device: &str) -> Option<DeviceStats> {
        self.inner.device_stats(device)
    }

    fn truncate_device(&mut self, device: &str, mark: u64) -> Result<(), StorageError> {
        self.inner.truncate_device(device, mark)
    }

    fn watermark(&self, device: &str) -> Option<u64> {
        self.inner.watermark(device)
    }

    fn recovery_counters(&self) -> Option<RecoveryCounters> {
        Some(self.counters())
    }

    fn note_degradation(&mut self, device: &str, what: &'static str) {
        self.state.counters.note_degradation(what);
        if ocas_obs::enabled() {
            ocas_obs::counter(
                self.inner.obs_clock(),
                &format!("degrade:{device}"),
                what,
                self.inner.clock(),
                1.0,
            );
        }
        self.inner.note_degradation(device, what);
    }

    fn schedule_torn_write_back(&mut self, device: &str, at: u64) -> bool {
        self.inner.schedule_torn_write_back(device, at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::StorageSim;
    use ocas_hierarchy::presets;

    fn sim() -> StorageSim {
        StorageSim::from_hierarchy(&presets::hdd_ram(1 << 25))
    }

    #[test]
    fn clean_plan_is_passthrough() {
        let mut f = Faulted::new(sim(), FaultPlan::new(), RetryPolicy::default());
        let file = f.alloc("HDD", 4096).unwrap();
        f.read(file, 0, 4096).unwrap();
        f.write(file, 0, 4096).unwrap();
        assert_eq!(f.counters(), RecoveryCounters::default());
    }

    #[test]
    fn transient_is_retried_and_succeeds() {
        // Request indices on HDD: 0 = alloc, 1 = read (faulted), 2 = the
        // retried read.
        let plan = FaultPlan::new().with("HDD", FaultOp::Read, 1, FaultKind::Transient);
        let mut f = Faulted::new(sim(), plan, RetryPolicy::default());
        let file = f.alloc("HDD", 4096).unwrap();
        let clock0 = f.clock();
        f.read(file, 0, 4096).unwrap();
        let c = f.counters();
        assert_eq!(c.transient_faults, 1);
        assert_eq!(c.retries, 1);
        assert_eq!(c.retry_successes, 1);
        assert_eq!(c.gave_up, 0);
        // Backoff was charged to the simulated clock.
        assert!(f.clock() - clock0 >= 0.001);
    }

    #[test]
    fn persistent_transient_gives_up_typed() {
        let plan = FaultPlan {
            specs: (0..16)
                .map(|i| FaultSpec {
                    device: "HDD".into(),
                    op: FaultOp::Read,
                    at: i,
                    kind: FaultKind::Transient,
                })
                .collect(),
        };
        let mut f = Faulted::new(sim(), plan, RetryPolicy::default());
        let file = f.alloc("HDD", 4096).unwrap();
        // alloc consumed index 0; reads churn through 1..=4 and give up.
        let err = f.read(file, 0, 4096).unwrap_err();
        assert!(matches!(err, StorageError::Transient { ref device, op, .. }
                if device == "HDD" && op == "read"));
        assert!(err.is_transient());
        assert_eq!(f.counters().gave_up, 1);
        assert_eq!(f.counters().retries, 3);
    }

    #[test]
    fn short_read_charges_partial_then_retries() {
        let plan = FaultPlan::new().with("HDD", FaultOp::Read, 1, FaultKind::ShortRead);
        let mut f = Faulted::new(sim(), plan, RetryPolicy::default());
        let file = f.alloc("HDD", 8192).unwrap();
        f.read(file, 0, 8192).unwrap();
        let stats = f.device_stats("HDD").unwrap();
        // Half the request moved before the failure; the full retry pays
        // only the tail the HDD read-ahead window doesn't already cover,
        // so total charged bytes equal one clean read.
        assert_eq!(stats.bytes_read, 8192);
        assert_eq!(f.counters().short_transfers, 1);
        assert_eq!(f.counters().retry_successes, 1);
    }

    #[test]
    fn no_space_surfaces_typed_capacity_intact() {
        let plan = FaultPlan::new().with("HDD", FaultOp::Alloc, 1, FaultKind::NoSpace);
        let mut f = Faulted::new(sim(), plan, RetryPolicy::default());
        let a = f.alloc("HDD", 1024).unwrap();
        let before = f.watermark("HDD").unwrap();
        let err = f.alloc("HDD", 2048).unwrap_err();
        assert!(
            matches!(err, StorageError::NoSpace { ref device, requested }
                if device == "HDD" && requested == 2048)
        );
        assert!(err.is_capacity());
        // Nothing was reserved by the failed alloc; the next one works
        // (consumes index 2) and lands at the old watermark.
        assert_eq!(f.watermark("HDD").unwrap(), before);
        let b = f.alloc("HDD", 2048).unwrap();
        assert_ne!(a, b);
        assert_eq!(f.counters().no_space_faults, 1);
    }

    #[test]
    fn latency_spike_charges_clock_and_succeeds() {
        let plan = FaultPlan::new().with("HDD", FaultOp::Write, 1, FaultKind::Latency(0.25));
        let mut f = Faulted::new(sim(), plan, RetryPolicy::default());
        let file = f.alloc("HDD", 4096).unwrap();
        let clock0 = f.clock();
        f.write(file, 0, 4096).unwrap();
        assert!(f.clock() - clock0 >= 0.25);
        assert_eq!(f.counters().latency_spikes, 1);
        assert_eq!(f.counters().retries, 0);
    }

    #[test]
    fn randomized_plans_are_seed_deterministic() {
        let a = FaultPlan::randomized(42, &["HDD", "SSD"], 8, 100);
        let b = FaultPlan::randomized(42, &["HDD", "SSD"], 8, 100);
        let c = FaultPlan::randomized(43, &["HDD", "SSD"], 8, 100);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.specs.len(), 8);
        assert!(a.specs.iter().all(|s| s.at < 100));
    }

    #[test]
    fn degradation_notes_flow_to_counters() {
        let mut f = Faulted::new(sim(), FaultPlan::new(), RetryPolicy::default());
        f.note_degradation("HDD", "shrink");
        f.note_degradation("HDD", "failover");
        let c = f.counters();
        assert_eq!(c.degraded_shrinks, 1);
        assert_eq!(c.degraded_failovers, 1);
        assert_eq!(c.degradations(), 2);
    }
}
