//! The backend seam: one trait over which the execution engine issues every
//! storage request, implemented by both the device *simulator*
//! ([`StorageSim`]) and — in the `ocas-runtime` crate — a real-I/O file
//! backend. The engine is generic over this trait, so every faithful-mode
//! plan execution can run unchanged against simulated devices or actual
//! files on disk, and the two executions issue the *same* request stream
//! (the property the cross-backend equivalence tests pin down).

use crate::device::DeviceStats;
use crate::fault::RecoveryCounters;
use crate::manager::{FileId, StorageError, StorageSim};

/// A clocked storage layer: named devices, extent allocation, read/write
/// request accounting and (for real backends) actual data transfer.
///
/// Two kinds of request coexist:
///
/// * **Accounting requests** ([`read`](StorageBackend::read) /
///   [`write`](StorageBackend::write)) carry no payload. The simulator
///   charges modeled time; a real backend moves that many actual bytes
///   (reading into a scratch buffer, writing filler) so wall-clock time is
///   honest even where the engine models data flow analytically.
/// * **Data requests** ([`write_bytes`](StorageBackend::write_bytes))
///   additionally carry the payload, so faithful-mode outputs land
///   byte-for-byte in real files. The simulator treats them exactly like
///   the accounting variant — both backends see identical request streams.
///
/// [`materialize`](StorageBackend::materialize) is the setup path: it
/// places input data into a file *without* charging the clock or counters,
/// so measurements cover only the algorithm under test.
pub trait StorageBackend {
    /// Allocates a file of `len` bytes on the named device.
    fn alloc(&mut self, device: &str, len: u64) -> Result<FileId, StorageError>;

    /// Reads `len` bytes at `offset` within `file` (accounting request).
    fn read(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError>;

    /// Writes `len` bytes at `offset` within `file` (accounting request).
    fn write(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError>;

    /// Writes `data` at `offset` within `file` (data request). Charged
    /// exactly like [`write`](StorageBackend::write) of `data.len()` bytes.
    fn write_bytes(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Places `data` at `offset` within `file` without charging the clock
    /// or the I/O counters (test/input setup, not measured work).
    fn materialize(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError>;

    /// Adds pure computation time to the clock. Real backends ignore this —
    /// their CPU time is part of wall time already.
    fn charge_cpu(&mut self, seconds: f64);

    /// Seconds elapsed so far: simulated seconds for the simulator,
    /// wall-clock seconds spent in I/O for a real backend.
    fn clock(&self) -> f64;

    /// Which [`ocas_obs`] clock domain this backend's [`clock`]
    /// (StorageBackend::clock) advances in: [`ocas_obs::Clock::Sim`] by
    /// default; real backends override with [`ocas_obs::Clock::Wall`].
    fn obs_clock(&self) -> ocas_obs::Clock {
        ocas_obs::Clock::Sim
    }

    /// File length in bytes.
    fn len(&self, file: FileId) -> u64;

    /// True if the file is empty.
    fn is_empty(&self, file: FileId) -> bool {
        self.len(file) == 0
    }

    /// Device name holding the file.
    fn device_of(&self, file: FileId) -> &str;

    /// Statistics for a device by name.
    fn device_stats(&self, device: &str) -> Option<DeviceStats>;

    /// Frees the most recent allocations down to `mark` bytes on a device.
    fn truncate_device(&mut self, device: &str, mark: u64) -> Result<(), StorageError>;

    /// Current allocation watermark of a device.
    fn watermark(&self, device: &str) -> Option<u64>;

    /// Charges fault-handling seconds (retry backoff, latency spikes) to
    /// the clock. Defaults to [`charge_cpu`](StorageBackend::charge_cpu);
    /// real backends override so the penalty lands on their I/O clock.
    fn charge_penalty(&mut self, seconds: f64) {
        self.charge_cpu(seconds);
    }

    /// Fault/recovery counters this backend accumulated, if it injects
    /// or recovers from faults (`None` for plain backends).
    fn recovery_counters(&self) -> Option<RecoveryCounters> {
        None
    }

    /// Records a degradation event on `device` (`"shrink"` /
    /// `"failover"`) for reporting. No-op by default.
    fn note_degradation(&mut self, _device: &str, _what: &'static str) {}

    /// Asks the backend to tear the `at`-th upcoming buffer-pool
    /// write-back on `device` (half the page persists; the recorded
    /// checksum keeps the full intent, so re-read detects the tear).
    /// Returns `false` where unsupported — the simulator holds no page
    /// data to tear.
    fn schedule_torn_write_back(&mut self, _device: &str, _at: u64) -> bool {
        false
    }
}

impl StorageBackend for StorageSim {
    fn alloc(&mut self, device: &str, len: u64) -> Result<FileId, StorageError> {
        StorageSim::alloc(self, device, len)
    }

    fn read(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        StorageSim::read(self, file, offset, len)
    }

    fn write(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        StorageSim::write(self, file, offset, len)
    }

    fn write_bytes(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        StorageSim::write(self, file, offset, data.len() as u64)
    }

    fn materialize(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        // The simulator keeps no data; setup only needs the extent to exist.
        let end = offset + data.len() as u64;
        if end > StorageSim::len(self, file) {
            return Err(StorageError::OutOfBounds {
                file: file.0,
                end,
                len: StorageSim::len(self, file),
            });
        }
        Ok(())
    }

    fn charge_cpu(&mut self, seconds: f64) {
        StorageSim::charge_cpu(self, seconds)
    }

    fn clock(&self) -> f64 {
        StorageSim::clock(self)
    }

    fn len(&self, file: FileId) -> u64 {
        StorageSim::len(self, file)
    }

    fn device_of(&self, file: FileId) -> &str {
        StorageSim::device_of(self, file)
    }

    fn device_stats(&self, device: &str) -> Option<DeviceStats> {
        StorageSim::device_stats(self, device)
    }

    fn truncate_device(&mut self, device: &str, mark: u64) -> Result<(), StorageError> {
        StorageSim::truncate_device(self, device, mark)
    }

    fn watermark(&self, device: &str) -> Option<u64> {
        StorageSim::watermark(self, device)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocas_hierarchy::presets;

    fn dyn_roundtrip(b: &mut dyn StorageBackend) {
        let f = b.alloc("HDD", 4096).unwrap();
        b.read(f, 0, 4096).unwrap();
        b.write_bytes(f, 0, &[7u8; 128]).unwrap();
        b.materialize(f, 0, &[1u8; 64]).unwrap();
        assert_eq!(b.len(f), 4096);
        assert!(!b.is_empty(f));
        assert_eq!(b.device_of(f), "HDD");
        assert!(b.clock() > 0.0);
        let stats = b.device_stats("HDD").unwrap();
        // materialize is uncharged; write_bytes charges page-rounded bytes.
        assert_eq!(stats.bytes_read, 4096);
        assert_eq!(stats.bytes_written, 4096);
    }

    #[test]
    fn storage_sim_is_object_safe_backend() {
        let h = presets::hdd_ram(1 << 25);
        let mut sm = StorageSim::from_hierarchy(&h);
        dyn_roundtrip(&mut sm);
    }

    #[test]
    fn materialize_checks_bounds() {
        let h = presets::hdd_ram(1 << 25);
        let mut sm = StorageSim::from_hierarchy(&h);
        let f = StorageSim::alloc(&mut sm, "HDD", 16).unwrap();
        assert!(matches!(
            StorageBackend::materialize(&mut sm, f, 8, &[0u8; 16]),
            Err(StorageError::OutOfBounds { .. })
        ));
    }
}
