//! Set-associative CPU-cache simulator.
//!
//! Used by the "BNL with cache" experiment: the paper measures a 98.2 %
//! reduction in data-cache misses when OCAS tiles the in-memory join loops
//! for a 3 MiB / 512 B-line cache. Tiling's effect is a deterministic
//! property of the access stream, so a standard LRU set-associative model
//! reproduces it.

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line-granular accesses.
    pub accesses: u64,
    /// Misses (line not resident).
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio in `[0, 1]` (0 when no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

/// LRU set-associative cache over a byte address space.
#[derive(Debug, Clone)]
pub struct CacheSim {
    line: u64,
    sets: usize,
    ways: usize,
    /// `tags[set]` ordered most-recent-first.
    tags: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Builds a cache of `size` bytes with `line`-byte lines and `ways`-way
    /// associativity (sets = size / line / ways, at least 1).
    pub fn new(size: u64, line: u64, ways: usize) -> CacheSim {
        let line = line.max(1);
        let ways = ways.max(1);
        let sets = ((size / line) as usize / ways).max(1);
        CacheSim {
            line,
            sets,
            ways,
            tags: vec![Vec::new(); sets],
            stats: CacheStats::default(),
        }
    }

    /// The paper's cache: 3 MiB, 512 B lines, 8-way.
    pub fn paper_cache() -> CacheSim {
        CacheSim::new(3 * 1024 * 1024, 512, 8)
    }

    /// Touches `len` bytes at `addr`, one access per line.
    pub fn access(&mut self, addr: u64, len: u64) {
        let first = addr / self.line;
        let last = (addr + len.max(1) - 1) / self.line;
        for l in first..=last {
            self.touch_line(l);
        }
    }

    /// Batched accounting for a contiguous run of `count` tuples of
    /// `tuple_bytes` each starting at `base` — **exactly** equivalent (same
    /// counters, same final cache state) to
    ///
    /// ```text
    /// for i in 0..count { self.access(base + i * tuple_bytes, tuple_bytes) }
    /// ```
    ///
    /// but O(lines) instead of O(tuples): because tuples are visited in
    /// address order, the per-tuple line stream is non-decreasing, so all
    /// touches of one line are consecutive. The first touch updates the
    /// LRU state; the remaining `t−1` touches of the same line would hit
    /// the MRU way without moving anything, so they collapse into counter
    /// increments. This is the accounting path of the engine's tiled BNL
    /// pair loop (one call per inner tile instead of one `access` per
    /// tuple visit).
    pub fn access_tuples(&mut self, base: u64, tuple_bytes: u64, count: u64) {
        let tb = tuple_bytes.max(1);
        if count == 0 {
            return;
        }
        let first = base / self.line;
        let last = (base + count * tb - 1) / self.line;
        for l in first..=last {
            // Tuples overlapping line l: i*tb < (l+1)*L - base and
            // (i+1)*tb > l*L - base, both relative to `base`.
            let line_start = (l * self.line).saturating_sub(base);
            let line_end = (l + 1) * self.line - base; // l ≥ base/L ⇒ no underflow
            let i_min = line_start / tb;
            let i_max = ((line_end - 1) / tb).min(count - 1);
            debug_assert!(i_max >= i_min);
            let touches = i_max - i_min + 1;
            self.touch_line(l);
            // The remaining touches are guaranteed hits on the MRU way:
            // count them without walking the LRU state.
            self.stats.accesses += touches - 1;
        }
    }

    fn touch_line(&mut self, l: u64) {
        self.stats.accesses += 1;
        let set = (l % self.sets as u64) as usize;
        let tag = l / self.sets as u64;
        let entry = &mut self.tags[set];
        if let Some(pos) = entry.iter().position(|t| *t == tag) {
            let t = entry.remove(pos);
            entry.insert(0, t);
        } else {
            self.stats.misses += 1;
            entry.insert(0, tag);
            entry.truncate(self.ways);
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Clears contents and counters.
    pub fn reset(&mut self) {
        for t in &mut self.tags {
            t.clear();
        }
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = CacheSim::new(1024, 64, 2);
        c.access(0, 64);
        c.access(0, 64);
        c.access(0, 64);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn working_set_larger_than_cache_thrashes() {
        let mut c = CacheSim::new(1024, 64, 1); // 16 lines, direct mapped.
                                                // Stream over 64 lines repeatedly: every access misses after warmup.
        for _ in 0..3 {
            for i in 0..64u64 {
                c.access(i * 64, 1);
            }
        }
        let s = c.stats();
        assert_eq!(s.accesses, 192);
        assert_eq!(s.misses, 192, "direct-mapped conflict on a long stream");
    }

    #[test]
    fn tiling_reduces_misses() {
        // The cache experiment in miniature: nested loops over two arrays
        // that don't fit together, untiled vs tiled.
        let size = 16 * 1024;
        let n: u64 = 512; // elements of 64 bytes = 32 KiB each side.
        let elem = 64;

        let mut untiled = CacheSim::new(size, 64, 4);
        for i in 0..n {
            for j in 0..n {
                untiled.access(i * elem, elem);
                untiled.access((1 << 24) + j * elem, elem);
            }
        }

        let mut tiled = CacheSim::new(size, 64, 4);
        let tile = 64; // 64 elements × 64 B = 4 KiB per side.
        let mut ti = 0;
        while ti < n {
            let mut tj = 0;
            while tj < n {
                for i in ti..(ti + tile).min(n) {
                    for j in tj..(tj + tile).min(n) {
                        tiled.access(i * elem, elem);
                        tiled.access((1 << 24) + j * elem, elem);
                    }
                }
                tj += tile;
            }
            ti += tile;
        }

        let u = untiled.stats();
        let t = tiled.stats();
        assert_eq!(u.accesses, t.accesses, "same work, different order");
        assert!(
            (t.misses as f64) < 0.1 * u.misses as f64,
            "tiling must reduce misses by >90%: untiled={} tiled={}",
            u.misses,
            t.misses
        );
    }

    #[test]
    fn access_tuples_matches_per_access_path_exactly() {
        // The batched accounting must be indistinguishable from the
        // per-tuple loop: same counters AND same cache state (verified by
        // replaying a probe stream on both afterwards). Geometry sweep
        // covers tuples smaller than / equal to / larger than a line,
        // line-aligned and unaligned bases, and runs shorter and longer
        // than the cache.
        let mut lcg = 0x2545_f491_4f6c_dd1du64;
        let mut rnd = move |m: u64| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) % m
        };
        for _ in 0..200 {
            let line = [32u64, 64, 512][rnd(3) as usize];
            let ways = 1 + rnd(4) as usize;
            let size = line * (1 + rnd(64));
            let tuple_bytes = 1 + rnd(3 * line);
            let base = rnd(4 * line);
            let count = rnd(300);
            let mut batched = CacheSim::new(size, line, ways);
            let mut reference = CacheSim::new(size, line, ways);
            // Warm both with an identical prefix so state parity is tested
            // from a non-empty cache too.
            for s in [&mut batched, &mut reference] {
                s.access(base / 2, 3 * line);
            }
            batched.access_tuples(base, tuple_bytes, count);
            for i in 0..count {
                reference.access(base + i * tuple_bytes, tuple_bytes);
            }
            assert_eq!(
                batched.stats(),
                reference.stats(),
                "counter parity: line={line} ways={ways} size={size} \
                 tb={tuple_bytes} base={base} count={count}"
            );
            // State parity: identical behavior on a probe stream.
            for probe in 0..32u64 {
                batched.access(probe * line * 3, 1);
                reference.access(probe * line * 3, 1);
            }
            assert_eq!(
                batched.stats(),
                reference.stats(),
                "state parity after probes: line={line} ways={ways} \
                 size={size} tb={tuple_bytes} base={base} count={count}"
            );
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut c = CacheSim::paper_cache();
        c.access(0, 4096);
        assert!(c.stats().accesses > 0);
        c.reset();
        assert_eq!(c.stats(), CacheStats::default());
    }
}
