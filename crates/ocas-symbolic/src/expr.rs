//! The symbolic expression tree.
//!
//! Cost formulas produced by the estimator are functions of input cardinalities
//! (`x`, `y`), tunable parameters (`k1`, `k2`, `b_in`, `b_out`) and exact
//! rational device constants. This module defines the tree; `simplify` turns it
//! into a canonical sum-of-products form and `eval` turns it into numbers.

use crate::rat::Rat;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// A symbolic arithmetic expression.
///
/// Construction goes through the associated functions and the overloaded
/// `+ - * /` operators; the representation is deliberately permissive
/// (non-canonical) — call [`Expr::simplify`] to normalize.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// An exact rational constant.
    Const(Rat),
    /// A free variable (input cardinality or tunable parameter).
    Var(String),
    /// n-ary sum.
    Add(Vec<Expr>),
    /// n-ary product.
    Mul(Vec<Expr>),
    /// Integer power; `Pow(e, -1)` is division by `e`.
    Pow(Box<Expr>, i32),
    /// Smallest integer not below the operand.
    Ceil(Box<Expr>),
    /// Largest integer not above the operand.
    Floor(Box<Expr>),
    /// Pointwise maximum.
    Max(Vec<Expr>),
    /// Pointwise minimum.
    Min(Vec<Expr>),
    /// Base-2 logarithm.
    Log2(Box<Expr>),
    /// `Σ_{var = from}^{to} body`; simplification extracts closed forms for
    /// bodies polynomial in `var` (the paper's Merge-Sort derivation needs
    /// `Σ_{j=0}^{x-1} (j+1) = x(x+1)/2`).
    Sum {
        /// The bound summation variable.
        var: String,
        /// Inclusive lower bound.
        from: Box<Expr>,
        /// Inclusive upper bound.
        to: Box<Expr>,
        /// Summand, may mention `var`.
        body: Box<Expr>,
    },
}

impl Expr {
    /// Integer constant.
    pub fn int(n: i128) -> Expr {
        Expr::Const(Rat::int(n))
    }

    /// Rational constant `num/den`.
    pub fn rat(num: i128, den: i128) -> Expr {
        Expr::Const(Rat::new(num, den))
    }

    /// The constant zero.
    pub fn zero() -> Expr {
        Expr::Const(Rat::ZERO)
    }

    /// The constant one.
    pub fn one() -> Expr {
        Expr::Const(Rat::ONE)
    }

    /// A named variable.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// `ceil(self)`.
    pub fn ceil(self) -> Expr {
        Expr::Ceil(Box::new(self))
    }

    /// `floor(self)`.
    pub fn floor(self) -> Expr {
        Expr::Floor(Box::new(self))
    }

    /// `log2(self)`.
    pub fn log2(self) -> Expr {
        Expr::Log2(Box::new(self))
    }

    /// Binary maximum (use [`Expr::max_of`] for more operands).
    pub fn max(self, other: Expr) -> Expr {
        Expr::Max(vec![self, other])
    }

    /// Binary minimum.
    pub fn min(self, other: Expr) -> Expr {
        Expr::Min(vec![self, other])
    }

    /// n-ary maximum.
    pub fn max_of(items: Vec<Expr>) -> Expr {
        Expr::Max(items)
    }

    /// n-ary minimum.
    pub fn min_of(items: Vec<Expr>) -> Expr {
        Expr::Min(items)
    }

    /// Integer power.
    pub fn pow(self, exp: i32) -> Expr {
        Expr::Pow(Box::new(self), exp)
    }

    /// Multiplicative inverse.
    pub fn recip(self) -> Expr {
        self.pow(-1)
    }

    /// `Σ_{var=from}^{to} body`.
    pub fn sum(var: impl Into<String>, from: Expr, to: Expr, body: Expr) -> Expr {
        Expr::Sum {
            var: var.into(),
            from: Box::new(from),
            to: Box::new(to),
            body: Box::new(body),
        }
    }

    /// The constant value if this node is a constant.
    pub fn as_const(&self) -> Option<Rat> {
        match self {
            Expr::Const(r) => Some(*r),
            _ => None,
        }
    }

    /// True if this is the literal constant zero.
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Const(r) if r.is_zero())
    }

    /// Collects the free variables (summation variables are bound).
    pub fn vars(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                out.insert(v.clone());
            }
            Expr::Add(xs) | Expr::Mul(xs) | Expr::Max(xs) | Expr::Min(xs) => {
                for x in xs {
                    x.collect_vars(out);
                }
            }
            Expr::Pow(e, _) | Expr::Ceil(e) | Expr::Floor(e) | Expr::Log2(e) => e.collect_vars(out),
            Expr::Sum {
                var,
                from,
                to,
                body,
            } => {
                from.collect_vars(out);
                to.collect_vars(out);
                let mut inner = BTreeSet::new();
                body.collect_vars(&mut inner);
                inner.remove(var);
                out.extend(inner);
            }
        }
    }

    /// Capture-avoiding substitution of `name` by `with`.
    pub fn subst(&self, name: &str, with: &Expr) -> Expr {
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(v) => {
                if v == name {
                    with.clone()
                } else {
                    self.clone()
                }
            }
            Expr::Add(xs) => Expr::Add(xs.iter().map(|x| x.subst(name, with)).collect()),
            Expr::Mul(xs) => Expr::Mul(xs.iter().map(|x| x.subst(name, with)).collect()),
            Expr::Max(xs) => Expr::Max(xs.iter().map(|x| x.subst(name, with)).collect()),
            Expr::Min(xs) => Expr::Min(xs.iter().map(|x| x.subst(name, with)).collect()),
            Expr::Pow(e, k) => Expr::Pow(Box::new(e.subst(name, with)), *k),
            Expr::Ceil(e) => Expr::Ceil(Box::new(e.subst(name, with))),
            Expr::Floor(e) => Expr::Floor(Box::new(e.subst(name, with))),
            Expr::Log2(e) => Expr::Log2(Box::new(e.subst(name, with))),
            Expr::Sum {
                var,
                from,
                to,
                body,
            } => {
                let body = if var == name {
                    body.clone() // `name` is shadowed inside the sum.
                } else {
                    Box::new(body.subst(name, with))
                };
                Expr::Sum {
                    var: var.clone(),
                    from: Box::new(from.subst(name, with)),
                    to: Box::new(to.subst(name, with)),
                    body,
                }
            }
        }
    }

    /// Substitutes several variables at once.
    pub fn subst_all<'a>(&self, pairs: impl IntoIterator<Item = (&'a str, Expr)>) -> Expr {
        let mut out = self.clone();
        for (name, with) in pairs {
            out = out.subst(name, &with);
        }
        out
    }
}

impl From<i64> for Expr {
    fn from(n: i64) -> Expr {
        Expr::int(n as i128)
    }
}

impl From<u64> for Expr {
    fn from(n: u64) -> Expr {
        Expr::int(n as i128)
    }
}

impl From<Rat> for Expr {
    fn from(r: Rat) -> Expr {
        Expr::Const(r)
    }
}

impl Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Add(vec![self, rhs])
    }
}

impl Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Add(vec![self, Expr::Mul(vec![Expr::int(-1), rhs])])
    }
}

impl Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Mul(vec![self, rhs])
    }
}

impl Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Mul(vec![self, rhs.pow(-1)])
    }
}

impl Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::Mul(vec![Expr::int(-1), self])
    }
}

/// Precedence levels for the pretty printer.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Add(_) => 1,
        Expr::Mul(_) => 2,
        Expr::Pow(_, _) => 3,
        Expr::Const(r) if r.is_negative() || !r.is_integer() => 2,
        _ => 4,
    }
}

fn write_child(f: &mut fmt::Formatter<'_>, child: &Expr, parent_prec: u8) -> fmt::Result {
    if prec(child) < parent_prec {
        write!(f, "({child})")
    } else {
        write!(f, "{child}")
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(r) => write!(f, "{r}"),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(xs) => {
                if xs.is_empty() {
                    return write!(f, "0");
                }
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write_child(f, x, 1)?;
                }
                Ok(())
            }
            Expr::Mul(xs) => {
                if xs.is_empty() {
                    return write!(f, "1");
                }
                // Render trailing negative powers as a division for readability.
                let (num, den): (Vec<&Expr>, Vec<&Expr>) = xs
                    .iter()
                    .partition(|x| !matches!(x, Expr::Pow(_, k) if *k < 0));
                let write_product = |f: &mut fmt::Formatter<'_>, items: &[&Expr]| -> fmt::Result {
                    if items.is_empty() {
                        return write!(f, "1");
                    }
                    for (i, x) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, "*")?;
                        }
                        write_child(f, x, 2)?;
                    }
                    Ok(())
                };
                write_product(f, &num)?;
                for d in den {
                    if let Expr::Pow(base, k) = d {
                        write!(f, "/")?;
                        if *k == -1 {
                            write_child(f, base, 3)?;
                        } else {
                            write_child(f, base, 3)?;
                            write!(f, "^{}", -k)?;
                        }
                    }
                }
                Ok(())
            }
            Expr::Pow(e, k) => {
                if *k < 0 {
                    write!(f, "1/")?;
                    write_child(f, e, 3)?;
                    if *k != -1 {
                        write!(f, "^{}", -k)?;
                    }
                    Ok(())
                } else {
                    write_child(f, e, 4)?;
                    write!(f, "^{k}")
                }
            }
            Expr::Ceil(e) => write!(f, "ceil({e})"),
            Expr::Floor(e) => write!(f, "floor({e})"),
            Expr::Max(xs) => {
                write!(f, "max(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Min(xs) => {
                write!(f, "min(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Log2(e) => write!(f, "log2({e})"),
            Expr::Sum {
                var,
                from,
                to,
                body,
            } => write!(f, "sum({var} = {from} .. {to}, {body})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn operator_construction() {
        let x = Expr::var("x");
        let e = (x.clone() + Expr::int(1)) * x;
        assert_eq!(e.vars().into_iter().collect::<Vec<_>>(), vec!["x"]);
    }

    #[test]
    fn vars_exclude_bound_sum_variable() {
        let s = Expr::sum(
            "j",
            Expr::int(0),
            Expr::var("x") - Expr::int(1),
            Expr::var("j") + Expr::var("c"),
        );
        let vs = s.vars();
        assert!(vs.contains("x"));
        assert!(vs.contains("c"));
        assert!(!vs.contains("j"));
    }

    #[test]
    fn subst_respects_shadowing() {
        let s = Expr::sum("j", Expr::int(0), Expr::var("j"), Expr::var("j"));
        let t = s.subst("j", &Expr::int(5));
        match t {
            Expr::Sum { to, body, .. } => {
                // Free occurrence in the bound is replaced; body occurrence is not.
                assert_eq!(*to, Expr::int(5));
                assert_eq!(*body, Expr::var("j"));
            }
            other => panic!("expected sum, got {other:?}"),
        }
    }

    #[test]
    fn display_round_trips_visually() {
        let e = Expr::var("x") / Expr::var("k1") + Expr::int(2) * Expr::var("y");
        let s = format!("{e}");
        assert!(s.contains("x/k1"), "got {s}");
        assert!(s.contains("2*y"), "got {s}");
    }
}
