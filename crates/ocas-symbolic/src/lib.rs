//! Symbolic arithmetic for the OCAS cost estimator.
//!
//! The OCAS synthesizer (Klonatos et al., *Automatic Synthesis of Out-of-Core
//! Algorithms*, SIGMOD 2013, §5) characterizes the cost of a candidate program
//! as a closed-form arithmetic expression over
//!
//! * input cardinalities (e.g. `x = |R|`, `y = |S|`),
//! * tunable parameters (block sizes `k1`, `k2`, buffer sizes `b_in`, `b_out`),
//! * exact device constants (`InitCom`, `UnitTr` weights from the hierarchy).
//!
//! This crate provides that expression language: construction with overloaded
//! operators, a canonicalizing [`simplify`] pass with **closed-form bounded
//! sums** (the paper's §7.2 shows the engine turning the naive insertion-sort
//! cost `Σ_{j=0}^{x-1}(InitCom + (j+1)(…))` into `x·InitCom + x(x+1)/2·(…)`;
//! the same machinery lives in [`simplify`]), and numeric [`eval`]uation used
//! by the parameter optimizer.
//!
//! # Example
//!
//! ```
//! use ocas_symbolic::{Expr, Env, simplify, eval};
//!
//! // Cost of a blocked scan: ceil(x/k) seeks plus x transfer units.
//! let x = Expr::var("x");
//! let k = Expr::var("k");
//! let cost = (x.clone() / k).ceil() * Expr::rat(15, 1000) + x * Expr::rat(1, 31457280);
//! let cost = simplify(&cost);
//! let env = Env::new().with("x", 1_073_741_824.0).with("k", 8.0 * 1024.0 * 1024.0);
//! let seconds = eval(&cost, &env).unwrap();
//! assert!(seconds > 30.0 && seconds < 40.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod eval;
mod expr;
mod rat;
mod simplify;

pub use eval::{eval, Env, EvalError};
pub use expr::Expr;
pub use rat::Rat;
pub use simplify::simplify;
