//! Normalization of [`Expr`] into a canonical sum-of-products form.
//!
//! The canonical form is a polynomial with exact rational coefficients over
//! *atoms* — maximal subexpressions that are not themselves sums, products or
//! integer powers (variables, `ceil`, `max`, `log2`, unexpanded `Σ`, and
//! multi-term denominators). Two cost formulas that the paper would consider
//! "the same after its arithmetic engine runs" normalize to identical trees,
//! which the synthesizer exploits both for display and for deduplication.

use crate::expr::Expr;
use crate::rat::Rat;
use std::collections::BTreeMap;

/// A monomial: atoms with non-zero integer exponents.
type Monomial = BTreeMap<Expr, i32>;

/// A polynomial: monomials with non-zero rational coefficients.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
struct Poly {
    terms: BTreeMap<Monomial, Rat>,
}

impl Poly {
    fn constant(r: Rat) -> Poly {
        let mut terms = BTreeMap::new();
        if !r.is_zero() {
            terms.insert(Monomial::new(), r);
        }
        Poly { terms }
    }

    fn atom(a: Expr) -> Poly {
        if let Expr::Const(r) = a {
            return Poly::constant(r);
        }
        let mut m = Monomial::new();
        m.insert(a, 1);
        let mut terms = BTreeMap::new();
        terms.insert(m, Rat::ONE);
        Poly { terms }
    }

    fn add(&self, other: &Poly) -> Poly {
        let mut out = self.terms.clone();
        for (m, c) in &other.terms {
            let entry = out.entry(m.clone()).or_insert(Rat::ZERO);
            *entry = *entry + *c;
            if entry.is_zero() {
                out.remove(m);
            }
        }
        Poly { terms: out }
    }

    fn neg(&self) -> Poly {
        Poly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), -*c)).collect(),
        }
    }

    fn mul(&self, other: &Poly) -> Poly {
        let mut out: BTreeMap<Monomial, Rat> = BTreeMap::new();
        for (m1, c1) in &self.terms {
            for (m2, c2) in &other.terms {
                let mut m = m1.clone();
                for (a, e) in m2 {
                    let slot = m.entry(a.clone()).or_insert(0);
                    *slot += e;
                    if *slot == 0 {
                        m.remove(a);
                    }
                }
                let c = *c1 * *c2;
                let entry = out.entry(m).or_insert(Rat::ZERO);
                *entry = *entry + c;
            }
        }
        out.retain(|_, c| !c.is_zero());
        Poly { terms: out }
    }

    fn powi(&self, exp: u32) -> Poly {
        let mut out = Poly::constant(Rat::ONE);
        for _ in 0..exp {
            out = out.mul(self);
        }
        out
    }

    fn as_const(&self) -> Option<Rat> {
        if self.terms.is_empty() {
            return Some(Rat::ZERO);
        }
        if self.terms.len() == 1 {
            let (m, c) = self.terms.iter().next().unwrap();
            if m.is_empty() {
                return Some(*c);
            }
        }
        None
    }

    /// The single-monomial view, if this polynomial has exactly one term.
    fn as_single(&self) -> Option<(&Monomial, Rat)> {
        if self.terms.len() == 1 {
            let (m, c) = self.terms.iter().next().unwrap();
            Some((m, *c))
        } else {
            None
        }
    }
}

/// Simplifies an expression into canonical sum-of-products form.
pub fn simplify(e: &Expr) -> Expr {
    from_poly(&to_poly(e))
}

fn to_poly(e: &Expr) -> Poly {
    match e {
        Expr::Const(r) => Poly::constant(*r),
        Expr::Var(_) => Poly::atom(e.clone()),
        Expr::Add(xs) => {
            let mut acc = Poly::default();
            for x in xs {
                acc = acc.add(&to_poly(x));
            }
            acc
        }
        Expr::Mul(xs) => product_poly(xs.iter().map(|x| (x.clone(), 1))),
        Expr::Pow(base, k) => product_poly([((**base).clone(), *k)]),
        Expr::Ceil(inner) => rounded(inner, true),
        Expr::Floor(inner) => rounded(inner, false),
        Expr::Max(xs) => fold_minmax(xs, true),
        Expr::Min(xs) => fold_minmax(xs, false),
        Expr::Log2(inner) => {
            let p = to_poly(inner);
            if let Some(c) = p.as_const() {
                if let Some(l) = c.exact_log2() {
                    return Poly::constant(Rat::int(l as i128));
                }
            }
            Poly::atom(Expr::Log2(Box::new(from_poly(&p))))
        }
        Expr::Sum {
            var,
            from,
            to,
            body,
        } => sum_poly(var, from, to, body),
    }
}

/// Multiplies a list of `(factor, exponent)` pairs. Factors are first
/// canonicalized and collected into a multiset so that syntactically equal
/// factors with opposite exponents cancel *before* polynomial expansion —
/// this is what makes `(x+1) * 1/(x+1)` collapse to `1` even though the
/// inverse of a multi-term polynomial is otherwise an opaque atom.
fn product_poly(factors: impl IntoIterator<Item = (Expr, i32)>) -> Poly {
    let mut coeff = Rat::ONE;
    let mut bases: BTreeMap<Expr, i32> = BTreeMap::new();
    let mut saw_zero = false;
    let mut stack: Vec<(Expr, i32)> = factors.into_iter().collect();
    while let Some((x, k)) = stack.pop() {
        match x {
            Expr::Mul(inner) => stack.extend(inner.into_iter().map(|i| (i, k))),
            Expr::Pow(b, j) => stack.push((*b, k.saturating_mul(j))),
            other => {
                let s = simplify(&other);
                match s {
                    Expr::Const(r) => {
                        if r.is_zero() {
                            saw_zero = true;
                        } else {
                            coeff = coeff * r.powi(k);
                        }
                    }
                    s => *bases.entry(s).or_insert(0) += k,
                }
            }
        }
    }
    if saw_zero {
        return Poly::default();
    }
    let mut acc = Poly::constant(coeff);
    for (base, exp) in bases {
        if exp != 0 {
            acc = acc.mul(&pow_poly(&to_poly(&base), exp));
        }
    }
    acc
}

fn pow_poly(p: &Poly, k: i32) -> Poly {
    if k == 0 {
        return Poly::constant(Rat::ONE);
    }
    if k > 0 {
        return p.powi(k as u32);
    }
    // Negative exponent: invert. Exact inversion is possible for a single
    // monomial; otherwise the whole polynomial becomes an atom.
    if let Some(c) = p.as_const() {
        return Poly::constant(c.powi(k));
    }
    if let Some((m, c)) = p.as_single() {
        let mut inv = Monomial::new();
        for (a, e) in m {
            inv.insert(a.clone(), -e);
        }
        let base = Poly {
            terms: [(inv, c.recip())].into_iter().collect(),
        };
        return base.powi((-k) as u32);
    }
    let atom = from_poly(p);
    let mut m = Monomial::new();
    m.insert(atom, k);
    Poly {
        terms: [(m, Rat::ONE)].into_iter().collect(),
    }
}

/// `ceil`/`floor` handling: fold constants, collapse nested rounding, and pull
/// integer-constant addends out (`ceil(x + 3) = ceil(x) + 3`).
fn rounded(inner: &Expr, is_ceil: bool) -> Poly {
    let p = to_poly(inner);
    if let Some(c) = p.as_const() {
        return Poly::constant(if is_ceil { c.ceil() } else { c.floor() });
    }
    // Split off an integer constant addend.
    let mut shifted = p.clone();
    let mut offset = Rat::ZERO;
    if let Some(c) = shifted.terms.get(&Monomial::new()).copied() {
        if c.is_integer() {
            offset = c;
            shifted.terms.remove(&Monomial::new());
        }
    }
    let rebuilt = from_poly(&shifted);
    // Nested rounding of the same kind collapses; a bare rounded atom of an
    // already-rounded expression also collapses.
    let atom = match (&rebuilt, is_ceil) {
        (Expr::Ceil(_), true) | (Expr::Floor(_), false) => rebuilt,
        _ if is_ceil => Expr::Ceil(Box::new(rebuilt)),
        _ => Expr::Floor(Box::new(rebuilt)),
    };
    Poly::atom(atom).add(&Poly::constant(offset))
}

fn fold_minmax(xs: &[Expr], is_max: bool) -> Poly {
    let mut consts: Vec<Rat> = Vec::new();
    let mut others: Vec<Expr> = Vec::new();
    let mut stack: Vec<Expr> = xs.to_vec();
    while let Some(x) = stack.pop() {
        // Flatten same-kind nesting.
        match (&x, is_max) {
            (Expr::Max(inner), true) | (Expr::Min(inner), false) => {
                stack.extend(inner.iter().cloned());
                continue;
            }
            _ => {}
        }
        let s = simplify(&x);
        match s.as_const() {
            Some(c) => consts.push(c),
            None => {
                if !others.contains(&s) {
                    others.push(s);
                }
            }
        }
    }
    let folded = if is_max {
        consts.into_iter().max()
    } else {
        consts.into_iter().min()
    };
    let mut items = others;
    if let Some(c) = folded {
        items.push(Expr::Const(c));
    }
    items.sort();
    items.dedup();
    match items.len() {
        0 => Poly::default(),
        1 => to_poly(&items[0]),
        _ => Poly::atom(if is_max {
            Expr::Max(items)
        } else {
            Expr::Min(items)
        }),
    }
}

/// Closed-form extraction for `Σ_{var=from}^{to} body` when `body` is a
/// polynomial of degree ≤ 3 in `var` (Faulhaber). Falls back to an unexpanded
/// `Sum` atom otherwise.
fn sum_poly(var: &str, from: &Expr, to: &Expr, body: &Expr) -> Poly {
    let from_p = to_poly(from);
    let to_p = to_poly(to);
    let body_p = to_poly(body);
    let a = from_poly(&from_p);
    let b = from_poly(&to_p);

    // Collect the body as Σ coeff(rest) * var^p. Bail out if `var` occurs
    // inside a non-variable atom (e.g. ceil(var/2)).
    let var_atom = Expr::Var(var.to_string());
    let mut by_power: BTreeMap<i32, Poly> = BTreeMap::new();
    for (m, c) in &body_p.terms {
        let mut power = 0;
        let mut rest = Monomial::new();
        let mut opaque = false;
        for (atom, e) in m {
            if *atom == var_atom {
                power = *e;
            } else if atom.vars().contains(var) {
                opaque = true;
                break;
            } else {
                rest.insert(atom.clone(), *e);
            }
        }
        if opaque || !(0..=3).contains(&power) {
            let atom = Expr::Sum {
                var: var.to_string(),
                from: Box::new(a),
                to: Box::new(b),
                body: Box::new(from_poly(&body_p)),
            };
            return Poly::atom(atom);
        }
        let term = Poly {
            terms: [(rest, *c)].into_iter().collect(),
        };
        let slot = by_power.entry(power).or_default();
        *slot = slot.add(&term);
    }

    // Σ_{j=a}^{b} j^p  via prefix sums  S_p(b) - S_p(a-1).
    let prefix = |p: i32, n: &Poly| -> Poly {
        // S_p(n) = Σ_{j=1}^{n} j^p (valid as a polynomial identity for all n).
        let n1 = n.add(&Poly::constant(Rat::ONE));
        match p {
            0 => n.clone(),
            1 => n.mul(&n1).mul(&Poly::constant(Rat::new(1, 2))),
            2 => {
                let two_n1 = n
                    .mul(&Poly::constant(Rat::int(2)))
                    .add(&Poly::constant(Rat::ONE));
                n.mul(&n1).mul(&two_n1).mul(&Poly::constant(Rat::new(1, 6)))
            }
            3 => {
                let s1 = n.mul(&n1).mul(&Poly::constant(Rat::new(1, 2)));
                s1.mul(&s1)
            }
            _ => unreachable!("degree checked above"),
        }
    };
    let a_minus_1 = from_p.add(&Poly::constant(Rat::ONE).neg());
    let mut acc = Poly::default();
    for (p, coeff) in by_power {
        let span = prefix(p, &to_p).add(&prefix(p, &a_minus_1).neg());
        acc = acc.add(&coeff.mul(&span));
    }
    acc
}

fn from_poly(p: &Poly) -> Expr {
    if p.terms.is_empty() {
        return Expr::int(0);
    }
    let mut terms: Vec<Expr> = Vec::with_capacity(p.terms.len());
    for (m, c) in &p.terms {
        let mut factors: Vec<Expr> = Vec::new();
        if !c.is_one() || m.is_empty() {
            factors.push(Expr::Const(*c));
        }
        for (atom, e) in m {
            match *e {
                1 => factors.push(atom.clone()),
                k => factors.push(Expr::Pow(Box::new(atom.clone()), k)),
            }
        }
        terms.push(match factors.len() {
            1 => factors.pop().unwrap(),
            _ => Expr::Mul(factors),
        });
    }
    if terms.len() == 1 {
        terms.pop().unwrap()
    } else {
        Expr::Add(terms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn combines_like_terms() {
        let x = v("x");
        let e = x.clone() + x.clone() + Expr::int(3) * x.clone() - x.clone();
        assert_eq!(simplify(&e), simplify(&(Expr::int(4) * v("x"))));
    }

    #[test]
    fn cancels_divisions() {
        let e = v("k") * v("x") / v("k");
        assert_eq!(simplify(&e), Expr::var("x"));
    }

    #[test]
    fn expands_products() {
        let e = (v("x") + Expr::int(1)) * (v("x") - Expr::int(1));
        let expect = simplify(&(v("x") * v("x") - Expr::int(1)));
        assert_eq!(simplify(&e), expect);
    }

    #[test]
    fn folds_constants() {
        let e = Expr::rat(1, 2) + Expr::rat(1, 3) * Expr::int(6);
        assert_eq!(simplify(&e), Expr::rat(5, 2));
    }

    #[test]
    fn paper_insertion_sort_sum() {
        // Σ_{j=0}^{x-1} (seek + (j+1)·unit)  =  x·seek + x(x+1)/2·unit
        let body = v("seek") + (v("j") + Expr::int(1)) * v("unit");
        let s = Expr::sum("j", Expr::int(0), v("x") - Expr::int(1), body);
        let got = simplify(&s);
        let expect = simplify(
            &(v("x") * v("seek") + v("x") * (v("x") + Expr::int(1)) * Expr::rat(1, 2) * v("unit")),
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn sum_of_squares_closed_form() {
        let s = Expr::sum("j", Expr::int(1), v("n"), v("j") * v("j"));
        let got = simplify(&s);
        let expect = simplify(
            &(v("n")
                * (v("n") + Expr::int(1))
                * (Expr::int(2) * v("n") + Expr::int(1))
                * Expr::rat(1, 6)),
        );
        assert_eq!(got, expect);
    }

    #[test]
    fn opaque_sum_is_kept() {
        let s = Expr::sum("j", Expr::int(0), v("n"), Expr::Ceil(Box::new(v("j"))));
        let got = simplify(&s);
        assert!(matches!(got, Expr::Sum { .. }), "got {got}");
    }

    #[test]
    fn minmax_folding() {
        let e = Expr::max_of(vec![Expr::int(3), Expr::int(7), v("x")]);
        match simplify(&e) {
            Expr::Max(items) => {
                assert_eq!(items.len(), 2);
                assert!(items.contains(&Expr::int(7)));
                assert!(items.contains(&v("x")));
            }
            other => panic!("expected max, got {other}"),
        }
        assert_eq!(
            simplify(&Expr::min_of(vec![Expr::int(3), Expr::int(7)])),
            Expr::int(3)
        );
        assert_eq!(simplify(&Expr::max_of(vec![v("x"), v("x")])), v("x"));
    }

    #[test]
    fn ceil_constant_and_offset() {
        assert_eq!(simplify(&Expr::rat(7, 2).ceil()), Expr::int(4));
        let e = (v("x") + Expr::int(3)).ceil();
        let got = simplify(&e);
        let expect = simplify(&(v("x").ceil() + Expr::int(3)));
        assert_eq!(got, expect);
    }

    #[test]
    fn log2_power_of_two() {
        assert_eq!(simplify(&Expr::int(1024).log2()), Expr::int(10));
        assert!(matches!(simplify(&v("x").log2()), Expr::Log2(_)));
    }

    #[test]
    fn division_by_multiterm_is_atom_but_cancels() {
        let d = v("x") + Expr::int(1);
        let e = d.clone() * (Expr::one() / d.clone());
        assert_eq!(simplify(&e), Expr::int(1));
    }

    #[test]
    fn simplify_is_idempotent() {
        let exprs = [
            v("x") / v("k") + v("y") * Expr::rat(2, 3),
            Expr::sum("j", Expr::int(0), v("n"), v("j")),
            Expr::max_of(vec![v("a"), v("b"), Expr::int(1)]),
            (v("x") + Expr::int(2)).ceil() * v("k").recip(),
        ];
        for e in exprs {
            let once = simplify(&e);
            let twice = simplify(&once);
            assert_eq!(once, twice, "not idempotent for {e}");
        }
    }
}
