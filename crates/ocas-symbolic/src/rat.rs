//! Exact rational numbers over `i128`.
//!
//! The cost estimator manipulates device constants such as
//! `InitCom[HDD→RAM] = 15 ms = 3/200 s` and `UnitTr = 1 s / 30 MiB =
//! 1/31457280 s/byte`. Keeping these exact (instead of `f64`) makes the
//! symbolic simplifier's term combination and cancellation deterministic,
//! which in turn makes search-space deduplication and cost comparison stable.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128,
}

/// Greatest common divisor (always non-negative).
fn gcd(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rat {
    /// The rational zero.
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    /// Builds `num/den`, normalizing sign and reducing by the gcd.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Builds the integer rational `n/1`.
    pub fn int(n: i128) -> Rat {
        Rat { num: n, den: 1 }
    }

    /// Numerator (sign-carrying).
    pub fn num(self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn den(self) -> i128 {
        self.den
    }

    /// True if the value is zero.
    pub fn is_zero(self) -> bool {
        self.num == 0
    }

    /// True if the value is exactly one.
    pub fn is_one(self) -> bool {
        self.num == 1 && self.den == 1
    }

    /// True if the value is an integer.
    pub fn is_integer(self) -> bool {
        self.den == 1
    }

    /// True if the value is negative.
    pub fn is_negative(self) -> bool {
        self.num < 0
    }

    /// Converts to `f64` (may lose precision for huge numerators).
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics on zero.
    pub fn recip(self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    /// Smallest integer `>= self`, as a rational.
    pub fn ceil(self) -> Rat {
        Rat::int(self.num.div_euclid(self.den) + i128::from(self.num.rem_euclid(self.den) != 0))
    }

    /// Largest integer `<= self`, as a rational.
    pub fn floor(self) -> Rat {
        Rat::int(self.num.div_euclid(self.den))
    }

    /// Integer power (negative exponents take the reciprocal first).
    pub fn powi(self, exp: i32) -> Rat {
        let base = if exp < 0 { self.recip() } else { self };
        let mut out = Rat::ONE;
        for _ in 0..exp.unsigned_abs() {
            out = out * base;
        }
        out
    }

    /// `log2(self)` if `self` is an exact power of two, else `None`.
    pub fn exact_log2(self) -> Option<i32> {
        if self.num <= 0 {
            return None;
        }
        let log_of = |v: i128| -> Option<i32> {
            if v.count_ones() == 1 {
                Some(v.trailing_zeros() as i32)
            } else {
                None
            }
        };
        match (self.num, self.den) {
            (n, 1) => log_of(n),
            (1, d) => log_of(d).map(|e| -e),
            _ => None,
        }
    }
}

impl From<i128> for Rat {
    fn from(n: i128) -> Rat {
        Rat::int(n)
    }
}

impl From<i64> for Rat {
    fn from(n: i64) -> Rat {
        Rat::int(n as i128)
    }
}

impl From<u64> for Rat {
    fn from(n: u64) -> Rat {
        Rat::int(n as i128)
    }
}

impl From<i32> for Rat {
    fn from(n: i32) -> Rat {
        Rat::int(n as i128)
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, rhs: Rat) -> Rat {
        // Reduce cross terms first to delay overflow.
        let g = gcd(self.den, rhs.den).max(1);
        let l = self.den / g * rhs.den;
        Rat::new(self.num * (rhs.den / g) + rhs.num * (self.den / g), l)
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, rhs: Rat) -> Rat {
        self + (-rhs)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, rhs: Rat) -> Rat {
        // Cross-reduce before multiplying to keep magnitudes small.
        let g1 = gcd(self.num, rhs.den).max(1);
        let g2 = gcd(rhs.num, self.den).max(1);
        Rat::new(
            (self.num / g1) * (rhs.num / g2),
            (self.den / g2) * (rhs.den / g1),
        )
    }
}

impl Div for Rat {
    type Output = Rat;
    // Dividing by a rational IS multiplying by its reciprocal.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rat) -> Rat {
        self * rhs.recip()
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Rat) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Rat) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b (denominators positive).
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_sign_and_gcd() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(1, -2), Rat::new(-1, 2));
        assert_eq!(Rat::new(-3, -9), Rat::new(1, 3));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let half = Rat::new(1, 2);
        let third = Rat::new(1, 3);
        assert_eq!(half + third, Rat::new(5, 6));
        assert_eq!(half - third, Rat::new(1, 6));
        assert_eq!(half * third, Rat::new(1, 6));
        assert_eq!(half / third, Rat::new(3, 2));
        assert_eq!(-half, Rat::new(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::int(5) > Rat::new(9, 2));
    }

    #[test]
    fn ceil_floor() {
        assert_eq!(Rat::new(7, 2).ceil(), Rat::int(4));
        assert_eq!(Rat::new(7, 2).floor(), Rat::int(3));
        assert_eq!(Rat::new(-7, 2).ceil(), Rat::int(-3));
        assert_eq!(Rat::new(-7, 2).floor(), Rat::int(-4));
        assert_eq!(Rat::int(3).ceil(), Rat::int(3));
    }

    #[test]
    fn powers() {
        assert_eq!(Rat::new(2, 3).powi(2), Rat::new(4, 9));
        assert_eq!(Rat::new(2, 3).powi(-1), Rat::new(3, 2));
        assert_eq!(Rat::new(5, 7).powi(0), Rat::ONE);
    }

    #[test]
    fn exact_log2() {
        assert_eq!(Rat::int(1024).exact_log2(), Some(10));
        assert_eq!(Rat::new(1, 8).exact_log2(), Some(-3));
        assert_eq!(Rat::int(3).exact_log2(), None);
        assert_eq!(Rat::int(-4).exact_log2(), None);
    }

    #[test]
    fn device_constants_are_exact() {
        // 15 ms and 1 s / 30 MiB from Figure 7.
        let init = Rat::new(15, 1000);
        let unit = Rat::new(1, 30 * 1024 * 1024);
        assert_eq!(init, Rat::new(3, 200));
        let bytes = Rat::int(1 << 30);
        // Transferring 1 GiB: (2^30)/(30*2^20) s = 1024/30 s = 512/15 s.
        assert_eq!(unit * bytes, Rat::new(512, 15));
    }
}
