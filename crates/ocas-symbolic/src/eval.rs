//! Numeric evaluation of symbolic expressions.

use crate::expr::Expr;
use std::collections::BTreeMap;
use std::fmt;

/// A variable binding environment for [`Expr::eval`][crate::Expr]-style
/// evaluation. Thin wrapper over a sorted map so call sites stay tidy.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Env {
    bindings: BTreeMap<String, f64>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Adds (or overwrites) a binding, builder-style.
    pub fn with(mut self, name: impl Into<String>, value: f64) -> Env {
        self.bindings.insert(name.into(), value);
        self
    }

    /// Adds (or overwrites) a binding in place.
    pub fn set(&mut self, name: impl Into<String>, value: f64) {
        self.bindings.insert(name.into(), value);
    }

    /// Looks up a binding.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.bindings.get(name).copied()
    }

    /// Iterates over the bindings in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.bindings.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl<S: Into<String>> FromIterator<(S, f64)> for Env {
    fn from_iter<T: IntoIterator<Item = (S, f64)>>(iter: T) -> Env {
        Env {
            bindings: iter.into_iter().map(|(k, v)| (k.into(), v)).collect(),
        }
    }
}

/// Errors produced by numeric evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable had no binding in the environment.
    UnboundVariable(String),
    /// An unexpanded `Σ` had a range too large to iterate numerically.
    SumTooLarge {
        /// The bound summation variable.
        var: String,
        /// Number of iterations the sum would need.
        span: u64,
    },
    /// Logarithm or division produced a non-finite value.
    NonFinite(&'static str),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            EvalError::SumTooLarge { var, span } => write!(
                f,
                "sum over `{var}` spans {span} iterations; simplify() it into closed form first"
            ),
            EvalError::NonFinite(op) => write!(f, "non-finite result in `{op}`"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Upper bound on numerically iterated (non-closed-form) sums.
const MAX_SUM_ITERS: u64 = 4_000_000;

/// Evaluates `e` under `env`. Unexpanded sums are iterated numerically when
/// small; run [`crate::simplify`] first to get closed forms for large ranges.
pub fn eval(e: &Expr, env: &Env) -> Result<f64, EvalError> {
    match e {
        Expr::Const(r) => Ok(r.to_f64()),
        Expr::Var(v) => env
            .get(v)
            .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
        Expr::Add(xs) => {
            let mut acc = 0.0;
            for x in xs {
                acc += eval(x, env)?;
            }
            Ok(acc)
        }
        Expr::Mul(xs) => {
            let mut acc = 1.0;
            for x in xs {
                acc *= eval(x, env)?;
            }
            Ok(acc)
        }
        Expr::Pow(b, k) => {
            let v = eval(b, env)?.powi(*k);
            if v.is_finite() {
                Ok(v)
            } else {
                Err(EvalError::NonFinite("pow"))
            }
        }
        Expr::Ceil(x) => Ok(eval(x, env)?.ceil()),
        Expr::Floor(x) => Ok(eval(x, env)?.floor()),
        Expr::Max(xs) => {
            let mut acc = f64::NEG_INFINITY;
            for x in xs {
                acc = acc.max(eval(x, env)?);
            }
            Ok(acc)
        }
        Expr::Min(xs) => {
            let mut acc = f64::INFINITY;
            for x in xs {
                acc = acc.min(eval(x, env)?);
            }
            Ok(acc)
        }
        Expr::Log2(x) => {
            let v = eval(x, env)?.log2();
            if v.is_finite() {
                Ok(v)
            } else {
                Err(EvalError::NonFinite("log2"))
            }
        }
        Expr::Sum {
            var,
            from,
            to,
            body,
        } => {
            let lo = eval(from, env)?.ceil() as i64;
            let hi = eval(to, env)?.floor() as i64;
            if hi < lo {
                return Ok(0.0);
            }
            let span = (hi - lo + 1) as u64;
            if span > MAX_SUM_ITERS {
                return Err(EvalError::SumTooLarge {
                    var: var.clone(),
                    span,
                });
            }
            let mut inner = env.clone();
            let mut acc = 0.0;
            for j in lo..=hi {
                inner.set(var.clone(), j as f64);
                acc += eval(body, &inner)?;
            }
            Ok(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplify::simplify;

    fn v(n: &str) -> Expr {
        Expr::var(n)
    }

    #[test]
    fn basic_eval() {
        let e = v("x") * Expr::int(2) + Expr::rat(1, 2);
        let env = Env::new().with("x", 3.0);
        assert_eq!(eval(&e, &env).unwrap(), 6.5);
    }

    #[test]
    fn unbound_variable_errors() {
        let e = v("missing");
        assert_eq!(
            eval(&e, &Env::new()),
            Err(EvalError::UnboundVariable("missing".into()))
        );
    }

    #[test]
    fn minmax_ceil_log() {
        let env = Env::new().with("x", 10.0);
        assert_eq!(eval(&v("x").max(Expr::int(3)), &env).unwrap(), 10.0);
        assert_eq!(eval(&v("x").min(Expr::int(3)), &env).unwrap(), 3.0);
        assert_eq!(eval(&(v("x") / Expr::int(4)).ceil(), &env).unwrap(), 3.0);
        assert!((eval(&Expr::int(1024).log2(), &env).unwrap() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn small_sum_iterates() {
        let s = Expr::sum("j", Expr::int(1), Expr::int(10), v("j"));
        assert_eq!(eval(&s, &Env::new()).unwrap(), 55.0);
    }

    #[test]
    fn closed_form_matches_numeric_iteration() {
        let body = v("c") + (v("j") + Expr::int(1)) * v("u");
        let s = Expr::sum("j", Expr::int(0), v("x") - Expr::int(1), body);
        let closed = simplify(&s);
        let env = Env::new().with("x", 1000.0).with("c", 0.25).with("u", 2.0);
        let a = eval(&s, &env).unwrap();
        let b = eval(&closed, &env).unwrap();
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn huge_unexpanded_sum_errors_but_closed_form_works() {
        let s = Expr::sum("j", Expr::int(0), v("x"), v("j"));
        let env = Env::new().with("x", 1e9);
        assert!(matches!(eval(&s, &env), Err(EvalError::SumTooLarge { .. })));
        let closed = simplify(&s);
        let got = eval(&closed, &env).unwrap();
        let expect = 1e9 * (1e9 + 1.0) / 2.0;
        assert!((got - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn empty_sum_is_zero() {
        let s = Expr::sum("j", Expr::int(5), Expr::int(2), v("j"));
        assert_eq!(eval(&s, &Env::new()).unwrap(), 0.0);
    }
}
