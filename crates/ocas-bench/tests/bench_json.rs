//! The `BENCH_*.json` trajectory schema, checked two ways: a freshly
//! generated document (real-I/O section at smoke scale) must validate, and
//! the committed `BENCH_results.json` at the repo root must still parse
//! and validate (the file is a trajectory point — regenerate it with
//! `cargo run --release -p ocas-bench --bin bench_json`, don't hand-edit).

use ocas_bench::json::Json;
use ocas_bench::report::{bench_doc, real_workloads, validate_bench_doc, SCHEMA};

#[test]
fn fresh_real_document_validates() {
    let real = real_workloads(1).expect("real workloads");
    assert_eq!(real.len(), 2);
    for r in &real {
        assert!(
            r.report.outputs_match(),
            "{}: real and simulated outputs must agree",
            r.name
        );
        assert!(r.report.wall_seconds > 0.0);
        assert!(r.report.sim_seconds > 0.0);
    }
    let doc = bench_doc(&[], &[], None, &real);
    validate_bench_doc(&doc).expect("schema");
    // And it survives a serialization round trip.
    let back = Json::parse(&doc.pretty()).expect("parse back");
    validate_bench_doc(&back).expect("schema after round trip");
    assert_eq!(back.get("schema").unwrap().as_str(), Some(SCHEMA));
}

#[test]
fn committed_trajectory_point_validates() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_results.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_results.json missing at repo root — regenerate with bench_json");
    let doc = Json::parse(&text).expect("parse committed BENCH_results.json");
    validate_bench_doc(&doc).expect("committed document satisfies the schema");
    // The trajectory point must carry the real-I/O numbers.
    let real = doc.get("real").unwrap().as_arr().unwrap();
    assert!(!real.is_empty(), "no real-I/O entries recorded");
    for entry in real {
        assert_eq!(
            entry.get("outputs_match"),
            Some(&Json::Bool(true)),
            "recorded real run disagreed with the simulator"
        );
    }
    // And the full table (16 rows) from the committed regeneration.
    assert_eq!(doc.get("table1").unwrap().as_arr().unwrap().len(), 16);
}

#[test]
fn validator_rejects_malformed_documents() {
    let bad = Json::obj(vec![("schema", Json::str("something/else"))]);
    assert!(validate_bench_doc(&bad).is_err());
    let missing_field = Json::parse(
        r#"{"schema": "ocas-bench/v1", "table1": [], "figure8": [],
            "figures": {"paper_platform_devices": []},
            "real": [{"name": "x"}]}"#,
    )
    .unwrap();
    let err = validate_bench_doc(&missing_field).unwrap_err();
    assert!(err.contains("real[0]"), "{err}");
}
