//! The `BENCH_*.json` trajectory schema, checked two ways: a freshly
//! generated document (real-I/O section at smoke scale) must validate, and
//! the committed `BENCH_results.json` at the repo root must still parse
//! and validate (the file is a trajectory point — regenerate it with
//! `cargo run --release -p ocas-bench --bin bench_json`, don't hand-edit).
//! The regression checker (`bench_json --check`) is pinned here too.

use ocas_bench::json::Json;
use ocas_bench::report::{
    bench_doc, check_regressions, engine_throughput, faithful_scale_rows, real_workloads,
    synthesis_stats, validate_bench_doc, SCHEMA,
};

#[test]
fn fresh_real_document_validates() {
    let real = real_workloads(1, false).expect("real workloads");
    assert_eq!(real.len(), 2);
    for r in &real {
        assert!(
            r.report.outputs_match(),
            "{}: real and simulated outputs must agree",
            r.name
        );
        assert!(r.report.wall_seconds > 0.0);
        assert!(r.report.sim_seconds > 0.0);
    }
    let doc = bench_doc(&[], &[], None, &real, &[], &[], &[], &[], &[], None);
    validate_bench_doc(&doc).expect("schema");
    // And it survives a serialization round trip.
    let back = Json::parse(&doc.pretty()).expect("parse back");
    validate_bench_doc(&back).expect("schema after round trip");
    assert_eq!(back.get("schema").unwrap().as_str(), Some(SCHEMA));
}

#[test]
fn fresh_faithful_scale_section_validates_and_twins_agree() {
    let faithful = faithful_scale_rows().expect("faithful-scale workloads");
    assert_eq!(faithful.len(), 3);
    for r in &faithful {
        assert!(r.relation_bytes > r.ram_bytes, "{}: not past RAM", r.name);
        assert!(r.outputs_match, "{}: twins diverged", r.name);
        assert!(r.peak_bounded(), "{}: peak not bounded", r.name);
    }
    let doc = bench_doc(&[], &[], None, &[], &[], &[], &faithful, &[], &[], None);
    validate_bench_doc(&doc).expect("schema");
    // Digest survives the JSON round trip as text.
    let back = Json::parse(&doc.pretty()).expect("parse back");
    let entries = back.get("faithful_scale").unwrap().as_arr().unwrap();
    assert_eq!(
        entries[0].get("digest").and_then(Json::as_str).unwrap(),
        format!("{:016x}", faithful[0].output_digest)
    );
}

fn faithful_fixture(rows: u64, digest: &str, bounded: bool, wall: f64) -> Json {
    Json::parse(&format!(
        r#"{{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "obs": [], "engine": [],
            "figures": {{"paper_platform_devices": []}}, "synthesis": [], "real": [],
            "faithful_scale": [{{"name": "w", "relation_bytes": 2097152,
                "ram_bytes": 1048576, "output_rows": {rows}, "digest": "{digest}",
                "outputs_match": true, "peak_bounded": {bounded},
                "sim_peak_resident": 200000, "real_peak_resident": 200000,
                "sim_seconds": 1.0, "wall_seconds": {wall}}}]}}"#
    ))
    .unwrap()
}

#[test]
fn regression_checker_pins_faithful_scale_determinism() {
    let baseline = faithful_fixture(1000, "00000000deadbeef", true, 0.1);
    assert_eq!(check_regressions(&baseline, &baseline, 25.0), Ok(1));
    // Row-count or digest drift is a data change: exact failure.
    let drifted_rows = faithful_fixture(1001, "00000000deadbeef", true, 0.1);
    let errs = check_regressions(&drifted_rows, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("output_rows")), "{errs:?}");
    let drifted_digest = faithful_fixture(1000, "00000000deadbeee", true, 0.1);
    let errs = check_regressions(&drifted_digest, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("digest")), "{errs:?}");
    // A peak past the RAM device fails regardless of the baseline.
    let unbounded = faithful_fixture(1000, "00000000deadbeef", false, 0.1);
    let errs = check_regressions(&unbounded, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("peak_bounded")), "{errs:?}");
    // Wall-clock gets the usual generous tolerance.
    let slow = faithful_fixture(1000, "00000000deadbeef", true, 99.0);
    let errs = check_regressions(&slow, &baseline, 10.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("wall_seconds")), "{errs:?}");
}

#[test]
fn committed_trajectory_point_validates() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_results.json");
    let text = std::fs::read_to_string(path)
        .expect("BENCH_results.json missing at repo root — regenerate with bench_json");
    let doc = Json::parse(&text).expect("parse committed BENCH_results.json");
    validate_bench_doc(&doc).expect("committed document satisfies the schema");
    // The trajectory point must carry the real-I/O numbers.
    let real = doc.get("real").unwrap().as_arr().unwrap();
    assert!(!real.is_empty(), "no real-I/O entries recorded");
    for entry in real {
        assert_eq!(
            entry.get("outputs_match"),
            Some(&Json::Bool(true)),
            "recorded real run disagreed with the simulator"
        );
    }
    // And the full table (16 rows) from the committed regeneration.
    assert_eq!(doc.get("table1").unwrap().as_arr().unwrap().len(), 16);
    // The faithful-scale section records the streamed-generator claim:
    // relation past the RAM device, twins agreeing, peaks bounded.
    let faithful = doc.get("faithful_scale").unwrap().as_arr().unwrap();
    assert_eq!(faithful.len(), 3, "three faithful-scale twin workloads");
    for entry in faithful {
        assert_eq!(entry.get("outputs_match"), Some(&Json::Bool(true)));
        assert_eq!(entry.get("peak_bounded"), Some(&Json::Bool(true)));
        let rel = entry.get("relation_bytes").and_then(Json::as_num).unwrap();
        let ram = entry.get("ram_bytes").and_then(Json::as_num).unwrap();
        assert!(rel > ram, "recorded relation must exceed the RAM device");
    }
    // The engine section records the flat-batch before/after trajectory:
    // every entry carries a before-number, and the refactor's headline
    // claim (≥2x on the sort and join data paths) is pinned to the
    // committed measurements.
    let engine = doc.get("engine").unwrap().as_arr().unwrap();
    assert!(!engine.is_empty(), "no engine throughput entries recorded");
    for tpl in ["external-sort", "bnl-join", "grace-join"] {
        let e = engine
            .iter()
            .find(|e| {
                e.get("template").and_then(Json::as_str) == Some(tpl)
                    && e.get("backend").and_then(Json::as_str) == Some("sim")
            })
            .unwrap_or_else(|| panic!("missing engine entry for {tpl}/sim"));
        let speedup = e.get("speedup").and_then(Json::as_num).unwrap_or(0.0);
        assert!(
            speedup >= 2.0,
            "committed {tpl} speedup {speedup} below the 2x flat-batch claim"
        );
    }
    for e in engine {
        let speedup = e.get("speedup").and_then(Json::as_num).unwrap_or(0.0);
        assert!(
            speedup >= 0.8,
            "committed engine entry regressed vs its before-number: {e:?}"
        );
    }
    // The synthesis section records the interned/parallel search rework:
    // the two largest-search Table 1 rows must commit a ≥4x search
    // wall-clock speedup of the arena engine over the legacy reference.
    let synthesis = doc.get("synthesis").unwrap().as_arr().unwrap();
    assert_eq!(synthesis.len(), 2, "two largest-search rows recorded");
    for s in synthesis {
        let speedup = s.get("speedup").and_then(Json::as_num).unwrap_or(0.0);
        assert!(
            speedup >= 4.0,
            "committed synthesis speedup {speedup:.2}x below the 4x claim: {s:?}"
        );
    }
}

#[test]
fn validator_rejects_malformed_documents() {
    let bad = Json::obj(vec![("schema", Json::str("something/else"))]);
    assert!(validate_bench_doc(&bad).is_err());
    let missing_field = Json::parse(
        r#"{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "obs": [], "engine": [],
            "figures": {"paper_platform_devices": []}, "synthesis": [],
            "faithful_scale": [], "real": [{"name": "x"}]}"#,
    )
    .unwrap();
    let err = validate_bench_doc(&missing_field).unwrap_err();
    assert!(err.contains("real[0]"), "{err}");
    let missing_engine = Json::parse(
        r#"{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "obs": [],
            "figures": {"paper_platform_devices": []}, "synthesis": [], "faithful_scale": [], "real": []}"#,
    )
    .unwrap();
    let err = validate_bench_doc(&missing_engine).unwrap_err();
    assert!(err.contains("engine"), "{err}");
    let missing_synthesis = Json::parse(
        r#"{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "obs": [], "engine": [],
            "figures": {"paper_platform_devices": []}, "faithful_scale": [], "real": []}"#,
    )
    .unwrap();
    let err = validate_bench_doc(&missing_synthesis).unwrap_err();
    assert!(err.contains("synthesis"), "{err}");
}

#[test]
fn engine_throughput_covers_every_template_on_both_backends() {
    let rows = engine_throughput(1).expect("engine throughput");
    let mut templates: Vec<&str> = rows.iter().map(|r| r.template.as_str()).collect();
    templates.sort();
    templates.dedup();
    assert_eq!(
        templates,
        vec![
            "aggregate",
            "bnl-join",
            "column-zip",
            "dedup-sorted",
            "external-sort",
            "grace-join",
            "merge-pass",
        ]
    );
    for r in &rows {
        assert!(r.rows_per_sec > 0.0, "{r:?}");
        assert!(r.rows_in > 0, "{r:?}");
    }
    assert_eq!(
        rows.iter().filter(|r| r.backend == "real").count(),
        rows.len() / 2,
        "every template measured on both backends"
    );
}

fn check_fixture_scaled(wall: f64, bytes: f64, rps: f64, scale: u64) -> Json {
    Json::parse(&format!(
        r#"{{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "obs": [],
            "figures": {{"paper_platform_devices": []}},
            "engine": [{{"template": "external-sort", "backend": "sim",
                        "rows_in": 1000, "rows_out": 1000, "seconds": 1.0,
                        "rows_per_sec": {rps}}}],
            "synthesis": [], "faithful_scale": [],
            "real": [{{"name": "w", "scale": {scale}, "wall_seconds": {wall},
                      "io_seconds": 0.1, "sim_seconds": 1.0, "output_rows": 10,
                      "outputs_match": true,
                      "bytes_read": {bytes}, "bytes_written": 0}}]}}"#
    ))
    .unwrap()
}

fn synthesis_fixture(explored: u64, seconds: f64, speedup: f64) -> Json {
    Json::parse(&format!(
        r#"{{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "obs": [], "engine": [],
            "figures": {{"paper_platform_devices": []}}, "real": [], "faithful_scale": [],
            "synthesis": [{{"name": "BNL - No writeout", "explored": {explored},
                           "generated": 3000, "rejected_type": 0,
                           "rejected_semantics": 5, "depth_reached": 5,
                           "arena_nodes": 1800, "seconds": {seconds},
                           "reference_seconds": 0.4, "speedup": {speedup},
                           "programs_per_sec": 10000}}]}}"#
    ))
    .unwrap()
}

fn check_fixture(wall: f64, bytes: f64, rps: f64) -> Json {
    check_fixture_scaled(wall, bytes, rps, 1)
}

#[test]
fn regression_checker_accepts_within_tolerance_and_rejects_beyond() {
    let baseline = check_fixture(0.1, 4096.0, 1_000_000.0);
    // Identical run: fine; slower wall within tolerance: fine.
    assert_eq!(check_regressions(&baseline, &baseline, 25.0), Ok(2));
    let slower = check_fixture(2.0, 4096.0, 900_000.0);
    assert_eq!(check_regressions(&slower, &baseline, 25.0), Ok(2));
    // Wall blowing past the tolerance fails.
    let blown = check_fixture(3.0, 4096.0, 1_000_000.0);
    let errs = check_regressions(&blown, &baseline, 10.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("wall_seconds")), "{errs:?}");
    // Byte totals are deterministic: any drift fails outright.
    let drifted = check_fixture(0.1, 8192.0, 1_000_000.0);
    let errs = check_regressions(&drifted, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("bytes_read")), "{errs:?}");
    // Throughput collapse fails.
    let collapsed = check_fixture(0.1, 4096.0, 10_000.0);
    let errs = check_regressions(&collapsed, &baseline, 10.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("rows_per_sec")), "{errs:?}");
    // A run at a different scale than the baseline skips the real
    // comparison (different workload) instead of failing on row/byte
    // drift — the nightly's scaled regeneration must not trip the gate.
    let scaled = check_fixture_scaled(9.0, 999_999.0, 1_000_000.0, 20);
    assert_eq!(check_regressions(&scaled, &baseline, 10.0), Ok(1));
    // Unmatched names are skipped, not failed.
    let empty = Json::parse(
        r#"{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "obs": [], "engine": [],
            "figures": {"paper_platform_devices": []}, "synthesis": [], "faithful_scale": [], "real": []}"#,
    )
    .unwrap();
    assert_eq!(check_regressions(&baseline, &empty, 25.0), Ok(0));
}

#[test]
fn regression_checker_pins_synthesis_determinism_and_speedup() {
    let baseline = synthesis_fixture(900, 0.1, 4.0);
    assert_eq!(check_regressions(&baseline, &baseline, 25.0), Ok(1));
    // The explored space is deterministic: any drift fails exactly.
    let drifted = synthesis_fixture(901, 0.1, 4.0);
    let errs = check_regressions(&drifted, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("explored")), "{errs:?}");
    // A collapsed arena-vs-reference speedup fails (ratio of two clocks on
    // the same machine, so the floor is much tighter than raw seconds).
    let collapsed = synthesis_fixture(900, 0.1, 0.3);
    let errs = check_regressions(&collapsed, &baseline, 10.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("speedup")), "{errs:?}");
    // Slower absolute seconds within tolerance still pass.
    let slower = synthesis_fixture(900, 1.5, 4.0);
    assert_eq!(check_regressions(&slower, &baseline, 25.0), Ok(1));
}

fn obs_fixture(events: u64, hits: f64, sim: f64) -> Json {
    Json::parse(&format!(
        r#"{{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "engine": [],
            "figures": {{"paper_platform_devices": []}}, "synthesis": [],
            "faithful_scale": [], "real": [],
            "obs": [{{"name": "real:grace-join", "events": {events},
                     "sim_span_seconds": {sim}, "wall_span_seconds": 0.5,
                     "counters": {{"pool:HDD/hits": {hits}}}}}]}}"#
    ))
    .unwrap()
}

#[test]
fn regression_checker_pins_obs_counters_exactly() {
    let baseline = obs_fixture(5000, 42.0, 1.0);
    validate_bench_doc(&baseline).expect("obs fixture satisfies the schema");
    assert_eq!(check_regressions(&baseline, &baseline, 25.0), Ok(1));
    // Event counts and counter totals are deterministic: exact failures.
    let drifted_events = obs_fixture(5001, 42.0, 1.0);
    let errs = check_regressions(&drifted_events, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("events")), "{errs:?}");
    let drifted_counter = obs_fixture(5000, 43.0, 1.0);
    let errs = check_regressions(&drifted_counter, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("counters")), "{errs:?}");
    // Span seconds are timing: the generous tolerance applies.
    let slower = obs_fixture(5000, 42.0, 3.0);
    assert_eq!(check_regressions(&slower, &baseline, 25.0), Ok(1));
    let blown = obs_fixture(5000, 42.0, 50.0);
    let errs = check_regressions(&blown, &baseline, 10.0).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("sim_span_seconds")),
        "{errs:?}"
    );
}

#[test]
fn fresh_synthesis_section_validates_and_engines_agree() {
    let synthesis = synthesis_stats();
    assert_eq!(synthesis.len(), 2, "the two largest-search Table 1 rows");
    for s in &synthesis {
        assert!(s.explored > 100, "{s:?}");
        assert!(s.seconds > 0.0 && s.reference_seconds > 0.0, "{s:?}");
        assert!(s.arena_nodes > 0, "{s:?}");
    }
    let doc = bench_doc(&[], &[], None, &[], &[], &synthesis, &[], &[], &[], None);
    validate_bench_doc(&doc).expect("schema");
}

fn chaos_fixture(seed: u64, identical: u64, faults: u64, retries: u64, wrong: u64) -> Json {
    Json::parse(&format!(
        r#"{{"schema": "ocas-bench/v5", "table1": [], "chaos": [{{"workload": "sort",
            "chaos_seed": {seed}, "runs": 12, "identical": {identical},
            "typed_errors": 2, "wrong_answers": {wrong}, "leaked_dirs": 0,
            "pinned_pages": 0, "faults_injected": {faults}, "retries": {retries},
            "retry_successes": 3, "gave_up": 1, "degraded_shrinks": 2,
            "degraded_failovers": 0, "corrupt_pages_detected": 1}}],
            "figure8": [], "obs": [], "engine": [],
            "figures": {{"paper_platform_devices": []}}, "synthesis": [],
            "faithful_scale": [], "real": []}}"#
    ))
    .unwrap()
}

#[test]
fn regression_checker_pins_chaos_counters_exactly_for_matching_seeds() {
    let baseline = chaos_fixture(0, 10, 9, 4, 0);
    validate_bench_doc(&baseline).expect("chaos fixture satisfies the schema");
    assert_eq!(check_regressions(&baseline, &baseline, 25.0), Ok(1));
    // Same seed, same plans: outcome and recovery counters are
    // deterministic — any drift fails exactly.
    let drifted_outcomes = chaos_fixture(0, 9, 9, 4, 0);
    let errs = check_regressions(&drifted_outcomes, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("identical")), "{errs:?}");
    let drifted_faults = chaos_fixture(0, 10, 8, 4, 0);
    let errs = check_regressions(&drifted_faults, &baseline, 25.0).unwrap_err();
    assert!(
        errs.iter().any(|e| e.contains("faults_injected")),
        "{errs:?}"
    );
    let drifted_retries = chaos_fixture(0, 10, 9, 5, 0);
    let errs = check_regressions(&drifted_retries, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("retries")), "{errs:?}");
}

#[test]
fn regression_checker_skips_chaos_sweeps_at_a_different_seed() {
    // The nightly sweeps randomized seeds: different seed, different
    // experiment — outcome totals legitimately differ, so the comparison
    // skips (mirroring the real-I/O scale skip).
    let baseline = chaos_fixture(0, 10, 9, 4, 0);
    let nightly = chaos_fixture(777, 3, 25, 11, 0);
    assert_eq!(check_regressions(&nightly, &baseline, 25.0), Ok(0));
}

#[test]
fn regression_checker_fails_chaos_trichotomy_violations_unconditionally() {
    // A wrong answer under faults is a robustness bug, not a regression to
    // tolerate: it fails even when the seed differs from the baseline (and
    // even against an empty baseline).
    let baseline = chaos_fixture(0, 10, 9, 4, 0);
    let wrong = chaos_fixture(777, 3, 25, 11, 1);
    let errs = check_regressions(&wrong, &baseline, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("wrong_answers")), "{errs:?}");
    let empty = Json::parse(
        r#"{"schema": "ocas-bench/v5", "table1": [], "chaos": [], "figure8": [], "obs": [], "engine": [],
            "figures": {"paper_platform_devices": []}, "synthesis": [], "faithful_scale": [], "real": []}"#,
    )
    .unwrap();
    let errs = check_regressions(&chaos_fixture(5, 3, 25, 11, 2), &empty, 25.0).unwrap_err();
    assert!(errs.iter().any(|e| e.contains("wrong_answers")), "{errs:?}");
}
