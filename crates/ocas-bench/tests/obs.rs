//! Observability at the bench level: the pinned disabled-probe overhead
//! bound, the `obs` document rows, and the Chrome export round-trip.

use ocas_bench::json::Json;
use ocas_bench::report::{engine_run, engine_workloads, obs_rows, validate_chrome_trace};
use ocas_engine::{CpuModel, Executor, Mode};
use ocas_hierarchy::presets;
use ocas_storage::StorageSim;

/// The instrumentation is compiled in always, so its cost with the
/// recorder *off* must stay negligible. Direct A/B wall-clock runs are
/// too noisy to pin 2% in CI, so the bound is built from its factors,
/// each measured directly: the number of probe sites one engine run hits
/// (counted by an instrumented run — every disabled probe corresponds to
/// a recorded occurrence) times the measured per-probe disabled cost (one
/// thread-local load and branch) must stay under 2% of the same run's
/// wall clock.
#[test]
fn disabled_probes_cost_under_two_percent_of_an_engine_run() {
    let (plan, specs) = engine_workloads(1)
        .into_iter()
        .nth(1)
        .expect("the GRACE-join workload");
    let run = |record: bool| {
        let h = presets::hdd_ram(64 << 20);
        let sim = Executor::new(
            StorageSim::from_hierarchy(&h),
            Mode::Faithful,
            CpuModel::disabled(),
        );
        if record {
            ocas_obs::start();
        }
        let row = engine_run(sim, &plan, &specs, "sim").expect("engine run succeeds");
        (row, ocas_obs::finish())
    };

    // How many probe occurrences one run produces.
    let (_, trace) = run(true);
    let occurrences = trace.expect("recorder was active").metrics().events;
    assert!(occurrences > 0, "the workload must hit probe sites");

    // Per-probe cost when tracing is off.
    const CALLS: u64 = 5_000_000;
    assert!(!ocas_obs::enabled());
    let t0 = std::time::Instant::now();
    for i in 0..CALLS {
        ocas_obs::span(
            std::hint::black_box(ocas_obs::Clock::Sim),
            "t",
            "probe",
            i as f64,
            1.0,
            &[],
        );
    }
    let per_call = t0.elapsed().as_secs_f64() / CALLS as f64;

    // Wall seconds of the identical run with the recorder off.
    let (row, trace) = run(false);
    assert!(trace.is_none());

    let overhead = occurrences as f64 * per_call;
    assert!(
        overhead < 0.02 * row.seconds,
        "disabled probes would cost {overhead:.6}s of a {:.6}s run \
         ({occurrences} occurrences at {per_call:.2e}s each)",
        row.seconds
    );
}

/// The two `obs` document rows run, carry the expected deterministic
/// counter families, and export Chrome trace documents that survive a
/// parse + schema round trip.
#[test]
fn obs_rows_export_valid_chrome_traces() {
    let rows = obs_rows().expect("obs workloads succeed");
    assert_eq!(rows.len(), 2);
    for r in &rows {
        assert!(r.events > 0, "{}: no occurrences recorded", r.name);
        let parsed = Json::parse(&r.chrome_trace)
            .unwrap_or_else(|e| panic!("{}: chrome export does not parse: {e}", r.name));
        validate_chrome_trace(&parsed)
            .unwrap_or_else(|e| panic!("{}: chrome export fails validation: {e}", r.name));
    }

    let sim = &rows[0];
    assert_eq!(sim.name, "sim:set-union");
    assert!(sim.sim_span_seconds > 0.0);
    assert!(
        sim.counters.keys().any(|k| k.starts_with("rule:")),
        "no per-rule search counters: {:?}",
        sim.counters.keys().collect::<Vec<_>>()
    );

    let real = &rows[1];
    assert_eq!(real.name, "real:grace-join");
    assert!(real.wall_span_seconds > 0.0);
    assert!(
        real.counters.keys().any(|k| k.starts_with("pool:")),
        "no buffer-pool counters: {:?}",
        real.counters.keys().collect::<Vec<_>>()
    );
}
