//! A minimal JSON value, emitter and parser — the `BENCH_*.json`
//! trajectory files need a stable, dependency-free serialization (the
//! build environment has no registry access for `serde`).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (emitted in shortest round-trip form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object — insertion-ordered, duplicate keys are not rejected.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Number constructor (non-finite values become `null`).
    pub fn num(n: f64) -> Json {
        if n.is_finite() {
            Json::Num(n)
        } else {
            Json::Null
        }
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if any.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if any.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.emit(&mut out, 0);
        out.push('\n');
        out
    }

    fn emit(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => emit_string(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.emit(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    emit_string(out, k);
                    out.push_str(": ");
                    v.emit(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Parses a JSON document (the subset this module emits, plus
    /// arbitrary whitespace and `\uXXXX` escapes).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }
}

fn emit_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                pairs.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b.get(*pos..*pos + 4).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{}`", other as char)),
                }
            }
            c => {
                // Re-assemble UTF-8 multibyte sequences.
                let start = *pos - 1;
                let len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = b.get(start..start + len).ok_or("truncated UTF-8")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos = start + len;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(&c) = b.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
            *pos += 1;
        } else {
            break;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number `{text}` at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_document() {
        let doc = Json::obj(vec![
            ("schema", Json::str("ocas-bench/v2")),
            ("pi", Json::num(3.5)),
            ("count", Json::num(42.0)),
            ("ok", Json::Bool(true)),
            ("nothing", Json::Null),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj(vec![("name", Json::str("a \"quoted\" name\n"))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let text = doc.pretty();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_emit_without_fraction() {
        assert_eq!(Json::num(42.0).pretty().trim(), "42");
        assert_eq!(Json::num(f64::NAN).pretty().trim(), "null");
    }

    #[test]
    fn parses_foreign_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , -2.5e1 ] , \"b\" : \"x\\u0041y\" } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_num(),
            Some(-25.0)
        );
        assert_eq!(v.get("b").unwrap().as_str(), Some("xAy"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }
}
