//! Shared helpers for the benchmark/regeneration binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod report;

use ocas::experiments::Row;

/// Formats seconds for table display.
pub fn fmt_secs(s: f64) -> String {
    if !s.is_finite() {
        "-".to_string()
    } else if s >= 1e6 {
        format!("{s:.2e}")
    } else if s >= 100.0 {
        format!("{s:.0}")
    } else {
        format!("{s:.1}")
    }
}

/// Prints the Table 1 header.
pub fn print_header() {
    println!(
        "{:<40} {:>12} {:>10} {:>10} {:>8} {:>6} {:>9}",
        "Program", "Spec [s]", "Opt [s]", "Act [s]", "Space", "Steps", "OCAS [s]"
    );
    println!("{}", "-".repeat(100));
}

/// Prints one Table 1 row.
pub fn print_row(r: &Row) {
    println!(
        "{:<40} {:>12} {:>10} {:>10} {:>8} {:>6} {:>9.2}",
        r.name,
        fmt_secs(r.spec_seconds),
        fmt_secs(r.opt_seconds),
        fmt_secs(r.act_seconds),
        r.search_space,
        r.steps,
        r.ocas_seconds,
    );
}
