//! Regenerates Figure 8: estimated vs (simulated) measured running times
//! for varying input and buffer sizes, three panels.
//!
//! Usage: `cargo run --release -p ocas-bench --bin figure8`

use ocas_bench::fmt_secs;

fn main() {
    println!("Figure 8 — estimated vs measured (simulated) seconds\n");
    match ocas::experiments::figure8() {
        Ok(points) => {
            let mut panel = "";
            for p in &points {
                if p.panel != panel {
                    panel = p.panel;
                    println!("\n== {panel} ==");
                    println!(
                        "{:<18} {:>12} {:>12} {:>8}",
                        "config", "estimated", "measured", "est/act"
                    );
                }
                println!(
                    "{:<18} {:>12} {:>12} {:>8.2}",
                    p.label,
                    fmt_secs(p.estimated),
                    fmt_secs(p.measured),
                    p.estimated / p.measured
                );
            }
        }
        Err(e) => println!("FAILED: {e}"),
    }
}
