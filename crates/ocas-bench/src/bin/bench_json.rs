//! Emits the `BENCH_results.json` trajectory point: Table 1 rows, Figure 8
//! points, the Figure 7 device constants, the cache-miss companion, and
//! the real-I/O workloads (wall-clock + simulated seconds side by side).
//!
//! Usage: `cargo run --release -p ocas-bench --bin bench_json [-- OPTIONS]`
//!
//! * `--out <path>`      output file (default `BENCH_results.json`)
//! * `--real-only`       skip the synthesis-heavy Table 1 / Figure 8 runs
//! * `--real-scale <n>`  multiply the real-workload cardinalities
//!
//! `--real-only` is the mode CI's smoke job affords (seconds); the full
//! document is regenerated manually per trajectory point.

use ocas_bench::report::{bench_doc, real_workloads, validate_bench_doc};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_results.json".to_string();
    let mut real_only = false;
    let mut real_scale = 1u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--real-only" => real_only = true,
            "--real-scale" => {
                real_scale = it
                    .next()
                    .expect("--real-scale needs a number")
                    .parse()
                    .expect("--real-scale needs a number")
            }
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    let mut table1 = Vec::new();
    let mut figure8 = Vec::new();
    let mut cache = None;
    if !real_only {
        eprintln!("running Table 1 (16 synthesis + execution rows)…");
        for e in ocas::experiments::table1() {
            match e.run() {
                Ok(row) => {
                    eprintln!("  {:<40} ok", row.name);
                    table1.push(row);
                }
                Err(err) => eprintln!("  {:<40} FAILED: {err}", e.name),
            }
        }
        eprintln!("running Figure 8…");
        match ocas::experiments::figure8() {
            Ok(points) => figure8 = points,
            Err(e) => eprintln!("  figure8 FAILED: {e}"),
        }
        eprintln!("running cache-miss comparison…");
        match ocas::experiments::cache_miss_comparison() {
            Ok(pair) => cache = Some(pair),
            Err(e) => eprintln!("  cache-miss comparison FAILED: {e}"),
        }
    }

    eprintln!("running real-I/O workloads (scale {real_scale})…");
    let real = match real_workloads(real_scale) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("real-I/O workloads FAILED: {e}");
            std::process::exit(1);
        }
    };
    let mut diverged = false;
    for r in &real {
        eprintln!(
            "  {:<34} wall={:.4}s sim={:.2}s rows={} match={}",
            r.name,
            r.report.wall_seconds,
            r.report.sim_seconds,
            r.report.output.len(),
            r.report.outputs_match()
        );
        diverged |= !r.report.outputs_match();
    }

    let doc = bench_doc(&table1, &figure8, cache, &real);
    validate_bench_doc(&doc).expect("generated document must satisfy its own schema");
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH json");
    eprintln!("wrote {out_path}");
    if diverged {
        eprintln!("FAIL: a real-I/O run disagreed with the simulator (see match=false above)");
        std::process::exit(1);
    }
}
