//! Emits the `BENCH_results.json` trajectory point: Table 1 rows, Figure 8
//! points, the Figure 7 device constants, the cache-miss companion, the
//! engine data-path throughput (faithful rows/sec per plan template on both
//! backends), and the real-I/O workloads (wall-clock + simulated seconds
//! side by side).
//!
//! Usage: `cargo run --release -p ocas-bench --bin bench_json [-- OPTIONS]`
//!
//! * `--out <path>`           output file (default `BENCH_results.json`)
//! * `--real-only`            skip the synthesis-heavy Table 1 / Figure 8 runs
//! * `--real-scale <n>`       multiply the real-workload cardinalities
//! * `--engine-scale <n>`     multiply the engine-throughput cardinalities
//! * `--engine-before <path>` prior document whose `engine` section becomes
//!   the before-numbers (`before_rows_per_sec` / `speedup` per entry)
//! * `--check <path>`         compare this run against a baseline document
//!   and exit non-zero on regressions (exact on rows/bytes/outputs, a
//!   generous wall-clock and throughput tolerance for machine variance)
//! * `--check-tolerance <x>`  override the wall/throughput factor (default 25)
//! * `--chaos-seed <n>`       base fault seed of the chaos sweep (default 0;
//!   the nightly passes its run id, and a failing sweep replays exactly by
//!   passing the printed seed back in). `--check` compares chaos counters
//!   exactly when the seeds match and skips them when they differ.
//! * `--disk-bound`           run the real-I/O workloads in the
//!   fsync/`O_DIRECT` disk-bounded timing mode
//! * `--assert-direct`        exit non-zero unless at least one real-I/O
//!   workload actually engaged `O_DIRECT` (nightly runs this together with
//!   `--disk-bound` on a real filesystem, pinning that the buffered
//!   fallback is not the only path ever exercised)
//! * `--trace-out <dir>`      record every Table 1 row (and the two `obs`
//!   workloads) under the `ocas-obs` recorder and write one Chrome
//!   trace-event JSON file per row into `<dir>` (load them in Perfetto or
//!   `chrome://tracing`). Every written file is re-parsed and schema
//!   validated; a malformed trace fails the run.
//!
//! The `obs` section (two representative workloads run under the
//! `ocas-obs` recorder, reduced to counter and span-seconds totals)
//! always runs: its counters and event counts are deterministic, so
//! `--check` gates them exactly, with the usual tolerance on span
//! seconds.
//!
//! The synthesis-search section (arena/parallel engine vs the legacy
//! reference engine on the two largest-search Table 1 rows) always runs —
//! it takes seconds and its statistics are deterministic, so the smoke
//! job's `--check` gates them exactly. So does the `faithful_scale`
//! section (streamed-generator twin runs past the RAM device): its row
//! counts, sizes and emission digests are deterministic and gated
//! exactly, and the binary fails outright if a twin diverges or a peak
//! exceeds the RAM device.
//!
//! `--real-only` is the mode CI's smoke job affords (seconds); the full
//! document is regenerated manually per trajectory point.

use ocas_bench::json::Json;
use ocas_bench::report::{
    bench_doc, chaos_rows, check_regressions, engine_throughput, faithful_scale_rows, obs_rows,
    real_workloads, synthesis_stats, validate_bench_doc, validate_chrome_trace,
};

/// Lower-cases `name` into a filesystem-safe slug.
fn slug(name: &str) -> String {
    let mut out = String::new();
    for c in name.chars() {
        if c.is_ascii_alphanumeric() {
            out.push(c.to_ascii_lowercase());
        } else if !out.ends_with('-') {
            out.push('-');
        }
    }
    out.trim_matches('-').to_string()
}

/// Writes one Chrome trace file and round-trips it through the parser and
/// the trace schema check; a malformed export fails the whole run.
fn write_trace(dir: &str, stem: &str, chrome: &str) {
    let path = format!("{dir}/{stem}.json");
    std::fs::write(&path, chrome).expect("write trace file");
    let parsed = Json::parse(chrome).unwrap_or_else(|e| {
        eprintln!("FAIL: trace {path} is not valid JSON: {e}");
        std::process::exit(1);
    });
    if let Err(e) = validate_chrome_trace(&parsed) {
        eprintln!("FAIL: trace {path} failed schema validation: {e}");
        std::process::exit(1);
    }
    eprintln!("  wrote trace {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH_results.json".to_string();
    let mut real_only = false;
    let mut real_scale = 1u64;
    let mut engine_scale = 1u64;
    let mut engine_before: Option<String> = None;
    let mut check: Option<String> = None;
    let mut check_tolerance = 25.0f64;
    let mut chaos_seed = 0u64;
    let mut disk_bound = false;
    let mut assert_direct = false;
    let mut trace_out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out_path = it.next().expect("--out needs a path").clone(),
            "--real-only" => real_only = true,
            "--real-scale" => {
                real_scale = it
                    .next()
                    .expect("--real-scale needs a number")
                    .parse()
                    .expect("--real-scale needs a number")
            }
            "--engine-scale" => {
                engine_scale = it
                    .next()
                    .expect("--engine-scale needs a number")
                    .parse()
                    .expect("--engine-scale needs a number")
            }
            "--engine-before" => {
                engine_before = Some(it.next().expect("--engine-before needs a path").clone())
            }
            "--check" => check = Some(it.next().expect("--check needs a path").clone()),
            "--check-tolerance" => {
                check_tolerance = it
                    .next()
                    .expect("--check-tolerance needs a number")
                    .parse()
                    .expect("--check-tolerance needs a number")
            }
            "--chaos-seed" => {
                chaos_seed = it
                    .next()
                    .expect("--chaos-seed needs a number")
                    .parse()
                    .expect("--chaos-seed needs a number")
            }
            "--disk-bound" => disk_bound = true,
            "--assert-direct" => assert_direct = true,
            "--trace-out" => {
                trace_out = Some(it.next().expect("--trace-out needs a directory").clone())
            }
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
    }

    if let Some(dir) = &trace_out {
        std::fs::create_dir_all(dir).expect("create --trace-out directory");
    }

    let mut table1 = Vec::new();
    let mut figure8 = Vec::new();
    let mut cache = None;
    if !real_only {
        eprintln!("running Table 1 (16 synthesis + execution rows)…");
        for e in ocas::experiments::table1() {
            if trace_out.is_some() {
                ocas_obs::start();
            }
            let run = e.run();
            let trace = ocas_obs::finish();
            match run {
                Ok(row) => {
                    eprintln!("  {:<40} ok", row.name);
                    if let (Some(dir), Some(t)) = (&trace_out, &trace) {
                        write_trace(
                            dir,
                            &format!("table1-{}", slug(&row.name)),
                            &t.to_chrome_json(),
                        );
                    }
                    table1.push(row);
                }
                Err(err) => eprintln!("  {:<40} FAILED: {err}", e.name),
            }
        }
        eprintln!("running Figure 8…");
        match ocas::experiments::figure8() {
            Ok(points) => figure8 = points,
            Err(e) => eprintln!("  figure8 FAILED: {e}"),
        }
        eprintln!("running cache-miss comparison…");
        match ocas::experiments::cache_miss_comparison() {
            Ok(pair) => cache = Some(pair),
            Err(e) => eprintln!("  cache-miss comparison FAILED: {e}"),
        }
    }

    eprintln!("running synthesis-search benchmarks (arena vs reference engine)…");
    let synthesis = synthesis_stats();
    for s in &synthesis {
        eprintln!(
            "  {:<40} explored={:>5} {:>8.0} programs/s  {:.3}s vs reference {:.3}s ({:.2}x)",
            s.name, s.explored, s.programs_per_sec, s.seconds, s.reference_seconds, s.speedup
        );
    }

    eprintln!("running engine throughput workloads (scale {engine_scale})…");
    let engine = match engine_throughput(engine_scale) {
        Ok(rows) => {
            for r in &rows {
                eprintln!(
                    "  {:<16} {:<4} {:>12.0} rows/s ({} rows in {:.3}s)",
                    r.template, r.backend, r.rows_per_sec, r.rows_in, r.seconds
                );
            }
            rows
        }
        Err(e) => {
            eprintln!("engine throughput FAILED: {e}");
            std::process::exit(1);
        }
    };

    eprintln!("running faithful-scale twin workloads (relation > RAM device)…");
    let faithful = match faithful_scale_rows() {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("faithful-scale workloads FAILED: {e}");
            std::process::exit(1);
        }
    };
    let mut faithful_bad = false;
    for r in &faithful {
        eprintln!(
            "  {:<24} rel={}KiB ram={}KiB peak sim/real={}/{}KiB rows={} match={} bounded={}",
            r.name,
            r.relation_bytes >> 10,
            r.ram_bytes >> 10,
            r.sim_peak_resident >> 10,
            r.real_peak_resident >> 10,
            r.output_rows,
            r.outputs_match,
            r.peak_bounded()
        );
        faithful_bad |= !r.outputs_match || !r.peak_bounded();
    }

    eprintln!("running real-I/O workloads (scale {real_scale}, disk_bound {disk_bound})…");
    let real = match real_workloads(real_scale, disk_bound) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("real-I/O workloads FAILED: {e}");
            std::process::exit(1);
        }
    };
    let mut diverged = false;
    for r in &real {
        eprintln!(
            "  {:<34} wall={:.4}s sim={:.2}s rows={} match={}",
            r.name,
            r.report.wall_seconds,
            r.report.sim_seconds,
            r.report.output.len(),
            r.report.outputs_match()
        );
        diverged |= !r.report.outputs_match();
    }

    eprintln!("running observability workloads (ocas-obs recorder)…");
    let obs = match obs_rows() {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("observability workloads FAILED: {e}");
            std::process::exit(1);
        }
    };
    for r in &obs {
        eprintln!(
            "  {:<16} events={:>8} counters={} sim={:.4}s wall={:.4}s",
            r.name,
            r.events,
            r.counters.len(),
            r.sim_span_seconds,
            r.wall_span_seconds
        );
        if let Some(dir) = &trace_out {
            write_trace(dir, &format!("obs-{}", slug(&r.name)), &r.chrome_trace);
        }
    }

    eprintln!(
        "running chaos suite (fault seed {chaos_seed}, 4 synthesized workloads × 2 backends)…"
    );
    let chaos = match chaos_rows(chaos_seed) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("chaos suite FAILED: {e}");
            std::process::exit(1);
        }
    };
    let mut chaos_bad = false;
    for r in &chaos {
        let s = &r.summary;
        eprintln!(
            "  {:<8} runs={:>2} identical={:>2} typed={:>2} faults={:>3} retries={:>3} degraded={:>2} wrong={} leaks={} pins={}",
            r.workload,
            s.runs,
            s.identical,
            s.typed_errors,
            s.counters.faults_injected,
            s.counters.retries,
            s.counters.degradations(),
            s.wrong_answers,
            s.leaked_dirs,
            s.pinned_pages
        );
        chaos_bad |= !s.clean();
    }

    let before_doc = engine_before.map(|p| {
        let text = std::fs::read_to_string(&p).expect("read --engine-before document");
        Json::parse(&text).expect("parse --engine-before document")
    });
    let doc = bench_doc(
        &table1,
        &figure8,
        cache,
        &real,
        &engine,
        &synthesis,
        &faithful,
        &obs,
        &chaos,
        before_doc.as_ref(),
    );
    validate_bench_doc(&doc).expect("generated document must satisfy its own schema");
    std::fs::write(&out_path, doc.pretty()).expect("write BENCH json");
    eprintln!("wrote {out_path}");
    if diverged {
        eprintln!("FAIL: a real-I/O run disagreed with the simulator (see match=false above)");
        std::process::exit(1);
    }
    if faithful_bad {
        eprintln!("FAIL: a faithful-scale twin diverged or exceeded the RAM device (see above)");
        std::process::exit(1);
    }
    if chaos_bad {
        eprintln!(
            "FAIL: the chaos suite violated the robustness trichotomy (wrong answer, leaked dir or pinned page above) — replay with `--chaos-seed {chaos_seed}`"
        );
        std::process::exit(1);
    }
    if assert_direct && !real.iter().any(|r| r.report.direct_io) {
        eprintln!(
            "FAIL: --assert-direct, but no real-I/O workload engaged O_DIRECT              (buffered fallback everywhere — is this tmpfs, or was --disk-bound omitted?)"
        );
        std::process::exit(1);
    }

    if let Some(baseline_path) = check {
        let text = std::fs::read_to_string(&baseline_path).expect("read --check baseline");
        let baseline = Json::parse(&text).expect("parse --check baseline");
        match check_regressions(&doc, &baseline, check_tolerance) {
            Ok(compared) => eprintln!("check OK: {compared} entries within tolerance"),
            Err(failures) => {
                for f in &failures {
                    eprintln!("REGRESSION: {f}");
                }
                std::process::exit(1);
            }
        }
    }
}
