//! Regenerates the definitional figures: the Figure 4 costing table
//! (per-edge symbolic event counts of the blocked BNL join) and the
//! Figure 7 device constants.
//!
//! Usage: `cargo run -p ocas-bench --bin figures [-- fig4|fig7]`

use ocal::parse;
use ocas_cost::{Annot, CostEngine, Layout};
use ocas_hierarchy::{presets, CostPair, DeviceKind, EdgeCosts, Hierarchy, NodeProps, Rat};
use ocas_symbolic::{Env, Expr as Sym};
use std::collections::BTreeMap;

fn fig4() {
    println!("Figure 4 — per-edge symbolic event counts for the blocked BNL join");
    println!("(unary relations of Int size 1, output written to HDD)\n");
    let mut h = Hierarchy::new(NodeProps::new("RAM", 1 << 34, DeviceKind::Ram)).unwrap();
    h.add_child(
        "RAM",
        NodeProps::new("HDD", 1 << 40, DeviceKind::Hdd),
        EdgeCosts::symmetric(CostPair::new(
            Rat::millis(15),
            Rat::new(1, 30 * 1024 * 1024),
        )),
    )
    .unwrap();
    let program = parse(
        "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
         if x == y then [<x, y>] else []",
    )
    .unwrap();
    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(Sym::var("x"), 1, 1));
    annots.insert("S".to_string(), Annot::relation(Sym::var("y"), 1, 1));
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]).with_output("HDD");
    let stats = Env::new().with("x", 1000.0).with("y", 100.0);
    let engine = CostEngine::new(&h, &layout, annots, stats, 1).unwrap();
    let report = engine.cost(&program).unwrap();
    let ram = h.by_name("RAM").unwrap();
    let hdd = h.by_name("HDD").unwrap();
    let read = report.events.edge(hdd, ram);
    let write = report.events.edge(ram, hdd);
    println!("result size:            {}", report.result);
    println!("UnitTr  HDD->RAM bytes: {}", read.bytes);
    println!("UnitTr  RAM->HDD bytes: {}", write.bytes);
    println!("InitCom HDD->RAM:       {}", read.init);
    println!("InitCom RAM->HDD:       {}", write.init);
    println!("total seconds:          {}", report.seconds);
    for c in &report.constraints {
        println!("constraint [{}]: {} <= {}", c.label, c.lhs, c.rhs);
    }
}

fn fig7() {
    println!("Figure 7 — node properties and cost units (exact rationals)\n");
    let h = presets::paper_platform(32 << 20);
    for id in h.ids() {
        let n = h.node(id);
        print!(
            "{:<6} size={:<14} pagesize={:<6}",
            n.name, n.size, n.pagesize
        );
        if let Some(w) = n.max_seq_write {
            print!(" maxSeqW={w}");
        }
        if let Some(p) = h.parent(id) {
            let up = h.edge(id, p).unwrap();
            let down = h.edge(p, id).unwrap();
            print!(
                "  InitCom(up/down)={}/{} s  UnitTr={}/{} s/B",
                up.init_com, down.init_com, up.unit_tr, down.unit_tr
            );
        }
        println!();
    }
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("fig4") => fig4(),
        Some("fig7") => fig7(),
        _ => {
            fig4();
            println!();
            fig7();
        }
    }
}
