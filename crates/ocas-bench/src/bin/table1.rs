//! Regenerates the paper's Table 1 against the simulated hierarchy.
//!
//! Usage: `cargo run --release -p ocas-bench --bin table1 [-- <filter>]`
//! where `<filter>` is a case-insensitive substring of the row name
//! (e.g. `bnl`, `sort`, `union`). Without a filter, all 16 rows run.

use ocas_bench::{print_header, print_row};

fn main() {
    let filter: Option<String> = std::env::args().nth(1).map(|s| s.to_lowercase());
    println!("Table 1 — cost estimates (Spec/Opt), simulated measurements (Act)");
    println!("and synthesis statistics. See EXPERIMENTS.md for the paper-vs-ours mapping.\n");
    print_header();
    for e in ocas::experiments::table1() {
        if let Some(f) = &filter {
            if !e.name.to_lowercase().contains(f.as_str()) {
                continue;
            }
        }
        match e.run() {
            Ok(row) => print_row(&row),
            Err(err) => println!("{:<40} FAILED: {err}", e.name),
        }
    }
    // The cache-miss companion measurement of the "BNL with cache" row.
    if filter
        .as_deref()
        .map_or(true, |f| "cache".contains(f) || f.contains("cache"))
    {
        match ocas::experiments::cache_miss_comparison() {
            Ok((untiled, tiled)) => {
                let reduction = 100.0 * (1.0 - tiled as f64 / untiled as f64);
                println!(
                    "\nCache misses (faithful, reduced scale): untiled={untiled} \
                     tiled={tiled} reduction={reduction:.1}% (paper: 98.2%)"
                );
            }
            Err(e) => println!("\ncache-miss comparison FAILED: {e}"),
        }
    }
}
