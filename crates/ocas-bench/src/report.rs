//! Building and validating the `BENCH_*.json` trajectory document.
//!
//! One schema'd JSON file records everything the reproduction binaries
//! measure: the Table 1 rows, the Figure 8 points, the cache-miss
//! companion, and the real-I/O workloads with wall-clock and simulated
//! seconds side by side.

use crate::json::Json;
use ocas::experiments::{FaithfulScaleReport, Fig8Point, Row};
use ocas_engine::{CpuModel, Executor, JoinPred, MergeKind, Mode, Output, Plan, RelSpec, Relation};
use ocas_hierarchy::presets;
use ocas_runtime::{FileBackend, PoolConfig, RealReport, Runtime, RuntimeError};
use ocas_storage::{StorageBackend, StorageSim};

/// The document's schema tag; bump on breaking layout changes.
pub const SCHEMA: &str = "ocas-bench/v5";

/// One named real-I/O measurement.
pub struct RealRow {
    /// Workload name.
    pub name: String,
    /// Cardinality scale factor the workload ran at (entries are only
    /// regression-compared against a baseline at the same scale).
    pub scale: u64,
    /// The measured report.
    pub report: RealReport,
}

fn row_json(r: &Row) -> Json {
    Json::obj(vec![
        ("name", Json::str(&r.name)),
        ("spec_seconds", Json::num(r.spec_seconds)),
        ("opt_seconds", Json::num(r.opt_seconds)),
        ("act_seconds", Json::num(r.act_seconds)),
        ("search_space", Json::num(r.search_space as f64)),
        ("steps", Json::num(r.steps as f64)),
        ("ocas_seconds", Json::num(r.ocas_seconds)),
        ("best_program", Json::str(&r.best_program)),
    ])
}

fn fig8_json(p: &Fig8Point) -> Json {
    Json::obj(vec![
        ("panel", Json::str(p.panel)),
        ("label", Json::str(&p.label)),
        ("estimated_seconds", Json::num(p.estimated)),
        ("measured_seconds", Json::num(p.measured)),
    ])
}

fn real_json(r: &RealRow) -> Json {
    let bytes_read: u64 = r
        .report
        .real_devices
        .iter()
        .map(|(_, s)| s.bytes_read)
        .sum();
    let bytes_written: u64 = r
        .report
        .real_devices
        .iter()
        .map(|(_, s)| s.bytes_written)
        .sum();
    let (pool_hits, pool_misses) = r
        .report
        .pools
        .iter()
        .fold((0u64, 0u64), |(h, m), (_, p)| (h + p.hits, m + p.misses));
    Json::obj(vec![
        ("name", Json::str(&r.name)),
        ("scale", Json::num(r.scale as f64)),
        ("wall_seconds", Json::num(r.report.wall_seconds)),
        ("io_seconds", Json::num(r.report.io_seconds)),
        ("sim_seconds", Json::num(r.report.sim_seconds)),
        ("output_rows", Json::num(r.report.output.len() as f64)),
        ("outputs_match", Json::Bool(r.report.outputs_match())),
        ("bytes_read", Json::num(bytes_read as f64)),
        ("bytes_written", Json::num(bytes_written as f64)),
        ("pool_hits", Json::num(pool_hits as f64)),
        ("pool_misses", Json::num(pool_misses as f64)),
        ("direct_io", Json::Bool(r.report.direct_io)),
    ])
}

/// One engine data-path throughput measurement: a plan template executed
/// faithfully (real rows end to end) on one backend.
#[derive(Debug, Clone)]
pub struct EngineRow {
    /// Plan template name (`Plan::name`).
    pub template: String,
    /// `"sim"` (StorageSim) or `"real"` (FileBackend temp files).
    pub backend: String,
    /// Input tuples the template consumed.
    pub rows_in: u64,
    /// Output tuples the template produced.
    pub rows_out: u64,
    /// Host wall-clock seconds of the faithful execution.
    pub seconds: f64,
    /// `rows_in / seconds` — the data-path throughput the flat-batch
    /// representation is accountable for.
    pub rows_per_sec: f64,
}

fn engine_json(r: &EngineRow, before: Option<f64>) -> Json {
    let mut pairs = vec![
        ("template", Json::str(&r.template)),
        ("backend", Json::str(&r.backend)),
        ("rows_in", Json::num(r.rows_in as f64)),
        ("rows_out", Json::num(r.rows_out as f64)),
        ("seconds", Json::num(r.seconds)),
        ("rows_per_sec", Json::num(r.rows_per_sec)),
    ];
    if let Some(b) = before {
        pairs.push(("before_rows_per_sec", Json::num(b)));
        pairs.push((
            "speedup",
            Json::num(r.rows_per_sec / b.max(f64::MIN_POSITIVE)),
        ));
    }
    Json::obj(pairs)
}

/// The engine throughput workloads: every plan template, faithful mode,
/// sized so one run takes well under a second each at `scale = 1`.
pub fn engine_workloads(scale: u64) -> Vec<(Plan, Vec<RelSpec>)> {
    let s = scale.max(1);
    let out = |buf: u64| Output::ToDevice {
        device: "HDD".into(),
        buffer_bytes: buf,
    };
    vec![
        (
            Plan::BnlJoin {
                outer: 0,
                inner: 1,
                k1: 512,
                k2: 512,
                tiling: None,
                pred: JoinPred::KeyEq,
                order_inputs: false,
                output: out(1 << 16),
            },
            vec![
                RelSpec::pairs("R", "HDD", 6_000 * s).with_key_range(2_000 * s),
                RelSpec::pairs("S", "HDD", 4_000 * s).with_key_range(2_000 * s),
            ],
        ),
        (
            Plan::GraceJoin {
                left: 0,
                right: 1,
                partitions: 64,
                buffer_bytes: 1 << 20,
                spill: "HDD".into(),
                pred: JoinPred::KeyEq,
                output: out(1 << 16),
            },
            vec![
                RelSpec::pairs("R", "HDD", 300_000 * s).with_key_range(60_000 * s),
                RelSpec::pairs("S", "HDD", 200_000 * s).with_key_range(60_000 * s),
            ],
        ),
        (
            Plan::ExternalSort {
                input: 0,
                fan_in: 8,
                b_in: 4096,
                b_out: 16384,
                scratch: "HDD".into(),
                output: out(1 << 16),
            },
            vec![RelSpec::ints("L", "HDD", 1_000_000 * s)],
        ),
        (
            Plan::MergePass {
                left: 0,
                right: 1,
                kind: MergeKind::MultisetUnionSorted,
                b_in: 4096,
                output: out(1 << 16),
            },
            vec![
                RelSpec::ints("A", "HDD", 800_000 * s).sorted(),
                RelSpec::ints("B", "HDD", 800_000 * s).sorted(),
            ],
        ),
        (
            Plan::ColumnZip {
                columns: vec![0, 1, 2, 3, 4],
                b_in: 4096,
                output: out(1 << 16),
            },
            (1..=5)
                .map(|i| RelSpec::ints(&format!("C{i}"), "HDD", 300_000 * s))
                .collect(),
        ),
        (
            Plan::DedupSorted {
                input: 0,
                b_in: 4096,
                output: out(1 << 16),
            },
            vec![RelSpec::ints("L", "HDD", 1_000_000 * s)
                .sorted()
                .with_key_range(500_000 * s)],
        ),
        (
            Plan::Aggregate {
                input: 0,
                b_in: 4096,
            },
            vec![RelSpec::ints("L", "HDD", 2_000_000 * s)],
        ),
    ]
}

/// Creates the relations of one [`engine_workloads`] entry in `ex` and runs
/// `plan` faithfully, measuring host wall-clock throughput.
pub fn engine_run<B: StorageBackend>(
    mut ex: Executor<B>,
    plan: &Plan,
    specs: &[RelSpec],
    backend: &str,
) -> Result<EngineRow, RuntimeError> {
    let mut rows_in = 0u64;
    for (i, spec) in specs.iter().enumerate() {
        rows_in += spec.card;
        let rel = Relation::create(&mut ex.sm, spec, true, 100 + i as u64)
            .map_err(ocas_engine::ExecError::from)?;
        ex.add_relation(rel);
    }
    let t0 = std::time::Instant::now();
    let stats = ex.run(plan)?;
    let seconds = t0.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);
    Ok(EngineRow {
        template: plan.name().to_string(),
        backend: backend.to_string(),
        rows_in,
        rows_out: stats.output_rows,
        seconds,
        rows_per_sec: rows_in as f64 / seconds,
    })
}

/// Measures faithful data-path throughput (host rows/sec) for every plan
/// template on both backends. `scale` multiplies the input cardinalities.
pub fn engine_throughput(scale: u64) -> Result<Vec<EngineRow>, RuntimeError> {
    let mut out = Vec::new();
    for (plan, specs) in engine_workloads(scale) {
        let h = presets::hdd_ram(64 << 20);
        let sim = Executor::new(
            StorageSim::from_hierarchy(&h),
            Mode::Faithful,
            CpuModel::disabled(),
        );
        out.push(engine_run(sim, &plan, &specs, "sim")?);

        let fb = FileBackend::from_hierarchy(&h, PoolConfig::default())?;
        let real = Executor::new(fb, Mode::Faithful, CpuModel::disabled());
        out.push(engine_run(real, &plan, &specs, "real")?);
    }
    Ok(out)
}

/// One observability row: a representative workload run under the
/// `ocas-obs` recorder, reduced to the trace's flat metric totals (the
/// document's `obs` section) plus the Chrome trace-event export.
#[derive(Debug, Clone)]
pub struct ObsRow {
    /// Row name. `sim:` rows are fully deterministic (every event lives on
    /// the simulated clock); `real:` rows have deterministic counters and
    /// event counts but wall-clock span seconds.
    pub name: String,
    /// Total recorded occurrences (retained events plus merged folds).
    pub events: u64,
    /// Summed span seconds on the simulated clock.
    pub sim_span_seconds: f64,
    /// Summed span seconds on the wall clock.
    pub wall_span_seconds: f64,
    /// Counter totals keyed `"track/name"`.
    pub counters: std::collections::BTreeMap<String, f64>,
    /// The recording exported as Chrome trace-event JSON.
    pub chrome_trace: String,
}

fn obs_reduce(name: &str, trace: &ocas_obs::Trace) -> ObsRow {
    let m = trace.metrics();
    ObsRow {
        name: name.to_string(),
        events: m.events,
        // `+ 0.0` normalizes the empty sum (`Sum for f64` folds from -0.0).
        sim_span_seconds: m.sim_span_seconds.values().sum::<f64>() + 0.0,
        wall_span_seconds: m.wall_span_seconds.values().sum::<f64>() + 0.0,
        counters: m.counters,
        chrome_trace: trace.to_chrome_json(),
    }
}

/// Runs the two observability workloads under the recorder:
///
/// * `sim:set-union` — a full synthesize + execute pass on the simulator.
///   Search-level spans, per-rule counters and device/CPU attribution
///   spans are all on the deterministic clock, so `bench_json --check`
///   gates the counters *and* the simulated span seconds exactly.
/// * `real:grace-join` — the GRACE-join engine workload on the
///   [`FileBackend`]. Pool counters (hits/misses/evictions/write-backs)
///   and the event count are deterministic; wall span seconds are not.
pub fn obs_rows() -> Result<Vec<ObsRow>, String> {
    let mut out = Vec::new();

    ocas_obs::start();
    let sim = (|| {
        let e = ocas::experiments::set_union();
        let synth = e.synthesize()?;
        e.execute(&synth)?;
        Ok::<(), ocas::experiments::ExpError>(())
    })();
    let trace = ocas_obs::finish().unwrap_or_default();
    sim.map_err(|e| format!("obs `sim:set-union` failed: {e}"))?;
    out.push(obs_reduce("sim:set-union", &trace));

    ocas_obs::start();
    let real = (|| {
        let (plan, specs) = engine_workloads(1)
            .into_iter()
            .nth(1)
            .expect("the GRACE-join workload");
        let h = presets::hdd_ram(64 << 20);
        let fb = FileBackend::from_hierarchy(&h, PoolConfig::default())?;
        let ex = Executor::new(fb, Mode::Faithful, CpuModel::disabled());
        engine_run(ex, &plan, &specs, "real")?;
        Ok::<(), RuntimeError>(())
    })();
    let trace = ocas_obs::finish().unwrap_or_default();
    real.map_err(|e| format!("obs `real:grace-join` failed: {e}"))?;
    out.push(obs_reduce("real:grace-join", &trace));

    Ok(out)
}

fn obs_json(r: &ObsRow) -> Json {
    let counters = Json::Obj(
        r.counters
            .iter()
            .map(|(k, v)| (k.clone(), Json::num(*v)))
            .collect(),
    );
    Json::obj(vec![
        ("name", Json::str(&r.name)),
        ("events", Json::num(r.events as f64)),
        ("sim_span_seconds", Json::num(r.sim_span_seconds)),
        ("wall_span_seconds", Json::num(r.wall_span_seconds)),
        ("counters", counters),
    ])
}

/// Checks that `doc` is a Chrome trace-event document Perfetto will load:
/// a `traceEvents` array whose entries carry `ph`/`pid`/`tid`/`ts`, with
/// a `name` on metadata/span/counter events and a `dur` on complete
/// (`"X"`) events.
pub fn validate_chrome_trace(doc: &Json) -> Result<(), String> {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or("missing `traceEvents` array")?;
    if events.is_empty() {
        return Err("empty `traceEvents`".into());
    }
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("traceEvents[{i}] missing `ph`"))?;
        for field in ["pid", "tid"] {
            if e.get(field).and_then(Json::as_num).is_none() {
                return Err(format!("traceEvents[{i}] missing numeric `{field}`"));
            }
        }
        match ph {
            "M" => {}
            "X" => {
                for field in ["ts", "dur"] {
                    if e.get(field).and_then(Json::as_num).is_none() {
                        return Err(format!("traceEvents[{i}] missing numeric `{field}`"));
                    }
                }
            }
            "C" => {
                if e.get("ts").and_then(Json::as_num).is_none() {
                    return Err(format!("traceEvents[{i}] missing numeric `ts`"));
                }
            }
            other => return Err(format!("traceEvents[{i}] has unknown phase `{other}`")),
        }
        if e.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("traceEvents[{i}] missing `name`"));
        }
    }
    Ok(())
}

/// The faithful-scale twin workloads (relation strictly larger than the
/// RAM device, streamed generation, digest-compared twins) at the
/// committed baseline scale.
pub fn faithful_scale_rows() -> Result<Vec<FaithfulScaleReport>, ocas::experiments::ExpError> {
    ocas::experiments::faithful_scale(1)
}

fn faithful_json(r: &FaithfulScaleReport) -> Json {
    Json::obj(vec![
        ("name", Json::str(&r.name)),
        ("relation_bytes", Json::num(r.relation_bytes as f64)),
        ("ram_bytes", Json::num(r.ram_bytes as f64)),
        ("output_rows", Json::num(r.output_rows as f64)),
        // The digest is a full u64: stored as hex text because JSON
        // numbers (f64) cannot carry 64 bits exactly.
        ("digest", Json::str(format!("{:016x}", r.output_digest))),
        ("outputs_match", Json::Bool(r.outputs_match)),
        ("peak_bounded", Json::Bool(r.peak_bounded())),
        ("sim_peak_resident", Json::num(r.sim_peak_resident as f64)),
        ("real_peak_resident", Json::num(r.real_peak_resident as f64)),
        ("sim_seconds", Json::num(r.sim_seconds)),
        ("wall_seconds", Json::num(r.wall_seconds)),
    ])
}

/// One synthesis-search benchmark entry: the arena/parallel engine vs the
/// legacy reference engine on one Table 1 row's exact search settings.
#[derive(Debug, Clone)]
pub struct SynthesisRow {
    /// Table 1 row name.
    pub name: String,
    /// Distinct programs explored (identical for both engines by the
    /// determinism contract; `bench_json --check` compares it exactly).
    pub explored: usize,
    /// Candidates generated before deduplication.
    pub generated: usize,
    /// Candidates rejected by the type checker.
    pub rejected_type: usize,
    /// Candidates rejected by differential validation.
    pub rejected_semantics: usize,
    /// Longest derivation.
    pub depth_reached: u32,
    /// Distinct hash-consed nodes in the arena engine's term store.
    pub arena_nodes: usize,
    /// Arena engine search wall seconds (best of [`SYNTH_BENCH_RUNS`]).
    pub seconds: f64,
    /// Legacy reference engine wall seconds (best of the same runs).
    pub reference_seconds: f64,
    /// `reference_seconds / seconds`.
    pub speedup: f64,
    /// `explored / seconds`.
    pub programs_per_sec: f64,
}

/// Timing repetitions per engine in [`synthesis_stats`]; the best run is
/// reported (single-machine wall clocks are noisy at the tens of
/// milliseconds these searches take).
pub const SYNTH_BENCH_RUNS: usize = 3;

/// Regression floor for the synthesis `speedup` ratio: a fresh run may not
/// fall below `baseline_speedup / SYNTH_SPEEDUP_TOLERANCE`. The ratio pits
/// two engines run back-to-back on the same machine, so it is far more
/// stable than absolute wall clocks — it gets a real floor instead of the
/// generous `--check-tolerance` the clocks need.
pub const SYNTH_SPEEDUP_TOLERANCE: f64 = 2.0;

/// Measures the synthesis search on the two largest-search Table 1 rows:
/// both engines at the rows' exact Table 1 settings (validation on, the
/// rows' rule exclusions). Panics if the engines disagree on any
/// deterministic statistic — the same invariant the parity regression test
/// pins across all sixteen rows.
pub fn synthesis_stats() -> Vec<SynthesisRow> {
    let rows = [
        ocas::experiments::bnl_no_writeout(),
        ocas::experiments::bnl_with_cache(),
    ];
    let mut out = Vec::new();
    for e in rows {
        let mut best_new = f64::INFINITY;
        let mut best_ref = f64::INFINITY;
        let mut result = None;
        for _ in 0..SYNTH_BENCH_RUNS {
            let reference = e
                .run_search(true, 1, None)
                .expect("reference search must succeed");
            best_ref = best_ref.min(reference.stats.seconds);
            // workers = 1: the committed ratio isolates the arena engine
            // itself (zipper dedup, interned keys, check exemptions) and
            // stays comparable across machines with different core counts;
            // parallel frontier expansion is a further machine-dependent
            // win on top.
            let arena = e
                .run_search(false, 1, None)
                .expect("arena search must succeed");
            best_new = best_new.min(arena.stats.seconds);
            assert_eq!(
                reference.stats.deterministic(),
                arena.stats.deterministic(),
                "engines diverged on `{}`",
                e.name
            );
            result = Some(arena);
        }
        let stats = result.expect("at least one run").stats;
        out.push(SynthesisRow {
            name: e.name.clone(),
            explored: stats.explored,
            generated: stats.generated,
            rejected_type: stats.rejected_type,
            rejected_semantics: stats.rejected_semantics,
            depth_reached: stats.depth_reached,
            arena_nodes: stats.arena_nodes,
            seconds: best_new,
            reference_seconds: best_ref,
            speedup: best_ref / best_new.max(f64::MIN_POSITIVE),
            programs_per_sec: stats.explored as f64 / best_new.max(f64::MIN_POSITIVE),
        });
    }
    out
}

fn synthesis_json(r: &SynthesisRow) -> Json {
    Json::obj(vec![
        ("name", Json::str(&r.name)),
        ("explored", Json::num(r.explored as f64)),
        ("generated", Json::num(r.generated as f64)),
        ("rejected_type", Json::num(r.rejected_type as f64)),
        ("rejected_semantics", Json::num(r.rejected_semantics as f64)),
        ("depth_reached", Json::num(r.depth_reached as f64)),
        ("arena_nodes", Json::num(r.arena_nodes as f64)),
        ("seconds", Json::num(r.seconds)),
        ("reference_seconds", Json::num(r.reference_seconds)),
        ("speedup", Json::num(r.speedup)),
        ("programs_per_sec", Json::num(r.programs_per_sec)),
    ])
}

/// Figure 7 device constants (sizes and page sizes of the paper platform).
fn figures_json() -> Json {
    let h = presets::paper_platform(32 << 20);
    let devices: Vec<Json> = h
        .ids()
        .map(|id| {
            let n = h.node(id);
            Json::obj(vec![
                ("name", Json::str(&n.name)),
                ("size_bytes", Json::num(n.size as f64)),
                ("pagesize_bytes", Json::num(n.pagesize as f64)),
            ])
        })
        .collect();
    Json::obj(vec![("paper_platform_devices", Json::Arr(devices))])
}

/// Looks up a prior document's `engine` entry for `(template, backend)`
/// and returns the before-number of the trajectory pair: the prior
/// entry's own `before_rows_per_sec` when it carries one (so the
/// trajectory stays anchored at the original baseline instead of
/// ratcheting forward on every regeneration), else its `rows_per_sec`.
fn engine_before(doc: &Json, template: &str, backend: &str) -> Option<f64> {
    doc.get("engine")?.as_arr()?.iter().find_map(|e| {
        let t = e.get("template")?.as_str()?;
        let b = e.get("backend")?.as_str()?;
        if t == template && b == backend {
            e.get("before_rows_per_sec")
                .and_then(Json::as_num)
                .or_else(|| e.get("rows_per_sec").and_then(Json::as_num))
        } else {
            None
        }
    })
}

/// Assembles the full document. `engine_baseline` is an earlier document
/// whose `engine` section provides the before-numbers of the trajectory
/// (each entry then carries `before_rows_per_sec` and `speedup`).
#[allow(clippy::too_many_arguments)]
pub fn bench_doc(
    table1: &[Row],
    figure8: &[Fig8Point],
    cache_misses: Option<(u64, u64)>,
    real: &[RealRow],
    engine: &[EngineRow],
    synthesis: &[SynthesisRow],
    faithful: &[FaithfulScaleReport],
    obs: &[ObsRow],
    chaos: &[ChaosRow],
    engine_baseline: Option<&Json>,
) -> Json {
    let engine_entries: Vec<Json> = engine
        .iter()
        .map(|r| {
            let before = engine_baseline.and_then(|d| engine_before(d, &r.template, &r.backend));
            engine_json(r, before)
        })
        .collect();
    let mut pairs = vec![
        ("schema", Json::str(SCHEMA)),
        ("table1", Json::Arr(table1.iter().map(row_json).collect())),
        (
            "figure8",
            Json::Arr(figure8.iter().map(fig8_json).collect()),
        ),
        ("figures", figures_json()),
        ("engine", Json::Arr(engine_entries)),
        (
            "synthesis",
            Json::Arr(synthesis.iter().map(synthesis_json).collect()),
        ),
        (
            "faithful_scale",
            Json::Arr(faithful.iter().map(faithful_json).collect()),
        ),
        ("obs", Json::Arr(obs.iter().map(obs_json).collect())),
        ("chaos", Json::Arr(chaos.iter().map(chaos_json).collect())),
        ("real", Json::Arr(real.iter().map(real_json).collect())),
    ];
    if let Some((untiled, tiled)) = cache_misses {
        pairs.insert(
            4,
            (
                "cache_misses",
                Json::obj(vec![
                    ("untiled", Json::num(untiled as f64)),
                    ("tiled", Json::num(tiled as f64)),
                ]),
            ),
        );
    }
    Json::obj(pairs)
}

/// Checks a document against the `ocas-bench/v3` schema. Sections may be
/// empty arrays (a partial regeneration) but must be present and
/// well-typed; every `real` entry must carry both clocks.
pub fn validate_bench_doc(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != SCHEMA {
        return Err(format!("schema `{schema}` is not `{SCHEMA}`"));
    }
    let sections: [(&str, &[&str]); 8] = [
        (
            "obs",
            &["name", "events", "sim_span_seconds", "wall_span_seconds"],
        ),
        (
            "chaos",
            &[
                "workload",
                "chaos_seed",
                "runs",
                "identical",
                "typed_errors",
                "wrong_answers",
                "leaked_dirs",
                "pinned_pages",
                "faults_injected",
                "retries",
            ],
        ),
        (
            "table1",
            &[
                "name",
                "spec_seconds",
                "opt_seconds",
                "act_seconds",
                "search_space",
            ],
        ),
        (
            "figure8",
            &["panel", "label", "estimated_seconds", "measured_seconds"],
        ),
        (
            "engine",
            &[
                "template",
                "backend",
                "rows_in",
                "rows_out",
                "seconds",
                "rows_per_sec",
            ],
        ),
        (
            "synthesis",
            &[
                "name",
                "explored",
                "generated",
                "rejected_type",
                "rejected_semantics",
                "depth_reached",
                "seconds",
                "reference_seconds",
                "speedup",
            ],
        ),
        (
            "faithful_scale",
            &[
                "name",
                "relation_bytes",
                "ram_bytes",
                "output_rows",
                "digest",
                "outputs_match",
                "peak_bounded",
                "sim_peak_resident",
                "real_peak_resident",
                "wall_seconds",
            ],
        ),
        (
            "real",
            &[
                "name",
                "wall_seconds",
                "io_seconds",
                "sim_seconds",
                "output_rows",
                "outputs_match",
                "bytes_read",
                "bytes_written",
            ],
        ),
    ];
    for (section, fields) in sections {
        let arr = doc
            .get(section)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing array `{section}`"))?;
        for (i, entry) in arr.iter().enumerate() {
            for field in fields {
                let v = entry
                    .get(field)
                    .ok_or_else(|| format!("{section}[{i}] missing `{field}`"))?;
                let ok = match *field {
                    "name" | "panel" | "label" | "best_program" | "template" | "backend"
                    | "digest" | "workload" => v.as_str().is_some(),
                    "outputs_match" | "peak_bounded" => matches!(v, Json::Bool(_)),
                    _ => v.as_num().is_some(),
                };
                if !ok {
                    return Err(format!("{section}[{i}].{field} has the wrong type"));
                }
            }
        }
    }
    if let Some(arr) = doc.get("obs").and_then(Json::as_arr) {
        for (i, entry) in arr.iter().enumerate() {
            let counters = entry
                .get("counters")
                .ok_or_else(|| format!("obs[{i}] missing `counters`"))?;
            let Json::Obj(pairs) = counters else {
                return Err(format!("obs[{i}].counters is not an object"));
            };
            for (k, v) in pairs {
                if v.as_num().is_none() {
                    return Err(format!("obs[{i}].counters.{k} is not a number"));
                }
            }
        }
    }
    doc.get("figures")
        .and_then(|f| f.get("paper_platform_devices"))
        .and_then(Json::as_arr)
        .ok_or("missing `figures.paper_platform_devices`")?;
    Ok(())
}

/// Compares a freshly generated document against a committed baseline.
///
/// Determinism invariants (same seeds, same plans) are exact: `real`
/// entries matched by name must agree on `output_rows`, `bytes_read` and
/// `bytes_written`, and must have `outputs_match = true`. Timing is
/// machine-dependent, so `wall_seconds` may only regress by `tolerance`×
/// over the baseline, and `engine` throughput (matched by template +
/// backend) may only drop to `1/tolerance` of the baseline. Entries present
/// on one side only are skipped (workloads evolve across trajectory
/// points). Returns the number of entries compared, or the list of
/// violations.
pub fn check_regressions(
    doc: &Json,
    baseline: &Json,
    tolerance: f64,
) -> Result<usize, Vec<String>> {
    let tol = tolerance.max(1.0);
    let mut failures = Vec::new();
    let mut compared = 0usize;

    let arr = |d: &Json, key: &str| -> Vec<Json> {
        d.get(key)
            .and_then(Json::as_arr)
            .map(|a| a.to_vec())
            .unwrap_or_default()
    };

    for entry in arr(doc, "real") {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let Some(base) = arr(baseline, "real")
            .into_iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(&name))
        else {
            continue;
        };
        // A run at a different cardinality scale than the baseline is a
        // different workload — its row counts, byte totals and wall clock
        // are all legitimately different (the nightly runs scaled; the
        // committed baseline is scale 1). Only same-scale entries compare.
        let scale_of = |e: &Json| e.get("scale").and_then(Json::as_num).unwrap_or(1.0);
        if scale_of(&entry) != scale_of(&base) {
            continue;
        }
        compared += 1;
        let num = |e: &Json, f: &str| e.get(f).and_then(Json::as_num).unwrap_or(f64::NAN);
        for field in ["output_rows", "bytes_read", "bytes_written"] {
            let (got, want) = (num(&entry, field), num(&base, field));
            if got != want {
                failures.push(format!("real `{name}`: {field} {got} != baseline {want}"));
            }
        }
        if entry.get("outputs_match") != Some(&Json::Bool(true)) {
            failures.push(format!("real `{name}`: outputs_match is not true"));
        }
        let (wall, base_wall) = (num(&entry, "wall_seconds"), num(&base, "wall_seconds"));
        if wall > tol * base_wall {
            failures.push(format!(
                "real `{name}`: wall_seconds {wall:.4} > {tol}x baseline {base_wall:.4}"
            ));
        }
    }

    for entry in arr(doc, "faithful_scale") {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let Some(base) = arr(baseline, "faithful_scale")
            .into_iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(&name))
        else {
            continue;
        };
        compared += 1;
        let num = |e: &Json, f: &str| e.get(f).and_then(Json::as_num).unwrap_or(f64::NAN);
        // Same seeds, same plans: sizes, rows and the emission digest are
        // deterministic — compare exactly. The digest is the *only*
        // output witness at this scale (collection is off), so drift here
        // means the streamed generator or an operator changed data.
        for field in ["relation_bytes", "ram_bytes", "output_rows"] {
            let (got, want) = (num(&entry, field), num(&base, field));
            if got != want {
                failures.push(format!(
                    "faithful_scale `{name}`: {field} {got} != baseline {want}"
                ));
            }
        }
        let digest = |e: &Json| e.get("digest").and_then(Json::as_str).map(str::to_string);
        if digest(&entry) != digest(&base) {
            failures.push(format!(
                "faithful_scale `{name}`: digest {:?} != baseline {:?}",
                digest(&entry),
                digest(&base)
            ));
        }
        // The twins must agree and the peaks must stay below the RAM
        // device — these are the claims, not measurements.
        for flag in ["outputs_match", "peak_bounded"] {
            if entry.get(flag) != Some(&Json::Bool(true)) {
                failures.push(format!("faithful_scale `{name}`: {flag} is not true"));
            }
        }
        let (wall, base_wall) = (num(&entry, "wall_seconds"), num(&base, "wall_seconds"));
        if wall > tol * base_wall {
            failures.push(format!(
                "faithful_scale `{name}`: wall_seconds {wall:.4} > {tol}x baseline {base_wall:.4}"
            ));
        }
    }

    for entry in arr(doc, "synthesis") {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let Some(base) = arr(baseline, "synthesis")
            .into_iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(&name))
        else {
            continue;
        };
        compared += 1;
        let num = |e: &Json, f: &str| e.get(f).and_then(Json::as_num).unwrap_or(f64::NAN);
        // The explored space is deterministic by the engine contract:
        // compare exactly. Any drift here means the search changed (or the
        // parallel merge broke) and must be an explicit baseline update.
        for field in [
            "explored",
            "generated",
            "rejected_type",
            "rejected_semantics",
            "depth_reached",
        ] {
            let (got, want) = (num(&entry, field), num(&base, field));
            if got != want {
                failures.push(format!(
                    "synthesis `{name}`: {field} {got} != baseline {want}"
                ));
            }
        }
        let (secs, base_secs) = (num(&entry, "seconds"), num(&base, "seconds"));
        if secs > tol * base_secs {
            failures.push(format!(
                "synthesis `{name}`: seconds {secs:.4} > {tol}x baseline {base_secs:.4}"
            ));
        }
        // The committed speedup (arena engine vs legacy reference) may not
        // collapse: both engines run back-to-back on the same machine, so
        // the ratio gets a real floor (SYNTH_SPEEDUP_TOLERANCE), not the
        // generous wall-clock tolerance.
        let (speedup, base_speedup) = (num(&entry, "speedup"), num(&base, "speedup"));
        if speedup * SYNTH_SPEEDUP_TOLERANCE < base_speedup {
            failures.push(format!(
                "synthesis `{name}`: speedup {speedup:.2}x < baseline {base_speedup:.2}x / {SYNTH_SPEEDUP_TOLERANCE}"
            ));
        }
    }

    for entry in arr(doc, "obs") {
        let name = entry
            .get("name")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let Some(base) = arr(baseline, "obs")
            .into_iter()
            .find(|b| b.get("name").and_then(Json::as_str) == Some(&name))
        else {
            continue;
        };
        compared += 1;
        let num = |e: &Json, f: &str| e.get(f).and_then(Json::as_num).unwrap_or(f64::NAN);
        // Counters and event counts are deterministic by the recorder
        // contract (same seeds, same plans, worker-count-invariant
        // recording): compare the whole counter map exactly. Drift means
        // the instrumentation or the workload changed and must be an
        // explicit baseline update.
        let (got, want) = (num(&entry, "events"), num(&base, "events"));
        if got != want {
            failures.push(format!("obs `{name}`: events {got} != baseline {want}"));
        }
        let counters = |e: &Json| -> Vec<(String, f64)> {
            match e.get("counters") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_num().unwrap_or(f64::NAN)))
                    .collect(),
                _ => Vec::new(),
            }
        };
        let (got_c, want_c) = (counters(&entry), counters(&base));
        if got_c != want_c {
            failures.push(format!(
                "obs `{name}`: counters {got_c:?} != baseline {want_c:?}"
            ));
        }
        // Span seconds carry timing: wall seconds are machine noise, and
        // even simulated totals get the tolerance (they move legitimately
        // whenever the cost model or a workload constant is tuned).
        for field in ["sim_span_seconds", "wall_span_seconds"] {
            let (secs, base_secs) = (num(&entry, field), num(&base, field));
            if secs > tol * base_secs.max(f64::MIN_POSITIVE) {
                failures.push(format!(
                    "obs `{name}`: {field} {secs:.4} > {tol}x baseline {base_secs:.4}"
                ));
            }
        }
    }

    for entry in arr(doc, "chaos") {
        let name = entry
            .get("workload")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let num = |e: &Json, f: &str| e.get(f).and_then(Json::as_num).unwrap_or(f64::NAN);
        // Trichotomy violations fail regardless of any baseline: a wrong
        // answer, a leaked temp dir or a pinned page under faults is a
        // robustness bug, not a regression to tolerate.
        for field in ["wrong_answers", "leaked_dirs", "pinned_pages"] {
            let got = num(&entry, field);
            if got != 0.0 {
                failures.push(format!("chaos `{name}`: {field} {got} != 0"));
            }
        }
        let Some(base) = arr(baseline, "chaos")
            .into_iter()
            .find(|b| b.get("workload").and_then(Json::as_str) == Some(&name))
        else {
            continue;
        };
        // A sweep at a different fault seed than the baseline is a
        // different experiment — its outcome and counter totals are all
        // legitimately different (the nightly runs randomized seeds; the
        // committed baseline is the fixed default). Only same-seed sweeps
        // compare, mirroring the real-I/O scale skip above.
        if num(&entry, "chaos_seed") != num(&base, "chaos_seed") {
            continue;
        }
        compared += 1;
        // Same seed, same plans: every outcome and recovery counter is
        // deterministic — compare exactly. Drift means fault injection,
        // retry or degradation behavior changed and must be an explicit
        // baseline update.
        for field in [
            "runs",
            "identical",
            "typed_errors",
            "faults_injected",
            "retries",
            "retry_successes",
            "gave_up",
            "degraded_shrinks",
            "degraded_failovers",
            "corrupt_pages_detected",
        ] {
            let (got, want) = (num(&entry, field), num(&base, field));
            if got != want {
                failures.push(format!("chaos `{name}`: {field} {got} != baseline {want}"));
            }
        }
    }

    for entry in arr(doc, "engine") {
        let template = entry
            .get("template")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let backend = entry
            .get("backend")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let Some(base) = arr(baseline, "engine").into_iter().find(|b| {
            b.get("template").and_then(Json::as_str) == Some(&template)
                && b.get("backend").and_then(Json::as_str) == Some(&backend)
        }) else {
            continue;
        };
        compared += 1;
        let num = |e: &Json, f: &str| e.get(f).and_then(Json::as_num).unwrap_or(f64::NAN);
        if num(&entry, "rows_in") == num(&base, "rows_in") {
            let (rps, base_rps) = (num(&entry, "rows_per_sec"), num(&base, "rows_per_sec"));
            if rps * tol < base_rps {
                failures.push(format!(
                    "engine `{template}/{backend}`: rows_per_sec {rps:.0} < baseline {base_rps:.0} / {tol}"
                ));
            }
        }
    }

    if failures.is_empty() {
        Ok(compared)
    } else {
        Err(failures)
    }
}

/// One chaos-suite aggregate: one synthesized workload's seeded fault
/// sweep ([`CHAOS_SEEDS_PER_WORKLOAD`] fault plans, both backends),
/// reduced to trichotomy and recovery-counter totals. Everything in it is
/// deterministic in `chaos_seed`, so `bench_json --check` gates the
/// counters exactly when the seeds match.
pub struct ChaosRow {
    /// Workload name (`sort`, `grace`, `union`, `dedup`).
    pub workload: String,
    /// The sweep's base fault seed (`--chaos-seed`).
    pub chaos_seed: u64,
    /// Aggregated outcomes and recovery counters.
    pub summary: ocas::chaos::ChaosSummary,
}

/// Fault seeds per workload in the bench chaos sweep (each seed runs on
/// both backends, so one row aggregates `2 ×` this many executions).
pub const CHAOS_SEEDS_PER_WORKLOAD: u64 = 6;

/// Runs the bench-scale chaos sweep: the four synthesized Table 1
/// workloads under seeded fault plans on both backends. The returned rows
/// are deterministic in `chaos_seed`; a trichotomy violation is reported
/// in the row (the binary fails on it), never panicked over here.
pub fn chaos_rows(chaos_seed: u64) -> Result<Vec<ChaosRow>, String> {
    let workloads = ocas::chaos::table1_workloads()
        .map_err(|e| format!("chaos workload synthesis failed: {e}"))?;
    let mut out = Vec::new();
    for w in &workloads {
        let mut runs = Vec::new();
        for i in 0..CHAOS_SEEDS_PER_WORKLOAD {
            let seed = chaos_seed.wrapping_mul(10_000).wrapping_add(i);
            runs.push(ocas::chaos::run_file(w, seed));
            runs.push(ocas::chaos::run_sim(w, seed));
        }
        out.push(ChaosRow {
            workload: w.name.to_string(),
            chaos_seed,
            summary: ocas::chaos::summarize(&runs),
        });
    }
    Ok(out)
}

fn chaos_json(r: &ChaosRow) -> Json {
    let s = &r.summary;
    let c = &s.counters;
    Json::obj(vec![
        ("workload", Json::str(&r.workload)),
        ("chaos_seed", Json::num(r.chaos_seed as f64)),
        ("runs", Json::num(s.runs as f64)),
        ("identical", Json::num(s.identical as f64)),
        ("typed_errors", Json::num(s.typed_errors as f64)),
        ("wrong_answers", Json::num(s.wrong_answers as f64)),
        ("leaked_dirs", Json::num(s.leaked_dirs as f64)),
        ("pinned_pages", Json::num(s.pinned_pages as f64)),
        ("faults_injected", Json::num(c.faults_injected as f64)),
        ("retries", Json::num(c.retries as f64)),
        ("retry_successes", Json::num(c.retry_successes as f64)),
        ("gave_up", Json::num(c.gave_up as f64)),
        ("degraded_shrinks", Json::num(c.degraded_shrinks as f64)),
        ("degraded_failovers", Json::num(c.degraded_failovers as f64)),
        (
            "corrupt_pages_detected",
            Json::num(c.corrupt_pages_detected as f64),
        ),
    ])
}

/// The real-I/O workloads the trajectory tracks: a GRACE hash join and a
/// 2ᵏ-way external merge-sort at faithful scale (`scale` multiplies the
/// base cardinalities; 1 is a sub-second smoke size). `disk_bound` runs
/// them in the fsync/`O_DIRECT` disk-bounded timing mode.
pub fn real_workloads(scale: u64, disk_bound: bool) -> Result<Vec<RealRow>, RuntimeError> {
    let scale = scale.max(1);
    let h = presets::hdd_ram(8 << 20);
    let mut rt = Runtime::new(h);
    if disk_bound {
        rt = rt.with_pool(PoolConfig {
            timing: ocas_runtime::TimingMode::DiskBounded,
            ..PoolConfig::default()
        });
    }

    let grace = rt.run_plan(
        &Plan::GraceJoin {
            left: 0,
            right: 1,
            partitions: 16,
            buffer_bytes: 1 << 14,
            spill: "HDD".into(),
            pred: JoinPred::KeyEq,
            output: Output::ToDevice {
                device: "HDD".into(),
                buffer_bytes: 1 << 14,
            },
        },
        &[
            RelSpec::pairs("R", "HDD", 4000 * scale).with_key_range(500 * scale),
            RelSpec::pairs("S", "HDD", 2500 * scale).with_key_range(500 * scale),
        ],
        1,
    )?;

    let sort = rt.run_plan(
        &Plan::ExternalSort {
            input: 0,
            fan_in: 8,
            b_in: 64,
            b_out: 256,
            scratch: "HDD".into(),
            output: Output::ToDevice {
                device: "HDD".into(),
                buffer_bytes: 1 << 14,
            },
        },
        &[RelSpec::ints("L", "HDD", 20_000 * scale)],
        2,
    )?;

    Ok(vec![
        RealRow {
            name: "grace-hash-join (real I/O)".into(),
            scale,
            report: grace,
        },
        RealRow {
            name: "external-merge-sort (real I/O)".into(),
            scale,
            report: sort,
        },
    ])
}
