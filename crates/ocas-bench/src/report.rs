//! Building and validating the `BENCH_*.json` trajectory document.
//!
//! One schema'd JSON file records everything the reproduction binaries
//! measure: the Table 1 rows, the Figure 8 points, the cache-miss
//! companion, and the real-I/O workloads with wall-clock and simulated
//! seconds side by side.

use crate::json::Json;
use ocas::experiments::{Fig8Point, Row};
use ocas_engine::{JoinPred, Output, Plan, RelSpec};
use ocas_hierarchy::presets;
use ocas_runtime::{RealReport, Runtime, RuntimeError};

/// The document's schema tag; bump on breaking layout changes.
pub const SCHEMA: &str = "ocas-bench/v1";

/// One named real-I/O measurement.
pub struct RealRow {
    /// Workload name.
    pub name: String,
    /// The measured report.
    pub report: RealReport,
}

fn row_json(r: &Row) -> Json {
    Json::obj(vec![
        ("name", Json::str(&r.name)),
        ("spec_seconds", Json::num(r.spec_seconds)),
        ("opt_seconds", Json::num(r.opt_seconds)),
        ("act_seconds", Json::num(r.act_seconds)),
        ("search_space", Json::num(r.search_space as f64)),
        ("steps", Json::num(r.steps as f64)),
        ("ocas_seconds", Json::num(r.ocas_seconds)),
        ("best_program", Json::str(&r.best_program)),
    ])
}

fn fig8_json(p: &Fig8Point) -> Json {
    Json::obj(vec![
        ("panel", Json::str(p.panel)),
        ("label", Json::str(&p.label)),
        ("estimated_seconds", Json::num(p.estimated)),
        ("measured_seconds", Json::num(p.measured)),
    ])
}

fn real_json(r: &RealRow) -> Json {
    let bytes_read: u64 = r
        .report
        .real_devices
        .iter()
        .map(|(_, s)| s.bytes_read)
        .sum();
    let bytes_written: u64 = r
        .report
        .real_devices
        .iter()
        .map(|(_, s)| s.bytes_written)
        .sum();
    let (pool_hits, pool_misses) = r
        .report
        .pools
        .iter()
        .fold((0u64, 0u64), |(h, m), (_, p)| (h + p.hits, m + p.misses));
    Json::obj(vec![
        ("name", Json::str(&r.name)),
        ("wall_seconds", Json::num(r.report.wall_seconds)),
        ("io_seconds", Json::num(r.report.io_seconds)),
        ("sim_seconds", Json::num(r.report.sim_seconds)),
        ("output_rows", Json::num(r.report.output.len() as f64)),
        ("outputs_match", Json::Bool(r.report.outputs_match())),
        ("bytes_read", Json::num(bytes_read as f64)),
        ("bytes_written", Json::num(bytes_written as f64)),
        ("pool_hits", Json::num(pool_hits as f64)),
        ("pool_misses", Json::num(pool_misses as f64)),
    ])
}

/// Figure 7 device constants (sizes and page sizes of the paper platform).
fn figures_json() -> Json {
    let h = presets::paper_platform(32 << 20);
    let devices: Vec<Json> = h
        .ids()
        .map(|id| {
            let n = h.node(id);
            Json::obj(vec![
                ("name", Json::str(&n.name)),
                ("size_bytes", Json::num(n.size as f64)),
                ("pagesize_bytes", Json::num(n.pagesize as f64)),
            ])
        })
        .collect();
    Json::obj(vec![("paper_platform_devices", Json::Arr(devices))])
}

/// Assembles the full document.
pub fn bench_doc(
    table1: &[Row],
    figure8: &[Fig8Point],
    cache_misses: Option<(u64, u64)>,
    real: &[RealRow],
) -> Json {
    let mut pairs = vec![
        ("schema", Json::str(SCHEMA)),
        ("table1", Json::Arr(table1.iter().map(row_json).collect())),
        (
            "figure8",
            Json::Arr(figure8.iter().map(fig8_json).collect()),
        ),
        ("figures", figures_json()),
        ("real", Json::Arr(real.iter().map(real_json).collect())),
    ];
    if let Some((untiled, tiled)) = cache_misses {
        pairs.insert(
            4,
            (
                "cache_misses",
                Json::obj(vec![
                    ("untiled", Json::num(untiled as f64)),
                    ("tiled", Json::num(tiled as f64)),
                ]),
            ),
        );
    }
    Json::obj(pairs)
}

/// Checks a document against the `ocas-bench/v1` schema. Sections may be
/// empty arrays (a partial regeneration) but must be present and
/// well-typed; every `real` entry must carry both clocks.
pub fn validate_bench_doc(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != SCHEMA {
        return Err(format!("schema `{schema}` is not `{SCHEMA}`"));
    }
    let sections: [(&str, &[&str]); 3] = [
        (
            "table1",
            &[
                "name",
                "spec_seconds",
                "opt_seconds",
                "act_seconds",
                "search_space",
            ],
        ),
        (
            "figure8",
            &["panel", "label", "estimated_seconds", "measured_seconds"],
        ),
        (
            "real",
            &[
                "name",
                "wall_seconds",
                "io_seconds",
                "sim_seconds",
                "output_rows",
                "outputs_match",
                "bytes_read",
                "bytes_written",
            ],
        ),
    ];
    for (section, fields) in sections {
        let arr = doc
            .get(section)
            .and_then(Json::as_arr)
            .ok_or_else(|| format!("missing array `{section}`"))?;
        for (i, entry) in arr.iter().enumerate() {
            for field in fields {
                let v = entry
                    .get(field)
                    .ok_or_else(|| format!("{section}[{i}] missing `{field}`"))?;
                let ok = match *field {
                    "name" | "panel" | "label" | "best_program" => v.as_str().is_some(),
                    "outputs_match" => matches!(v, Json::Bool(_)),
                    _ => v.as_num().is_some(),
                };
                if !ok {
                    return Err(format!("{section}[{i}].{field} has the wrong type"));
                }
            }
        }
    }
    doc.get("figures")
        .and_then(|f| f.get("paper_platform_devices"))
        .and_then(Json::as_arr)
        .ok_or("missing `figures.paper_platform_devices`")?;
    Ok(())
}

/// The real-I/O workloads the trajectory tracks: a GRACE hash join and a
/// 2ᵏ-way external merge-sort at faithful scale (`scale` multiplies the
/// base cardinalities; 1 is a sub-second smoke size).
pub fn real_workloads(scale: u64) -> Result<Vec<RealRow>, RuntimeError> {
    let scale = scale.max(1);
    let h = presets::hdd_ram(8 << 20);
    let rt = Runtime::new(h);

    let grace = rt.run_plan(
        &Plan::GraceJoin {
            left: 0,
            right: 1,
            partitions: 16,
            buffer_bytes: 1 << 14,
            spill: "HDD".into(),
            pred: JoinPred::KeyEq,
            output: Output::ToDevice {
                device: "HDD".into(),
                buffer_bytes: 1 << 14,
            },
        },
        &[
            RelSpec::pairs("R", "HDD", 4000 * scale).with_key_range(500 * scale),
            RelSpec::pairs("S", "HDD", 2500 * scale).with_key_range(500 * scale),
        ],
        1,
    )?;

    let sort = rt.run_plan(
        &Plan::ExternalSort {
            input: 0,
            fan_in: 8,
            b_in: 64,
            b_out: 256,
            scratch: "HDD".into(),
            output: Output::ToDevice {
                device: "HDD".into(),
                buffer_bytes: 1 << 14,
            },
        },
        &[RelSpec::ints("L", "HDD", 20_000 * scale)],
        2,
    )?;

    Ok(vec![
        RealRow {
            name: "grace-hash-join (real I/O)".into(),
            report: grace,
        },
        RealRow {
            name: "external-merge-sort (real I/O)".into(),
            report: sort,
        },
    ])
}
