//! Ablation benches for DESIGN.md §5's design choices:
//! seq-ac on/off, order-inputs on/off, optimizer variant, dedup on/off.
//! Each reports the metric of interest via Criterion's measurement of the
//! *synthesis + estimate* pipeline with the feature removed.

use criterion::{criterion_group, criterion_main, Criterion};

fn estimate_with_excludes(excludes: &[&'static str]) -> f64 {
    let mut e = ocas::experiments::bnl_no_writeout();
    e.depth = 4;
    e.max_programs = 300;
    e.exclude_rules = {
        let mut v = vec!["hash-part", "prefetch", "fldL-to-trfld"];
        v.extend_from_slice(excludes);
        v
    };
    e.synthesize().unwrap().best.seconds
}

fn bench_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);

    // seq-ac: removing the rule must produce a worse (or equal) best cost.
    g.bench_function("bnl-with-seq-ac", |b| {
        b.iter(|| estimate_with_excludes(&[]))
    });
    g.bench_function("bnl-without-seq-ac", |b| {
        b.iter(|| estimate_with_excludes(&["seq-ac"]))
    });
    g.bench_function("bnl-without-order-inputs", |b| {
        b.iter(|| estimate_with_excludes(&["order-inputs"]))
    });
    g.finish();

    // Print the estimates once so the ablation delta is visible in logs.
    let with_all = estimate_with_excludes(&[]);
    let no_seq = estimate_with_excludes(&["seq-ac"]);
    let no_order = estimate_with_excludes(&["order-inputs"]);
    println!(
        "\nablation estimates [s]: full={with_all:.1} no-seq-ac={no_seq:.1} \
         no-order-inputs={no_order:.1}"
    );
    assert!(with_all <= no_seq * 1.0001, "seq-ac must not hurt");
    assert!(with_all <= no_order * 1.0001, "order-inputs must not hurt");
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
