//! Criterion benches for the synthesizer itself — the paper's §7.4
//! ("Running Time of OCAS"): search + costing time per workload, which
//! must depend on the search space, not on the input data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_synthesis(c: &mut Criterion) {
    let mut g = c.benchmark_group("synthesis");
    g.sample_size(10);

    // Input-size independence (§7.4): same search, different cardinalities.
    for (label, x, y) in [
        ("small", 1u64 << 12, 1u64 << 8),
        ("large", 1 << 26, 1 << 21),
    ] {
        g.bench_with_input(
            BenchmarkId::new("bnl-join", label),
            &(x, y),
            |b, &(x, y)| {
                b.iter(|| {
                    let mut e = ocas::experiments::bnl_no_writeout();
                    e.spec = ocas::specs::join(x, y, false);
                    e.depth = 3;
                    e.max_programs = 120;
                    e.synthesize().unwrap()
                })
            },
        );
    }

    g.bench_function("external-sort", |b| {
        b.iter(|| {
            let mut e = ocas::experiments::external_sorting();
            e.depth = 8;
            e.max_programs = 100;
            e.synthesize().unwrap()
        })
    });

    g.bench_function("aggregation", |b| {
        b.iter(|| ocas::experiments::aggregation().synthesize().unwrap())
    });
    g.finish();
}

fn bench_cost_estimation(c: &mut Criterion) {
    use ocal::parse;
    use ocas_cost::{Annot, CostEngine, Layout};
    use ocas_hierarchy::presets;
    use ocas_symbolic::{Env, Expr as Sym};
    use std::collections::BTreeMap;

    let h = presets::hdd_ram(8 << 20);
    let program = parse(
        "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
         if x.1 == y.1 then [<x, y>] else []",
    )
    .unwrap();
    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(Sym::var("x"), 2, 8));
    annots.insert("S".to_string(), Annot::relation(Sym::var("y"), 2, 8));
    let layout = Layout::all_inputs_on("HDD", &["R", "S"]);
    let stats = Env::new().with("x", 1e8).with("y", 1e6);

    c.bench_function("cost/blocked-bnl", |b| {
        b.iter(|| {
            let engine = CostEngine::new(&h, &layout, annots.clone(), stats.clone(), 8).unwrap();
            engine.cost(&program).unwrap()
        })
    });
}

criterion_group!(benches, bench_synthesis, bench_cost_estimation);
criterion_main!(benches);
