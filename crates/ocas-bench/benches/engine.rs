//! Criterion benches for the execution-engine substrate: simulated-mode
//! operator throughput (how fast the simulator replays paper-scale I/O).

use criterion::{criterion_group, criterion_main, Criterion};
use ocas_engine::{CpuModel, Executor, JoinPred, Mode, Output, Plan, RelSpec, Relation};
use ocas_hierarchy::presets;
use ocas_storage::StorageSim;

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine-sim");
    g.sample_size(10);

    g.bench_function("bnl-1GiB", |b| {
        b.iter(|| {
            let h = presets::hdd_ram(8 << 20);
            let sm = StorageSim::from_hierarchy(&h);
            let mut ex = Executor::new(sm, Mode::Simulated, CpuModel::default());
            let r = Relation::create(&mut ex.sm, &RelSpec::pairs("R", "HDD", 1 << 26), false, 0)
                .unwrap();
            let s = Relation::create(&mut ex.sm, &RelSpec::pairs("S", "HDD", 1 << 21), false, 0)
                .unwrap();
            let ri = ex.add_relation(r);
            let si = ex.add_relation(s);
            ex.run(&Plan::BnlJoin {
                outer: ri,
                inner: si,
                k1: 1 << 18,
                k2: 1 << 17,
                tiling: None,
                pred: JoinPred::KeyEq,
                order_inputs: true,
                output: Output::Discard,
            })
            .unwrap()
        })
    });

    g.bench_function("external-sort-1GiB", |b| {
        b.iter(|| {
            let h = presets::hdd_ram(260 * 1024);
            let sm = StorageSim::from_hierarchy(&h);
            let mut ex = Executor::new(sm, Mode::Simulated, CpuModel::default());
            let mut spec = RelSpec::ints("R", "HDD", 1 << 30);
            spec.col_bytes = 1;
            let r = Relation::create(&mut ex.sm, &spec, false, 0).unwrap();
            let ri = ex.add_relation(r);
            ex.run(&Plan::ExternalSort {
                input: ri,
                fan_in: 512,
                b_in: 4096,
                b_out: 16384,
                scratch: "HDD".into(),
                output: Output::Discard,
            })
            .unwrap()
        })
    });

    g.bench_function("faithful-grace-join", |b| {
        b.iter(|| {
            let h = presets::hdd_ram(1 << 25);
            let sm = StorageSim::from_hierarchy(&h);
            let mut ex = Executor::new(sm, Mode::Faithful, CpuModel::default());
            let r = Relation::create(
                &mut ex.sm,
                &RelSpec::pairs("R", "HDD", 2000).with_key_range(200),
                true,
                1,
            )
            .unwrap();
            let s = Relation::create(
                &mut ex.sm,
                &RelSpec::pairs("S", "HDD", 1000).with_key_range(200),
                true,
                2,
            )
            .unwrap();
            let ri = ex.add_relation(r);
            let si = ex.add_relation(s);
            ex.run(&Plan::GraceJoin {
                left: ri,
                right: si,
                partitions: 16,
                buffer_bytes: 1 << 14,
                spill: "HDD".into(),
                pred: JoinPred::KeyEq,
                output: Output::Discard,
            })
            .unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
