//! Property: the arena's canonical interning partitions rule-generated
//! candidates exactly like the legacy `dedup_key`-on-`Expr` path — two
//! candidates share an `ExprId` iff their legacy keys are equal, so both
//! dedup implementations produce identical distinct-program sets.

use ocal::{parse, Expr, ExprId, Interner, Type, TypeEnv};
use ocas_hierarchy::presets;
use ocas_rewrite::{dedup_key, next_fresh_index, rewrite_everywhere, RuleCtx};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap, HashSet};

fn specs() -> Vec<(Expr, TypeEnv, BTreeMap<String, String>)> {
    let rel = Type::list(Type::tuple(vec![Type::Int, Type::Int]));
    let join_env: TypeEnv = [("R".to_string(), rel.clone()), ("S".to_string(), rel)]
        .into_iter()
        .collect();
    let sort_env: TypeEnv = [("R".to_string(), Type::list(Type::list(Type::Int)))]
        .into_iter()
        .collect();
    let agg_env: TypeEnv = [("L".to_string(), Type::list(Type::Int))]
        .into_iter()
        .collect();
    let on_hdd = |names: &[&str]| -> BTreeMap<String, String> {
        names
            .iter()
            .map(|n| (n.to_string(), "HDD".to_string()))
            .collect()
    };
    vec![
        (
            parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap(),
            join_env.clone(),
            on_hdd(&["R", "S"]),
        ),
        (
            parse("for (x <- R) for (y <- S) [<x, y>]").unwrap(),
            join_env,
            on_hdd(&["R", "S"]),
        ),
        (
            parse("foldL([], unfoldR(mrg))(R)").unwrap(),
            sort_env,
            on_hdd(&["R"]),
        ),
        (parse("avg(L)").unwrap(), agg_env, on_hdd(&["L"])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random rule-derived candidate pools partition identically under the
    /// interner and under the legacy key.
    #[test]
    fn interned_dedup_agrees_with_legacy_dedup_key(
        spec_idx in 0usize..4,
        steps in proptest::collection::vec((0usize..64, 0usize..64), 0..5),
    ) {
        let h = presets::hdd_ram_cache(8 << 20);
        let rules = ocas_rewrite::default_rules();
        let (spec, env, inputs) = specs().swap_remove(spec_idx);

        // Walk a random derivation, pooling every candidate generated on
        // the way (the same population the search deduplicates).
        let mut pool: Vec<Expr> = vec![spec.clone()];
        let mut current = spec;
        for (pick, _salt) in steps {
            let mut cx = RuleCtx {
                hierarchy: &h,
                env: &env,
                input_nodes: &inputs,
                output: None,
                fresh: next_fresh_index(&current),
                bound: Vec::new(),
            };
            let candidates = rewrite_everywhere(&current, &rules, &mut cx);
            if candidates.is_empty() {
                break;
            }
            let next = candidates[pick % candidates.len()].clone();
            pool.extend(candidates);
            current = next;
        }

        // Interner partition vs legacy-key partition must be the same
        // equivalence relation: each canonical id maps to exactly one
        // legacy key and vice versa.
        let mut interner = Interner::new();
        let mut id_to_key: HashMap<ExprId, Expr> = HashMap::new();
        let mut key_to_id: HashMap<Expr, ExprId> = HashMap::new();
        for cand in &pool {
            let id = interner.canonical(cand);
            let key = dedup_key(cand);
            if let Some(prev) = id_to_key.get(&id) {
                prop_assert_eq!(
                    prev, &key,
                    "one ExprId covers two distinct legacy keys"
                );
            } else {
                id_to_key.insert(id, key.clone());
            }
            if let Some(prev) = key_to_id.get(&key) {
                prop_assert_eq!(
                    *prev, id,
                    "one legacy key split across two ExprIds"
                );
            } else {
                key_to_id.insert(key, id);
            }
        }
        // Identical distinct-program sets under both dedup paths.
        let legacy_distinct: HashSet<Expr> = pool.iter().map(dedup_key).collect();
        prop_assert_eq!(id_to_key.len(), legacy_distinct.len());
        // And a read-only lookup agrees with the interning pass.
        for cand in &pool {
            prop_assert_eq!(
                interner.find_canonical(cand),
                Some(interner.canonical(cand))
            );
        }
    }
}
