//! Replays the paper's §6 derivation of the Block Nested Loops Join step by
//! step, checking that every intermediate program of the published chain is
//! reachable in the search space:
//!
//! ```text
//! naive            ⇒ apply-block ×2
//! blocked          ⇒ swap-iter(-cond) + seq-ac
//! seq-annotated    ⇒ order-inputs
//! textbook BNL
//! ```

use ocal::{parse, pretty, Type, TypeEnv};
use ocas_hierarchy::presets;
use ocas_rewrite::{default_rules, search, Equivalence, SearchConfig, ValidationCfg};
use std::collections::BTreeMap;

fn join_env() -> TypeEnv {
    let rel = Type::list(Type::tuple(vec![Type::Int, Type::Int]));
    [("R".to_string(), rel.clone()), ("S".to_string(), rel)]
        .into_iter()
        .collect()
}

fn hdd_inputs() -> BTreeMap<String, String> {
    [("R", "HDD"), ("S", "HDD")]
        .iter()
        .map(|(a, b)| (a.to_string(), b.to_string()))
        .collect()
}

fn space(depth: u32) -> Vec<String> {
    let h = presets::hdd_ram(8 << 20);
    let env = join_env();
    let inputs = hdd_inputs();
    let spec = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
    let cfg = SearchConfig {
        max_depth: depth,
        max_programs: 3000,
        validation: Some(ValidationCfg::new(
            env.clone(),
            Equivalence::BagModuloFieldOrder,
        )),
        workers: 0,
    };
    let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
    result.programs.iter().map(|(p, _)| pretty(p)).collect()
}

#[test]
fn derivation_step1_single_blocking() {
    let programs = space(1);
    // apply-block on either loop.
    assert!(
        programs
            .iter()
            .any(|p| p.contains("[k") && p.contains("<- R")),
        "blocking R missing: {programs:#?}"
    );
    assert!(
        programs
            .iter()
            .any(|p| p.contains("<- S") && p.contains("[k")),
        "blocking S missing"
    );
    // swap-iter-cond applies at depth 1 too (the paper's if-variant).
    assert!(
        programs
            .iter()
            .any(|p| p.starts_with("for (y <- S) for (x <- R)")),
        "swap-iter(-cond) missing at depth 1"
    );
}

#[test]
fn derivation_step2_double_blocking() {
    let programs = space(2);
    // Both relations blocked simultaneously.
    assert!(
        programs.iter().any(|p| {
            let blocked_r = p.contains("<- R") && p.matches("[k").count() >= 2;
            blocked_r && p.contains("<- S")
        }),
        "double blocking missing"
    );
}

#[test]
fn derivation_step3_seq_annotation_on_inner_scan() {
    let programs = space(3);
    assert!(
        programs.iter().any(|p| p.contains("for[HDD >> RAM]")),
        "seq-ac missing at depth 3"
    );
}

#[test]
fn derivation_step4_order_inputs_wrapper() {
    let programs = space(4);
    assert!(
        programs
            .iter()
            .any(|p| p.contains("length") && p.contains("for[HDD >> RAM]")),
        "ordered + seq-annotated program missing at depth 4"
    );
}

#[test]
fn sort_derivation_reaches_every_intermediate() {
    // §7.2: insertion sort ⇒ fldL-to-trfld ⇒ funcPow-intro ⇒ inc-branching*
    //       ⇒ blocked unfoldR.
    let h = presets::hdd_ram(260 * 1024);
    let env: TypeEnv = [("R".to_string(), Type::list(Type::list(Type::Int)))]
        .into_iter()
        .collect();
    let inputs: BTreeMap<String, String> =
        [("R".to_string(), "HDD".to_string())].into_iter().collect();
    let spec = parse("foldL([], unfoldR(mrg))(R)").unwrap();
    let cfg = SearchConfig {
        max_depth: 7,
        max_programs: 500,
        validation: Some(ValidationCfg::new(env.clone(), Equivalence::Exact).with_sorted_inputs()),
        workers: 0,
    };
    let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
    let programs: Vec<String> = result.programs.iter().map(|(p, _)| pretty(p)).collect();
    for expected in [
        "treeFold[2](<[], unfoldR(mrg)>)(R)",
        "treeFold[2](<[], unfoldR(funcPow[1](mrg))>)(R)",
        "treeFold[4](<[], unfoldR(funcPow[2](mrg))>)(R)",
        "treeFold[8](<[], unfoldR(funcPow[3](mrg))>)(R)",
    ] {
        assert!(
            programs.iter().any(|p| p == expected),
            "missing intermediate `{expected}` in: {programs:#?}"
        );
    }
    // Blocked variants of the merges appear as well.
    assert!(
        programs
            .iter()
            .any(|p| p.contains("unfoldR[k") && p.contains("funcPow")),
        "no blocked unfoldR variant found"
    );
}

#[test]
fn every_program_in_the_space_is_semantically_valid() {
    // The search already validates; this re-validates a sample with a
    // different seed to guard against coincidental agreement.
    let h = presets::hdd_ram(8 << 20);
    let env = join_env();
    let inputs = hdd_inputs();
    let spec = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
    let cfg = SearchConfig {
        max_depth: 3,
        max_programs: 300,
        validation: Some(ValidationCfg::new(
            env.clone(),
            Equivalence::BagModuloFieldOrder,
        )),
        workers: 0,
    };
    let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
    let mut recheck = ValidationCfg::new(env.clone(), Equivalence::BagModuloFieldOrder);
    recheck.seed = 0xfeed_beef;
    recheck.rounds = 6;
    for (p, _) in &result.programs {
        assert!(
            ocas_rewrite::differential_check(&spec, p, &recheck),
            "program fails under a fresh seed: {}",
            pretty(p)
        );
    }
}
