//! Conservative side-condition checking by randomized differential testing.
//!
//! Most rule side conditions (associativity of a fold function, order
//! insensitivity of a join, compatibility with hash partitioning) are
//! undecidable in general. The paper prescribes deciding "a stronger but
//! simpler condition" conservatively; we combine syntactic guards inside the
//! rules with a semantic safety net here: every candidate program the search
//! produces is executed against the specification on deterministic random
//! inputs and rejected on any mismatch. This catches, for example, the
//! *hash-part* rule applied to a cross product (where partitioning loses
//! cross-bucket pairs).

use ocal::gen::{random_value, GenConfig, Rng};
use ocal::{BlockSize, DefName, Evaluator, Expr, Type, TypeEnv, Value};
use std::collections::BTreeMap;

/// How candidate outputs must relate to the specification's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Equivalence {
    /// Lists must be exactly equal (order-sensitive programs: sorting,
    /// merging, column reads).
    Exact,
    /// Lists must be equal as multisets (joins and other order-insensitive
    /// relational results; paper rules *swap-iter* and *hash-part* reorder
    /// results).
    Bag,
    /// Multiset equality where each row's top-level components are also
    /// unordered. *order-inputs* swaps the relations, so a join emits
    /// `⟨y, x⟩` instead of `⟨x, y⟩`; the paper treats these as the same
    /// result ("the input is a tuple of lists whose order does not matter
    /// for the calculated result").
    BagModuloFieldOrder,
}

/// Configuration of the differential validator.
#[derive(Debug, Clone)]
pub struct ValidationCfg {
    /// Input types (the specification's free variables).
    pub env: TypeEnv,
    /// Required equivalence.
    pub equivalence: Equivalence,
    /// Number of random input sets to try.
    pub rounds: u32,
    /// Random-value generation bounds.
    pub gen: GenConfig,
    /// Seed for reproducibility.
    pub seed: u64,
    /// Values assigned to block-size parameters while testing (they must
    /// not change semantics; small values exercise the blocking paths).
    pub param_values: Vec<u64>,
}

impl ValidationCfg {
    /// Defaults: 4 rounds, small sorted-agnostic inputs.
    pub fn new(env: TypeEnv, equivalence: Equivalence) -> ValidationCfg {
        ValidationCfg {
            env,
            equivalence,
            rounds: 4,
            gen: GenConfig::default(),
            seed: 0x0c45_5eed,
            param_values: vec![2, 3],
        }
    }

    /// Use sorted random lists (for programs whose contract requires sorted
    /// inputs, e.g. merges and duplicate removal).
    pub fn with_sorted_inputs(mut self) -> ValidationCfg {
        self.gen.sorted_lists = true;
        self
    }

    /// Override the number of testing rounds.
    pub fn with_rounds(mut self, rounds: u32) -> ValidationCfg {
        self.rounds = rounds;
        self
    }
}

fn canonical_bag(v: &Value, sort_fields: bool) -> Option<Vec<String>> {
    let items = v.as_list()?;
    let mut keys: Vec<String> = items
        .iter()
        .map(|i| {
            if sort_fields {
                if let Value::Tuple(fields) = i {
                    let mut fs: Vec<String> = fields.iter().map(|f| f.to_string()).collect();
                    fs.sort();
                    return format!("<{}>", fs.join(", "));
                }
            }
            i.to_string()
        })
        .collect();
    keys.sort();
    Some(keys)
}

/// Structural output comparison under the requested equivalence.
pub fn outputs_equal(a: &Value, b: &Value, eq: Equivalence) -> bool {
    match eq {
        Equivalence::Exact => a == b,
        Equivalence::Bag | Equivalence::BagModuloFieldOrder => {
            let sf = eq == Equivalence::BagModuloFieldOrder;
            match (canonical_bag(a, sf), canonical_bag(b, sf)) {
                (Some(x), Some(y)) => x == y,
                _ => a == b,
            }
        }
    }
}

/// Block-size parameter names of `e` in first-occurrence pre-order — the
/// same order the dedup canonicalization numbers them in. Assigning test
/// values by this position (rather than by the digits in the generated
/// name) makes validation verdicts independent of how fresh names were
/// numbered, which is what lets the arena search and the reference engine
/// agree candidate-for-candidate.
fn params_in_order(e: &Expr, out: &mut Vec<String>) {
    let mut push = |b: &BlockSize| {
        if let BlockSize::Param(p) = b {
            if !out.iter().any(|q| q == p) {
                out.push(p.clone());
            }
        }
    };
    match e {
        Expr::For {
            block, out_block, ..
        } => {
            push(block);
            push(out_block);
        }
        Expr::DefRef(DefName::TreeFold(k)) | Expr::DefRef(DefName::HashPartition(k)) => push(k),
        Expr::DefRef(DefName::UnfoldR { b_in, b_out }) => {
            push(b_in);
            push(b_out);
        }
        _ => {}
    }
    for c in e.children() {
        params_in_order(c, out);
    }
}

/// Runs `candidate` against `spec` on random inputs. Returns `true` iff all
/// rounds agree (a candidate that *errors* on any input is rejected, so the
/// check is conservative).
pub fn differential_check(spec: &Expr, candidate: &Expr, cfg: &ValidationCfg) -> bool {
    let mut params: Vec<String> = Vec::new();
    params_in_order(spec, &mut params);
    params_in_order(candidate, &mut params);
    let mut rng = Rng::new(cfg.seed);
    for round in 0..cfg.rounds {
        let mut inputs: BTreeMap<String, Value> = BTreeMap::new();
        for (name, ty) in &cfg.env {
            inputs.insert(name.clone(), random_value(ty, &mut rng, &cfg.gen));
        }
        // The spec must itself evaluate; otherwise the inputs are outside
        // the program's domain (e.g. head of empty) and the round is
        // skipped rather than failed.
        let spec_out = match evaluator(cfg, round, &params).run(spec, &inputs) {
            Ok(v) => v,
            Err(_) => continue,
        };
        let cand_out = match evaluator(cfg, round, &params).run(candidate, &inputs) {
            Ok(v) => v,
            Err(_) => return false,
        };
        if !outputs_equal(&spec_out, &cand_out, cfg.equivalence) {
            return false;
        }
    }
    true
}

fn evaluator(cfg: &ValidationCfg, round: u32, params: &[String]) -> Evaluator {
    let mut ev = Evaluator::new().with_fuel(20_000_000);
    // Cycle through the configured parameter test values so that different
    // rounds exercise different block sizes. Values are keyed by the
    // parameter's first-occurrence position, so every parameter in the
    // candidate is resolved no matter how high its generated index is.
    let pv = &cfg.param_values;
    let pick = |i: usize| pv[(i + round as usize) % pv.len()];
    for (i, name) in params.iter().enumerate() {
        // Partition counts (`s…`) of 1 would make hash partitioning a
        // no-op; keep them ≥ 2 like the legacy table did.
        let v = if name.starts_with('s') {
            pick(i) + 1
        } else {
            pick(i)
        };
        ev.params.insert(name.clone(), v);
    }
    for name in ["bin", "bout", "b_in", "b_out"] {
        ev.params.entry(name.to_string()).or_insert(2);
    }
    ev
}

/// Convenience: the inputs' common element type when the program is a
/// two-relation operator (used by *order-inputs* / *hash-part* guards).
pub fn two_equal_list_inputs(env: &TypeEnv) -> Option<(String, String, Type)> {
    let lists: Vec<(&String, &Type)> = env
        .iter()
        .filter(|(_, t)| matches!(t, Type::List(_)))
        .collect();
    if lists.len() != 2 {
        return None;
    }
    if lists[0].1 != lists[1].1 {
        return None;
    }
    Some((lists[0].0.clone(), lists[1].0.clone(), lists[0].1.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocal::parse;

    fn join_env() -> TypeEnv {
        let rel = Type::list(Type::tuple(vec![Type::Int, Type::Int]));
        [("R".to_string(), rel.clone()), ("S".to_string(), rel)]
            .into_iter()
            .collect()
    }

    #[test]
    fn identical_programs_pass() {
        let p = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let cfg = ValidationCfg::new(join_env(), Equivalence::Exact);
        assert!(differential_check(&p, &p.clone(), &cfg));
    }

    #[test]
    fn swapped_loops_pass_as_bag_fail_as_exact() {
        let a = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let b = parse("for (y <- S) for (x <- R) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let bag = ValidationCfg::new(join_env(), Equivalence::Bag);
        assert!(differential_check(&a, &b, &bag));
        let exact = ValidationCfg::new(join_env(), Equivalence::Exact).with_rounds(16);
        assert!(!differential_check(&a, &b, &exact));
    }

    #[test]
    fn wrong_program_rejected() {
        let a = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        // Cross product instead of the join.
        let b = parse("for (x <- R) for (y <- S) [<x, y>]").unwrap();
        let cfg = ValidationCfg::new(join_env(), Equivalence::Bag);
        assert!(!differential_check(&a, &b, &cfg));
    }

    #[test]
    fn blocked_candidate_with_params_passes() {
        let a = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let b = parse(
            "for (xB [k1] <- R) for (yB [k2] <- S) for (x <- xB) for (y <- yB) \
             if x.1 == y.1 then [<x, y>] else []",
        )
        .unwrap();
        let cfg = ValidationCfg::new(join_env(), Equivalence::Bag);
        assert!(differential_check(&a, &b, &cfg));
    }

    #[test]
    fn erroring_candidate_rejected() {
        let a = parse("for (x <- R) [x]").unwrap();
        let b = parse("[head(R)] ++ for (x <- tail(R)) [x]").unwrap(); // errors on []
        let env: TypeEnv = [(
            "R".to_string(),
            Type::list(Type::tuple(vec![Type::Int, Type::Int])),
        )]
        .into_iter()
        .collect();
        // Enough rounds that the deterministic generator produces an empty
        // list, on which the candidate errors (head of []).
        let cfg = ValidationCfg::new(env, Equivalence::Exact).with_rounds(32);
        assert!(!differential_check(&a, &b, &cfg));
    }

    #[test]
    fn two_equal_inputs_helper() {
        assert!(two_equal_list_inputs(&join_env()).is_some());
        let mut env = join_env();
        env.insert("N".into(), Type::Int);
        assert!(two_equal_list_inputs(&env).is_some());
        env.insert("T".into(), Type::list(Type::Int));
        assert!(two_equal_list_inputs(&env).is_none());
    }
}
