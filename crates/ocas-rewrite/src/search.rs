//! Breadth-first exhaustive search over the space of equivalent programs
//! (paper §6: "OCAS exhaustively searches the space of equivalent programs,
//! estimates the cost of each and then selects one with the best
//! performance"; §7.4 reports the search-space statistics we reproduce in
//! [`SearchStats`]).
//!
//! The engine is a **level-synchronous BFS over a hash-consed term arena**
//! ([`ocal::Interner`]):
//!
//! * Each frontier level is expanded by `cfg.workers` scoped threads
//!   (`std::thread::scope`; no extra dependencies). Workers apply the rules,
//!   typecheck and differentially validate candidates concurrently; the
//!   merge step consumes their results in frontier order, so every
//!   statistic and the `programs` list itself are **bit-identical to the
//!   sequential run** regardless of worker count.
//! * Candidates are enumerated as rewrite *sites* (position path +
//!   replacement subterm); the dedup key is interned by walking the parent
//!   tree with the replacement spliced in logically
//!   ([`ocal::Interner::canonical_at`]), so duplicate candidates — the
//!   majority in a saturating space — are dropped without ever being
//!   built. The seen-set is a `HashSet<ExprId>` with O(1) equality.
//! * Fresh-name counters are derived per frontier item
//!   ([`next_fresh_index`]) instead of threading one global counter through
//!   the whole search, which is what allows items to be expanded in any
//!   order (and in parallel) without changing the outcome.
//! * Rules that are typed identities skip re-typechecking, and rules that
//!   are unconditional equivalences skip differential validation (see
//!   [`Rule::preserves_type`] / [`Rule::preserves_semantics`]); debug
//!   builds assert both claims on every accepted candidate.
//!
//! [`reference_search`] keeps the original single-queue, clone-heavy
//! implementation as the oracle: the parity regression tests and the
//! `ocas-bench` `synthesis` section run both and require identical
//! statistics.

use crate::conditions::{differential_check, Equivalence, ValidationCfg};
use crate::rules::{next_fresh_index, Rule, RuleCtx};
use ocal::intern::FxBuildHasher;
use ocal::{typecheck, BlockSize, DefName, Expr, ExprId, Interner, Type, TypeEnv};
use ocas_hierarchy::Hierarchy;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum number of rule applications along one derivation.
    pub max_depth: u32,
    /// Hard cap on the number of distinct programs explored.
    pub max_programs: usize,
    /// Differential validation of every candidate against the spec;
    /// `None` trusts the rules' syntactic guards alone.
    pub validation: Option<ValidationCfg>,
    /// Frontier-expansion worker threads: `0` picks the machine's available
    /// parallelism, `1` runs in-line. The result is identical for every
    /// setting; only wall-clock changes.
    pub workers: usize,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            max_depth: 7,
            max_programs: 20_000,
            validation: None,
            workers: 0,
        }
    }
}

/// Statistics mirroring the paper's Table 1 search columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// Number of distinct programs in the explored space (paper: "Search
    /// space").
    pub explored: usize,
    /// Candidates generated before deduplication.
    pub generated: usize,
    /// Candidates rejected by the type checker.
    pub rejected_type: usize,
    /// Candidates rejected by differential validation.
    pub rejected_semantics: usize,
    /// Longest derivation (paper: "Steps").
    pub depth_reached: u32,
    /// Programs accepted but not expanded because a [`SearchHooks`] prune
    /// hook declined them (0 unless branch-and-bound pruning is opted in).
    pub pruned: usize,
    /// Distinct hash-consed nodes in the term arena at the end of the
    /// search (a measure of structural sharing across the space).
    pub arena_nodes: usize,
    /// Wall-clock seconds spent searching (paper: "OCAS Runtime").
    pub seconds: f64,
}

impl SearchStats {
    /// The deterministic subset of the statistics — everything except the
    /// wall clock. Two runs of the same search (any worker count, either
    /// engine) must agree on this.
    pub fn deterministic(&self) -> (usize, usize, usize, usize, u32) {
        (
            self.explored,
            self.generated,
            self.rejected_type,
            self.rejected_semantics,
            self.depth_reached,
        )
    }
}

/// The explored program space.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Every distinct (validated) program, including the specification at
    /// index 0, paired with its derivation depth.
    pub programs: Vec<(Expr, u32)>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Caller hooks into the search loop, the mechanism behind pipelined cost
/// estimation and opt-in branch-and-bound pruning.
///
/// Both methods are invoked on the merge thread in **deterministic order**
/// (program index order), never concurrently.
pub trait SearchHooks {
    /// Called once per accepted program, immediately when it enters the
    /// space (index 0 is the specification). A pipelined coster hands the
    /// program to its worker pool here instead of waiting for the search
    /// to finish.
    fn on_program(&mut self, index: usize, program: &Expr, depth: u32) {
        let _ = (index, program, depth);
    }

    /// Return `false` to keep `program` in the space but *not* expand it
    /// (its would-be descendants are never generated; counted in
    /// [`SearchStats::pruned`]). The default accepts everything, which
    /// keeps the explored space bit-identical to the exhaustive BFS.
    fn should_expand(&mut self, index: usize, program: &Expr, depth: u32) -> bool {
        let _ = (index, program, depth);
        true
    }
}

/// The do-nothing hooks: plain exhaustive search.
pub struct NoHooks;

impl SearchHooks for NoHooks {}

/// Runs the BFS.
///
/// `input_nodes`/`output` describe the physical layout (used by *seq-ac*).
pub fn search(
    spec: &Expr,
    env: &TypeEnv,
    hierarchy: &Hierarchy,
    input_nodes: &BTreeMap<String, String>,
    output: Option<String>,
    rules: &[Box<dyn Rule>],
    cfg: &SearchConfig,
) -> Result<SearchResult, ocal::TypeError> {
    search_with(
        spec,
        env,
        hierarchy,
        input_nodes,
        output,
        rules,
        cfg,
        &mut NoHooks,
    )
}

/// Per-candidate provenance: the producing rule's name (for the per-rule
/// tracing counters) and its conservative-check exemptions (see
/// [`Rule::preserves_type`]).
#[derive(Debug, Clone, Copy)]
struct RuleInfo {
    name: &'static str,
    preserves_type: bool,
    preserves_semantics: bool,
}

/// One candidate as produced (and possibly pre-evaluated) by a worker: the
/// rewrite site (`path` of `Expr::children` indices into the frontier item)
/// plus the replacement subterm. The full candidate tree is only
/// materialized once the dedup key turns out to be new.
struct CandEval {
    path: Vec<usize>,
    repl: Expr,
    info: RuleInfo,
    /// Worker-materialized candidate (parallel mode).
    materialized: Option<Expr>,
    /// Worker-computed typecheck verdict (None = not computed).
    ty_ok: Option<bool>,
    /// Worker-computed differential-validation verdict.
    sem_ok: Option<bool>,
}

/// Rebuilds "`e` with the subterm at `path` replaced by `repl`".
fn splice(e: &Expr, path: &[usize], repl: &Expr) -> Expr {
    match path.split_first() {
        None => repl.clone(),
        Some((&target, rest)) => {
            let mut i = 0usize;
            e.map_children(|c| {
                let out = if i == target {
                    splice(c, rest, repl)
                } else {
                    c.clone()
                };
                i += 1;
                out
            })
        }
    }
}

/// Everything a frontier-expansion worker needs, shared immutably.
struct ExpandShared<'a> {
    rules: &'a [Box<dyn Rule>],
    hierarchy: &'a Hierarchy,
    env: &'a TypeEnv,
    input_nodes: &'a BTreeMap<String, String>,
    output: &'a Option<String>,
    spec: &'a Expr,
    spec_ty: &'a Type,
    validation: Option<&'a ValidationCfg>,
}

/// Expands one frontier item: applies every rule at every position. When
/// `snapshot` is given (parallel mode), the expensive per-candidate checks
/// are evaluated eagerly — except for candidates whose canonical form is
/// already in the seen-set snapshot, which the merge step will drop anyway.
fn expand_item(
    program: &Expr,
    shared: &ExpandShared<'_>,
    snapshot: Option<(&Interner, &HashSet<ExprId, FxBuildHasher>)>,
) -> Vec<CandEval> {
    let mut cx = RuleCtx {
        hierarchy: shared.hierarchy,
        env: shared.env,
        input_nodes: shared.input_nodes,
        output: shared.output.clone(),
        fresh: next_fresh_index(program),
        bound: Vec::new(),
    };
    let mut out = Vec::new();
    let eq = shared.validation.map(|v| v.equivalence);
    rewrite_sites(
        program,
        shared.rules,
        &mut cx,
        eq,
        &mut |path, repl, info| {
            out.push(CandEval {
                path: path.to_vec(),
                repl,
                info,
                materialized: None,
                ty_ok: None,
                sem_ok: None,
            })
        },
    );
    if let Some((interner, seen)) = snapshot {
        for ev in &mut out {
            let cand = splice(program, &ev.path, &ev.repl);
            let known_dup = interner
                .find_canonical(&cand)
                .is_some_and(|id| seen.contains(&id));
            if known_dup {
                continue; // Merge will dedup it; don't waste the checks.
            }
            let ty_ok = if ev.info.preserves_type {
                true
            } else {
                let ok = matches!(typecheck(&cand, shared.env), Ok(ref t) if t == shared.spec_ty);
                ev.ty_ok = Some(ok);
                ok
            };
            if ty_ok && !ev.info.preserves_semantics {
                if let Some(v) = shared.validation {
                    ev.sem_ok = Some(differential_check(shared.spec, &cand, v));
                }
            }
            ev.materialized = Some(cand);
        }
    }
    out
}

/// Runs the BFS with caller [`SearchHooks`] — the entry point the
/// synthesizer uses to pipeline cost estimation into the search loop.
#[allow(clippy::too_many_arguments)]
pub fn search_with<H: SearchHooks>(
    spec: &Expr,
    env: &TypeEnv,
    hierarchy: &Hierarchy,
    input_nodes: &BTreeMap<String, String>,
    output: Option<String>,
    rules: &[Box<dyn Rule>],
    cfg: &SearchConfig,
    hooks: &mut H,
) -> Result<SearchResult, ocal::TypeError> {
    let start = Instant::now();
    let spec_ty = typecheck(spec, env)?;

    let mut stats = SearchStats::default();
    let mut interner = Interner::new();
    let mut seen: HashSet<ExprId, FxBuildHasher> = HashSet::default();
    let mut programs: Vec<(Expr, u32)> = Vec::new();

    seen.insert(interner.canonical(spec));
    programs.push((spec.clone(), 0));
    hooks.on_program(0, spec, 0);
    let mut frontier: Vec<(Expr, u32)> = Vec::new();
    if cfg.max_depth > 0 {
        if hooks.should_expand(0, spec, 0) {
            frontier.push((spec.clone(), 0));
        } else {
            stats.pruned += 1;
        }
    }

    let shared = ExpandShared {
        rules,
        hierarchy,
        env,
        input_nodes,
        output: &output,
        spec,
        spec_ty: &spec_ty,
        validation: cfg.validation.as_ref(),
    };
    let workers = if cfg.workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        cfg.workers
    };

    while !frontier.is_empty() {
        let depth = frontier[0].1;
        debug_assert!(frontier.iter().all(|(_, d)| *d == depth));
        if depth >= cfg.max_depth || programs.len() >= cfg.max_programs {
            break;
        }
        // Tracing: spans/counters are only recorded here in the
        // deterministic merge (below), never on workers, so traces are
        // bit-identical for any worker count. The level span lives on the
        // programs-explored axis (a deterministic "clock").
        let tracing = ocas_obs::enabled();
        let explored0 = programs.len();
        let generated0 = stats.generated;
        let frontier_len = frontier.len();
        // Per-rule `(candidates, deduped, rejected_type, rejected_sem)`.
        let mut rule_stats: BTreeMap<&'static str, [u64; 4]> = BTreeMap::new();

        // Expand the whole level (in parallel when it pays).
        let mut expansions: Vec<(usize, Vec<CandEval>)> = if workers <= 1 || frontier.len() < 2 {
            frontier
                .iter()
                .enumerate()
                .map(|(i, (p, _))| (i, expand_item(p, &shared, None)))
                .collect()
        } else {
            let next = AtomicUsize::new(0);
            let sink: Mutex<Vec<(usize, Vec<CandEval>)>> =
                Mutex::new(Vec::with_capacity(frontier.len()));
            let interner_ref = &interner;
            let seen_ref = &seen;
            let frontier_ref = &frontier;
            let shared_ref = &shared;
            std::thread::scope(|s| {
                for _ in 0..workers.min(frontier_ref.len()) {
                    s.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= frontier_ref.len() {
                            break;
                        }
                        let exp = expand_item(
                            &frontier_ref[i].0,
                            shared_ref,
                            Some((interner_ref, seen_ref)),
                        );
                        sink.lock().unwrap().push((i, exp));
                    });
                }
            });
            sink.into_inner().unwrap()
        };
        expansions.sort_unstable_by_key(|(i, _)| *i);

        // Merge in frontier order: statistics and acceptance decisions are
        // made here only, so they cannot depend on worker scheduling.
        let mut next_frontier: Vec<(Expr, u32)> = Vec::new();
        for ((item, _), (_, evals)) in frontier.iter().zip(expansions) {
            // Mirrors the reference engine: an item popped after the cap is
            // reached contributes nothing, not even `generated`.
            if programs.len() >= cfg.max_programs {
                continue;
            }
            stats.generated += evals.len();
            for ev in evals {
                if programs.len() >= cfg.max_programs {
                    break;
                }
                if tracing {
                    rule_stats.entry(ev.info.name).or_insert([0; 4])[0] += 1;
                }
                // Dedup without building the candidate: canonicalize the
                // item tree with the rewrite spliced in at its path.
                let key = interner.canonical_at(item, &ev.path, &ev.repl);
                if seen.contains(&key) {
                    if tracing {
                        rule_stats.entry(ev.info.name).or_insert([0; 4])[1] += 1;
                    }
                    continue;
                }
                let cand = ev
                    .materialized
                    .unwrap_or_else(|| splice(item, &ev.path, &ev.repl));
                // Type preservation.
                let ty_ok = if ev.info.preserves_type {
                    debug_assert!(
                        matches!(typecheck(&cand, env), Ok(ref t) if *t == spec_ty),
                        "rule flagged preserves_type produced an ill-typed candidate: {cand:?}"
                    );
                    true
                } else {
                    match ev.ty_ok {
                        Some(ok) => ok,
                        None => matches!(typecheck(&cand, env), Ok(ref t) if *t == spec_ty),
                    }
                };
                if !ty_ok {
                    stats.rejected_type += 1;
                    if tracing {
                        rule_stats.entry(ev.info.name).or_insert([0; 4])[2] += 1;
                    }
                    seen.insert(key);
                    continue;
                }
                // Semantic preservation (conservative differential testing).
                let sem_ok = match cfg.validation.as_ref() {
                    None => true,
                    Some(_) if ev.info.preserves_semantics => {
                        debug_assert!(
                            differential_check(spec, &cand, cfg.validation.as_ref().unwrap()),
                            "rule flagged preserves_semantics produced a diverging candidate: {cand:?}"
                        );
                        true
                    }
                    Some(v) => match ev.sem_ok {
                        Some(ok) => ok,
                        None => differential_check(spec, &cand, v),
                    },
                };
                if !sem_ok {
                    stats.rejected_semantics += 1;
                    if tracing {
                        rule_stats.entry(ev.info.name).or_insert([0; 4])[3] += 1;
                    }
                    seen.insert(key);
                    continue;
                }
                seen.insert(key);
                stats.depth_reached = stats.depth_reached.max(depth + 1);
                let index = programs.len();
                hooks.on_program(index, &cand, depth + 1);
                if depth + 1 < cfg.max_depth {
                    if hooks.should_expand(index, &cand, depth + 1) {
                        next_frontier.push((cand.clone(), depth + 1));
                    } else {
                        stats.pruned += 1;
                    }
                }
                programs.push((cand, depth + 1));
            }
        }
        if tracing {
            ocas_obs::span(
                ocas_obs::Clock::Sim,
                "search",
                "level",
                explored0 as f64,
                (programs.len() - explored0) as f64,
                &[
                    ("depth", f64::from(depth + 1)),
                    ("frontier", frontier_len as f64),
                    ("generated", (stats.generated - generated0) as f64),
                ],
            );
            let at = f64::from(depth + 1);
            for (rule, [cand, dup, rty, rsem]) in rule_stats {
                let track = format!("rule:{rule}");
                for (name, v) in [
                    ("candidates", cand),
                    ("deduped", dup),
                    ("rejected_type", rty),
                    ("rejected_semantics", rsem),
                ] {
                    if v > 0 {
                        ocas_obs::counter(ocas_obs::Clock::Sim, &track, name, at, v as f64);
                    }
                }
            }
        }
        frontier = next_frontier;
    }

    stats.explored = programs.len();
    stats.arena_nodes = interner.len();
    stats.seconds = start.elapsed().as_secs_f64();
    Ok(SearchResult { programs, stats })
}

/// The original single-queue BFS (one global fresh-name counter, owned
/// [`Expr`] dedup keys in a `HashSet<Expr>`). Kept verbatim as the test
/// oracle and the before-baseline of the `ocas-bench` `synthesis` section;
/// [`search`] must report identical deterministic statistics.
pub fn reference_search(
    spec: &Expr,
    env: &TypeEnv,
    hierarchy: &Hierarchy,
    input_nodes: &BTreeMap<String, String>,
    output: Option<String>,
    rules: &[Box<dyn Rule>],
    cfg: &SearchConfig,
) -> Result<SearchResult, ocal::TypeError> {
    let start = Instant::now();
    let spec_ty = typecheck(spec, env)?;

    let mut stats = SearchStats::default();
    let mut seen: HashSet<Expr> = HashSet::new();
    let mut programs: Vec<(Expr, u32)> = Vec::new();
    let mut queue: VecDeque<(Expr, u32)> = VecDeque::new();

    seen.insert(dedup_key(spec));
    programs.push((spec.clone(), 0));
    queue.push_back((spec.clone(), 0));

    let mut cx = RuleCtx {
        hierarchy,
        env,
        input_nodes,
        output,
        fresh: 0,
        bound: Vec::new(),
    };

    while let Some((program, depth)) = queue.pop_front() {
        if depth >= cfg.max_depth || programs.len() >= cfg.max_programs {
            continue;
        }
        let candidates = rewrite_everywhere(&program, rules, &mut cx);
        stats.generated += candidates.len();
        for cand in candidates {
            if programs.len() >= cfg.max_programs {
                break;
            }
            let key = dedup_key(&cand);
            if seen.contains(&key) {
                continue;
            }
            // Type preservation.
            match typecheck(&cand, env) {
                Ok(t) if t == spec_ty => {}
                _ => {
                    stats.rejected_type += 1;
                    seen.insert(key);
                    continue;
                }
            }
            // Semantic preservation (conservative differential testing).
            if let Some(v) = &cfg.validation {
                if !differential_check(spec, &cand, v) {
                    stats.rejected_semantics += 1;
                    seen.insert(key);
                    continue;
                }
            }
            seen.insert(key);
            stats.depth_reached = stats.depth_reached.max(depth + 1);
            programs.push((cand.clone(), depth + 1));
            queue.push_back((cand, depth + 1));
        }
    }

    stats.explored = programs.len();
    stats.seconds = start.elapsed().as_secs_f64();
    Ok(SearchResult { programs, stats })
}

/// Applies every rule at every position of `e`, returning whole programs.
pub fn rewrite_everywhere(e: &Expr, rules: &[Box<dyn Rule>], cx: &mut RuleCtx<'_>) -> Vec<Expr> {
    let mut out = Vec::new();
    rewrite_sites(e, rules, cx, None, &mut |path, repl, _| {
        out.push(splice(e, path, &repl))
    });
    out
}

/// Applies every rule at every position of `e`, emitting each rewrite as a
/// site: the position's [`Expr::children`] index path plus the replacement
/// subterm, together with the producing rule's check exemptions. Emission
/// order is pre-order over positions with the rules in library order at
/// each position — identical to the candidate order of the original
/// rebuild-as-you-go walker, which the engine-parity guarantees rely on.
fn rewrite_sites(
    e: &Expr,
    rules: &[Box<dyn Rule>],
    cx: &mut RuleCtx<'_>,
    equivalence: Option<Equivalence>,
    emit: &mut dyn FnMut(&[usize], Expr, RuleInfo),
) {
    fn go(
        e: &Expr,
        rules: &[Box<dyn Rule>],
        cx: &mut RuleCtx<'_>,
        equivalence: Option<Equivalence>,
        is_root: bool,
        path: &mut Vec<usize>,
        emit: &mut dyn FnMut(&[usize], Expr, RuleInfo),
    ) {
        for rule in rules {
            if rule.root_only() && !is_root {
                continue;
            }
            let info = RuleInfo {
                name: rule.name(),
                preserves_type: rule.preserves_type(),
                preserves_semantics: equivalence.is_some_and(|eq| rule.preserves_semantics(eq)),
            };
            for rw in rule.apply(e, cx) {
                emit(path, rw, info);
            }
        }
        // Recurse into children, tracking binders for the rules' guards.
        match e {
            Expr::Lam { param, body } => {
                cx.bound.push(param.clone());
                path.push(0);
                go(body, rules, cx, equivalence, false, path, emit);
                path.pop();
                cx.bound.pop();
            }
            Expr::For {
                var, source, body, ..
            } => {
                path.push(0);
                go(source, rules, cx, equivalence, false, path, emit);
                path.pop();
                cx.bound.push(var.clone());
                path.push(1);
                go(body, rules, cx, equivalence, false, path, emit);
                path.pop();
                cx.bound.pop();
            }
            other => {
                for (i, child) in other.children().iter().enumerate() {
                    path.push(i);
                    go(child, rules, cx, equivalence, false, path, emit);
                    path.pop();
                }
            }
        }
    }
    go(e, rules, cx, equivalence, true, &mut Vec::new(), emit);
}

/// Deduplication key: α-canonical form with block-size parameters renamed in
/// first-occurrence order, so derivations that differ only in the generated
/// names collapse. This is the legacy owned-`Expr` key;
/// [`ocal::Interner::canonical`] computes the identical key directly in the
/// term arena and is what [`search`] uses.
pub fn dedup_key(e: &Expr) -> Expr {
    let canon = e.alpha_canonical();
    let mut order: Vec<String> = Vec::new();
    collect_params(&canon, &mut order);
    let map: BTreeMap<String, String> = order
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, format!("%p{i}")))
        .collect();
    rename_params(&canon, &map)
}

fn collect_params(e: &Expr, out: &mut Vec<String>) {
    let mut push = |b: &BlockSize| {
        if let BlockSize::Param(p) = b {
            if !out.contains(p) {
                out.push(p.clone());
            }
        }
    };
    match e {
        Expr::For {
            block, out_block, ..
        } => {
            push(block);
            push(out_block);
        }
        Expr::DefRef(DefName::TreeFold(k)) | Expr::DefRef(DefName::HashPartition(k)) => push(k),
        Expr::DefRef(DefName::UnfoldR { b_in, b_out }) => {
            push(b_in);
            push(b_out);
        }
        _ => {}
    }
    for c in e.children() {
        collect_params(c, out);
    }
}

fn rename_params(e: &Expr, map: &BTreeMap<String, String>) -> Expr {
    let rn = |b: &BlockSize| -> BlockSize {
        match b {
            BlockSize::Param(p) => {
                BlockSize::Param(map.get(p).cloned().unwrap_or_else(|| p.clone()))
            }
            c => c.clone(),
        }
    };
    let rebuilt = match e {
        Expr::For {
            var,
            block,
            source,
            out_block,
            body,
            seq,
        } => Expr::For {
            var: var.clone(),
            block: rn(block),
            source: source.clone(),
            out_block: rn(out_block),
            body: body.clone(),
            seq: seq.clone(),
        },
        Expr::DefRef(DefName::TreeFold(k)) => Expr::DefRef(DefName::TreeFold(rn(k))),
        Expr::DefRef(DefName::HashPartition(k)) => Expr::DefRef(DefName::HashPartition(rn(k))),
        Expr::DefRef(DefName::UnfoldR { b_in, b_out }) => Expr::DefRef(DefName::UnfoldR {
            b_in: rn(b_in),
            b_out: rn(b_out),
        }),
        other => other.clone(),
    };
    rebuilt.map_children(|c| rename_params(c, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::Equivalence;
    use crate::rules::default_rules;
    use ocal::{parse, pretty, Type};
    use ocas_hierarchy::presets;

    fn join_env() -> TypeEnv {
        let rel = Type::list(Type::tuple(vec![Type::Int, Type::Int]));
        [("R".to_string(), rel.clone()), ("S".to_string(), rel)]
            .into_iter()
            .collect()
    }

    fn hdd_inputs(names: &[&str]) -> BTreeMap<String, String> {
        names
            .iter()
            .map(|n| (n.to_string(), "HDD".to_string()))
            .collect()
    }

    #[test]
    fn dedup_key_collapses_parameter_renamings() {
        let a = parse("for (xB [k1] <- R) for (x <- xB) [x]").unwrap();
        let b = parse("for (yB [k7] <- R) for (x <- yB) [x]").unwrap();
        assert_eq!(dedup_key(&a), dedup_key(&b));
        let c = parse("for (xB [k1] <- S) for (x <- xB) [x]").unwrap();
        assert_ne!(dedup_key(&a), dedup_key(&c));
    }

    #[test]
    fn interned_canonical_matches_legacy_dedup_key() {
        // The fused canonicalize-and-intern pass must agree with
        // intern(dedup_key(·)) — same id iff same legacy key.
        let exprs = [
            "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []",
            "for (xB [k4] <- R) for (x <- xB) [x]",
            "for (yB [k9] <- R) for (z <- yB) [z]",
            "foldL([], unfoldR(mrg))(R)",
            "treeFold[4](<[], unfoldR(funcPow[2](mrg))>)(R)",
            "avg(for (pB_1 [k0] <- L) for (p <- pB_1) [p])",
        ];
        let mut it = Interner::new();
        for src in exprs {
            let e = parse(src).unwrap();
            assert_eq!(
                it.canonical(&e),
                it.intern(&dedup_key(&e)),
                "fused canonical disagrees with legacy key on {src}"
            );
        }
    }

    #[test]
    fn canonical_at_matches_spliced_canonical() {
        // Dedup-by-hole must agree with canonicalizing the built candidate.
        let mut it = Interner::new();
        let root = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let repl = parse("for (yB [k3] <- S) for (y <- yB) [y]").unwrap();
        for path in [vec![], vec![1], vec![0], vec![1, 0]] {
            let via_hole = it.canonical_at(&root, &path, &repl);
            let built = splice(&root, &path, &repl);
            assert_eq!(via_hole, it.canonical(&built), "path {path:?}");
        }
    }

    #[test]
    fn bnl_join_space_contains_the_textbook_plan() {
        let h = presets::hdd_ram(8 << 20);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let spec = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let cfg = SearchConfig {
            max_depth: 5,
            max_programs: 4000,
            validation: Some(ValidationCfg::new(env.clone(), Equivalence::Bag)),
            workers: 0,
        };
        let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
        assert!(result.stats.explored > 10, "{:?}", result.stats);
        // The canonical BNL shape must be somewhere in the space: an outer
        // blocked loop over one relation, an inner blocked loop over the
        // other, then element loops.
        let found = result.programs.iter().any(|(p, _)| {
            let s = pretty(p);
            is_bnl_shape(&s)
        });
        assert!(
            found,
            "no BNL shape among {} programs",
            result.stats.explored
        );
        // And a seq-annotated variant too.
        let seq_found = result
            .programs
            .iter()
            .any(|(p, _)| pretty(p).contains("for[HDD >> RAM]"));
        assert!(seq_found, "no seq-annotated program found");
    }

    fn is_bnl_shape(s: &str) -> bool {
        // for (aB [kX] <- R|S) for (bB [kY] <- S|R) for (a <- aB) for (b <- bB)
        let mut fors = 0;
        let mut blocked = 0;
        for part in s.split("for ") {
            if part.starts_with('(') {
                fors += 1;
                if part.contains("[k") {
                    blocked += 1;
                }
            }
        }
        fors >= 4 && blocked >= 2 && s.contains("if")
    }

    #[test]
    fn sort_space_reaches_wide_merges() {
        let h = presets::hdd_ram(8 << 20);
        let env: TypeEnv = [("R".to_string(), Type::list(Type::list(Type::Int)))]
            .into_iter()
            .collect();
        let inputs = hdd_inputs(&["R"]);
        let spec = parse("foldL([], unfoldR(mrg))(R)").unwrap();
        let cfg = SearchConfig {
            max_depth: 6,
            max_programs: 3000,
            validation: Some(
                ValidationCfg::new(env.clone(), Equivalence::Exact).with_sorted_inputs(),
            ),
            workers: 0,
        };
        let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
        let widths: Vec<u64> = result
            .programs
            .iter()
            .filter_map(|(p, _)| max_treefold_width(p))
            .collect();
        let max_width = widths.into_iter().max().unwrap_or(0);
        assert!(
            max_width >= 16,
            "expected at least a 16-way merge in the space, got {max_width} \
             over {} programs",
            result.stats.explored
        );
    }

    fn max_treefold_width(e: &Expr) -> Option<u64> {
        let mut best = None;
        fn walk(e: &Expr, best: &mut Option<u64>) {
            if let Expr::DefRef(DefName::TreeFold(BlockSize::Const(m))) = e {
                *best = Some(best.unwrap_or(0).max(*m));
            }
            for c in e.children() {
                walk(c, best);
            }
        }
        walk(e, &mut best);
        best
    }

    #[test]
    fn validation_rejects_hash_part_on_cross_products() {
        // Cross product: hash partitioning would lose cross-bucket pairs;
        // differential validation must reject every hash-part candidate.
        let h = presets::hdd_ram(8 << 20);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let spec = parse("for (x <- R) for (y <- S) [<x, y>]").unwrap();
        let cfg = SearchConfig {
            max_depth: 2,
            max_programs: 500,
            validation: Some(ValidationCfg::new(env.clone(), Equivalence::Bag)),
            workers: 0,
        };
        let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
        assert!(
            result.stats.rejected_semantics > 0,
            "expected semantic rejections: {:?}",
            result.stats
        );
        for (p, _) in &result.programs {
            assert!(
                !pretty(p).contains("hashPartition"),
                "unsound hash-part survived: {}",
                pretty(p)
            );
        }
    }

    #[test]
    fn search_depth_and_stats_reported() {
        let h = presets::hdd_ram(8 << 20);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let spec = parse("for (x <- R) [x]").unwrap();
        let cfg = SearchConfig {
            max_depth: 3,
            max_programs: 200,
            validation: None,
            workers: 0,
        };
        let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
        assert!(result.stats.explored >= 2);
        assert!(result.stats.depth_reached >= 1);
        assert!(result.stats.arena_nodes > 0);
        assert_eq!(result.programs[0].1, 0, "spec first at depth 0");
    }

    /// Deterministic-merge guarantee: any worker count gives bit-identical
    /// programs and statistics, and both agree with the reference engine's
    /// deterministic statistics.
    #[test]
    fn worker_count_does_not_change_the_result() {
        let h = presets::hdd_ram(8 << 20);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let spec = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let mk = |workers| SearchConfig {
            max_depth: 4,
            max_programs: 3000,
            validation: Some(ValidationCfg::new(env.clone(), Equivalence::Bag)),
            workers,
        };
        let seq = search(&spec, &env, &h, &inputs, None, &default_rules(), &mk(1)).unwrap();
        let par = search(&spec, &env, &h, &inputs, None, &default_rules(), &mk(4)).unwrap();
        assert_eq!(seq.stats.deterministic(), par.stats.deterministic());
        assert_eq!(seq.programs.len(), par.programs.len());
        for ((a, da), (b, db)) in seq.programs.iter().zip(&par.programs) {
            assert_eq!(da, db);
            assert_eq!(a, b, "program lists must match exactly");
        }
        let reference =
            reference_search(&spec, &env, &h, &inputs, None, &default_rules(), &mk(1)).unwrap();
        assert_eq!(reference.stats.deterministic(), seq.stats.deterministic());
        // Reference and arena engines number fresh names differently, but
        // candidate sets must agree up to the canonical key.
        let keys = |r: &SearchResult| {
            let mut ks: Vec<Expr> = r.programs.iter().map(|(p, _)| dedup_key(p)).collect();
            ks.sort();
            ks
        };
        assert_eq!(keys(&reference), keys(&seq));
    }

    /// Hooks fire in program-index order and pruning is honored.
    #[test]
    fn hooks_observe_programs_and_can_prune() {
        struct Recorder {
            seen: Vec<(usize, u32)>,
            prune_from: usize,
        }
        impl SearchHooks for Recorder {
            fn on_program(&mut self, index: usize, _program: &Expr, depth: u32) {
                self.seen.push((index, depth));
            }
            fn should_expand(&mut self, index: usize, _program: &Expr, _depth: u32) -> bool {
                index < self.prune_from
            }
        }
        let h = presets::hdd_ram(8 << 20);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let spec = parse("for (x <- R) for (y <- S) [<x, y>]").unwrap();
        let cfg = SearchConfig {
            max_depth: 3,
            max_programs: 500,
            validation: None,
            workers: 1,
        };
        let mut all = Recorder {
            seen: Vec::new(),
            prune_from: usize::MAX,
        };
        let full = search_with(
            &spec,
            &env,
            &h,
            &inputs,
            None,
            &default_rules(),
            &cfg,
            &mut all,
        )
        .unwrap();
        assert_eq!(all.seen.len(), full.stats.explored);
        assert!(all.seen.windows(2).all(|w| w[0].0 + 1 == w[1].0));
        assert_eq!(full.stats.pruned, 0);

        let mut pruned = Recorder {
            seen: Vec::new(),
            prune_from: 2,
        };
        let cut = search_with(
            &spec,
            &env,
            &h,
            &inputs,
            None,
            &default_rules(),
            &cfg,
            &mut pruned,
        )
        .unwrap();
        assert!(cut.stats.pruned > 0);
        assert!(
            cut.stats.explored < full.stats.explored,
            "pruning must shrink the space: {} vs {}",
            cut.stats.explored,
            full.stats.explored
        );
    }
}
