//! Breadth-first exhaustive search over the space of equivalent programs
//! (paper §6: "OCAS exhaustively searches the space of equivalent programs,
//! estimates the cost of each and then selects one with the best
//! performance"; §7.4 reports the search-space statistics we reproduce in
//! [`SearchStats`]).

use crate::conditions::{differential_check, ValidationCfg};
use crate::rules::{Rule, RuleCtx};
use ocal::{typecheck, BlockSize, DefName, Expr, TypeEnv};
use ocas_hierarchy::Hierarchy;
use std::collections::{BTreeMap, HashSet, VecDeque};
use std::time::Instant;

/// Search configuration.
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Maximum number of rule applications along one derivation.
    pub max_depth: u32,
    /// Hard cap on the number of distinct programs explored.
    pub max_programs: usize,
    /// Differential validation of every candidate against the spec;
    /// `None` trusts the rules' syntactic guards alone.
    pub validation: Option<ValidationCfg>,
}

impl Default for SearchConfig {
    fn default() -> SearchConfig {
        SearchConfig {
            max_depth: 7,
            max_programs: 20_000,
            validation: None,
        }
    }
}

/// Statistics mirroring the paper's Table 1 search columns.
#[derive(Debug, Clone, Default)]
pub struct SearchStats {
    /// Number of distinct programs in the explored space (paper: "Search
    /// space").
    pub explored: usize,
    /// Candidates generated before deduplication.
    pub generated: usize,
    /// Candidates rejected by the type checker.
    pub rejected_type: usize,
    /// Candidates rejected by differential validation.
    pub rejected_semantics: usize,
    /// Longest derivation (paper: "Steps").
    pub depth_reached: u32,
    /// Wall-clock seconds spent searching (paper: "OCAS Runtime").
    pub seconds: f64,
}

/// The explored program space.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Every distinct (validated) program, including the specification at
    /// index 0, paired with its derivation depth.
    pub programs: Vec<(Expr, u32)>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// Runs the BFS.
///
/// `input_nodes`/`output` describe the physical layout (used by *seq-ac*).
pub fn search(
    spec: &Expr,
    env: &TypeEnv,
    hierarchy: &Hierarchy,
    input_nodes: &BTreeMap<String, String>,
    output: Option<String>,
    rules: &[Box<dyn Rule>],
    cfg: &SearchConfig,
) -> Result<SearchResult, ocal::TypeError> {
    let start = Instant::now();
    let spec_ty = typecheck(spec, env)?;

    let mut stats = SearchStats::default();
    let mut seen: HashSet<Expr> = HashSet::new();
    let mut programs: Vec<(Expr, u32)> = Vec::new();
    let mut queue: VecDeque<(Expr, u32)> = VecDeque::new();

    seen.insert(dedup_key(spec));
    programs.push((spec.clone(), 0));
    queue.push_back((spec.clone(), 0));

    let mut cx = RuleCtx {
        hierarchy,
        env,
        input_nodes,
        output,
        fresh: 0,
        bound: Vec::new(),
    };

    while let Some((program, depth)) = queue.pop_front() {
        if depth >= cfg.max_depth || programs.len() >= cfg.max_programs {
            continue;
        }
        let candidates = rewrite_everywhere(&program, rules, &mut cx);
        stats.generated += candidates.len();
        for cand in candidates {
            if programs.len() >= cfg.max_programs {
                break;
            }
            let key = dedup_key(&cand);
            if seen.contains(&key) {
                continue;
            }
            // Type preservation.
            match typecheck(&cand, env) {
                Ok(t) if t == spec_ty => {}
                _ => {
                    stats.rejected_type += 1;
                    seen.insert(key);
                    continue;
                }
            }
            // Semantic preservation (conservative differential testing).
            if let Some(v) = &cfg.validation {
                if !differential_check(spec, &cand, v) {
                    stats.rejected_semantics += 1;
                    seen.insert(key);
                    continue;
                }
            }
            seen.insert(key);
            stats.depth_reached = stats.depth_reached.max(depth + 1);
            programs.push((cand.clone(), depth + 1));
            queue.push_back((cand, depth + 1));
        }
    }

    stats.explored = programs.len();
    stats.seconds = start.elapsed().as_secs_f64();
    Ok(SearchResult { programs, stats })
}

/// Applies every rule at every position of `e`, returning whole programs.
pub fn rewrite_everywhere(e: &Expr, rules: &[Box<dyn Rule>], cx: &mut RuleCtx<'_>) -> Vec<Expr> {
    fn go(
        e: &Expr,
        rules: &[Box<dyn Rule>],
        cx: &mut RuleCtx<'_>,
        is_root: bool,
        out_of_context: &mut dyn FnMut(Expr),
    ) {
        for rule in rules {
            if rule.root_only() && !is_root {
                continue;
            }
            for rw in rule.apply(e, cx) {
                out_of_context(rw);
            }
        }
        // Recurse into children, rebuilding the node around each rewrite.
        match e {
            Expr::Lam { param, body } => {
                cx.bound.push(param.clone());
                let mut sub = Vec::new();
                go(body, rules, cx, false, &mut |b| sub.push(b));
                cx.bound.pop();
                for b in sub {
                    out_of_context(Expr::Lam {
                        param: param.clone(),
                        body: Box::new(b),
                    });
                }
            }
            Expr::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => {
                let mut src_rewrites = Vec::new();
                go(source, rules, cx, false, &mut |s| src_rewrites.push(s));
                for s in src_rewrites {
                    out_of_context(Expr::For {
                        var: var.clone(),
                        block: block.clone(),
                        source: Box::new(s),
                        out_block: out_block.clone(),
                        body: body.clone(),
                        seq: seq.clone(),
                    });
                }
                cx.bound.push(var.clone());
                let mut body_rewrites = Vec::new();
                go(body, rules, cx, false, &mut |b| body_rewrites.push(b));
                cx.bound.pop();
                for b in body_rewrites {
                    out_of_context(Expr::For {
                        var: var.clone(),
                        block: block.clone(),
                        source: source.clone(),
                        out_block: out_block.clone(),
                        body: Box::new(b),
                        seq: seq.clone(),
                    });
                }
            }
            other => {
                let children = other.children();
                for (i, child) in children.iter().enumerate() {
                    let mut sub = Vec::new();
                    go(child, rules, cx, false, &mut |c| sub.push(c));
                    for c in sub {
                        out_of_context(replace_child(other, i, c));
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    go(e, rules, cx, true, &mut |p| out.push(p));
    out
}

/// Rebuilds `e` with its `idx`-th child (in `children()` order) replaced.
fn replace_child(e: &Expr, idx: usize, new_child: Expr) -> Expr {
    let mut i = 0;
    let mut slot = Some(new_child);
    e.map_children(|c| {
        let out = if i == idx {
            slot.take().unwrap_or_else(|| c.clone())
        } else {
            c.clone()
        };
        i += 1;
        out
    })
}

/// Deduplication key: α-canonical form with block-size parameters renamed in
/// first-occurrence order, so derivations that differ only in the generated
/// names collapse.
pub fn dedup_key(e: &Expr) -> Expr {
    let canon = e.alpha_canonical();
    let mut order: Vec<String> = Vec::new();
    collect_params(&canon, &mut order);
    let map: BTreeMap<String, String> = order
        .into_iter()
        .enumerate()
        .map(|(i, p)| (p, format!("%p{i}")))
        .collect();
    rename_params(&canon, &map)
}

fn collect_params(e: &Expr, out: &mut Vec<String>) {
    let mut push = |b: &BlockSize| {
        if let BlockSize::Param(p) = b {
            if !out.contains(p) {
                out.push(p.clone());
            }
        }
    };
    match e {
        Expr::For {
            block, out_block, ..
        } => {
            push(block);
            push(out_block);
        }
        Expr::DefRef(DefName::TreeFold(k)) | Expr::DefRef(DefName::HashPartition(k)) => push(k),
        Expr::DefRef(DefName::UnfoldR { b_in, b_out }) => {
            push(b_in);
            push(b_out);
        }
        _ => {}
    }
    for c in e.children() {
        collect_params(c, out);
    }
}

fn rename_params(e: &Expr, map: &BTreeMap<String, String>) -> Expr {
    let rn = |b: &BlockSize| -> BlockSize {
        match b {
            BlockSize::Param(p) => {
                BlockSize::Param(map.get(p).cloned().unwrap_or_else(|| p.clone()))
            }
            c => c.clone(),
        }
    };
    let rebuilt = match e {
        Expr::For {
            var,
            block,
            source,
            out_block,
            body,
            seq,
        } => Expr::For {
            var: var.clone(),
            block: rn(block),
            source: source.clone(),
            out_block: rn(out_block),
            body: body.clone(),
            seq: seq.clone(),
        },
        Expr::DefRef(DefName::TreeFold(k)) => Expr::DefRef(DefName::TreeFold(rn(k))),
        Expr::DefRef(DefName::HashPartition(k)) => Expr::DefRef(DefName::HashPartition(rn(k))),
        Expr::DefRef(DefName::UnfoldR { b_in, b_out }) => Expr::DefRef(DefName::UnfoldR {
            b_in: rn(b_in),
            b_out: rn(b_out),
        }),
        other => other.clone(),
    };
    rebuilt.map_children(|c| rename_params(c, map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conditions::Equivalence;
    use crate::rules::default_rules;
    use ocal::{parse, pretty, Type};
    use ocas_hierarchy::presets;

    fn join_env() -> TypeEnv {
        let rel = Type::list(Type::tuple(vec![Type::Int, Type::Int]));
        [("R".to_string(), rel.clone()), ("S".to_string(), rel)]
            .into_iter()
            .collect()
    }

    fn hdd_inputs(names: &[&str]) -> BTreeMap<String, String> {
        names
            .iter()
            .map(|n| (n.to_string(), "HDD".to_string()))
            .collect()
    }

    #[test]
    fn dedup_key_collapses_parameter_renamings() {
        let a = parse("for (xB [k1] <- R) for (x <- xB) [x]").unwrap();
        let b = parse("for (yB [k7] <- R) for (x <- yB) [x]").unwrap();
        assert_eq!(dedup_key(&a), dedup_key(&b));
        let c = parse("for (xB [k1] <- S) for (x <- xB) [x]").unwrap();
        assert_ne!(dedup_key(&a), dedup_key(&c));
    }

    #[test]
    fn bnl_join_space_contains_the_textbook_plan() {
        let h = presets::hdd_ram(8 << 20);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let spec = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let cfg = SearchConfig {
            max_depth: 5,
            max_programs: 4000,
            validation: Some(ValidationCfg::new(env.clone(), Equivalence::Bag)),
        };
        let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
        assert!(result.stats.explored > 10, "{:?}", result.stats);
        // The canonical BNL shape must be somewhere in the space: an outer
        // blocked loop over one relation, an inner blocked loop over the
        // other, then element loops.
        let found = result.programs.iter().any(|(p, _)| {
            let s = pretty(p);
            is_bnl_shape(&s)
        });
        assert!(
            found,
            "no BNL shape among {} programs",
            result.stats.explored
        );
        // And a seq-annotated variant too.
        let seq_found = result
            .programs
            .iter()
            .any(|(p, _)| pretty(p).contains("for[HDD >> RAM]"));
        assert!(seq_found, "no seq-annotated program found");
    }

    fn is_bnl_shape(s: &str) -> bool {
        // for (aB [kX] <- R|S) for (bB [kY] <- S|R) for (a <- aB) for (b <- bB)
        let mut fors = 0;
        let mut blocked = 0;
        for part in s.split("for ") {
            if part.starts_with('(') {
                fors += 1;
                if part.contains("[k") {
                    blocked += 1;
                }
            }
        }
        fors >= 4 && blocked >= 2 && s.contains("if")
    }

    #[test]
    fn sort_space_reaches_wide_merges() {
        let h = presets::hdd_ram(8 << 20);
        let env: TypeEnv = [("R".to_string(), Type::list(Type::list(Type::Int)))]
            .into_iter()
            .collect();
        let inputs = hdd_inputs(&["R"]);
        let spec = parse("foldL([], unfoldR(mrg))(R)").unwrap();
        let cfg = SearchConfig {
            max_depth: 6,
            max_programs: 3000,
            validation: Some(
                ValidationCfg::new(env.clone(), Equivalence::Exact).with_sorted_inputs(),
            ),
        };
        let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
        let widths: Vec<u64> = result
            .programs
            .iter()
            .filter_map(|(p, _)| max_treefold_width(p))
            .collect();
        let max_width = widths.into_iter().max().unwrap_or(0);
        assert!(
            max_width >= 16,
            "expected at least a 16-way merge in the space, got {max_width} \
             over {} programs",
            result.stats.explored
        );
    }

    fn max_treefold_width(e: &Expr) -> Option<u64> {
        let mut best = None;
        fn walk(e: &Expr, best: &mut Option<u64>) {
            if let Expr::DefRef(DefName::TreeFold(BlockSize::Const(m))) = e {
                *best = Some(best.unwrap_or(0).max(*m));
            }
            for c in e.children() {
                walk(c, best);
            }
        }
        walk(e, &mut best);
        best
    }

    #[test]
    fn validation_rejects_hash_part_on_cross_products() {
        // Cross product: hash partitioning would lose cross-bucket pairs;
        // differential validation must reject every hash-part candidate.
        let h = presets::hdd_ram(8 << 20);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let spec = parse("for (x <- R) for (y <- S) [<x, y>]").unwrap();
        let cfg = SearchConfig {
            max_depth: 2,
            max_programs: 500,
            validation: Some(ValidationCfg::new(env.clone(), Equivalence::Bag)),
        };
        let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
        assert!(
            result.stats.rejected_semantics > 0,
            "expected semantic rejections: {:?}",
            result.stats
        );
        for (p, _) in &result.programs {
            assert!(
                !pretty(p).contains("hashPartition"),
                "unsound hash-part survived: {}",
                pretty(p)
            );
        }
    }

    #[test]
    fn search_depth_and_stats_reported() {
        let h = presets::hdd_ram(8 << 20);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let spec = parse("for (x <- R) [x]").unwrap();
        let cfg = SearchConfig {
            max_depth: 3,
            max_programs: 200,
            validation: None,
        };
        let result = search(&spec, &env, &h, &inputs, None, &default_rules(), &cfg).unwrap();
        assert!(result.stats.explored >= 2);
        assert!(result.stats.depth_reached >= 1);
        assert_eq!(result.programs[0].1, 0, "spec first at depth 0");
    }
}
