//! Transformation rules and program search for OCAS (paper §6).
//!
//! Each rule rewrites an OCAL expression into an equivalent one that may
//! perform better on the target memory hierarchy. The search engine applies
//! every rule at every position breadth-first, deduplicates candidates up to
//! α-equivalence and parameter renaming, type-checks them against the
//! specification's type, and — as the practical embodiment of the paper's
//! "conservative estimation procedure" for undecidable side conditions —
//! differentially validates every candidate against the specification on
//! random inputs with the reference interpreter.
//!
//! Rules implemented (paper §6.2):
//!
//! | rule            | effect |
//! |-----------------|--------|
//! | *apply-block*   | `for (x ← R) e ⇒ for (xB [k] ← R) for (x ← xB) e` |
//! | *unfoldR-block* | `unfoldR ⇒ unfoldR[b_in, b_out]` (the "analogous rule") |
//! | *prefetch*      | `f(L) ⇒ f(for (xB [k] ← L) for (x ← xB) [x])` for streaming consumers |
//! | *swap-iter*     | exchanges independent nested loops (incl. the `if` variant) |
//! | *order-inputs*  | smaller relation first via `length` comparison |
//! | *hash-part*     | GRACE-style hash partitioning of a two-input program |
//! | *fldL-to-trfld* | `foldL(c,f) ⇒ treeFold[2](c,f)` for associative `f` |
//! | *funcPow-intro* | `f ⇒ funcPow[1](f)` inside `treeFold[2]` |
//! | *inc-branching* | `treeFold[2ᵏ](c, …funcPow[k](f)…) ⇒ treeFold[2ᵏ⁺¹](c, …funcPow[k+1](f)…)` |
//! | *seq-ac*        | sequentiality annotation on interference-free scans |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conditions;
mod rules;
mod search;

pub use conditions::{differential_check, Equivalence, ValidationCfg};
pub use rules::{default_rules, Rule, RuleCtx};
pub use search::{search, SearchConfig, SearchResult, SearchStats};
