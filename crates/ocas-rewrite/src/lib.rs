//! Transformation rules and program search for OCAS (paper §6).
//!
//! Each rule rewrites an OCAL expression into an equivalent one that may
//! perform better on the target memory hierarchy. The search engine applies
//! every rule at every position breadth-first, deduplicates candidates up to
//! α-equivalence and parameter renaming, type-checks them against the
//! specification's type, and — as the practical embodiment of the paper's
//! "conservative estimation procedure" for undecidable side conditions —
//! differentially validates every candidate against the specification on
//! random inputs with the reference interpreter.
//!
//! Rules implemented (paper §6.2):
//!
//! | rule            | effect |
//! |-----------------|--------|
//! | *apply-block*   | `for (x ← R) e ⇒ for (xB [k] ← R) for (x ← xB) e` |
//! | *unfoldR-block* | `unfoldR ⇒ unfoldR[b_in, b_out]` (the "analogous rule") |
//! | *prefetch*      | `f(L) ⇒ f(for (xB [k] ← L) for (x ← xB) [x])` for streaming consumers |
//! | *swap-iter*     | exchanges independent nested loops (incl. the `if` variant) |
//! | *order-inputs*  | smaller relation first via `length` comparison |
//! | *hash-part*     | GRACE-style hash partitioning of a two-input program |
//! | *fldL-to-trfld* | `foldL(c,f) ⇒ treeFold[2](c,f)` for associative `f` |
//! | *funcPow-intro* | `f ⇒ funcPow[1](f)` inside `treeFold[2]` |
//! | *inc-branching* | `treeFold[2ᵏ](c, …funcPow[k](f)…) ⇒ treeFold[2ᵏ⁺¹](c, …funcPow[k+1](f)…)` |
//! | *seq-ac*        | sequentiality annotation on interference-free scans |
//!
//! # Search engine
//!
//! [`search`] is a level-synchronous BFS over a hash-consed term arena
//! (`ocal::Interner`): dedup keys are canonical `ocal::ExprId`s computed in
//! one canonicalize-and-intern pass, frontier levels are expanded by
//! `std::thread::scope` worker threads, and worker results are merged in
//! frontier order so statistics and the program list are bit-identical for
//! every worker count. [`search_with`] additionally takes [`SearchHooks`],
//! which the synthesizer uses to pipeline cost estimation into the search
//! loop (`on_program`) and to opt into branch-and-bound pruning
//! (`should_expand`). [`reference_search`] keeps the original single-queue
//! engine as the parity oracle, and [`dedup_key`] its owned-`Expr` dedup
//! key; regression tests hold both engines to identical statistics on every
//! Table 1 row.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conditions;
mod rules;
mod search;

pub use conditions::{differential_check, Equivalence, ValidationCfg};
pub use rules::{default_rules, next_fresh_index, Rule, RuleCtx};
pub use search::{
    dedup_key, reference_search, rewrite_everywhere, search, search_with, NoHooks, SearchConfig,
    SearchHooks, SearchResult, SearchStats,
};
