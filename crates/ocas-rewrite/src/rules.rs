//! The transformation-rule library (paper §6.2).

use crate::conditions::Equivalence;
use ocal::{BlockSize, DefName, Expr, PrimOp, SeqAnnot, TypeEnv};
use ocas_hierarchy::Hierarchy;
use std::collections::BTreeMap;

/// Context handed to rules: the target hierarchy, the typing environment,
/// the physical layout of inputs/output, a fresh-name counter and the
/// variables bound around the current position.
pub struct RuleCtx<'a> {
    /// The target memory hierarchy.
    pub hierarchy: &'a Hierarchy,
    /// Types of the program's named inputs.
    pub env: &'a TypeEnv,
    /// Input name → hierarchy node name.
    pub input_nodes: &'a BTreeMap<String, String>,
    /// Output node name (None = consumed by the CPU).
    pub output: Option<String>,
    /// Counter for fresh parameter/variable names.
    pub fresh: u32,
    /// Variables bound around the position currently being rewritten
    /// (maintained by the search walker).
    pub bound: Vec<String>,
}

impl RuleCtx<'_> {
    /// A fresh block-size parameter name (`k0`, `k1`, …).
    pub fn fresh_param(&mut self) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("k{n}")
    }

    /// A fresh partition-count parameter name (`s0`, `s1`, …).
    pub fn fresh_partitions(&mut self) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("s{n}")
    }

    /// A fresh variable name.
    pub fn fresh_var(&mut self, base: &str) -> String {
        let n = self.fresh;
        self.fresh += 1;
        format!("{base}_{n}")
    }

    fn is_bound(&self, v: &str) -> bool {
        self.bound.iter().any(|b| b == v)
    }

    /// Resolves the device holding a loop source: all free variables of the
    /// source (ignoring locally bound ones) must be inputs mapped to the
    /// same node. Walks the free variables directly (no set is built) —
    /// this guard runs at every `for` node the search visits.
    pub fn source_device(&self, source: &Expr) -> Option<String> {
        // `walk` returns false to abort (some free var is locally bound,
        // not an input, or on a conflicting node).
        fn walk<'e>(
            e: &'e Expr,
            bound: &mut Vec<&'e str>,
            cx: &RuleCtx<'_>,
            node: &mut Option<String>,
            saw_input: &mut bool,
        ) -> bool {
            match e {
                Expr::Var(v) => {
                    if bound.iter().any(|b| *b == v) {
                        return true; // Bound here: not a free variable.
                    }
                    if cx.is_bound(v) {
                        return false; // Bound data lives above the leaves.
                    }
                    match cx.input_nodes.get(v) {
                        Some(n) => {
                            *saw_input = true;
                            if let Some(prev) = node {
                                if prev != n {
                                    return false;
                                }
                            }
                            *node = Some(n.clone());
                            true
                        }
                        None => false,
                    }
                }
                Expr::Lam { param, body } => {
                    bound.push(param);
                    let ok = walk(body, bound, cx, node, saw_input);
                    bound.pop();
                    ok
                }
                Expr::For {
                    var, source, body, ..
                } => {
                    if !walk(source, bound, cx, node, saw_input) {
                        return false;
                    }
                    bound.push(var);
                    let ok = walk(body, bound, cx, node, saw_input);
                    bound.pop();
                    ok
                }
                other => other
                    .children()
                    .into_iter()
                    .all(|c| walk(c, bound, cx, node, saw_input)),
            }
        }
        let mut node = None;
        let mut saw_input = false;
        if !walk(source, &mut Vec::new(), self, &mut node, &mut saw_input) {
            return None;
        }
        if saw_input {
            node
        } else {
            None
        }
    }
}

/// A transformation rule `e₁ ⇒ e₂` with its applicability conditions.
///
/// Rules are `Send + Sync` so the search can apply them from parallel
/// frontier-expansion workers; rules are stateless (all mutable context
/// lives in [`RuleCtx`]), so implementations are trivially both.
pub trait Rule: Send + Sync {
    /// The paper's rule name.
    fn name(&self) -> &'static str;

    /// True if the rule only makes sense at the program root
    /// (*order-inputs*, *hash-part*).
    fn root_only(&self) -> bool {
        false
    }

    /// True when every rewrite this rule proposes is guaranteed to have the
    /// same type as the term it replaces. The search then skips
    /// re-typechecking those candidates (debug builds still verify the
    /// claim with an assertion). Defaults to `false` so custom rules get
    /// the full check unless they opt in.
    fn preserves_type(&self) -> bool {
        false
    }

    /// True when every rewrite this rule proposes is unconditionally
    /// semantics-preserving **under the given output equivalence** — an
    /// identity up to the cost model, with no undecidable side conditions.
    /// *apply-block*'s re-blocking or *seq-ac*'s pure annotation qualify
    /// under every equivalence; *swap-iter* qualifies under the bag
    /// equivalences (its independence condition is decidable and checked
    /// syntactically) but not under `Exact`, where reordering is
    /// observable. The search skips differential validation for exempt
    /// candidates (debug builds still verify the claim). Defaults to
    /// `false`: rules with genuine side conditions (*hash-part*,
    /// *order-inputs*, …) must stay under the conservative check.
    fn preserves_semantics(&self, equivalence: Equivalence) -> bool {
        let _ = equivalence;
        false
    }

    /// Proposes rewrites of the expression rooted at `e`.
    fn apply(&self, e: &Expr, cx: &mut RuleCtx<'_>) -> Vec<Expr>;
}

/// Scans `e` for generated-name indices (`k3`/`s3` block-size parameters
/// and `_3`-suffixed variables) and returns one past the largest, i.e. a
/// safe starting value for [`RuleCtx::fresh`] that cannot collide with any
/// name already in the program. This is what makes per-frontier-item fresh
/// counters deterministic and collision-free regardless of how many other
/// programs were expanded before this one (the search's parallel workers
/// rely on it).
pub fn next_fresh_index(e: &Expr) -> u32 {
    fn param_idx(p: &str) -> Option<u32> {
        let rest = p.strip_prefix('k').or_else(|| p.strip_prefix('s'))?;
        rest.parse().ok()
    }
    fn var_idx(v: &str) -> Option<u32> {
        let (_, suffix) = v.rsplit_once('_')?;
        suffix.parse().ok()
    }
    fn block_idx(b: &BlockSize) -> Option<u32> {
        b.param_name().and_then(param_idx)
    }
    fn go(e: &Expr, max: &mut u32) {
        let mut bump = |i: Option<u32>| {
            if let Some(i) = i {
                *max = (*max).max(i + 1);
            }
        };
        match e {
            Expr::Var(v) => bump(var_idx(v)),
            Expr::Lam { param, .. } => bump(var_idx(param)),
            Expr::For {
                var,
                block,
                out_block,
                ..
            } => {
                bump(var_idx(var));
                bump(block_idx(block));
                bump(block_idx(out_block));
            }
            Expr::DefRef(DefName::TreeFold(k)) | Expr::DefRef(DefName::HashPartition(k)) => {
                bump(block_idx(k))
            }
            Expr::DefRef(DefName::UnfoldR { b_in, b_out }) => {
                bump(block_idx(b_in));
                bump(block_idx(b_out));
            }
            _ => {}
        }
        for c in e.children() {
            go(c, max);
        }
    }
    let mut max = 0;
    go(e, &mut max);
    max
}

/// The default rule library, in the paper's order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(ApplyBlock),
        Box::new(UnfoldrBlock),
        Box::new(Prefetch),
        Box::new(SwapIter),
        Box::new(SwapIterCond),
        Box::new(OrderInputs),
        Box::new(HashPart),
        Box::new(FldlToTrfld),
        Box::new(FuncPowIntro),
        Box::new(IncBranching),
        Box::new(SeqAc),
    ]
}

// ---------------------------------------------------------------------------

/// *apply-block*: `for (x ← R) e ⇒ for (xB [k] ← R) for (x ← xB) e`.
pub struct ApplyBlock;

impl Rule for ApplyBlock {
    fn name(&self) -> &'static str {
        "apply-block"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn preserves_semantics(&self, _equivalence: Equivalence) -> bool {
        true
    }

    fn apply(&self, e: &Expr, cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Expr::For {
            var,
            block,
            source,
            out_block,
            body,
            seq,
        } = e
        else {
            return vec![];
        };
        if !block.is_one() {
            return vec![];
        }
        // Blocking a literal list would be noise.
        if matches!(**source, Expr::Empty | Expr::Singleton(_)) {
            return vec![];
        }
        let k = cx.fresh_param();
        let block_var = cx.fresh_var(&format!("{var}B"));
        let inner = Expr::For {
            var: var.clone(),
            block: BlockSize::one(),
            source: Box::new(Expr::var(block_var.clone())),
            out_block: out_block.clone(),
            body: body.clone(),
            seq: None,
        };
        vec![Expr::For {
            var: block_var,
            block: BlockSize::Param(k),
            source: source.clone(),
            out_block: BlockSize::one(),
            body: Box::new(inner),
            seq: seq.clone(),
        }]
    }
}

/// The "analogous rule" for `unfoldR` (paper §6.2): introduce input/output
/// blocking parameters on an element-wise `unfoldR`.
pub struct UnfoldrBlock;

impl Rule for UnfoldrBlock {
    fn name(&self) -> &'static str {
        "unfoldR-block"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn preserves_semantics(&self, _equivalence: Equivalence) -> bool {
        true
    }

    fn apply(&self, e: &Expr, cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Expr::DefRef(DefName::UnfoldR { b_in, b_out }) = e else {
            return vec![];
        };
        if !b_in.is_one() || !b_out.is_one() {
            return vec![];
        }
        let bi = cx.fresh_param();
        let bo = cx.fresh_param();
        vec![Expr::DefRef(DefName::UnfoldR {
            b_in: BlockSize::Param(bi),
            b_out: BlockSize::Param(bo),
        })]
    }
}

/// *prefetch* (an apply-block corollary): feed a streaming consumer through
/// a blocked identity loop, `f(L) ⇒ f(for (xB [k] ← L) for (x ← xB) [x])`.
pub struct Prefetch;

impl Rule for Prefetch {
    fn name(&self) -> &'static str {
        "prefetch"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn preserves_semantics(&self, _equivalence: Equivalence) -> bool {
        true
    }

    fn apply(&self, e: &Expr, cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Expr::App { func, arg } = e else {
            return vec![];
        };
        let streaming = matches!(&**func, Expr::FoldL { .. } | Expr::DefRef(DefName::Avg));
        if !streaming {
            return vec![];
        }
        // Don't prefetch something that is already a loop.
        if matches!(&**arg, Expr::For { .. }) {
            return vec![];
        }
        let k = cx.fresh_param();
        let block_var = cx.fresh_var("pB");
        let elem_var = cx.fresh_var("p");
        let identity = Expr::For {
            var: block_var.clone(),
            block: BlockSize::Param(k),
            source: arg.clone(),
            out_block: BlockSize::one(),
            body: Box::new(Expr::for_each(
                elem_var.clone(),
                Expr::var(block_var),
                Expr::var(elem_var).singleton(),
            )),
            seq: None,
        };
        vec![Expr::App {
            func: func.clone(),
            arg: Box::new(identity),
        }]
    }
}

/// *swap-iter*: exchange two directly nested loops when the inner range is
/// independent of the outer variable.
pub struct SwapIter;

impl Rule for SwapIter {
    fn name(&self) -> &'static str {
        "swap-iter"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn preserves_semantics(&self, equivalence: Equivalence) -> bool {
        matches!(
            equivalence,
            Equivalence::Bag | Equivalence::BagModuloFieldOrder
        )
    }

    fn apply(&self, e: &Expr, _cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Expr::For {
            var: v1,
            block: k1,
            source: s1,
            out_block: o1,
            body,
            seq: q1,
        } = e
        else {
            return vec![];
        };
        let Expr::For {
            var: v2,
            block: k2,
            source: s2,
            out_block: o2,
            body: inner,
            seq: q2,
        } = &**body
        else {
            return vec![];
        };
        if s2.mentions(v1) || s1.mentions(v2) || v1 == v2 {
            return vec![];
        }
        vec![Expr::For {
            var: v2.clone(),
            block: k2.clone(),
            source: s2.clone(),
            out_block: o2.clone(),
            body: Box::new(Expr::For {
                var: v1.clone(),
                block: k1.clone(),
                source: s1.clone(),
                out_block: o1.clone(),
                body: inner.clone(),
                seq: q1.clone(),
            }),
            seq: q2.clone(),
        }]
    }
}

/// The conditional variant of *swap-iter*:
/// `for x: if c then (for y: e) else [] ⇒ for y: for x: if c then e else []`.
/// The empty else-branch is required for equivalence.
pub struct SwapIterCond;

impl Rule for SwapIterCond {
    fn name(&self) -> &'static str {
        "swap-iter-cond"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn preserves_semantics(&self, equivalence: Equivalence) -> bool {
        matches!(
            equivalence,
            Equivalence::Bag | Equivalence::BagModuloFieldOrder
        )
    }

    fn apply(&self, e: &Expr, _cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Expr::For {
            var: v1,
            block: k1,
            source: s1,
            out_block: o1,
            body,
            seq: q1,
        } = e
        else {
            return vec![];
        };
        let Expr::If {
            cond,
            then_branch,
            else_branch,
        } = &**body
        else {
            return vec![];
        };
        if !matches!(**else_branch, Expr::Empty) {
            return vec![];
        }
        let Expr::For {
            var: v2,
            block: k2,
            source: s2,
            out_block: o2,
            body: inner,
            seq: q2,
        } = &**then_branch
        else {
            return vec![];
        };
        if s2.mentions(v1) || s1.mentions(v2) || v1 == v2 || cond.mentions(v2) {
            return vec![];
        }
        vec![Expr::For {
            var: v2.clone(),
            block: k2.clone(),
            source: s2.clone(),
            out_block: o2.clone(),
            body: Box::new(Expr::For {
                var: v1.clone(),
                block: k1.clone(),
                source: s1.clone(),
                out_block: o1.clone(),
                body: Box::new(Expr::If {
                    cond: cond.clone(),
                    then_branch: inner.clone(),
                    else_branch: Box::new(Expr::Empty),
                }),
                seq: q1.clone(),
            }),
            seq: q2.clone(),
        }]
    }
}

/// Checks if a program is already wrapped by an input-ordering selector.
fn already_ordered(e: &Expr) -> bool {
    fn contains_length_selector(e: &Expr) -> bool {
        if let Expr::If { cond, .. } = e {
            if let Expr::Prim { op: PrimOp::Le, .. } = &**cond {
                return true;
            }
        }
        e.children().iter().any(|c| contains_length_selector(c))
    }
    contains_length_selector(e)
}

/// *order-inputs*: wrap the program so the shorter relation comes first.
pub struct OrderInputs;

impl Rule for OrderInputs {
    fn name(&self) -> &'static str {
        "order-inputs"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn root_only(&self) -> bool {
        true
    }

    fn apply(&self, e: &Expr, cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Some((a, b, _)) = crate::conditions::two_equal_list_inputs(cx.env) else {
            return vec![];
        };
        if already_ordered(e) || !e.mentions(&a) || !e.mentions(&b) {
            return vec![];
        }
        let q = cx.fresh_var("q");
        let body = e
            .subst(&a, &Expr::var(q.clone()).proj(1))
            .subst(&b, &Expr::var(q.clone()).proj(2));
        let len = |x: &str| Expr::def(DefName::Length).app(Expr::var(x));
        let selector = Expr::if_(
            Expr::binop(PrimOp::Le, len(&a), len(&b)),
            Expr::tuple(vec![Expr::var(a.clone()), Expr::var(b.clone())]),
            Expr::tuple(vec![Expr::var(b.clone()), Expr::var(a.clone())]),
        );
        vec![Expr::lam(q, body).app(selector)]
    }
}

/// *hash-part*: partition both inputs by hash and map the program over
/// corresponding bucket pairs (the GRACE hash-join recipe). Semantically
/// valid only for programs that commute with partitioning — enforced by the
/// search engine's differential validation.
pub struct HashPart;

impl Rule for HashPart {
    fn name(&self) -> &'static str {
        "hash-part"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn root_only(&self) -> bool {
        true
    }

    fn apply(&self, e: &Expr, cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Some((a, b, elem_ty)) = crate::conditions::two_equal_list_inputs(cx.env) else {
            return vec![];
        };
        // Partitioning keys off the first tuple component.
        let is_tuple_elem = matches!(
            elem_ty,
            ocal::Type::List(ref inner) if matches!(**inner, ocal::Type::Tuple(_))
        );
        if !is_tuple_elem || !e.mentions(&a) || !e.mentions(&b) {
            return vec![];
        }
        if contains_hash_partition(e) || already_ordered(e) {
            return vec![];
        }
        let s = cx.fresh_partitions();
        let q = cx.fresh_var("q");
        let inner = e
            .subst(&a, &Expr::var(q.clone()).proj(1))
            .subst(&b, &Expr::var(q.clone()).proj(2));
        let part = |x: &str| {
            Expr::def(DefName::HashPartition(BlockSize::Param(s.clone()))).app(Expr::var(x))
        };
        let zipped = Expr::def(DefName::unfoldr())
            .app(Expr::def(DefName::Zip(2)))
            .app(Expr::tuple(vec![part(&a), part(&b)]));
        vec![Expr::flat_map(Expr::lam(q, inner)).app(zipped)]
    }
}

fn contains_hash_partition(e: &Expr) -> bool {
    if matches!(e, Expr::DefRef(DefName::HashPartition(_))) {
        return true;
    }
    e.children().iter().any(|c| contains_hash_partition(c))
}

/// Conservative whitelist: step functions built from `mrg` are associative
/// with identity `[]` (sorted-list merge forms a monoid).
fn is_merge_like(f: &Expr) -> bool {
    match f {
        Expr::DefRef(DefName::Mrg) => true,
        Expr::App { func, arg } => match (&**func, &**arg) {
            (Expr::DefRef(DefName::UnfoldR { .. }), inner) => is_merge_like(inner),
            (Expr::DefRef(DefName::FuncPow(_)), inner) => is_merge_like(inner),
            _ => false,
        },
        _ => false,
    }
}

/// *fldL-to-trfld*: `foldL(c, f)(l) ⇒ treeFold[2](⟨c, f⟩)(l)` when `f` is
/// associative and `c` its identity (whitelisted merge forms; everything
/// else is left to differential validation).
pub struct FldlToTrfld;

impl Rule for FldlToTrfld {
    fn name(&self) -> &'static str {
        "fldL-to-trfld"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn apply(&self, e: &Expr, _cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Expr::App { func, arg } = e else {
            return vec![];
        };
        let Expr::FoldL { init, func: f } = &**func else {
            return vec![];
        };
        if !is_merge_like(f) {
            return vec![];
        }
        vec![Expr::def(DefName::TreeFold(BlockSize::Const(2)))
            .app(Expr::tuple(vec![(**init).clone(), (**f).clone()]))
            .app((**arg).clone())]
    }
}

/// The auxiliary rule `f ⇒ funcPow[1](f)` (paper §6.2, used before the first
/// *inc-branching*): applied to `mrg` in step position under `unfoldR`.
pub struct FuncPowIntro;

impl Rule for FuncPowIntro {
    fn name(&self) -> &'static str {
        "funcPow-intro"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn apply(&self, e: &Expr, _cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Expr::App { func, arg } = e else {
            return vec![];
        };
        if !matches!(&**func, Expr::DefRef(DefName::UnfoldR { .. })) {
            return vec![];
        }
        if !matches!(&**arg, Expr::DefRef(DefName::Mrg)) {
            return vec![];
        }
        vec![Expr::App {
            func: func.clone(),
            arg: Box::new(Expr::def(DefName::FuncPow(1)).app(Expr::def(DefName::Mrg))),
        }]
    }
}

/// *inc-branching*: double a treeFold's arity together with its step's
/// `funcPow` exponent (both the plain and the `unfoldR` form).
pub struct IncBranching;

/// Upper bound on the branching exponent explored (2¹⁰ = 1024-way merges).
const MAX_BRANCH_LOG: u32 = 10;

impl Rule for IncBranching {
    fn name(&self) -> &'static str {
        "inc-branching"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn apply(&self, e: &Expr, _cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        // Match treeFold[m](<c, step>)(seed) where step embeds funcPow[k]
        // with 2^k == m.
        let Expr::App {
            func: outer,
            arg: seed,
        } = e
        else {
            return vec![];
        };
        let Expr::App { func: tf, arg: cf } = &**outer else {
            return vec![];
        };
        let Expr::DefRef(DefName::TreeFold(BlockSize::Const(m))) = &**tf else {
            return vec![];
        };
        let Expr::Tuple(items) = &**cf else {
            return vec![];
        };
        let [c, step] = items.as_slice() else {
            return vec![];
        };
        let Some((k, bumped)) = bump_funcpow(step) else {
            return vec![];
        };
        if (1u64 << k) != *m || k >= MAX_BRANCH_LOG {
            return vec![];
        }
        let new_m = BlockSize::Const(m * 2);
        vec![Expr::def(DefName::TreeFold(new_m))
            .app(Expr::tuple(vec![c.clone(), bumped]))
            .app((**seed).clone())]
    }
}

/// Finds `funcPow[k](f)` (optionally under `unfoldR`) and returns `k` plus
/// the same expression with `k+1`.
fn bump_funcpow(step: &Expr) -> Option<(u32, Expr)> {
    match step {
        Expr::App { func, arg } => match &**func {
            Expr::DefRef(DefName::FuncPow(k)) => {
                Some((*k, Expr::def(DefName::FuncPow(k + 1)).app((**arg).clone())))
            }
            Expr::DefRef(DefName::UnfoldR { .. }) => {
                let (k, inner) = bump_funcpow(arg)?;
                Some((
                    k,
                    Expr::App {
                        func: func.clone(),
                        arg: Box::new(inner),
                    },
                ))
            }
            _ => None,
        },
        _ => None,
    }
}

/// *seq-ac*: annotate an interference-free device scan as sequential.
pub struct SeqAc;

impl Rule for SeqAc {
    fn name(&self) -> &'static str {
        "seq-ac"
    }

    fn preserves_type(&self) -> bool {
        true
    }

    fn preserves_semantics(&self, _equivalence: Equivalence) -> bool {
        true
    }

    fn apply(&self, e: &Expr, cx: &mut RuleCtx<'_>) -> Vec<Expr> {
        let Expr::For {
            var,
            block,
            source,
            out_block,
            body,
            seq,
        } = e
        else {
            return vec![];
        };
        if seq.is_some() {
            return vec![];
        }
        let Some(m1) = cx.source_device(source) else {
            return vec![];
        };
        let Some(m1_id) = cx.hierarchy.by_name(&m1) else {
            return vec![];
        };
        let Some(m2_id) = cx.hierarchy.parent(m1_id) else {
            return vec![];
        };
        let m2 = cx.hierarchy.node(m2_id).name.clone();
        // Interference checks: the body must not touch any input on m1, and
        // the program output must not go to m1.
        if cx.output.as_deref() == Some(m1.as_str()) {
            return vec![];
        }
        let body_fv = body.free_vars();
        for v in &body_fv {
            if v != var && cx.input_nodes.get(v) == Some(&m1) {
                return vec![];
            }
        }
        vec![Expr::For {
            var: var.clone(),
            block: block.clone(),
            source: source.clone(),
            out_block: out_block.clone(),
            body: body.clone(),
            seq: Some(SeqAnnot { from: m1, to: m2 }),
        }]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocal::{parse, pretty, Type};
    use ocas_hierarchy::presets;

    fn join_env() -> TypeEnv {
        let rel = Type::list(Type::tuple(vec![Type::Int, Type::Int]));
        [("R".to_string(), rel.clone()), ("S".to_string(), rel)]
            .into_iter()
            .collect()
    }

    fn ctx<'a>(
        h: &'a Hierarchy,
        env: &'a TypeEnv,
        inputs: &'a BTreeMap<String, String>,
    ) -> RuleCtx<'a> {
        RuleCtx {
            hierarchy: h,
            env,
            input_nodes: inputs,
            output: None,
            fresh: 0,
            bound: Vec::new(),
        }
    }

    fn hdd_inputs(names: &[&str]) -> BTreeMap<String, String> {
        names
            .iter()
            .map(|n| (n.to_string(), "HDD".to_string()))
            .collect()
    }

    #[test]
    fn apply_block_introduces_block_loop() {
        let h = presets::hdd_ram(1 << 25);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let mut cx = ctx(&h, &env, &inputs);
        let e = parse("for (x <- R) [x]").unwrap();
        let out = ApplyBlock.apply(&e, &mut cx);
        assert_eq!(out.len(), 1);
        assert_eq!(pretty(&out[0]), "for (xB_1 [k0] <- R) for (x <- xB_1) [x]");
    }

    #[test]
    fn swap_iter_requires_independence() {
        let h = presets::hdd_ram(1 << 25);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let mut cx = ctx(&h, &env, &inputs);
        let independent = parse("for (x <- R) for (y <- S) [<x, y>]").unwrap();
        assert_eq!(SwapIter.apply(&independent, &mut cx).len(), 1);
        let dependent = parse("for (x <- R) for (y <- [x]) [<x, y>]").unwrap();
        assert!(SwapIter.apply(&dependent, &mut cx).is_empty());
    }

    #[test]
    fn swap_iter_cond_needs_empty_else() {
        let h = presets::hdd_ram(1 << 25);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let mut cx = ctx(&h, &env, &inputs);
        let good = parse("for (x <- R) if x.1 == 1 then for (y <- S) [<x, y>] else []").unwrap();
        assert_eq!(SwapIterCond.apply(&good, &mut cx).len(), 1);
        let bad = parse("for (x <- R) if x.1 == 1 then for (y <- S) [<x, y>] else [x]").unwrap();
        assert!(SwapIterCond.apply(&bad, &mut cx).is_empty());
    }

    #[test]
    fn order_inputs_wraps_program() {
        let h = presets::hdd_ram(1 << 25);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let mut cx = ctx(&h, &env, &inputs);
        let join = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let out = OrderInputs.apply(&join, &mut cx);
        assert_eq!(out.len(), 1);
        let s = pretty(&out[0]);
        assert!(s.contains("length"), "{s}");
        // Not re-applicable.
        let again = OrderInputs.apply(&out[0], &mut cx);
        assert!(again.is_empty());
    }

    #[test]
    fn hash_part_builds_grace_pipeline() {
        let h = presets::hdd_ram(1 << 25);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);
        let mut cx = ctx(&h, &env, &inputs);
        let join = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let out = HashPart.apply(&join, &mut cx);
        assert_eq!(out.len(), 1);
        let s = pretty(&out[0]);
        assert!(s.contains("hashPartition[s0]"), "{s}");
        assert!(s.contains("zip[2]"), "{s}");
        assert!(HashPart.apply(&out[0], &mut cx).is_empty());
    }

    #[test]
    fn sort_derivation_chain() {
        let h = presets::hdd_ram(1 << 25);
        let env: TypeEnv = [("R".to_string(), Type::list(Type::list(Type::Int)))]
            .into_iter()
            .collect();
        let inputs = hdd_inputs(&["R"]);
        let mut cx = ctx(&h, &env, &inputs);

        let sort = parse("foldL([], unfoldR(mrg))(R)").unwrap();
        let t2 = FldlToTrfld.apply(&sort, &mut cx);
        assert_eq!(t2.len(), 1);
        assert_eq!(pretty(&t2[0]), "treeFold[2](<[], unfoldR(mrg)>)(R)");

        // funcPow-intro fires on the unfoldR(mrg) inside.
        let step = parse("unfoldR(mrg)").unwrap();
        let fp = FuncPowIntro.apply(&step, &mut cx);
        assert_eq!(fp.len(), 1);
        assert_eq!(pretty(&fp[0]), "unfoldR(funcPow[1](mrg))");

        let t2fp = parse("treeFold[2](<[], unfoldR(funcPow[1](mrg))>)(R)").unwrap();
        let t4 = IncBranching.apply(&t2fp, &mut cx);
        assert_eq!(t4.len(), 1);
        assert_eq!(
            pretty(&t4[0]),
            "treeFold[4](<[], unfoldR(funcPow[2](mrg))>)(R)"
        );
        // Arity and exponent stay in sync.
        let t8 = IncBranching.apply(&t4[0], &mut cx);
        assert_eq!(
            pretty(&t8[0]),
            "treeFold[8](<[], unfoldR(funcPow[3](mrg))>)(R)"
        );
        // Mismatched arity does not fire.
        let bad = parse("treeFold[8](<[], unfoldR(funcPow[1](mrg))>)(R)").unwrap();
        assert!(IncBranching.apply(&bad, &mut cx).is_empty());
    }

    #[test]
    fn fldl_to_trfld_requires_merge_like_step() {
        let h = presets::hdd_ram(1 << 25);
        let env = join_env();
        let inputs = hdd_inputs(&["R"]);
        let mut cx = ctx(&h, &env, &inputs);
        let not_assoc = parse("foldL(0, \\a. a.1 - a.2)(R)").unwrap();
        assert!(FldlToTrfld.apply(&not_assoc, &mut cx).is_empty());
    }

    #[test]
    fn seq_ac_respects_interference() {
        let h = presets::hdd_ram(1 << 25);
        let env = join_env();
        let inputs = hdd_inputs(&["R", "S"]);

        // Inner loop over S with body touching only bound vars: annotatable.
        let inner = parse("for (y <- S) [y]").unwrap();
        let mut cx = ctx(&h, &env, &inputs);
        let out = SeqAc.apply(&inner, &mut cx);
        assert_eq!(out.len(), 1);
        match &out[0] {
            Expr::For { seq: Some(sa), .. } => {
                assert_eq!(sa.from, "HDD");
                assert_eq!(sa.to, "RAM");
            }
            other => panic!("expected annotated for, got {other:?}"),
        }

        // Outer loop whose body reads another HDD input: no annotation.
        let outer = parse("for (x <- R) for (y <- S) [<x, y>]").unwrap();
        let mut cx = ctx(&h, &env, &inputs);
        assert!(SeqAc.apply(&outer, &mut cx).is_empty());

        // Output on the same device: no annotation.
        let mut cx = ctx(&h, &env, &inputs);
        cx.output = Some("HDD".to_string());
        assert!(SeqAc.apply(&inner, &mut cx).is_empty());
    }

    #[test]
    fn prefetch_wraps_streaming_consumers() {
        let h = presets::hdd_ram(1 << 25);
        let env: TypeEnv = [("L".to_string(), Type::list(Type::Int))]
            .into_iter()
            .collect();
        let inputs = hdd_inputs(&["L"]);
        let mut cx = ctx(&h, &env, &inputs);
        let agg = parse("avg(L)").unwrap();
        let out = Prefetch.apply(&agg, &mut cx);
        assert_eq!(out.len(), 1);
        let s = pretty(&out[0]);
        assert!(s.starts_with("avg(for (pB_1 [k0] <- L)"), "{s}");
        // Re-application is blocked.
        assert!(Prefetch.apply(&out[0], &mut cx).is_empty());
    }

    #[test]
    fn unfoldr_block_parameterizes() {
        let h = presets::hdd_ram(1 << 25);
        let env = join_env();
        let inputs = hdd_inputs(&["R"]);
        let mut cx = ctx(&h, &env, &inputs);
        let e = Expr::def(DefName::unfoldr());
        let out = UnfoldrBlock.apply(&e, &mut cx);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            &out[0],
            Expr::DefRef(DefName::UnfoldR {
                b_in: BlockSize::Param(_),
                ..
            })
        ));
        assert!(UnfoldrBlock.apply(&out[0], &mut cx).is_empty());
    }
}
