//! Structural matchers for the textbook algorithm shapes (paper §7.2:
//! "Manual inspection of the generated C programs shows that OCAS produces
//! exactly the standard textbook (disk-based) BNL and hash join and external
//! sorting algorithms"). These checks automate that inspection.

use ocal::{BlockSize, DefName, Expr};

fn find(e: &Expr, pred: &impl Fn(&Expr) -> bool) -> bool {
    if pred(e) {
        return true;
    }
    e.children().iter().any(|c| find(c, pred))
}

/// Strips the *order-inputs* wrapper — including curried, fully-applied
/// lambda spines `((λa. λb. body)(x))(y)` (the single-argument assumption
/// here used to hide the loop nest of curried wrappers from the matcher).
fn strip_order(e: &Expr) -> &Expr {
    match e.applied_lambda_spine() {
        Some((_, body)) => body,
        None => e,
    }
}

/// The canonical Block Nested Loops Join: a blocked loop over one relation
/// and a second full scan of the other (either blocked or a seq-annotated
/// element-wise pass — both stream one buffer-load at a time under the cost
/// model), followed by element loops over the buffered blocks, with the
/// join condition innermost.
pub fn is_block_nested_loops(e: &Expr) -> bool {
    let body = strip_order(e);
    // Collect the loop nest.
    let mut blocks = 0;
    let mut seq_scans = 0;
    let mut element_loops = 0;
    let mut cur = body;
    loop {
        match cur {
            Expr::For {
                block,
                body: inner,
                source,
                seq,
                ..
            } => {
                if !block.is_one() {
                    blocks += 1;
                } else if seq.is_some() {
                    seq_scans += 1;
                } else if matches!(&**source, Expr::Var(_)) {
                    // Element loop over a previously-bound block variable.
                    element_loops += 1;
                }
                cur = inner;
            }
            Expr::If { .. } => break,
            _ => break,
        }
    }
    blocks >= 1 && blocks + seq_scans >= 2 && element_loops >= 1 && matches!(cur, Expr::If { .. })
}

/// The GRACE hash join: hash-partition both inputs, zip the partitions,
/// flatMap a join over the bucket pairs.
pub fn is_grace_hash_join(e: &Expr) -> bool {
    let has_partition = find(e, &|x| matches!(x, Expr::DefRef(DefName::HashPartition(_))));
    let has_zip = find(e, &|x| matches!(x, Expr::DefRef(DefName::Zip(_))));
    let has_flatmap =
        matches!(e, Expr::App { func, .. } if matches!(&**func, Expr::FlatMap { .. }));
    has_partition && has_zip && has_flatmap
}

/// The 2ᵏ-way External Merge-Sort:
/// `treeFold[2ᵏ](⟨[], unfoldR[b](funcPow[k](mrg))⟩)(R)` with `2ᵏ ≥ fan`.
pub fn is_external_merge_sort(e: &Expr, min_fan: u64) -> Option<u64> {
    let Expr::App { func, .. } = e else {
        return None;
    };
    let Expr::App { func: tf, arg: cf } = &**func else {
        return None;
    };
    let Expr::DefRef(DefName::TreeFold(BlockSize::Const(m))) = &**tf else {
        return None;
    };
    let Expr::Tuple(items) = &**cf else {
        return None;
    };
    if items.len() != 2 || !matches!(items[0], Expr::Empty) {
        return None;
    }
    let has_pow_merge = find(&items[1], &|x| {
        matches!(x, Expr::App { func, arg }
            if matches!(&**func, Expr::DefRef(DefName::FuncPow(_)))
                && matches!(&**arg, Expr::DefRef(DefName::Mrg)))
    });
    if has_pow_merge && *m >= min_fan {
        Some(*m)
    } else {
        None
    }
}

/// True if any loop carries a sequentiality annotation.
pub fn has_seq_annotation(e: &Expr) -> bool {
    find(e, &|x| matches!(x, Expr::For { seq: Some(_), .. }))
}

/// True if the program is wrapped by the order-inputs selector.
pub fn has_order_inputs(e: &Expr) -> bool {
    find(e, &|x| {
        matches!(x, Expr::If { cond, .. }
            if matches!(&**cond, Expr::Prim { op: ocal::PrimOp::Le, .. }))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocal::parse;

    #[test]
    fn recognizes_bnl() {
        let bnl = parse(
            "for (xB [k0] <- R) for (yB [k1] <- S) for (x <- xB) for (y <- yB) \
             if x.1 == y.1 then [<x, y>] else []",
        )
        .unwrap();
        assert!(is_block_nested_loops(&bnl));
        let naive = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        assert!(!is_block_nested_loops(&naive));
    }

    #[test]
    fn recognizes_wrapped_bnl() {
        let wrapped = parse(
            "(\\q. for (xB [k0] <- q.1) for (yB [k1] <- q.2) for (x <- xB) for (y <- yB) \
             if x.1 == y.1 then [<x, y>] else [])\
             (if length(R) <= length(S) then <R, S> else <S, R>)",
        )
        .unwrap();
        assert!(is_block_nested_loops(&wrapped));
        assert!(has_order_inputs(&wrapped));
    }

    #[test]
    fn recognizes_curried_wrapped_bnl() {
        // Curried-application regression: a fully-applied two-argument
        // wrapper must not hide the loop nest from the matcher.
        let curried = parse(
            "((\\a. \\b. for (xB [k0] <- a) for (yB [k1] <- b) for (x <- xB) for (y <- yB) \
             if x.1 == y.1 then [<x, y>] else [])(R))(S)",
        )
        .unwrap();
        assert!(is_block_nested_loops(&curried));
        // Partial application is not a wrapper; nothing to strip.
        let partial = parse("(\\a. \\b. for (x <- a) for (y <- b) [<x, y>])(R)").unwrap();
        assert!(!is_block_nested_loops(&partial));
    }

    #[test]
    fn recognizes_grace() {
        let grace = parse(
            "flatMap(\\q. for (x <- q.1) for (y <- q.2) if x.1 == y.1 then [<x, y>] else [])\
             (unfoldR(zip[2])(<hashPartition[s0](R), hashPartition[s0](S)>))",
        )
        .unwrap();
        assert!(is_grace_hash_join(&grace));
        let bnl = parse("for (x <- R) for (y <- S) [<x, y>]").unwrap();
        assert!(!is_grace_hash_join(&bnl));
    }

    #[test]
    fn recognizes_merge_sort() {
        let ms = parse("treeFold[32](<[], unfoldR[k0, k1](funcPow[5](mrg))>)(R)").unwrap();
        assert_eq!(is_external_merge_sort(&ms, 4), Some(32));
        assert_eq!(is_external_merge_sort(&ms, 64), None);
        let fold = parse("foldL([], unfoldR(mrg))(R)").unwrap();
        assert_eq!(is_external_merge_sort(&fold, 2), None);
    }

    #[test]
    fn recognizes_seq_annotations() {
        let annotated = parse("for[HDD >> RAM] (y <- S) [y]").unwrap();
        assert!(has_seq_annotation(&annotated));
        let plain = parse("for (y <- S) [y]").unwrap();
        assert!(!has_seq_annotation(&plain));
    }
}
