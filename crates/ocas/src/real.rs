//! Running synthesis results for real: lower the winning program and
//! execute it through the `ocas-runtime` file backend, with the simulated
//! twin alongside.

use crate::experiments::{ExpError, Experiment};
use crate::synth::Synthesis;
use ocas_engine::{lower, Output, RelSpec, WorkloadHint};
use ocas_hierarchy::Hierarchy;
use ocas_runtime::{PoolConfig, RealReport, Runtime};
use std::collections::BTreeMap;

/// Everything a synthesis result needs to run against real files: the
/// hierarchy (devices become temp files), faithful-scale relation specs,
/// the workload hint for lowering, and the output/scratch placement.
#[derive(Debug, Clone)]
pub struct RealRunSetup {
    /// Target hierarchy.
    pub hierarchy: Hierarchy,
    /// Lowering hint (the spec's workload family).
    pub hint: WorkloadHint,
    /// Relations to generate — faithful scale: every tuple is materialized
    /// on disk, so cardinalities are "fits in memory", not paper-scale.
    pub rel_specs: Vec<RelSpec>,
    /// Output destination.
    pub output: Output,
    /// Scratch/spill device name.
    pub scratch: String,
    /// Base RNG seed (relation `i` uses `seed + i`).
    pub seed: u64,
    /// Buffer-pool configuration for the real backend.
    pub pool: PoolConfig,
}

impl Synthesis {
    /// Lowers the winning program to a physical plan and executes it **for
    /// real**: actual temp files, page-granular buffer pools, wall-clock
    /// seconds — plus the identical plan on the device simulator, so the
    /// report carries both numbers and both outputs.
    pub fn run_real(&self, setup: &RealRunSetup) -> Result<RealReport, ExpError> {
        let mut params = self.best.params.clone();
        params.entry("b_out".to_string()).or_insert(1 << 16);
        params.entry("b_in".to_string()).or_insert(1 << 16);
        let relations: BTreeMap<String, usize> = setup
            .rel_specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        let cx = ocas_engine::lower::LowerCtx {
            params,
            relations,
            output: setup.output.clone(),
            scratch: setup.scratch.clone(),
        };
        let plan = lower(&self.best.program, setup.hint, &cx)?;
        let rt = Runtime::new(setup.hierarchy.clone()).with_pool(setup.pool);
        Ok(rt.run_plan(&plan, &setup.rel_specs, setup.seed)?)
    }
}

impl Experiment {
    /// Builds the real-run setup for this experiment with the given
    /// relation specs (an experiment's own `rel_specs` are usually
    /// paper-scale; pass faithful-scale ones).
    pub fn real_setup(&self, rel_specs: Vec<RelSpec>, seed: u64) -> RealRunSetup {
        RealRunSetup {
            hierarchy: self.hierarchy.clone(),
            hint: self.spec.hint,
            rel_specs,
            output: self.output.clone(),
            scratch: self.scratch.clone(),
            seed,
            pool: PoolConfig::default(),
        }
    }

    /// Synthesizes, then executes the winner for real at the experiment's
    /// own relation scale (callers must ensure that scale is faithful).
    pub fn run_real(&self, seed: u64) -> Result<RealReport, ExpError> {
        let synth = self.synthesize()?;
        synth.run_real(&self.real_setup(self.rel_specs.clone(), seed))
    }
}
