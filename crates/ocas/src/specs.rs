//! The library of naive, memory-hierarchy-oblivious specifications —
//! one per workload in the paper's Table 1.
//!
//! Each spec pairs an OCAL program with its typing environment, annotated
//! input sizes (symbolic cardinalities `x`, `y` plus concrete statistics),
//! the equivalence notion candidates must preserve, and the engine's
//! workload hint.

use ocal::{parse, CardHint, Expr, SizeHint, Type, TypeEnv};
use ocas_cost::Annot;
use ocas_engine::WorkloadHint;
use ocas_rewrite::Equivalence;
use ocas_symbolic::{Env, Expr as Sym};
use std::collections::BTreeMap;

/// A complete specification: the input to the synthesizer.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Workload name (Table 1 row).
    pub name: String,
    /// The naive OCAL program.
    pub program: Expr,
    /// Input types.
    pub env: TypeEnv,
    /// Annotated input sizes (symbolic cardinalities).
    pub annots: BTreeMap<String, Annot>,
    /// Concrete cardinalities for the symbolic variables.
    pub stats: Env,
    /// Equivalence notion candidates must preserve.
    pub equivalence: Equivalence,
    /// Whether the workload's contract requires sorted inputs.
    pub sorted_inputs: bool,
    /// Engine lowering hint.
    pub hint: WorkloadHint,
    /// Bytes per atomic value in the cost model.
    pub int_size: u64,
}

fn rel_ty() -> Type {
    Type::list(Type::tuple(vec![Type::Int, Type::Int]))
}

fn must(src: &str) -> Expr {
    parse(src).unwrap_or_else(|e| panic!("spec parse error: {e}\n{src}"))
}

/// The naive nested-loops join of Example 1 (`x.1 == y.1`), or the
/// relational product when `cross` (the paper's write-out rows).
///
/// `x_card`/`y_card` are the relation cardinalities in tuples.
pub fn join(x_card: u64, y_card: u64, cross: bool) -> Spec {
    let cond = if cross { "true" } else { "x.1 == y.1" };
    let program = must(&format!(
        "for (x <- R) for (y <- S) if {cond} then [<x, y>] else []"
    ));
    let env: TypeEnv = [("R".to_string(), rel_ty()), ("S".to_string(), rel_ty())]
        .into_iter()
        .collect();
    let mut annots = BTreeMap::new();
    annots.insert("R".to_string(), Annot::relation(Sym::var("x"), 2, 8));
    annots.insert("S".to_string(), Annot::relation(Sym::var("y"), 2, 8));
    Spec {
        name: if cross { "product-join" } else { "bnl-join" }.to_string(),
        program,
        env,
        annots,
        stats: Env::new().with("x", x_card as f64).with("y", y_card as f64),
        // order-inputs may swap the relations, permuting each output row's
        // halves; the paper considers the results interchangeable.
        equivalence: Equivalence::BagModuloFieldOrder,
        sorted_inputs: false,
        hint: WorkloadHint::Join { cross },
        int_size: 8,
    }
}

/// Insertion sort as `foldL([], unfoldR(mrg))` over a list of singleton
/// lists (paper §7.2). Unary 1-byte elements, as in Figure 4.
pub fn sort(card: u64) -> Spec {
    let program = must("foldL([], unfoldR(mrg))(R)");
    let env: TypeEnv = [("R".to_string(), Type::list(Type::list(Type::Int)))]
        .into_iter()
        .collect();
    let mut annots = BTreeMap::new();
    annots.insert(
        "R".to_string(),
        Annot::list(Annot::list(Annot::atom(1), Sym::one()), Sym::var("x")),
    );
    Spec {
        name: "external-sort".to_string(),
        program,
        env,
        annots,
        stats: Env::new().with("x", card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: true,
        hint: WorkloadHint::Sort,
        int_size: 1,
    }
}

fn int_list_env(names: &[&str]) -> TypeEnv {
    names
        .iter()
        .map(|n| (n.to_string(), Type::list(Type::Int)))
        .collect()
}

fn unary_annots(names: &[&str], cards: &[&str]) -> BTreeMap<String, Annot> {
    names
        .iter()
        .zip(cards)
        .map(|(n, c)| (n.to_string(), Annot::relation(Sym::var(*c), 1, 8)))
        .collect()
}

/// Set union of sorted unique integer lists: a one-pass merge that emits
/// equal heads once.
pub fn set_union(x_card: u64, y_card: u64) -> Spec {
    let step = "\\p. if length(p.1) == 0 && length(p.2) == 0 then <[], <[], []>> \
                else if length(p.1) == 0 then <[head(p.2)], <[], tail(p.2)>> \
                else if length(p.2) == 0 then <[head(p.1)], <tail(p.1), []>> \
                else if head(p.1) < head(p.2) then <[head(p.1)], <tail(p.1), p.2>> \
                else if head(p.2) < head(p.1) then <[head(p.2)], <p.1, tail(p.2)>> \
                else <[head(p.1)], <tail(p.1), tail(p.2)>>";
    let program = must(&format!("unfoldR({step})(<A, B>)"));
    Spec {
        name: "set-union".to_string(),
        program,
        env: int_list_env(&["A", "B"]),
        annots: unary_annots(&["A", "B"], &["x", "y"]),
        stats: Env::new().with("x", x_card as f64).with("y", y_card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: true,
        hint: WorkloadHint::SetUnion,
        int_size: 8,
    }
}

/// Multiset union in the sorted-list representation: plain `unfoldR(mrg)`.
pub fn multiset_union_sorted(x_card: u64, y_card: u64) -> Spec {
    let program = must("unfoldR(mrg)(<A, B>)");
    Spec {
        name: "multiset-union-sorted".to_string(),
        program,
        env: int_list_env(&["A", "B"]),
        annots: unary_annots(&["A", "B"], &["x", "y"]),
        stats: Env::new().with("x", x_card as f64).with("y", y_card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: true,
        hint: WorkloadHint::MultisetUnionSorted,
        int_size: 8,
    }
}

/// Multiset union in the value–multiplicity representation: equal values
/// add their multiplicities.
pub fn multiset_union_vm(x_card: u64, y_card: u64) -> Spec {
    let step = "\\p. if length(p.1) == 0 && length(p.2) == 0 then <[], <[], []>> \
                else if length(p.1) == 0 then <[head(p.2)], <[], tail(p.2)>> \
                else if length(p.2) == 0 then <[head(p.1)], <tail(p.1), []>> \
                else if head(p.1).1 < head(p.2).1 then <[head(p.1)], <tail(p.1), p.2>> \
                else if head(p.2).1 < head(p.1).1 then <[head(p.2)], <p.1, tail(p.2)>> \
                else <[<head(p.1).1, head(p.1).2 + head(p.2).2>], <tail(p.1), tail(p.2)>>";
    let program = must(&format!("unfoldR({step})(<A, B>)"));
    let env: TypeEnv = [("A".to_string(), rel_ty()), ("B".to_string(), rel_ty())]
        .into_iter()
        .collect();
    let mut annots = BTreeMap::new();
    annots.insert("A".to_string(), Annot::relation(Sym::var("x"), 2, 8));
    annots.insert("B".to_string(), Annot::relation(Sym::var("y"), 2, 8));
    Spec {
        name: "multiset-union-vm".to_string(),
        program,
        env,
        annots,
        stats: Env::new().with("x", x_card as f64).with("y", y_card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: true,
        hint: WorkloadHint::MultisetUnionVm,
        int_size: 8,
    }
}

/// Multiset difference, sorted-list representation. The result-size
/// annotation `[8]_x` is the paper's §5.1 programmer hint (worst case: no
/// common element).
pub fn multiset_diff_sorted(x_card: u64, y_card: u64) -> Spec {
    let step = "\\p. if length(p.1) == 0 then <[], <[], []>> \
                else if length(p.2) == 0 then <[head(p.1)], <tail(p.1), []>> \
                else if head(p.1) < head(p.2) then <[head(p.1)], <tail(p.1), p.2>> \
                else if head(p.2) < head(p.1) then <[], <p.1, tail(p.2)>> \
                else <[], <tail(p.1), tail(p.2)>>";
    let program = must(&format!("unfoldR({step})(<A, B>)")).sized(SizeHint::List(
        Box::new(SizeHint::Atom(8)),
        CardHint::Var("x".into()),
    ));
    Spec {
        name: "multiset-diff-sorted".to_string(),
        program,
        env: int_list_env(&["A", "B"]),
        annots: unary_annots(&["A", "B"], &["x", "y"]),
        stats: Env::new().with("x", x_card as f64).with("y", y_card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: true,
        hint: WorkloadHint::MultisetDiffSorted,
        int_size: 8,
    }
}

/// Multiset difference, value–multiplicity representation.
pub fn multiset_diff_vm(x_card: u64, y_card: u64) -> Spec {
    let step = "\\p. if length(p.1) == 0 then <[], <[], []>> \
                else if length(p.2) == 0 then <[head(p.1)], <tail(p.1), []>> \
                else if head(p.1).1 < head(p.2).1 then <[head(p.1)], <tail(p.1), p.2>> \
                else if head(p.2).1 < head(p.1).1 then <[], <p.1, tail(p.2)>> \
                else if head(p.1).2 > head(p.2).2 \
                then <[<head(p.1).1, head(p.1).2 - head(p.2).2>], <tail(p.1), tail(p.2)>> \
                else <[], <tail(p.1), tail(p.2)>>";
    let program = must(&format!("unfoldR({step})(<A, B>)")).sized(SizeHint::List(
        Box::new(SizeHint::Tuple(vec![SizeHint::Atom(8), SizeHint::Atom(8)])),
        CardHint::Var("x".into()),
    ));
    let env: TypeEnv = [("A".to_string(), rel_ty()), ("B".to_string(), rel_ty())]
        .into_iter()
        .collect();
    let mut annots = BTreeMap::new();
    annots.insert("A".to_string(), Annot::relation(Sym::var("x"), 2, 8));
    annots.insert("B".to_string(), Annot::relation(Sym::var("y"), 2, 8));
    Spec {
        name: "multiset-diff-vm".to_string(),
        program,
        env,
        annots,
        stats: Env::new().with("x", x_card as f64).with("y", y_card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: true,
        hint: WorkloadHint::MultisetDiffVm,
        int_size: 8,
    }
}

/// Column-store read of `n` columns: `unfoldR(zip[n])`.
pub fn column_read(n: usize, card: u64) -> Spec {
    let names: Vec<String> = (1..=n).map(|i| format!("C{i}")).collect();
    let tuple = names.join(", ");
    let program = must(&format!("unfoldR(zip[{n}])(<{tuple}>)"));
    let env: TypeEnv = names
        .iter()
        .map(|c| (c.clone(), Type::list(Type::Int)))
        .collect();
    let annots: BTreeMap<String, Annot> = names
        .iter()
        .map(|c| (c.clone(), Annot::relation(Sym::var("n"), 1, 8)))
        .collect();
    Spec {
        name: format!("column-read-{n}"),
        program,
        env,
        annots,
        stats: Env::new().with("n", card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: false,
        hint: WorkloadHint::Columns,
        int_size: 8,
    }
}

/// Duplicate removal from a sorted list: the staggered-merge formulation
/// `[head(L)] ⊔ unfoldR(step)(⟨tail(L), L⟩)` (adjacent-pair comparison as a
/// one-pass stream; see DESIGN.md for why the fold formulation is not used).
pub fn dedup_sorted(card: u64) -> Spec {
    let step = "\\p. if length(p.1) == 0 then <[], <[], []>> \
                else if head(p.1) == head(p.2) then <[], <tail(p.1), tail(p.2)>> \
                else <[head(p.1)], <tail(p.1), tail(p.2)>>";
    let program = must(&format!(
        "if length(L) == 0 then [] else [head(L)] ++ unfoldR({step})(<tail(L), L>)"
    ));
    Spec {
        name: "dedup-sorted".to_string(),
        program,
        env: int_list_env(&["L"]),
        annots: unary_annots(&["L"], &["x"]),
        stats: Env::new().with("x", card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: true,
        hint: WorkloadHint::Dedup,
        int_size: 8,
    }
}

/// Aggregation: `avg(L)`.
pub fn aggregate(card: u64) -> Spec {
    let program = must("avg(L)");
    Spec {
        name: "aggregation".to_string(),
        program,
        env: int_list_env(&["L"]),
        annots: unary_annots(&["L"], &["x"]),
        stats: Env::new().with("x", card as f64),
        equivalence: Equivalence::Exact,
        sorted_inputs: false,
        hint: WorkloadHint::Aggregate,
        int_size: 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocal::{typecheck, Evaluator, Value};

    fn eval_spec(spec: &Spec, inputs: &[(&str, Value)]) -> Value {
        let map: BTreeMap<String, Value> = inputs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect();
        Evaluator::new().run(&spec.program, &map).unwrap()
    }

    #[test]
    fn all_specs_typecheck() {
        let specs = [
            join(100, 50, false),
            join(100, 50, true),
            sort(100),
            set_union(10, 10),
            multiset_union_sorted(10, 10),
            multiset_union_vm(10, 10),
            multiset_diff_sorted(10, 10),
            multiset_diff_vm(10, 10),
            column_read(5, 100),
            column_read(10, 100),
            dedup_sorted(100),
            aggregate(100),
        ];
        for s in &specs {
            typecheck(&s.program, &s.env)
                .unwrap_or_else(|e| panic!("{} fails to typecheck: {e}", s.name));
        }
    }

    #[test]
    fn set_union_semantics() {
        let s = set_union(4, 4);
        let out = eval_spec(
            &s,
            &[
                ("A", Value::int_list(&[1, 3, 5])),
                ("B", Value::int_list(&[1, 2, 5, 7])),
            ],
        );
        assert_eq!(out, Value::int_list(&[1, 2, 3, 5, 7]));
    }

    #[test]
    fn multiset_union_vm_adds_multiplicities() {
        let s = multiset_union_vm(2, 2);
        let out = eval_spec(
            &s,
            &[
                ("A", Value::pair_list(&[(1, 2), (4, 1)])),
                ("B", Value::pair_list(&[(1, 3), (9, 9)])),
            ],
        );
        assert_eq!(out, Value::pair_list(&[(1, 5), (4, 1), (9, 9)]));
    }

    #[test]
    fn multiset_diff_semantics() {
        let s = multiset_diff_sorted(5, 3);
        let out = eval_spec(
            &s,
            &[
                ("A", Value::int_list(&[1, 2, 2, 3, 9])),
                ("B", Value::int_list(&[2, 3, 7])),
            ],
        );
        assert_eq!(out, Value::int_list(&[1, 2, 9]));

        let vm = multiset_diff_vm(2, 2);
        let out = eval_spec(
            &vm,
            &[
                ("A", Value::pair_list(&[(1, 5), (2, 1)])),
                ("B", Value::pair_list(&[(1, 2), (2, 4)])),
            ],
        );
        assert_eq!(out, Value::pair_list(&[(1, 3)]));
    }

    #[test]
    fn dedup_semantics() {
        let s = dedup_sorted(8);
        let out = eval_spec(&s, &[("L", Value::int_list(&[1, 1, 2, 3, 3, 3, 8]))]);
        assert_eq!(out, Value::int_list(&[1, 2, 3, 8]));
        let empty = eval_spec(&s, &[("L", Value::int_list(&[]))]);
        assert_eq!(empty, Value::int_list(&[]));
    }

    #[test]
    fn column_read_semantics() {
        let s = column_read(3, 2);
        let out = eval_spec(
            &s,
            &[
                ("C1", Value::int_list(&[1, 2])),
                ("C2", Value::int_list(&[10, 20])),
                ("C3", Value::int_list(&[100, 200])),
            ],
        );
        assert_eq!(out.to_string(), "[<1, 10, 100>, <2, 20, 200>]");
    }

    #[test]
    fn sort_spec_sorts() {
        let s = sort(5);
        let singletons = Value::list(vec![
            Value::int_list(&[3]),
            Value::int_list(&[1]),
            Value::int_list(&[2]),
        ]);
        let out = eval_spec(&s, &[("R", singletons)]);
        assert_eq!(out, Value::int_list(&[1, 2, 3]));
    }
}
