//! The synthesizer pipeline: search → cost → parameter tuning → best plan.
//!
//! Cost estimation is **pipelined into the search loop** instead of being a
//! post-hoc pass over the explored space: the search's
//! [`ocas_rewrite::SearchHooks`] hand each accepted program to a pool of
//! scoped cost-worker threads (cost analysis + ladder screening) while the
//! frontier keeps expanding. Results are merged by program index, so with
//! pruning off the outcome is bit-identical to the old sequential
//! search-then-cost pass.
//!
//! An opt-in branch-and-bound prune ([`PruneCfg`]) additionally skips both
//! the ladder screening and the *expansion* of candidates whose admissible
//! cost lower bound ([`ocas_opt::admissible_lower_bound`]) already exceeds
//! the best tuned cost seen so far. It is OFF by default precisely because
//! it changes the explored space (Table 1's `explored`/`depth_reached`
//! stats are pinned against the exhaustive baseline).

use crate::specs::Spec;
use ocal::Expr;
use ocas_cost::{CostEngine, CostError, CostReport, Layout};
use ocas_opt::{admissible_lower_bound, ladder_search, optimize, Optimum, Problem};
use ocas_rewrite::{
    default_rules, search_with, Rule, SearchConfig, SearchHooks, SearchStats, ValidationCfg,
};
use ocas_symbolic::Expr as Sym;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;

/// One costed candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The program.
    pub program: Expr,
    /// Derivation depth at which the search found it.
    pub depth: u32,
    /// Tuned parameter values.
    pub params: BTreeMap<String, u64>,
    /// Estimated seconds at the tuned parameters.
    pub seconds: f64,
    /// The symbolic cost formula.
    pub formula: Sym,
}

/// The synthesizer's result.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The winning program with tuned parameters.
    pub best: Candidate,
    /// The specification's own (naive) cost, parameters tuned the same way.
    pub spec: Candidate,
    /// Search statistics (paper Table 1's space/steps/runtime columns).
    pub stats: SearchStats,
    /// How many candidates were costed successfully.
    pub costed: usize,
    /// How many candidates the cost engine could not analyze.
    pub uncosted: usize,
    /// How many candidates the branch-and-bound screen skipped the ladder
    /// for (0 unless [`Synthesizer::prune`] is set).
    pub screened: usize,
}

/// Synthesizer errors.
#[derive(Debug)]
pub enum SynthError {
    /// The specification itself failed to typecheck.
    Type(ocal::TypeError),
    /// The specification could not be costed.
    Cost(CostError),
    /// No candidate could be costed and tuned.
    NoCandidate,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Type(e) => write!(f, "type error: {e}"),
            SynthError::Cost(e) => write!(f, "cost error: {e}"),
            SynthError::NoCandidate => write!(f, "no candidate program could be costed"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Branch-and-bound pruning policy (opt-in, see [`Synthesizer::prune`]).
#[derive(Debug, Clone, Copy)]
pub struct PruneCfg {
    /// A candidate is pruned when its admissible lower bound exceeds
    /// `slack ×` the incumbent best tuned cost. `1.0` prunes everything
    /// that provably cannot win; larger values keep a safety margin of
    /// candidates whose *descendants* might still improve.
    pub slack: f64,
}

impl Default for PruneCfg {
    fn default() -> PruneCfg {
        PruneCfg { slack: 1.0 }
    }
}

/// The synthesizer: a hierarchy, a physical layout and search settings.
pub struct Synthesizer {
    /// Target memory hierarchy.
    pub hierarchy: ocas_hierarchy::Hierarchy,
    /// Physical layout of inputs/output/spill.
    pub layout: Layout,
    /// BFS depth limit.
    pub max_depth: u32,
    /// Cap on the explored program count.
    pub max_programs: usize,
    /// Enable differential validation of candidates.
    pub validate: bool,
    /// Rule names to exclude (per-experiment scoping, e.g. disabling
    /// *hash-part* to study plain BNL).
    pub exclude_rules: Vec<String>,
    /// How many ladder-screened candidates get the full pattern-search
    /// refinement.
    pub refine_top: usize,
    /// Search frontier-expansion workers (0 = available parallelism).
    pub search_workers: usize,
    /// Pipelined cost-estimation workers (0 = available parallelism).
    pub cost_workers: usize,
    /// Opt-in branch-and-bound pruning. `None` (the default) keeps the
    /// search exhaustive and every statistic bit-identical to the
    /// sequential baseline; `Some` trades that determinism for a smaller
    /// explored space on cost-dominated workloads.
    pub prune: Option<PruneCfg>,
}

/// A program handed from the search thread to the cost workers.
struct CostJob {
    index: usize,
    program: Expr,
    depth: u32,
}

/// A cost analysis prepared by the prune hook on the search thread and
/// handed to the cost workers so the analysis is not repeated there.
struct PreparedCost {
    lower_bound: f64,
    problem: Problem,
    report: CostReport,
}

/// What a cost worker produced for one program index.
enum CostOut {
    Costed(usize, Box<Candidate>),
    Uncosted(usize),
    Screened(usize),
}

/// Lock-free running minimum over f64 bits (all values are ≥ 0 here, so
/// the IEEE total order agrees with the numeric order on the bit level).
fn fetch_min(cell: &AtomicU64, value: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while value < f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, value.to_bits(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// Search hooks implementing the cost pipeline: `on_program` enqueues each
/// accepted program for the cost workers; `should_expand` consults the
/// branch-and-bound bound when pruning is enabled.
struct PipelineHooks<'a> {
    tx: Option<mpsc::Sender<CostJob>>,
    prune: Option<PruneCfg>,
    incumbent: &'a AtomicU64,
    prepared: &'a Mutex<HashMap<usize, PreparedCost>>,
    synth: &'a Synthesizer,
    spec: &'a Spec,
}

impl SearchHooks for PipelineHooks<'_> {
    fn on_program(&mut self, index: usize, program: &Expr, depth: u32) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(CostJob {
                index,
                program: program.clone(),
                depth,
            });
        }
    }

    fn should_expand(&mut self, index: usize, program: &Expr, _depth: u32) -> bool {
        let Some(prune) = self.prune else {
            return true;
        };
        let incumbent = f64::from_bits(self.incumbent.load(Ordering::Relaxed));
        if !incumbent.is_finite() {
            return true;
        }
        // The bound is computed here (one cost-analysis pass, no ladder)
        // rather than waiting for the asynchronous cost worker — by the
        // time the worker gets to this program the frontier has moved on.
        // The analysis is stashed for that worker so it is not repeated.
        match self.synth.candidate_problem(self.spec, program) {
            Ok((problem, report)) => match admissible_lower_bound(&problem) {
                Ok(lb) => {
                    let verdict = lb <= prune.slack * incumbent;
                    self.prepared.lock().unwrap().insert(
                        index,
                        PreparedCost {
                            lower_bound: lb,
                            problem,
                            report,
                        },
                    );
                    verdict
                }
                Err(_) => true,
            },
            // Uncostable programs can't beat the incumbent themselves,
            // but their descendants might become costable; expand.
            Err(_) => true,
        }
    }
}

impl Synthesizer {
    /// A synthesizer with default settings.
    pub fn new(hierarchy: ocas_hierarchy::Hierarchy, layout: Layout) -> Synthesizer {
        Synthesizer {
            hierarchy,
            layout,
            max_depth: 6,
            max_programs: 2000,
            validate: true,
            exclude_rules: Vec::new(),
            refine_top: 5,
            search_workers: 0,
            cost_workers: 0,
            prune: None,
        }
    }

    /// Sets the search depth, builder style.
    pub fn with_depth(mut self, depth: u32) -> Synthesizer {
        self.max_depth = depth;
        self
    }

    /// Caps the explored space, builder style.
    pub fn with_max_programs(mut self, n: usize) -> Synthesizer {
        self.max_programs = n;
        self
    }

    /// Excludes rules by name, builder style.
    pub fn without_rules(mut self, names: &[&str]) -> Synthesizer {
        self.exclude_rules = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Disables differential validation (trust the syntactic guards).
    pub fn without_validation(mut self) -> Synthesizer {
        self.validate = false;
        self
    }

    /// Enables branch-and-bound pruning, builder style.
    pub fn with_prune(mut self, prune: PruneCfg) -> Synthesizer {
        self.prune = Some(prune);
        self
    }

    /// Fixes the worker counts (searching, costing), builder style.
    pub fn with_workers(mut self, search: usize, cost: usize) -> Synthesizer {
        self.search_workers = search;
        self.cost_workers = cost;
        self
    }

    fn rules(&self) -> Vec<Box<dyn Rule>> {
        default_rules()
            .into_iter()
            .filter(|r| !self.exclude_rules.iter().any(|x| x == r.name()))
            .collect()
    }

    /// Cost-analyzes one program into an optimization problem.
    fn candidate_problem(
        &self,
        spec: &Spec,
        program: &Expr,
    ) -> Result<(Problem, CostReport), CostError> {
        let engine = CostEngine::new(
            &self.hierarchy,
            &self.layout,
            spec.annots.clone(),
            spec.stats.clone(),
            spec.int_size,
        )?;
        let report: CostReport = engine.cost(program)?;
        let problem = Problem {
            objective: report.seconds.clone(),
            params: report
                .params
                .iter()
                .map(|p| ocas_opt::ParamSpec::new(p.clone(), None))
                .collect(),
            constraints: report
                .constraints
                .iter()
                .map(|c| (c.lhs.clone(), c.rhs.clone()))
                .collect(),
            fixed: spec.stats.clone(),
        };
        Ok((problem, report))
    }

    /// Costs one program and tunes its parameters (cheap ladder screening,
    /// optionally refined with the full pattern search).
    fn cost_candidate(
        &self,
        spec: &Spec,
        program: &Expr,
        depth: u32,
        refine: bool,
    ) -> Result<Candidate, CostError> {
        let (problem, report) = self.candidate_problem(spec, program)?;
        let tuned: Optimum = if refine {
            optimize(&problem)
                .or_else(|_| ladder_search(&problem))
                .map_err(|_| CostError::Unsupported("parameter optimization"))?
        } else {
            ladder_search(&problem).map_err(|_| CostError::Unsupported("parameter optimization"))?
        };
        Ok(Candidate {
            program: program.clone(),
            depth,
            params: tuned.values,
            seconds: tuned.objective,
            formula: report.seconds,
        })
    }

    /// Runs the full pipeline on a specification.
    pub fn synthesize(&self, spec: &Spec) -> Result<Synthesis, SynthError> {
        let validation = if self.validate {
            let mut v = ValidationCfg::new(spec.env.clone(), spec.equivalence);
            if spec.sorted_inputs {
                v = v.with_sorted_inputs();
            }
            Some(v)
        } else {
            None
        };
        let cfg = SearchConfig {
            max_depth: self.max_depth,
            max_programs: self.max_programs,
            validation,
            workers: self.search_workers,
        };
        let rules = self.rules();

        let incumbent = AtomicU64::new(f64::INFINITY.to_bits());
        if self.prune.is_some() {
            // Seed the incumbent with the spec's own tuned cost so the
            // bound has something to prune against from the start.
            if let Ok(c) = self.cost_candidate(spec, &spec.program, 0, false) {
                fetch_min(&incumbent, c.seconds);
            }
        }

        let (tx, rx) = mpsc::channel::<CostJob>();
        let rx = Mutex::new(rx);
        let results: Mutex<Vec<CostOut>> = Mutex::new(Vec::new());
        let prepared: Mutex<HashMap<usize, PreparedCost>> = Mutex::new(HashMap::new());
        let cost_workers = if self.cost_workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            self.cost_workers
        };
        // Tracing: the recorder is thread-local, so workers only *measure*
        // (against a shared epoch) and the spans are recorded after the
        // deterministic index-sorted merge below — one span per cost job
        // regardless of the worker count or scheduling.
        let obs_epoch = if ocas_obs::enabled() {
            Some((std::time::Instant::now(), ocas_obs::wall_now()))
        } else {
            None
        };
        let timings: Mutex<Vec<(usize, usize, f64, f64)>> = Mutex::new(Vec::new());

        let search_result = std::thread::scope(|s| {
            for w in 0..cost_workers {
                let (rx, prepared, results, incumbent, timings) =
                    (&rx, &prepared, &results, &incumbent, &timings);
                s.spawn(move || loop {
                    let job = match rx.lock().unwrap().recv() {
                        Ok(job) => job,
                        Err(_) => break,
                    };
                    let t0 = obs_epoch.map(|(epoch, _)| epoch.elapsed().as_secs_f64());
                    // Reuse the analysis the prune hook already did for
                    // this program, if any (bound included).
                    let ready = prepared.lock().unwrap().remove(&job.index);
                    let analyzed = match ready {
                        Some(pc) => Ok((pc.problem, pc.report, Some(pc.lower_bound))),
                        None => self
                            .candidate_problem(spec, &job.program)
                            .map(|(problem, report)| (problem, report, None)),
                    };
                    let out = match analyzed {
                        Err(_) => CostOut::Uncosted(job.index),
                        Ok((problem, report, bound)) => {
                            let screened = self.prune.is_some_and(|p| {
                                let inc = f64::from_bits(incumbent.load(Ordering::Relaxed));
                                inc.is_finite()
                                    && bound
                                        .map(Ok)
                                        .unwrap_or_else(|| admissible_lower_bound(&problem))
                                        .is_ok_and(|lb| lb > p.slack * inc)
                            });
                            if screened {
                                CostOut::Screened(job.index)
                            } else {
                                match ladder_search(&problem) {
                                    Err(_) => CostOut::Uncosted(job.index),
                                    Ok(tuned) => {
                                        fetch_min(incumbent, tuned.objective);
                                        CostOut::Costed(
                                            job.index,
                                            Box::new(Candidate {
                                                program: job.program.clone(),
                                                depth: job.depth,
                                                params: tuned.values,
                                                seconds: tuned.objective,
                                                formula: report.seconds,
                                            }),
                                        )
                                    }
                                }
                            }
                        }
                    };
                    if let (Some(s0), Some((epoch, _))) = (t0, obs_epoch) {
                        let dur = epoch.elapsed().as_secs_f64() - s0;
                        timings.lock().unwrap().push((w, job.index, s0, dur));
                    }
                    results.lock().unwrap().push(out);
                });
            }
            let mut hooks = PipelineHooks {
                tx: Some(tx),
                prune: self.prune,
                incumbent: &incumbent,
                prepared: &prepared,
                synth: self,
                spec,
            };
            let result = search_with(
                &spec.program,
                &spec.env,
                &self.hierarchy,
                &self.layout.inputs,
                self.layout.output.clone(),
                &rules,
                &cfg,
                &mut hooks,
            );
            // Close the channel so the workers drain the queue and exit;
            // the scope joins them before returning.
            hooks.tx.take();
            result
        })
        .map_err(SynthError::Type)?;

        // Deterministic merge: results keyed by program index, exactly the
        // order the old post-hoc costing pass produced.
        let mut outs = results.into_inner().unwrap();
        outs.sort_unstable_by_key(|o| match o {
            CostOut::Costed(i, _) | CostOut::Uncosted(i) | CostOut::Screened(i) => *i,
        });
        if let Some((_, base)) = obs_epoch {
            // One wall-clock span per cost job on its worker's track,
            // recorded in program-index order.
            let mut ts = timings.into_inner().unwrap();
            ts.sort_unstable_by_key(|&(_, i, _, _)| i);
            for (w, i, s0, dur) in ts {
                ocas_obs::span(
                    ocas_obs::Clock::Wall,
                    &format!("cost-w{w}"),
                    "cost",
                    base + s0,
                    dur,
                    &[("index", i as f64)],
                );
            }
        }
        let mut costed: Vec<Candidate> = Vec::new();
        let mut uncosted = 0usize;
        let mut screened = 0usize;
        for out in outs {
            match out {
                CostOut::Costed(_, c) => costed.push(*c),
                CostOut::Uncosted(_) => uncosted += 1,
                CostOut::Screened(_) => screened += 1,
            }
        }
        if costed.is_empty() {
            return Err(SynthError::NoCandidate);
        }
        let spec_candidate = costed
            .iter()
            .find(|c| c.depth == 0)
            .cloned()
            .unwrap_or_else(|| costed[0].clone());

        // Refine the most promising candidates with the full pattern search.
        costed.sort_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap());
        let mut best = costed[0].clone();
        for cand in costed.iter().take(self.refine_top) {
            if let Ok(refined) = self.cost_candidate(spec, &cand.program, cand.depth, true) {
                if refined.seconds < best.seconds {
                    best = refined;
                }
            }
        }
        Ok(Synthesis {
            best,
            spec: spec_candidate,
            stats: search_result.stats,
            costed: costed.len(),
            uncosted,
            screened,
        })
    }
}
