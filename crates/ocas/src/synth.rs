//! The synthesizer pipeline: search → cost → parameter tuning → best plan.

use crate::specs::Spec;
use ocal::Expr;
use ocas_cost::{CostEngine, CostError, CostReport, Layout};
use ocas_opt::{ladder_search, optimize, Optimum, Problem};
use ocas_rewrite::{default_rules, search, Rule, SearchConfig, SearchStats, ValidationCfg};
use ocas_symbolic::Expr as Sym;
use std::collections::BTreeMap;
use std::fmt;

/// One costed candidate.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The program.
    pub program: Expr,
    /// Derivation depth at which the search found it.
    pub depth: u32,
    /// Tuned parameter values.
    pub params: BTreeMap<String, u64>,
    /// Estimated seconds at the tuned parameters.
    pub seconds: f64,
    /// The symbolic cost formula.
    pub formula: Sym,
}

/// The synthesizer's result.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The winning program with tuned parameters.
    pub best: Candidate,
    /// The specification's own (naive) cost, parameters tuned the same way.
    pub spec: Candidate,
    /// Search statistics (paper Table 1's space/steps/runtime columns).
    pub stats: SearchStats,
    /// How many candidates were costed successfully.
    pub costed: usize,
    /// How many candidates the cost engine could not analyze.
    pub uncosted: usize,
}

/// Synthesizer errors.
#[derive(Debug)]
pub enum SynthError {
    /// The specification itself failed to typecheck.
    Type(ocal::TypeError),
    /// The specification could not be costed.
    Cost(CostError),
    /// No candidate could be costed and tuned.
    NoCandidate,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Type(e) => write!(f, "type error: {e}"),
            SynthError::Cost(e) => write!(f, "cost error: {e}"),
            SynthError::NoCandidate => write!(f, "no candidate program could be costed"),
        }
    }
}

impl std::error::Error for SynthError {}

/// The synthesizer: a hierarchy, a physical layout and search settings.
pub struct Synthesizer {
    /// Target memory hierarchy.
    pub hierarchy: ocas_hierarchy::Hierarchy,
    /// Physical layout of inputs/output/spill.
    pub layout: Layout,
    /// BFS depth limit.
    pub max_depth: u32,
    /// Cap on the explored program count.
    pub max_programs: usize,
    /// Enable differential validation of candidates.
    pub validate: bool,
    /// Rule names to exclude (per-experiment scoping, e.g. disabling
    /// *hash-part* to study plain BNL).
    pub exclude_rules: Vec<String>,
    /// How many ladder-screened candidates get the full pattern-search
    /// refinement.
    pub refine_top: usize,
}

impl Synthesizer {
    /// A synthesizer with default settings.
    pub fn new(hierarchy: ocas_hierarchy::Hierarchy, layout: Layout) -> Synthesizer {
        Synthesizer {
            hierarchy,
            layout,
            max_depth: 6,
            max_programs: 2000,
            validate: true,
            exclude_rules: Vec::new(),
            refine_top: 5,
        }
    }

    /// Sets the search depth, builder style.
    pub fn with_depth(mut self, depth: u32) -> Synthesizer {
        self.max_depth = depth;
        self
    }

    /// Caps the explored space, builder style.
    pub fn with_max_programs(mut self, n: usize) -> Synthesizer {
        self.max_programs = n;
        self
    }

    /// Excludes rules by name, builder style.
    pub fn without_rules(mut self, names: &[&str]) -> Synthesizer {
        self.exclude_rules = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Disables differential validation (trust the syntactic guards).
    pub fn without_validation(mut self) -> Synthesizer {
        self.validate = false;
        self
    }

    fn rules(&self) -> Vec<Box<dyn Rule>> {
        default_rules()
            .into_iter()
            .filter(|r| !self.exclude_rules.iter().any(|x| x == r.name()))
            .collect()
    }

    /// Costs one program and tunes its parameters (cheap ladder screening).
    fn cost_candidate(
        &self,
        spec: &Spec,
        program: &Expr,
        depth: u32,
        refine: bool,
    ) -> Result<Candidate, CostError> {
        let engine = CostEngine::new(
            &self.hierarchy,
            &self.layout,
            spec.annots.clone(),
            spec.stats.clone(),
            spec.int_size,
        )?;
        let report: CostReport = engine.cost(program)?;
        let problem = Problem {
            objective: report.seconds.clone(),
            params: report
                .params
                .iter()
                .map(|p| ocas_opt::ParamSpec::new(p.clone(), None))
                .collect(),
            constraints: report
                .constraints
                .iter()
                .map(|c| (c.lhs.clone(), c.rhs.clone()))
                .collect(),
            fixed: spec.stats.clone(),
        };
        let tuned: Optimum = if refine {
            optimize(&problem)
                .or_else(|_| ladder_search(&problem))
                .map_err(|_| CostError::Unsupported("parameter optimization"))?
        } else {
            ladder_search(&problem).map_err(|_| CostError::Unsupported("parameter optimization"))?
        };
        Ok(Candidate {
            program: program.clone(),
            depth,
            params: tuned.values,
            seconds: tuned.objective,
            formula: report.seconds,
        })
    }

    /// Runs the full pipeline on a specification.
    pub fn synthesize(&self, spec: &Spec) -> Result<Synthesis, SynthError> {
        let validation = if self.validate {
            let mut v = ValidationCfg::new(spec.env.clone(), spec.equivalence);
            if spec.sorted_inputs {
                v = v.with_sorted_inputs();
            }
            Some(v)
        } else {
            None
        };
        let cfg = SearchConfig {
            max_depth: self.max_depth,
            max_programs: self.max_programs,
            validation,
        };
        let result = search(
            &spec.program,
            &spec.env,
            &self.hierarchy,
            &self.layout.inputs,
            self.layout.output.clone(),
            &self.rules(),
            &cfg,
        )
        .map_err(SynthError::Type)?;

        // Screen every program with the ladder optimizer.
        let mut costed: Vec<Candidate> = Vec::new();
        let mut uncosted = 0usize;
        for (program, depth) in &result.programs {
            match self.cost_candidate(spec, program, *depth, false) {
                Ok(c) => costed.push(c),
                Err(_) => uncosted += 1,
            }
        }
        if costed.is_empty() {
            return Err(SynthError::NoCandidate);
        }
        let spec_candidate = costed
            .iter()
            .find(|c| c.depth == 0)
            .cloned()
            .unwrap_or_else(|| costed[0].clone());

        // Refine the most promising candidates with the full pattern search.
        costed.sort_by(|a, b| a.seconds.partial_cmp(&b.seconds).unwrap());
        let mut best = costed[0].clone();
        for cand in costed.iter().take(self.refine_top) {
            if let Ok(refined) = self.cost_candidate(spec, &cand.program, cand.depth, true) {
                if refined.seconds < best.seconds {
                    best = refined;
                }
            }
        }
        Ok(Synthesis {
            best,
            spec: spec_candidate,
            stats: result.stats,
            costed: costed.len(),
            uncosted,
        })
    }
}
