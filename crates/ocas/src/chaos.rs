//! Chaos harness: synthesized Table 1 plans under seeded fault plans.
//!
//! Each [`ChaosWorkload`] is a program the synthesizer actually derived
//! (external merge-sort, GRACE hash join, sorted merge-union, duplicate
//! removal), lowered to a physical plan at faithful scale. The harness
//! executes it under a randomized-but-seeded [`FaultPlan`] on either
//! backend — real temp files or the device simulator — and classifies the
//! result against the robustness trichotomy:
//!
//! 1. **Identical** — the run absorbed or degraded around its faults and
//!    produced output bit-identical to a clean run of the same backend;
//! 2. **Typed error** — the run failed, but with a typed [`StorageError`]
//!    and a clean backend behind it (no pinned pages, no leaked temp dir);
//! 3. never anything else: a wrong answer is reported as
//!    [`ChaosOutcome::WrongAnswer`] and a panic propagates, both of which
//!    the chaos suite (and the bench `chaos` section) treat as failures.
//!
//! Everything is deterministic in `(workload, fault_seed)`, so a failing
//! seed printed by the nightly sweep replays exactly.
//!
//! [`StorageError`]: ocas_storage::StorageError

use crate::experiments::{self, ExpError, Experiment};
use crate::synth::Synthesis;
use ocas_engine::{lower, CpuModel, Executor, Mode, Output, Plan, RelSpec, Relation, RowBuf};
use ocas_hierarchy::Hierarchy;
use ocas_runtime::{algos, FileBackend, PoolConfig};
use ocas_storage::{FaultPlan, Faulted, RecoveryCounters, RetryPolicy, StorageBackend, StorageSim};
use std::collections::BTreeMap;

/// One synthesized program, lowered and ready to run under faults.
#[derive(Debug, Clone)]
pub struct ChaosWorkload {
    /// Short workload name (`sort`, `grace`, `union`, `dedup`).
    pub name: &'static str,
    /// Target hierarchy (the experiment's own).
    pub hierarchy: Hierarchy,
    /// The lowered physical plan.
    pub plan: Plan,
    /// Faithful-scale input relations.
    pub rel_specs: Vec<RelSpec>,
    /// Base data seed (relation `i` uses `data_seed + i`).
    pub data_seed: u64,
    /// Clean-run output on the file backend (the Identical oracle there).
    pub oracle_file: RowBuf,
    /// Clean-run output on the simulator (the Identical oracle there).
    pub oracle_sim: RowBuf,
}

/// How one faulted run ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChaosOutcome {
    /// Completed with output bit-identical to the clean run.
    Identical,
    /// Failed with a typed error (the display string, for reporting).
    TypedError(String),
    /// Completed but the output differs from the clean run — a trichotomy
    /// violation the caller must treat as a failure.
    WrongAnswer,
}

/// One faulted execution, fully classified.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Workload name.
    pub workload: &'static str,
    /// `"file"` or `"sim"`.
    pub backend: &'static str,
    /// The fault-plan seed.
    pub fault_seed: u64,
    /// Trichotomy classification.
    pub outcome: ChaosOutcome,
    /// Fault-injection and recovery counters of the run.
    pub counters: RecoveryCounters,
    /// Pages still pinned after the run (must be 0; always 0 on `sim`).
    pub pinned_pages: u64,
    /// True when the backend's temp dir survived its drop (must never
    /// happen; always false on `sim`).
    pub leaked_dir: bool,
}

/// Aggregate of many [`ChaosRun`]s (what the bench `chaos` section
/// reports per workload).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosSummary {
    /// Total runs absorbed.
    pub runs: u64,
    /// Runs that ended [`ChaosOutcome::Identical`].
    pub identical: u64,
    /// Runs that ended in a typed error.
    pub typed_errors: u64,
    /// Trichotomy violations (must stay 0).
    pub wrong_answers: u64,
    /// Runs that left a temp dir behind (must stay 0).
    pub leaked_dirs: u64,
    /// Pages still pinned summed over runs (must stay 0).
    pub pinned_pages: u64,
    /// Recovery counters merged over all runs.
    pub counters: RecoveryCounters,
}

impl ChaosSummary {
    /// Folds one run into the aggregate.
    pub fn absorb(&mut self, run: &ChaosRun) {
        self.runs += 1;
        match run.outcome {
            ChaosOutcome::Identical => self.identical += 1,
            ChaosOutcome::TypedError(_) => self.typed_errors += 1,
            ChaosOutcome::WrongAnswer => self.wrong_answers += 1,
        }
        self.leaked_dirs += u64::from(run.leaked_dir);
        self.pinned_pages += run.pinned_pages;
        self.counters.merge(&run.counters);
    }

    /// True when every absorbed run respected the trichotomy and left its
    /// backend clean.
    pub fn clean(&self) -> bool {
        self.wrong_answers == 0 && self.leaked_dirs == 0 && self.pinned_pages == 0
    }
}

/// Summarizes a batch of runs.
pub fn summarize<'a>(runs: impl IntoIterator<Item = &'a ChaosRun>) -> ChaosSummary {
    let mut s = ChaosSummary::default();
    for r in runs {
        s.absorb(r);
    }
    s
}

/// The fault plan a given seed denotes: 1–4 faults of any kind spread
/// over the first `horizon` requests of every device in the hierarchy.
/// Exposed so tests, the bench section and the nightly sweep all replay
/// the same seed into the same plan.
pub fn plan_for(w: &ChaosWorkload, fault_seed: u64) -> FaultPlan {
    let devices: Vec<&str> = w
        .hierarchy
        .ids()
        .map(|id| w.hierarchy.node(id))
        .filter(|n| n.kind != ocas_hierarchy::DeviceKind::Ram)
        .map(|n| n.name.as_str())
        .collect();
    FaultPlan::randomized(fault_seed, &devices, 1 + (fault_seed % 4) as usize, 192)
}

/// Small pool: real eviction pressure at faithful scale, so write-back
/// paths (and torn write-backs) actually materialize.
fn chaos_pool() -> PoolConfig {
    PoolConfig {
        page_bytes: 2048,
        frames: 8,
        ..PoolConfig::default()
    }
}

fn classify(result: Result<RowBuf, String>, oracle: &RowBuf) -> ChaosOutcome {
    match result {
        Ok(out) if &out == oracle => ChaosOutcome::Identical,
        Ok(_) => ChaosOutcome::WrongAnswer,
        Err(e) => ChaosOutcome::TypedError(e),
    }
}

/// Dispatches the four native out-of-core algorithms (the chaos plans are
/// all native shapes).
fn run_native(fb: &mut FileBackend, w: &ChaosWorkload) -> Result<RowBuf, String> {
    let mut rels = Vec::new();
    for (i, spec) in w.rel_specs.iter().enumerate() {
        let rel = Relation::create(fb, spec, true, w.data_seed + i as u64)
            .map_err(|e| format!("setup: {e}"))?;
        rels.push(rel);
    }
    let run = match &w.plan {
        Plan::ExternalSort {
            input,
            fan_in,
            b_in,
            b_out,
            scratch,
            output,
        } => algos::external_sort(fb, &rels[*input], *fan_in, *b_in, *b_out, scratch, output),
        Plan::GraceJoin {
            left,
            right,
            partitions,
            buffer_bytes,
            spill,
            pred,
            output,
        } => algos::grace_join(
            fb,
            &rels[*left],
            &rels[*right],
            *partitions,
            *buffer_bytes,
            spill,
            matches!(pred, ocas_engine::JoinPred::Cross),
            output,
        ),
        Plan::MergePass {
            left,
            right,
            kind,
            b_in,
            output,
        } => algos::merge_pass(fb, &rels[*left], &rels[*right], *kind, *b_in, output),
        Plan::DedupSorted {
            input,
            b_in,
            output,
        } => algos::dedup_sorted(fb, &rels[*input], *b_in, output),
        other => return Err(format!("chaos harness cannot run {other:?}")),
    }
    .map_err(|e| e.to_string())?;
    Ok(run.output)
}

/// Runs one workload under one fault seed against **real temp files**,
/// classifying the outcome and checking for leaks.
///
/// Panics only on fault-independent setup failures (temp dir creation);
/// anything downstream of injection must surface typed.
pub fn run_file(w: &ChaosWorkload, fault_seed: u64) -> ChaosRun {
    let mut fb = FileBackend::from_hierarchy(&w.hierarchy, chaos_pool())
        .expect("backend setup")
        .with_faults(plan_for(w, fault_seed), RetryPolicy::default());
    let dir = fb.dir().to_path_buf();
    let result = run_native(&mut fb, w);
    let pinned_pages = fb.pinned_pages();
    let counters = fb.recovery_counters().unwrap_or_default();
    drop(fb);
    ChaosRun {
        workload: w.name,
        backend: "file",
        fault_seed,
        outcome: classify(result, &w.oracle_file),
        counters,
        pinned_pages,
        leaked_dir: dir.exists(),
    }
}

/// Runs one workload under one fault seed on the **device simulator**
/// (faults interposed via [`Faulted`], charged to the simulated clock).
pub fn run_sim(w: &ChaosWorkload, fault_seed: u64) -> ChaosRun {
    let sim = Faulted::new(
        StorageSim::from_hierarchy(&w.hierarchy),
        plan_for(w, fault_seed),
        RetryPolicy::default(),
    );
    let mut ex = Executor::new(sim, Mode::Faithful, CpuModel::disabled());
    let result: Result<RowBuf, String> = (|| {
        for (i, spec) in w.rel_specs.iter().enumerate() {
            let rel = Relation::create(&mut ex.sm, spec, true, w.data_seed + i as u64)
                .map_err(|e| format!("setup: {e}"))?;
            ex.add_relation(rel);
        }
        let stats = ex.run(&w.plan).map_err(|e| e.to_string())?;
        Ok(stats.output.unwrap_or_default())
    })();
    ChaosRun {
        workload: w.name,
        backend: "sim",
        fault_seed,
        outcome: classify(result, &w.oracle_sim),
        counters: ex.sm.counters(),
        pinned_pages: 0,
        leaked_dir: false,
    }
}

/// Lowers a synthesis winner with block parameters scaled to faithful
/// data (small `b_in`/`b_out` force real runs, merges and spills; every
/// optimizer-introduced block parameter clamps with them).
fn lowered(
    e: &Experiment,
    synth: &Synthesis,
    rel_specs: &[RelSpec],
    b_in: u64,
    b_out: u64,
) -> Result<Plan, ExpError> {
    let mut params = synth.best.params.clone();
    params.insert("b_in".to_string(), b_in);
    params.insert("b_out".to_string(), b_out);
    for v in params.values_mut() {
        *v = (*v).clamp(1, 64);
    }
    let relations: BTreeMap<String, usize> = rel_specs
        .iter()
        .enumerate()
        .map(|(i, s)| (s.name.clone(), i))
        .collect();
    let cx = lower::LowerCtx {
        params,
        relations,
        output: Output::Discard,
        scratch: "HDD".into(),
    };
    Ok(lower(&synth.best.program, e.spec.hint, &cx)?)
}

/// Builds one workload: computes both clean oracles for the lowered plan.
fn workload(
    name: &'static str,
    e: &Experiment,
    plan: Plan,
    rel_specs: Vec<RelSpec>,
    data_seed: u64,
) -> Result<ChaosWorkload, ExpError> {
    // Simulator oracle.
    let sm = StorageSim::from_hierarchy(&e.hierarchy);
    let mut ex = Executor::new(sm, Mode::Faithful, CpuModel::disabled());
    for (i, spec) in rel_specs.iter().enumerate() {
        let rel = Relation::create(&mut ex.sm, spec, true, data_seed + i as u64)?;
        ex.add_relation(rel);
    }
    let oracle_sim = ex.run(&plan)?.output.unwrap_or_default();

    // File-backend oracle (clean run of the native algorithms).
    let mut w = ChaosWorkload {
        name,
        hierarchy: e.hierarchy.clone(),
        plan,
        rel_specs,
        data_seed,
        oracle_file: RowBuf::new(1),
        oracle_sim,
    };
    let mut fb = FileBackend::from_hierarchy(&w.hierarchy, chaos_pool())?;
    w.oracle_file = run_native(&mut fb, &w).expect("clean oracle run cannot fail");
    Ok(w)
}

/// The four chaos workloads: synthesized external sort, GRACE hash join,
/// sorted multiset union and duplicate removal (Table 1 rows 7, 3, 9 and
/// 15), each lowered at faithful scale. Synthesis happens once per call —
/// reuse the returned list across seeds.
pub fn table1_workloads() -> Result<Vec<ChaosWorkload>, ExpError> {
    let mut out = Vec::new();

    // External sorting, shallower search (the 2^k-way shape is the claim).
    let mut e = experiments::external_sorting();
    e.depth = 7;
    e.max_programs = 200;
    let synth = e.synthesize()?;
    let rel_specs = vec![RelSpec::ints("R", "HDD", 600)];
    let plan = lowered(&e, &synth, &rel_specs, 16, 32)?;
    out.push(workload("sort", &e, plan, rel_specs, 9)?);

    // GRACE hash join, search scoped to the hash family.
    let mut e = experiments::grace_hash_join();
    e.exclude_rules = vec![
        "prefetch",
        "fldL-to-trfld",
        "apply-block",
        "swap-iter",
        "swap-iter-cond",
        "order-inputs",
        "seq-ac",
    ];
    e.depth = 3;
    e.max_programs = 100;
    let synth = e.synthesize()?;
    let rel_specs = vec![
        RelSpec::pairs("R", "HDD", 300).with_key_range(50),
        RelSpec::pairs("S", "HDD", 200).with_key_range(50),
    ];
    let plan = lowered(&e, &synth, &rel_specs, 16, 32)?;
    out.push(workload("grace", &e, plan, rel_specs, 42)?);

    // Multiset union over sorted lists.
    let e = experiments::multiset_union_sorted();
    let synth = e.synthesize()?;
    let rel_specs = vec![
        RelSpec::ints("A", "HDD", 400).sorted().with_key_range(200),
        RelSpec::ints("B", "HDD", 300).sorted().with_key_range(200),
    ];
    let plan = lowered(&e, &synth, &rel_specs, 16, 32)?;
    out.push(workload("union", &e, plan, rel_specs, 7)?);

    // Duplicate removal from a sorted list.
    let e = experiments::dedup_sorted();
    let synth = e.synthesize()?;
    let rel_specs = vec![RelSpec::ints("L", "HDD", 500).sorted().with_key_range(120)];
    let plan = lowered(&e, &synth, &rel_specs, 16, 32)?;
    out.push(workload("dedup", &e, plan, rel_specs, 5)?);

    Ok(out)
}
