//! End-to-end experiment driver: synthesize → lower → execute.
//!
//! Each function builds one of the paper's Table 1 rows (or Figure 8
//! points): it runs the synthesizer on the naive spec, lowers the winning
//! program to a physical plan, executes it against the simulated hierarchy,
//! and reports estimate vs. (simulated) measurement plus the search
//! statistics. Input sizes are scaled relative to the paper where the
//! originals would not fit the simulated devices (documented per row in
//! EXPERIMENTS.md); the claims under test are the *shapes*, not the
//! absolute seconds.

use crate::specs::{self, Spec};
use crate::synth::{SynthError, Synthesis, Synthesizer};
use ocas_cost::Layout;
use ocas_engine::{lower, CpuModel, Executor, LowerError, Mode, Output, Plan, RelSpec, Relation};
use ocas_hierarchy::{presets, Hierarchy};
use ocas_storage::{CacheSim, StorageSim};
use std::collections::BTreeMap;
use std::fmt;

/// One Table 1 row of the reproduction.
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub name: String,
    /// Estimated cost of the naive specification (seconds).
    pub spec_seconds: f64,
    /// Estimated cost of the synthesized algorithm (seconds).
    pub opt_seconds: f64,
    /// Simulated "actual" running time of the synthesized algorithm.
    pub act_seconds: f64,
    /// Explored search-space size.
    pub search_space: usize,
    /// Derivation depth of the space.
    pub steps: u32,
    /// Synthesizer wall-clock seconds.
    pub ocas_seconds: f64,
    /// The winning program (pretty-printed).
    pub best_program: String,
    /// Tuned parameters.
    pub params: BTreeMap<String, u64>,
}

/// Experiment failures.
#[derive(Debug)]
pub enum ExpError {
    /// Synthesis failed.
    Synth(SynthError),
    /// Lowering failed.
    Lower(LowerError),
    /// Execution failed.
    Exec(ocas_engine::ExecError),
    /// Storage setup failed.
    Storage(ocas_storage::StorageError),
    /// Real-I/O execution failed.
    Runtime(ocas_runtime::RuntimeError),
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpError::Synth(e) => write!(f, "synthesis: {e}"),
            ExpError::Lower(e) => write!(f, "lowering: {e}"),
            ExpError::Exec(e) => write!(f, "execution: {e}"),
            ExpError::Storage(e) => write!(f, "storage: {e}"),
            ExpError::Runtime(e) => write!(f, "real I/O: {e}"),
        }
    }
}

impl std::error::Error for ExpError {}

impl From<SynthError> for ExpError {
    fn from(e: SynthError) -> Self {
        ExpError::Synth(e)
    }
}
impl From<LowerError> for ExpError {
    fn from(e: LowerError) -> Self {
        ExpError::Lower(e)
    }
}
impl From<ocas_engine::ExecError> for ExpError {
    fn from(e: ocas_engine::ExecError) -> Self {
        ExpError::Exec(e)
    }
}
impl From<ocas_storage::StorageError> for ExpError {
    fn from(e: ocas_storage::StorageError) -> Self {
        ExpError::Storage(e)
    }
}
impl From<ocas_runtime::RuntimeError> for ExpError {
    fn from(e: ocas_runtime::RuntimeError) -> Self {
        ExpError::Runtime(e)
    }
}

/// A fully described experiment.
pub struct Experiment {
    /// Row name.
    pub name: String,
    /// The naive specification.
    pub spec: Spec,
    /// Target hierarchy.
    pub hierarchy: Hierarchy,
    /// Cost-model layout.
    pub layout: Layout,
    /// Engine relations to allocate (simulated mode).
    pub rel_specs: Vec<RelSpec>,
    /// Engine output destination.
    pub output: Output,
    /// Scratch/spill device for the engine.
    pub scratch: String,
    /// Search depth.
    pub depth: u32,
    /// Search-space cap.
    pub max_programs: usize,
    /// Rules excluded for this row.
    pub exclude_rules: Vec<&'static str>,
}

impl Experiment {
    /// Runs the experiment end to end.
    pub fn run(&self) -> Result<Row, ExpError> {
        let synth = self.synthesize()?;
        let act = self.execute(&synth)?;
        Ok(Row {
            name: self.name.clone(),
            spec_seconds: synth.spec.seconds,
            opt_seconds: synth.best.seconds,
            act_seconds: act,
            search_space: synth.stats.explored,
            steps: synth.stats.depth_reached,
            ocas_seconds: synth.stats.seconds,
            best_program: ocal::pretty(&synth.best.program),
            params: synth.best.params.clone(),
        })
    }

    /// Runs only the synthesizer part.
    pub fn synthesize(&self) -> Result<Synthesis, ExpError> {
        let synthesizer = Synthesizer::new(self.hierarchy.clone(), self.layout.clone())
            .with_depth(self.depth)
            .with_max_programs(self.max_programs)
            .without_rules(&self.exclude_rules);
        Ok(synthesizer.synthesize(&self.spec)?)
    }

    /// Runs only the *search* component of this experiment — exactly the
    /// settings [`Experiment::synthesize`] would use (validation on, the
    /// row's rule exclusions) but without the costing pipeline. `reference`
    /// selects the legacy single-queue engine, the before-baseline of the
    /// `ocas-bench` `synthesis` section; `max_programs` optionally lowers
    /// the row's exploration cap (the parity regression tests use a small
    /// cap so debug runs stay fast). Both engines must report identical
    /// deterministic statistics.
    pub fn run_search(
        &self,
        reference: bool,
        workers: usize,
        max_programs: Option<usize>,
    ) -> Result<ocas_rewrite::SearchResult, ExpError> {
        let mut validation =
            ocas_rewrite::ValidationCfg::new(self.spec.env.clone(), self.spec.equivalence);
        if self.spec.sorted_inputs {
            validation = validation.with_sorted_inputs();
        }
        let cfg = ocas_rewrite::SearchConfig {
            max_depth: self.depth,
            max_programs: max_programs.unwrap_or(self.max_programs),
            validation: Some(validation),
            workers,
        };
        let rules: Vec<Box<dyn ocas_rewrite::Rule>> = ocas_rewrite::default_rules()
            .into_iter()
            .filter(|r| !self.exclude_rules.contains(&r.name()))
            .collect();
        let engine = if reference {
            ocas_rewrite::reference_search
        } else {
            ocas_rewrite::search
        };
        engine(
            &self.spec.program,
            &self.spec.env,
            &self.hierarchy,
            &self.layout.inputs,
            self.layout.output.clone(),
            &rules,
            &cfg,
        )
        .map_err(|e| ExpError::Synth(SynthError::Type(e)))
    }

    /// Lowers + executes a synthesis result, returning simulated seconds.
    pub fn execute(&self, synth: &Synthesis) -> Result<f64, ExpError> {
        let sm = StorageSim::from_hierarchy(&self.hierarchy);
        let mut ex = Executor::new(sm, Mode::Simulated, CpuModel::default());
        let mut relations = BTreeMap::new();
        for spec in &self.rel_specs {
            let rel = Relation::create(&mut ex.sm, spec, false, 0)?;
            let idx = ex.add_relation(rel);
            relations.insert(spec.name.clone(), idx);
        }
        let mut params = synth.best.params.clone();
        // Engine defaults for parameters the optimizer did not see.
        params.entry("b_out".to_string()).or_insert(1 << 20);
        params.entry("b_in".to_string()).or_insert(1 << 20);
        let cx = ocas_engine::lower::LowerCtx {
            params,
            relations,
            output: self.output.clone(),
            scratch: self.scratch.clone(),
        };
        let plan: Plan = lower(&synth.best.program, self.spec.hint, &cx)?;
        let stats = ex.run(&plan)?;
        Ok(stats.seconds)
    }
}

// --------------------------------------------------------------------------
// Table 1 experiment constructors.
//
// Scale note: relation sizes are in TUPLES here; the paper reports bytes.
// Rows whose outputs would overflow the simulated devices use proportionally
// smaller inputs (see EXPERIMENTS.md).

const MIB: u64 = 1 << 20;

fn join_layout(output: Option<&str>) -> Layout {
    let mut l = Layout::all_inputs_on("HDD", &["R", "S"]);
    if let Some(o) = output {
        l = l.with_output(o);
    }
    l
}

/// Row 1 — BNL join, no write-out. R = 1 GiB, S = 32 MiB (16-byte tuples),
/// RAM = 8 MiB.
pub fn bnl_no_writeout() -> Experiment {
    let x = (1024 * MIB) / 16;
    let y = (32 * MIB) / 16;
    Experiment {
        name: "BNL - No writeout".into(),
        spec: specs::join(x, y, false),
        hierarchy: presets::hdd_ram(8 * MIB),
        layout: join_layout(None),
        rel_specs: vec![RelSpec::pairs("R", "HDD", x), RelSpec::pairs("S", "HDD", y)],
        output: Output::Discard,
        scratch: "HDD".into(),
        depth: 5,
        max_programs: 900,
        exclude_rules: vec!["hash-part", "prefetch", "fldL-to-trfld"],
    }
}

/// Row 2 — BNL with a cache level (loop tiling).
pub fn bnl_with_cache() -> Experiment {
    let mut e = bnl_no_writeout();
    e.name = "BNL with cache - No writeout".into();
    e.hierarchy = presets::hdd_ram_cache(8 * MIB);
    e.depth = 7;
    e.max_programs = 1200;
    e
}

/// Row 3 — GRACE hash join. The search is scoped to the hash-partition
/// family (as the paper scopes rules per experiment): with partition-spill
/// seeks charged honestly, GRACE costs more than BNL on this platform, so
/// an open search would (correctly) pick BNL — this row's claim is that
/// the *hash-join pipeline* is synthesized and its estimate tracks the
/// simulated measurement.
pub fn grace_hash_join() -> Experiment {
    let mut e = bnl_no_writeout();
    e.name = "(GRACE) hash join - No writeout".into();
    e.exclude_rules = vec![
        "prefetch",
        "fldL-to-trfld",
        "apply-block",
        "swap-iter",
        "swap-iter-cond",
        "order-inputs",
        "seq-ac",
    ];
    e.depth = 4;
    e.max_programs = 600;
    e
}

fn writeout_join(name: &str, hierarchy: Hierarchy, out_device: &str) -> Experiment {
    // Product join: R = 4096 tuples (64 KiB), S = 2^20 tuples (16 MiB);
    // output = 2^32 rows × 32 B ≈ 137 GiB.
    let x = 4096;
    let y = 1 << 20;
    Experiment {
        name: name.into(),
        spec: specs::join(x, y, true),
        hierarchy,
        layout: join_layout(Some(out_device)),
        rel_specs: vec![RelSpec::pairs("R", "HDD", x), RelSpec::pairs("S", "HDD", y)],
        output: Output::ToDevice {
            device: out_device.into(),
            buffer_bytes: 20 * 1024,
        },
        scratch: "HDD".into(),
        depth: 5,
        max_programs: 900,
        exclude_rules: vec!["hash-part", "prefetch", "fldL-to-trfld"],
    }
}

/// Row 4 — BNL product join writing to the same HDD (interference).
pub fn bnl_writeout_same_hdd() -> Experiment {
    writeout_join(
        "BNL writing to HDD",
        presets::hdd_ram(20 * 1024 + 64 * 1024),
        "HDD",
    )
}

/// Row 5 — BNL product join writing to a second HDD.
pub fn bnl_writeout_other_hdd() -> Experiment {
    writeout_join(
        "BNL wr. to other HDD",
        presets::two_hdd_ram(20 * 1024 + 64 * 1024),
        "HDD2",
    )
}

/// Row 6 — BNL product join writing to flash.
pub fn bnl_writeout_flash() -> Experiment {
    writeout_join(
        "BNL writing to flash",
        presets::hdd_flash_ram(20 * 1024 + 64 * 1024),
        "SSD",
    )
}

/// Row 7 — External sorting (1 GiB of 1-byte elements, 260 KiB RAM).
pub fn external_sorting() -> Experiment {
    let x = 1 << 30;
    Experiment {
        name: "External sorting".into(),
        spec: specs::sort(x),
        hierarchy: presets::hdd_ram(260 * 1024),
        layout: Layout::all_inputs_on("HDD", &["R"]).with_output("HDD"),
        rel_specs: vec![{
            let mut r = RelSpec::ints("R", "HDD", x);
            r.col_bytes = 1;
            r
        }],
        output: Output::ToDevice {
            device: "HDD".into(),
            buffer_bytes: 64 * 1024,
        },
        scratch: "HDD".into(),
        depth: 12,
        max_programs: 400,
        exclude_rules: vec![
            "apply-block",
            "prefetch",
            "swap-iter",
            "swap-iter-cond",
            "order-inputs",
            "hash-part",
            "seq-ac",
        ],
    }
}

fn merge_experiment(name: &str, spec: Spec, cards: (u64, u64), width: u32) -> Experiment {
    let (x, y) = cards;
    let mk = |n: &str, c: u64| {
        let mut r = if width == 2 {
            RelSpec::pairs(n, "HDD", c)
        } else {
            RelSpec::ints(n, "HDD", c)
        };
        r.sorted = true;
        r
    };
    Experiment {
        name: name.into(),
        spec,
        hierarchy: presets::hdd_ram(48 * 1024),
        layout: Layout::all_inputs_on("HDD", &["A", "B"]).with_output("HDD"),
        rel_specs: vec![mk("A", x), mk("B", y)],
        output: Output::ToDevice {
            device: "HDD".into(),
            buffer_bytes: 16 * 1024,
        },
        scratch: "HDD".into(),
        depth: 3,
        max_programs: 100,
        exclude_rules: vec![
            "apply-block",
            "prefetch",
            "swap-iter",
            "swap-iter-cond",
            "order-inputs",
            "hash-part",
            "fldL-to-trfld",
        ],
    }
}

/// Row 8 — set union of 2 GiB + 2 GiB sorted lists (8-byte values).
pub fn set_union() -> Experiment {
    let x = (2048 * MIB) / 8;
    merge_experiment("Set Union", specs::set_union(x, x), (x, x), 1)
}

/// Row 9 — multiset union, sorted-list representation.
pub fn multiset_union_sorted() -> Experiment {
    let x = (2048 * MIB) / 8;
    merge_experiment(
        "Multiset Union (sorted list)",
        specs::multiset_union_sorted(x, x),
        (x, x),
        1,
    )
}

/// Row 10 — multiset union, value–multiplicity representation.
pub fn multiset_union_vm() -> Experiment {
    let x = (2048 * MIB) / 16;
    merge_experiment(
        "Multiset Union (value-multiplicity)",
        specs::multiset_union_vm(x, x),
        (x, x),
        2,
    )
}

/// Row 11 — multiset difference, sorted-list representation.
pub fn multiset_diff_sorted() -> Experiment {
    let x = (2048 * MIB) / 8;
    merge_experiment(
        "Multiset Diff. (sorted list)",
        specs::multiset_diff_sorted(x, x),
        (x, x),
        1,
    )
}

/// Row 12 — multiset difference, value–multiplicity representation.
pub fn multiset_diff_vm() -> Experiment {
    let x = (2048 * MIB) / 16;
    merge_experiment(
        "Multiset Diff. (value-multiplicity)",
        specs::multiset_diff_vm(x, x),
        (x, x),
        2,
    )
}

/// Rows 13–14 — column-store read of `n` columns (4 GiB per 5 columns).
pub fn column_store_read(n: usize) -> Experiment {
    let card = (4096 * MIB) / 8 / 5; // ~0.8 GiB per column
    let spec = specs::column_read(n, card);
    let names: Vec<String> = (1..=n).map(|i| format!("C{i}")).collect();
    Experiment {
        name: format!("Column Store Read {n} cols."),
        spec,
        hierarchy: presets::hdd_ram(n as u64 * MIB),
        layout: Layout {
            inputs: names
                .iter()
                .map(|c| (c.clone(), "HDD".to_string()))
                .collect(),
            output: None,
            spill: None,
        },
        rel_specs: names
            .iter()
            .map(|c| RelSpec::ints(c, "HDD", card))
            .collect(),
        output: Output::Discard,
        scratch: "HDD".into(),
        depth: 2,
        max_programs: 50,
        exclude_rules: vec![
            "apply-block",
            "prefetch",
            "swap-iter",
            "swap-iter-cond",
            "order-inputs",
            "hash-part",
            "fldL-to-trfld",
        ],
    }
}

/// Row 15 — duplicate removal from a 16 GiB sorted list.
pub fn dedup_sorted() -> Experiment {
    let x = (16 * 1024 * MIB) / 8;
    Experiment {
        name: "Duplicate Removal from a Sorted List".into(),
        spec: specs::dedup_sorted(x),
        hierarchy: presets::hdd_ram(16 * 1024),
        layout: Layout::all_inputs_on("HDD", &["L"]).with_output("HDD"),
        rel_specs: vec![RelSpec::ints("L", "HDD", x).sorted().with_key_range(x / 2)],
        output: Output::ToDevice {
            device: "HDD".into(),
            buffer_bytes: 8 * 1024,
        },
        scratch: "HDD".into(),
        depth: 3,
        max_programs: 100,
        exclude_rules: vec![
            "apply-block",
            "prefetch",
            "swap-iter",
            "swap-iter-cond",
            "order-inputs",
            "hash-part",
            "fldL-to-trfld",
        ],
    }
}

/// Row 16 — aggregation (avg) over 4 GiB of integers.
pub fn aggregation() -> Experiment {
    let x = (4096 * MIB) / 8;
    Experiment {
        name: "Aggregation".into(),
        spec: specs::aggregate(x),
        hierarchy: presets::hdd_ram(32 * 1024),
        layout: Layout::all_inputs_on("HDD", &["L"]),
        rel_specs: vec![RelSpec::ints("L", "HDD", x)],
        output: Output::Discard,
        scratch: "HDD".into(),
        depth: 3,
        max_programs: 100,
        exclude_rules: vec![
            "swap-iter",
            "swap-iter-cond",
            "order-inputs",
            "hash-part",
            "fldL-to-trfld",
        ],
    }
}

/// All sixteen Table 1 rows in order.
pub fn table1() -> Vec<Experiment> {
    vec![
        bnl_no_writeout(),
        bnl_with_cache(),
        grace_hash_join(),
        bnl_writeout_same_hdd(),
        bnl_writeout_other_hdd(),
        bnl_writeout_flash(),
        external_sorting(),
        set_union(),
        multiset_union_sorted(),
        multiset_union_vm(),
        multiset_diff_sorted(),
        multiset_diff_vm(),
        column_store_read(5),
        column_store_read(10),
        dedup_sorted(),
        aggregation(),
    ]
}

/// One Figure 8 point: estimated vs simulated-measured seconds.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Panel name.
    pub panel: &'static str,
    /// X-axis label (sizes).
    pub label: String,
    /// Estimated seconds.
    pub estimated: f64,
    /// Simulated-measured seconds.
    pub measured: f64,
}

/// Figure 8: estimated and measured times for varying input/buffer sizes
/// across the three panels (BNL write-out, merge-sort, aggregation).
pub fn figure8() -> Result<Vec<Fig8Point>, ExpError> {
    let mut out = Vec::new();

    // Panel 1: BNL with write-out, growing product size.
    for (r_tuples, s_tuples, buf) in [
        (1024u64, 1 << 18, 16 * 1024u64),
        (2048, 1 << 19, 16 * 1024),
        (4096, 1 << 20, 32 * 1024),
    ] {
        let mut e = writeout_join(
            "BNL - write-out",
            presets::two_hdd_ram(buf + 64 * 1024),
            "HDD2",
        );
        e.spec = specs::join(r_tuples, s_tuples, true);
        e.rel_specs = vec![
            RelSpec::pairs("R", "HDD", r_tuples),
            RelSpec::pairs("S", "HDD", s_tuples),
        ];
        e.output = Output::ToDevice {
            device: "HDD2".into(),
            buffer_bytes: buf,
        };
        let row = e.run()?;
        out.push(Fig8Point {
            panel: "BNL - write-out",
            label: format!("{}x{}/{}K", r_tuples, s_tuples, buf / 1024),
            estimated: row.opt_seconds,
            measured: row.act_seconds,
        });
    }

    // Panel 2: merge-sort, growing input.
    for (tuples, buf) in [
        (1u64 << 28, 128 * 1024u64),
        (1 << 29, 192 * 1024),
        (1 << 30, 260 * 1024),
    ] {
        let mut e = external_sorting();
        e.spec = specs::sort(tuples);
        e.hierarchy = presets::hdd_ram(buf);
        e.rel_specs = vec![{
            let mut r = RelSpec::ints("R", "HDD", tuples);
            r.col_bytes = 1;
            r
        }];
        let row = e.run()?;
        out.push(Fig8Point {
            panel: "Merge-sort",
            label: format!("{}M/{}K", tuples >> 20, buf / 1024),
            estimated: row.opt_seconds,
            measured: row.act_seconds,
        });
    }

    // Panel 3: aggregation, growing input.
    for (tuples, buf) in [
        ((1024 * MIB) / 8, 16 * 1024u64),
        ((2048 * MIB) / 8, 32 * 1024),
        ((4096 * MIB) / 8, 64 * 1024),
    ] {
        let mut e = aggregation();
        e.spec = specs::aggregate(tuples);
        e.hierarchy = presets::hdd_ram(buf);
        e.rel_specs = vec![RelSpec::ints("L", "HDD", tuples)];
        let row = e.run()?;
        out.push(Fig8Point {
            panel: "Aggregation",
            label: format!("{}M/{}K", (tuples * 8) >> 20, buf / 1024),
            estimated: row.opt_seconds,
            measured: row.act_seconds,
        });
    }
    Ok(out)
}

/// One faithful-scale twin comparison: a relation strictly larger than
/// the hierarchy's RAM device, executed **faithfully** on the device
/// simulator and on the real file backend with output collection off,
/// compared by row count and emission digest, with the metered peak of
/// resident tuple bytes on both backends.
#[derive(Debug, Clone)]
pub struct FaithfulScaleReport {
    /// Workload name.
    pub name: String,
    /// Input relation size in bytes (strictly above `ram_bytes`).
    pub relation_bytes: u64,
    /// The hierarchy's RAM device size in bytes.
    pub ram_bytes: u64,
    /// Rows both twins emitted.
    pub output_rows: u64,
    /// The simulator twin's emission digest.
    pub output_digest: u64,
    /// True when both twins agreed on rows and digest.
    pub outputs_match: bool,
    /// Peak resident tuple bytes of the simulator twin (generator
    /// windows + sink staging; output collection off).
    pub sim_peak_resident: u64,
    /// Peak resident tuple bytes of the real-backend twin.
    pub real_peak_resident: u64,
    /// Simulated seconds of the simulator twin.
    pub sim_seconds: f64,
    /// Wall seconds of the real-backend execution.
    pub wall_seconds: f64,
}

impl FaithfulScaleReport {
    /// True when both twins' metered peaks stayed strictly below the RAM
    /// device size while the relation exceeded it — the past-RAM claim.
    pub fn peak_bounded(&self) -> bool {
        self.relation_bytes > self.ram_bytes
            && self.sim_peak_resident < self.ram_bytes
            && self.real_peak_resident < self.ram_bytes
    }
}

/// RAM device size of the faithful-scale configuration.
pub const FAITHFUL_SCALE_RAM: u64 = 1 << 20;

/// The faithful-scale workloads: streaming templates over a relation
/// `2 * scale` times the RAM device (generator cache capped at 1/8 of
/// RAM), faithful on both backends. This is the simulator-twin
/// configuration the streamed `Relation` generator exists for: before it,
/// faithful comparisons were capped by host RAM because every relation
/// materialized eagerly.
pub fn faithful_scale(scale: u64) -> Result<Vec<FaithfulScaleReport>, ExpError> {
    use ocas_runtime::{FileBackend, PoolConfig};
    let scale = scale.max(1);
    let ram = FAITHFUL_SCALE_RAM;
    let cache = ram / 8;
    let card = 2 * scale * ram / 8; // 8-byte ints: relation = 2 * scale * ram
    let ints = || {
        RelSpec::ints("L", "HDD", card)
            .with_key_range(card / 2)
            .with_cache_bytes(cache)
    };
    let out = Output::ToDevice {
        device: "HDD".into(),
        buffer_bytes: 1 << 16,
    };
    let workloads: Vec<(&str, Plan, RelSpec)> = vec![
        (
            "aggregate past RAM",
            Plan::Aggregate {
                input: 0,
                b_in: 4096,
            },
            ints(),
        ),
        (
            "dedup-sorted past RAM",
            Plan::DedupSorted {
                input: 0,
                b_in: 4096,
                output: out.clone(),
            },
            ints().sorted(),
        ),
        (
            "external-sort past RAM",
            Plan::ExternalSort {
                input: 0,
                fan_in: 8,
                b_in: 4096,
                b_out: 8192,
                scratch: "HDD".into(),
                output: out,
            },
            ints(),
        ),
    ];

    let mut reports = Vec::new();
    for (name, plan, spec) in workloads {
        let h = presets::hdd_ram(ram);
        let run_one = |stats: &ocas_engine::ExecStats| {
            (
                stats.output_rows,
                stats.output_digest.unwrap_or(0),
                stats.peak_resident_bytes,
            )
        };

        // Simulator twin.
        let sm = StorageSim::from_hierarchy(&h);
        let mut sim =
            Executor::new(sm, Mode::Faithful, CpuModel::default()).with_output_collection(false);
        let rel = Relation::create(&mut sim.sm, &spec, true, 77)?;
        sim.add_relation(rel);
        let sim_stats = sim.run(&plan)?;
        let (sim_rows, sim_digest, sim_peak) = run_one(&sim_stats);

        // Real-backend twin: the same plan over actual temp files.
        let fb = FileBackend::from_hierarchy(&h, PoolConfig::default())
            .map_err(ocas_engine::ExecError::from)?;
        let mut real =
            Executor::new(fb, Mode::Faithful, CpuModel::disabled()).with_output_collection(false);
        let rel = Relation::create(&mut real.sm, &spec, true, 77)?;
        real.add_relation(rel);
        let t0 = std::time::Instant::now();
        let real_stats = real.run(&plan)?;
        let wall_seconds = t0.elapsed().as_secs_f64();
        let (real_rows, real_digest, real_peak) = run_one(&real_stats);

        reports.push(FaithfulScaleReport {
            name: name.to_string(),
            relation_bytes: card * 8,
            ram_bytes: ram,
            output_rows: sim_rows,
            output_digest: sim_digest,
            outputs_match: sim_rows == real_rows && sim_digest == real_digest,
            sim_peak_resident: sim_peak,
            real_peak_resident: real_peak,
            sim_seconds: sim_stats.seconds,
            wall_seconds,
        });
    }
    Ok(reports)
}

/// The cache-miss companion experiment ("BNL with cache"): faithful
/// execution at reduced scale, tiled vs untiled, returning
/// `(untiled_misses, tiled_misses)`.
pub fn cache_miss_comparison() -> Result<(u64, u64), ExpError> {
    let run = |tiled: bool| -> Result<u64, ExpError> {
        let h = presets::hdd_ram(1 << 30);
        let sm = StorageSim::from_hierarchy(&h);
        let mut ex = Executor::new(sm, Mode::Faithful, CpuModel::default())
            .with_cache(CacheSim::new(64 * 1024, 512, 8));
        let r = Relation::create(
            &mut ex.sm,
            &RelSpec::pairs("R", "HDD", 8192).with_key_range(200),
            true,
            21,
        )?;
        let s = Relation::create(
            &mut ex.sm,
            &RelSpec::pairs("S", "HDD", 8192).with_key_range(200),
            true,
            22,
        )?;
        let ri = ex.add_relation(r);
        let si = ex.add_relation(s);
        let stats = ex.run(&Plan::BnlJoin {
            outer: ri,
            inner: si,
            k1: 8192,
            k2: 8192,
            tiling: if tiled {
                Some(ocas_engine::plan::Tiling {
                    outer: 512,
                    inner: 512,
                })
            } else {
                None
            },
            pred: ocas_engine::JoinPred::KeyEq,
            order_inputs: false,
            output: Output::Discard,
        })?;
        Ok(stats.cache.map(|c| c.misses).unwrap_or(0))
    };
    Ok((run(false)?, run(true)?))
}
