//! The faithful-scale acceptance check for the streamed `Relation`
//! generator: a faithful simulator-twin comparison over a relation
//! **strictly larger than the configured RAM device**, with the metered
//! peak of resident tuple bytes asserted below that size on both
//! backends — the configuration eager materialization made impossible
//! (every faithful relation used to live in host memory whole).

use ocas::experiments::{faithful_scale, FAITHFUL_SCALE_RAM};

#[test]
fn faithful_twins_agree_past_ram_with_bounded_peaks() {
    let reports = faithful_scale(1).expect("faithful-scale workloads");
    assert_eq!(reports.len(), 3, "aggregate, dedup-sorted, external-sort");
    for r in &reports {
        assert!(
            r.relation_bytes > r.ram_bytes,
            "{}: relation {} must exceed the {} B RAM device",
            r.name,
            r.relation_bytes,
            r.ram_bytes
        );
        assert!(
            r.outputs_match,
            "{}: simulator and real twins diverged (rows {} digest {:#x})",
            r.name, r.output_rows, r.output_digest
        );
        assert!(r.output_rows > 0, "{}: degenerate workload", r.name);
        assert!(
            r.sim_peak_resident < r.ram_bytes,
            "{}: simulator peak {} not below RAM {}",
            r.name,
            r.sim_peak_resident,
            r.ram_bytes
        );
        assert!(
            r.real_peak_resident < r.ram_bytes,
            "{}: real-backend peak {} not below RAM {}",
            r.name,
            r.real_peak_resident,
            r.ram_bytes
        );
        assert!(
            r.peak_bounded(),
            "{}: peak_bounded must summarize this",
            r.name
        );
        assert!(r.sim_seconds > 0.0 && r.wall_seconds > 0.0, "{}", r.name);
    }
    assert_eq!(FAITHFUL_SCALE_RAM, 1 << 20, "documented configuration");
}
