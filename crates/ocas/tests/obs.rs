//! Observability integration: worker-count-invariant traces and the
//! simulated-clock attribution identity.

use ocas::experiments;
use ocas_obs::Clock;

/// The deterministic (simulated-clock) event sequence — ids, tracks,
/// names, timestamps, durations, args, fold counts — must be identical
/// for 1, 4 and 8 search workers. Workers only measure; recording happens
/// on the owning thread during the deterministic merge.
#[test]
fn trace_is_identical_across_search_worker_counts() {
    let mut views = Vec::new();
    for workers in [1usize, 4, 8] {
        ocas_obs::start();
        let r = experiments::set_union()
            .run_search(false, workers, Some(200))
            .expect("search succeeds");
        let trace = ocas_obs::finish().expect("recorder was active");
        assert!(r.stats.explored > 0);
        let view = trace.deterministic_view();
        assert!(
            view.iter().any(|l| l.contains("|search|level|")),
            "no search-level spans recorded"
        );
        assert!(
            view.iter().any(|l| l.contains("|candidates|")),
            "no per-rule candidate counters recorded"
        );
        views.push((workers, view));
    }
    let (_, base) = &views[0];
    for (workers, view) in &views[1..] {
        assert_eq!(base, view, "trace diverged at {workers} workers");
    }
}

/// Summing the per-device (`dev:*`) and CPU simulated-clock spans of a
/// full synthesize + execute recording reconstructs the simulator's
/// reported seconds within 1% — the acceptance identity. Holds because
/// `StorageSim` advances its clock only in read/write/charge_cpu, each of
/// which emits a span of exactly the advance.
#[test]
fn sim_span_attribution_reconstructs_simulator_seconds() {
    let e = experiments::set_union();
    ocas_obs::start();
    let synth = e.synthesize().expect("synthesis succeeds");
    let seconds = e.execute(&synth).expect("execution succeeds");
    let trace = ocas_obs::finish().expect("recorder was active");
    assert!(seconds > 0.0, "workload must consume simulated time");

    let by_track = trace.span_seconds_by_track(Clock::Sim);
    let attributed: f64 = by_track
        .iter()
        .filter(|(t, _)| t.starts_with("dev:") || t.as_str() == "cpu")
        .map(|(_, s)| s)
        .sum();
    let rel = (attributed - seconds).abs() / seconds;
    assert!(
        rel < 0.01,
        "attributed {attributed:.6}s vs simulator {seconds:.6}s (relative error {rel:.4})"
    );
    assert!(
        by_track.keys().any(|t| t.starts_with("dev:")),
        "no per-device tracks recorded"
    );

    // The same recording must export a non-trivial Chrome trace document.
    let chrome = trace.to_chrome_json();
    assert!(chrome.contains("\"traceEvents\""));
    assert!(chrome.contains("\"ph\":\"X\""));
}

/// The engine operator span carries the executed plan's name and its
/// row/byte attribution args.
#[test]
fn engine_operator_span_carries_attribution_args() {
    let e = experiments::set_union();
    let synth = e.synthesize().expect("synthesis succeeds");
    ocas_obs::start();
    e.execute(&synth).expect("execution succeeds");
    let trace = ocas_obs::finish().expect("recorder was active");
    let op = trace
        .events
        .iter()
        .find(|ev| trace.track(ev) == "engine")
        .expect("an engine operator span");
    for arg in ["output_rows", "compares", "peak_resident_bytes"] {
        assert!(
            op.args.iter().any(|(n, _)| *n == arg),
            "engine span missing `{arg}`"
        );
    }
}
