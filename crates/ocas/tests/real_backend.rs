//! The acceptance check for the real-I/O backend: a **synthesized** GRACE
//! hash join and 2ᵏ-way external merge-sort run end-to-end through the
//! `ocas-runtime` `FileBackend` on real temp files, and their outputs are
//! byte-identical to (1) the OCAL reference interpreter evaluating the
//! naive specification and (2) the simulator's faithful mode.
//!
//! Synthesis happens at the experiments' paper scale (that is where GRACE
//! and wide merges win); execution happens at faithful scale with the
//! block parameters scaled down to the data (the shapes, not the tuned
//! constants, are the claim under test).

use ocas::experiments;
use ocas::verify;
use ocas_engine::{encode_rows, Output, Plan, RelSpec, Relation, Row};
use ocas_storage::StorageSim;
use std::collections::BTreeMap;

/// Regenerates the exact rows `Runtime::run_plan` will generate for a spec
/// (same seed convention: relation `i` gets `seed + i`).
fn rows_for(spec: &RelSpec, seed: u64) -> Vec<Row> {
    let h = ocas_hierarchy::presets::hdd_ram(1 << 25);
    let mut sm = StorageSim::from_hierarchy(&h);
    Relation::create(&mut sm, spec, true, seed)
        .unwrap()
        .collect_rows()
        .unwrap()
        .to_rows()
}

fn sorted(mut rows: Vec<Row>) -> Vec<Row> {
    rows.sort();
    rows
}

#[test]
fn synthesized_grace_join_runs_on_real_files_three_way_identical() {
    // Synthesize at paper scale with the search scoped to the hash family
    // (as the paper scopes rules per experiment): the blocked-loop rules
    // are excluded, so winning at all means deriving the GRACE pipeline.
    let mut e = experiments::grace_hash_join();
    e.exclude_rules = vec![
        "prefetch",
        "fldL-to-trfld",
        "apply-block",
        "swap-iter",
        "swap-iter-cond",
        "order-inputs",
        "seq-ac",
    ];
    e.depth = 3;
    e.max_programs = 100;
    let synth = e.synthesize().expect("synthesis");
    assert!(
        verify::is_grace_hash_join(&synth.best.program),
        "winner is not a GRACE join: {}",
        ocal::pretty(&synth.best.program)
    );

    // Execute for real at faithful scale.
    let rel_specs = vec![
        RelSpec::pairs("R", "HDD", 300).with_key_range(50),
        RelSpec::pairs("S", "HDD", 200).with_key_range(50),
    ];
    let seed = 42;
    let setup = e.real_setup(rel_specs.clone(), seed);
    let report = synth.run_real(&setup).expect("real execution");

    // (2) real ≡ simulator faithful mode, byte for byte.
    assert!(
        report.outputs_match(),
        "real vs simulated outputs differ: {} vs {} rows",
        report.output.len(),
        report.sim_output.len()
    );

    // (1) real ≡ OCAL reference interpreter on the naive spec (join output
    // order is nested-loop order there, bucket order here: compare the
    // encoded bytes of the canonically sorted row sets).
    let rrows = rows_for(&rel_specs[0], seed);
    let srows = rows_for(&rel_specs[1], seed + 1);
    let inputs: BTreeMap<String, ocal::Value> = [
        (
            "R".to_string(),
            ocal::Value::pair_list(&rrows.iter().map(|r| (r[0], r[1])).collect::<Vec<_>>()),
        ),
        (
            "S".to_string(),
            ocal::Value::pair_list(&srows.iter().map(|r| (r[0], r[1])).collect::<Vec<_>>()),
        ),
    ]
    .into_iter()
    .collect();
    let v = ocal::Evaluator::new()
        .run(&e.spec.program, &inputs)
        .expect("interpreter");
    let interp: Vec<Row> = v
        .as_list()
        .unwrap()
        .iter()
        .map(|row| {
            // <<a, b>, <c, d>> -> [a, b, c, d]
            let pair = row.to_string();
            pair.chars()
                .filter(|c| c.is_ascii_digit() || *c == ' ' || *c == '-')
                .collect::<String>()
                .split_whitespace()
                .map(|t| t.parse().unwrap())
                .collect()
        })
        .collect();
    assert!(!interp.is_empty(), "degenerate join");
    assert_eq!(
        encode_rows(&sorted(report.output.to_rows())),
        encode_rows(&sorted(interp)),
        "real output differs from the OCAL interpreter"
    );

    // The partition pass really spilled both relations to disk.
    let (_, hdd) = report
        .real_devices
        .iter()
        .find(|(n, _)| n == "HDD")
        .unwrap()
        .clone();
    assert!(hdd.bytes_written >= (300 + 200) * 16, "{hdd:?}");
    assert!(report.wall_seconds > 0.0 && report.sim_seconds > 0.0);
}

#[test]
fn synthesized_external_sort_runs_on_real_files_three_way_identical() {
    // Synthesize at paper scale with a shallower search (fan 2⁴ instead of
    // the full 2¹⁰ — the 2ᵏ-way *shape* is the claim, not the exponent).
    let mut e = experiments::external_sorting();
    e.depth = 7;
    e.max_programs = 200;
    let synth = e.synthesize().expect("synthesis");
    let fan = verify::is_external_merge_sort(&synth.best.program, 4)
        .expect("winner is not a 2^k-way external merge-sort");

    // Lower with block parameters scaled to faithful data: small b_in/b_out
    // force multiple runs, so the merge levels really happen on disk.
    let card = 600u64;
    let rel_specs = vec![RelSpec::ints("R", "HDD", card)];
    let mut params = synth.best.params.clone();
    for b in ["b_in", "b_out"] {
        params.remove(b);
    }
    let mut small: BTreeMap<String, u64> = params;
    for (k, v) in [("b_in", 16u64), ("b_out", 32)] {
        small.insert(k.to_string(), v);
    }
    // Every unfoldR block parameter the optimizer introduced shrinks too.
    for v in small.values_mut() {
        *v = (*v).clamp(1, 64);
    }
    let cx = ocas_engine::lower::LowerCtx {
        params: small,
        relations: [("R".to_string(), 0usize)].into_iter().collect(),
        output: Output::ToDevice {
            device: "HDD".into(),
            buffer_bytes: 1 << 10,
        },
        scratch: "HDD".into(),
    };
    let plan = ocas_engine::lower(&synth.best.program, e.spec.hint, &cx).expect("lowering");
    let Plan::ExternalSort { fan_in, .. } = &plan else {
        panic!("lowered to {plan:?}");
    };
    assert_eq!(*fan_in, fan, "plan fan-in mirrors the treeFold arity");

    let seed = 9;
    let rt = ocas_runtime::Runtime::new(e.hierarchy.clone());
    let report = rt
        .run_plan(&plan, &rel_specs, seed)
        .expect("real execution");

    // (2) real ≡ simulator faithful mode.
    assert!(report.outputs_match());
    assert_eq!(report.output.len(), card as usize);
    assert!(report.output.is_sorted(), "sorted");

    // (1) real ≡ OCAL reference interpreter (the foldL/mrg spec over the
    // same values as singleton lists).
    let rows = rows_for(&rel_specs[0], seed);
    let singletons = ocal::Value::list(
        rows.iter()
            .map(|r| ocal::Value::int_list(&[r[0]]))
            .collect(),
    );
    let inputs: BTreeMap<String, ocal::Value> =
        [("R".to_string(), singletons)].into_iter().collect();
    let v = ocal::Evaluator::new()
        .with_fuel(200_000_000)
        .run(&e.spec.program, &inputs)
        .expect("interpreter");
    let interp: Vec<Row> = v
        .as_list()
        .unwrap()
        .iter()
        .map(|x| vec![x.as_int().unwrap()])
        .collect();
    assert_eq!(
        encode_rows(&report.output.to_rows()),
        encode_rows(&interp),
        "real output differs from the OCAL interpreter"
    );

    // Run formation + merge levels really hit the scratch device: strictly
    // more write traffic than the input size.
    let (_, hdd) = report
        .real_devices
        .iter()
        .find(|(n, _)| n == "HDD")
        .unwrap()
        .clone();
    assert!(hdd.bytes_written > card * 8, "{hdd:?}");
}
