//! Engine-parity regression: on **every** Table 1 row, the arena search —
//! sequential and parallel — must report deterministic statistics
//! (`explored`, `generated`, `rejected_*`, `depth_reached`) identical to
//! the legacy reference BFS, and the same program set up to the canonical
//! dedup key. This is the invariant that lets the synthesizer adopt the
//! interned, parallel engine without moving a single Table 1 number.
//!
//! Rows are searched at their real depth and rule exclusions but with a
//! lowered program cap so the debug-mode suite stays fast; `bench_json
//! --check` additionally pins the two largest rows at their full Table 1
//! caps in release CI.

use ocas_rewrite::dedup_key;

#[test]
fn all_table1_rows_agree_across_engines_and_worker_counts() {
    let cap = Some(250);
    for e in ocas::experiments::table1() {
        let reference = e
            .run_search(true, 1, cap)
            .unwrap_or_else(|err| panic!("{}: reference search failed: {err}", e.name));
        let sequential = e
            .run_search(false, 1, cap)
            .unwrap_or_else(|err| panic!("{}: arena search failed: {err}", e.name));
        let parallel = e
            .run_search(false, 3, cap)
            .unwrap_or_else(|err| panic!("{}: parallel search failed: {err}", e.name));

        assert_eq!(
            reference.stats.deterministic(),
            sequential.stats.deterministic(),
            "`{}`: arena engine diverged from the reference BFS",
            e.name
        );
        assert_eq!(
            sequential.stats.deterministic(),
            parallel.stats.deterministic(),
            "`{}`: parallel merge diverged from the sequential run",
            e.name
        );
        assert_eq!(sequential.stats.pruned, 0, "`{}`: nothing opted in", e.name);

        // The parallel program list is bit-identical to the sequential one.
        assert_eq!(sequential.programs, parallel.programs, "`{}`", e.name);

        // Reference and arena engines number fresh names differently, but
        // the explored sets must coincide up to the canonical key, pairwise
        // in order (both engines accept in the same candidate order).
        assert_eq!(reference.programs.len(), sequential.programs.len());
        for ((a, da), (b, db)) in reference.programs.iter().zip(&sequential.programs) {
            assert_eq!(da, db, "`{}`: depth mismatch", e.name);
            assert_eq!(
                dedup_key(a),
                dedup_key(b),
                "`{}`: program sets diverged at depth {da}",
                e.name
            );
        }
    }
}
