//! The chaos suite: synthesized Table 1 programs under randomized (but
//! seeded, so replayable) fault plans, on both the real file backend and
//! the device simulator. Every run must respect the robustness
//! trichotomy — output bit-identical to a clean run, or a typed error —
//! and leave its backend clean: no panic, no leaked temp dir, no pinned
//! pages. 4 workloads × 26 seeds × 2 backends = 208 faulted executions.

use ocas::chaos::{self, ChaosOutcome, ChaosRun, ChaosWorkload};
use std::sync::OnceLock;

/// Synthesis runs once; the four test functions share the workloads and
/// run in parallel.
fn workloads() -> &'static [ChaosWorkload] {
    static W: OnceLock<Vec<ChaosWorkload>> = OnceLock::new();
    W.get_or_init(|| chaos::table1_workloads().expect("synthesis + lowering + clean oracles"))
}

const SEEDS_PER_WORKLOAD: u64 = 26;

fn check(run: &ChaosRun) {
    assert_ne!(
        run.outcome,
        ChaosOutcome::WrongAnswer,
        "{}/{} seed {}: faulted run completed with a wrong answer",
        run.workload,
        run.backend,
        run.fault_seed
    );
    assert!(
        !run.leaked_dir,
        "{}/{} seed {}: temp dir leaked",
        run.workload, run.backend, run.fault_seed
    );
    assert_eq!(
        run.pinned_pages, 0,
        "{}/{} seed {}: pinned pages leaked",
        run.workload, run.backend, run.fault_seed
    );
}

/// Runs one workload through its full seed range on both backends and
/// asserts the trichotomy plus suite-level coverage: faults actually
/// fired, and at least one run absorbed its faults completely.
fn chaos_workload(name: &str, seed_base: u64) {
    let w = workloads()
        .iter()
        .find(|w| w.name == name)
        .expect("workload present");
    let mut runs = Vec::new();
    for i in 0..SEEDS_PER_WORKLOAD {
        let seed = seed_base + i;
        let file = chaos::run_file(w, seed);
        check(&file);
        let sim = chaos::run_sim(w, seed);
        check(&sim);
        runs.push(file);
        runs.push(sim);
    }
    let s = chaos::summarize(&runs);
    assert!(s.clean());
    assert_eq!(s.runs, 2 * SEEDS_PER_WORKLOAD);
    assert!(
        s.counters.faults_injected > 0,
        "{name}: no fault ever fired — the suite tested nothing"
    );
    assert!(
        s.identical > 0,
        "{name}: no run ever matched the clean oracle"
    );
}

#[test]
fn chaos_synthesized_external_sort() {
    chaos_workload("sort", 1_000);
}

#[test]
fn chaos_synthesized_grace_join() {
    chaos_workload("grace", 2_000);
}

#[test]
fn chaos_synthesized_multiset_union() {
    chaos_workload("union", 3_000);
}

#[test]
fn chaos_synthesized_dedup() {
    chaos_workload("dedup", 4_000);
}

/// Across the whole suite, the error leg of the trichotomy is exercised
/// too: some seeds must surface typed errors (ENOSPC on a non-degradable
/// allocation, exhausted retries, torn pages caught by checksums) — and
/// every one of them is a typed error string, never a panic.
#[test]
fn chaos_suite_exercises_typed_errors() {
    let mut typed = 0u64;
    for w in workloads() {
        for seed in 0..8 {
            for run in [
                chaos::run_file(w, 5_000 + seed),
                chaos::run_sim(w, 5_000 + seed),
            ] {
                check(&run);
                if let ChaosOutcome::TypedError(e) = &run.outcome {
                    assert!(!e.is_empty());
                    typed += 1;
                }
            }
        }
    }
    assert!(typed > 0, "no fault seed ever produced a typed error");
}
