//! Chrome trace-event JSON export (the format Perfetto and
//! `chrome://tracing` load).
//!
//! Layout: one *process* per clock domain (`pid` 1 = simulated clock,
//! `pid` 2 = wall clock) and one *thread* per track, named via `"M"`
//! metadata events — so Perfetto shows a labeled lane per device, per
//! search/cost worker, and for the engine's operator spans. Spans are
//! complete events (`"ph": "X"`), counters are `"ph": "C"` series
//! carrying the running total. Timestamps are microseconds.

use crate::{Clock, EventKind, Trace};
use std::collections::HashMap;
use std::fmt::Write as _;

fn pid(clock: Clock) -> u32 {
    match clock {
        Clock::Sim => 1,
        Clock::Wall => 2,
    }
}

/// Escapes a string for a JSON literal (control characters, quotes,
/// backslashes — track names are plain identifiers in practice).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A JSON number: finite shortest-round-trip, with non-finite values
/// (which JSON cannot carry) clamped to 0.
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:?}")
    } else {
        "0".to_string()
    }
}

impl Trace {
    /// Serializes the trace as Chrome trace-event JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        let mut emit = |s: String, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&s);
        };
        // Process + thread naming metadata. A track appears once per
        // clock domain it is used on.
        let mut clocks_seen = Vec::new();
        let mut named: Vec<(u32, u16)> = Vec::new();
        for e in &self.events {
            if !clocks_seen.contains(&e.clock) {
                clocks_seen.push(e.clock);
            }
            if !named.contains(&(pid(e.clock), e.track)) {
                named.push((pid(e.clock), e.track));
            }
        }
        for clock in &clocks_seen {
            let label = match clock {
                Clock::Sim => "simulated clock",
                Clock::Wall => "wall clock",
            };
            emit(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{label}\"}}}}",
                    pid(*clock)
                ),
                &mut first,
            );
        }
        for (p, t) in &named {
            emit(
                format!(
                    "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{p},\"tid\":{},\"args\":{{\"name\":\"{}\"}}}}",
                    t + 1,
                    escape(&self.tracks[*t as usize])
                ),
                &mut first,
            );
        }
        // Counter series carry running totals per (clock, track, name).
        let mut running: HashMap<(Clock, u16, &str), f64> = HashMap::new();
        for e in &self.events {
            let p = pid(e.clock);
            let tid = e.track + 1;
            let ts = num(e.start * 1e6);
            match e.kind {
                EventKind::Span => {
                    let mut args = String::new();
                    for (k, v) in &e.args {
                        let _ = write!(args, "\"{}\":{},", escape(k), num(*v));
                    }
                    let _ = write!(args, "\"merged\":{}", e.merged);
                    emit(
                        format!(
                            "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{p},\"tid\":{tid},\"ts\":{ts},\"dur\":{},\"args\":{{{args}}}}}",
                            escape(e.name),
                            match e.clock {
                                Clock::Sim => "sim",
                                Clock::Wall => "wall",
                            },
                            num(e.dur * 1e6),
                        ),
                        &mut first,
                    );
                }
                EventKind::Counter => {
                    let delta = e
                        .args
                        .iter()
                        .find(|(n, _)| *n == e.name)
                        .map_or(0.0, |(_, v)| *v);
                    let total = running
                        .entry((e.clock, e.track, e.name))
                        .and_modify(|t| *t += delta)
                        .or_insert(delta);
                    emit(
                        format!(
                            "{{\"ph\":\"C\",\"name\":\"{}\",\"pid\":{p},\"tid\":{tid},\"ts\":{ts},\"args\":{{\"{}\":{}}}}}",
                            escape(e.name),
                            escape(e.name),
                            num(*total),
                        ),
                        &mut first,
                    );
                }
            }
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, finish, span, start};

    #[test]
    fn chrome_export_has_metadata_spans_and_counters() {
        start();
        span(
            Clock::Sim,
            "dev:HDD",
            "read",
            0.0,
            1.5,
            &[("bytes", 4096.0)],
        );
        counter(Clock::Sim, "pool:HDD", "hits", 0.5, 3.0);
        counter(Clock::Sim, "pool:HDD", "hits", 1.0, 2.0);
        span(Clock::Wall, "cost-w0", "cost", 0.1, 0.2, &[]);
        let json = finish().unwrap().to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"name\":\"thread_name\""));
        assert!(json.contains("\"name\":\"dev:HDD\""));
        assert!(json.contains("\"ph\":\"X\",\"name\":\"read\",\"cat\":\"sim\""));
        assert!(json.contains("\"dur\":1500000"));
        // Second counter sample carries the running total (3 + 2).
        assert!(json.contains("\"args\":{\"hits\":5"));
        assert!(json.contains("\"cat\":\"wall\""));
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\u000ad");
    }

    #[test]
    fn non_finite_numbers_are_clamped() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(f64::INFINITY), "0");
        assert_eq!(num(1.5), "1.5");
    }
}
