//! A zero-dependency tracing and metrics layer for the OCAS workspace.
//!
//! The repo's argument is a *cost attribution* claim — synthesized
//! programs win because seek/transfer seconds on a device hierarchy are
//! predicted and minimized — so the instrumentation has to say where
//! inside a search level or an operator pipeline the bytes and seconds
//! went, on **two clock domains at once**:
//!
//! * [`Clock::Sim`] — simulated seconds (or another deterministic axis,
//!   such as programs explored for the synthesis search). Events on this
//!   clock are bit-identical across runs and worker counts, which is what
//!   makes traces diffable and lets CI gate counter totals exactly.
//! * [`Clock::Wall`] — wall-clock seconds since [`start`], for the real
//!   I/O backend and the pipelined cost workers.
//!
//! The recorder is a **thread-local subscriber**, off by default. Every
//! public entry point starts with one thread-local boolean load, so the
//! instrumentation can be compiled in everywhere and left in hot loops:
//! a disabled probe costs a few nanoseconds (pinned by a test in
//! `ocas-bench`). There are no atomics, locks or globals — a recorder
//! belongs to the thread that [`start`]ed it, and multi-threaded layers
//! (search/cost workers) measure locally and *record* on the owning
//! thread during their deterministic merge, which is also what keeps
//! traces independent of the worker count.
//!
//! Recording is bounded: beyond a per-`(track, name)` cap (default
//! [`DEFAULT_EVENT_CAP`]), further occurrences fold into the last
//! retained event — durations and argument values keep summing, so
//! *attribution totals stay exact* while a 10-million-request run stays
//! a few thousand events.
//!
//! Exports: [`Trace::to_chrome_json`] (Chrome trace-event JSON — load in
//! Perfetto or `chrome://tracing`), [`Trace::metrics`] (flat counter and
//! span-seconds totals for `BENCH_results.json`), and
//! [`Trace::deterministic_view`] (the [`Clock::Sim`] event sequence,
//! used by the worker-count invariance tests).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::time::Instant;

/// Which clock domain an event's `start`/`dur` live on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Clock {
    /// Deterministic simulated seconds (or another deterministic axis).
    Sim,
    /// Wall-clock seconds since [`start`].
    Wall,
}

/// Span (an interval) or counter (a delta at an instant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interval `[start, start + dur)` on its clock.
    Span,
    /// A value delta at instant `start` (`dur` is 0).
    Counter,
}

/// One recorded event. Events beyond the per-`(track, name)` cap merge
/// into the last retained event of that pair: `dur` and `args` values
/// keep accumulating and [`Event::merged`] counts the folded occurrences,
/// so totals remain exact.
#[derive(Debug, Clone)]
pub struct Event {
    /// Position in the recording sequence (equals the event's index).
    pub id: u64,
    /// Span or counter.
    pub kind: EventKind,
    /// Clock domain of `start`/`dur`.
    pub clock: Clock,
    /// Index into [`Trace::tracks`].
    pub track: u16,
    /// Event name (span name, or counter series name).
    pub name: &'static str,
    /// Start instant (seconds on `clock`).
    pub start: f64,
    /// Duration in seconds (spans) or 0 (counters).
    pub dur: f64,
    /// Numeric attributes; for counters, `[(name, delta)]`.
    pub args: Vec<(&'static str, f64)>,
    /// How many further occurrences were folded into this event.
    pub merged: u64,
}

/// A finished recording: interned track names plus the event list.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Track names, indexed by [`Event::track`].
    pub tracks: Vec<String>,
    /// Events in recording order.
    pub events: Vec<Event>,
}

/// Flat totals extracted from a [`Trace`] (the `bench_json` `obs`
/// section). Keys are `"track/name"`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Counter totals (sum of deltas).
    pub counters: BTreeMap<String, f64>,
    /// Summed span seconds on the simulated clock.
    pub sim_span_seconds: BTreeMap<String, f64>,
    /// Summed span seconds on the wall clock.
    pub wall_span_seconds: BTreeMap<String, f64>,
    /// Total recorded occurrences (retained events plus merged folds).
    pub events: u64,
}

/// Default per-`(track, name)` retained-event cap.
pub const DEFAULT_EVENT_CAP: u64 = 4096;

struct Recorder {
    epoch: Instant,
    cap: u64,
    tracks: Vec<String>,
    track_ids: HashMap<String, u16>,
    events: Vec<Event>,
    /// `(track, name, is_span)` → (occurrences so far, last event index).
    keys: HashMap<(u16, &'static str, bool), (u64, usize)>,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// Installs a fresh recorder on this thread with the default event cap,
/// replacing (and discarding) any active one.
pub fn start() {
    start_with_cap(DEFAULT_EVENT_CAP);
}

/// [`start`] with an explicit per-`(track, name)` retained-event cap
/// (minimum 1).
pub fn start_with_cap(cap: u64) {
    RECORDER.with(|r| {
        *r.borrow_mut() = Some(Recorder {
            epoch: Instant::now(),
            cap: cap.max(1),
            tracks: Vec::new(),
            track_ids: HashMap::new(),
            events: Vec::new(),
            keys: HashMap::new(),
        });
    });
    ENABLED.with(|e| e.set(true));
}

/// Stops this thread's recorder and returns its trace (`None` if no
/// recorder was active).
pub fn finish() -> Option<Trace> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| r.borrow_mut().take()).map(|rec| Trace {
        tracks: rec.tracks,
        events: rec.events,
    })
}

/// True when this thread has an active recorder. This is the only cost
/// instrumented code pays when tracing is off: one thread-local load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Wall seconds since this thread's recorder was [`start`]ed (0.0 when
/// disabled). Pair with [`Clock::Wall`] spans.
#[inline]
pub fn wall_now() -> f64 {
    if !enabled() {
        return 0.0;
    }
    RECORDER.with(|r| {
        r.borrow()
            .as_ref()
            .map_or(0.0, |rec| rec.epoch.elapsed().as_secs_f64())
    })
}

/// Records a span of `dur` seconds starting at `start` on `clock`, on the
/// named track. No-op when disabled.
#[inline]
pub fn span(
    clock: Clock,
    track: &str,
    name: &'static str,
    start: f64,
    dur: f64,
    args: &[(&'static str, f64)],
) {
    if !enabled() {
        return;
    }
    record(EventKind::Span, clock, track, name, start, dur, args);
}

/// Records a counter delta at instant `at` on `clock`. Totals per
/// `(track, name)` are exact regardless of the event cap. No-op when
/// disabled.
#[inline]
pub fn counter(clock: Clock, track: &str, name: &'static str, at: f64, delta: f64) {
    if !enabled() {
        return;
    }
    record(
        EventKind::Counter,
        clock,
        track,
        name,
        at,
        0.0,
        &[(name, delta)],
    );
}

fn record(
    kind: EventKind,
    clock: Clock,
    track: &str,
    name: &'static str,
    start: f64,
    dur: f64,
    args: &[(&'static str, f64)],
) {
    RECORDER.with(|r| {
        let mut r = r.borrow_mut();
        let Some(rec) = r.as_mut() else { return };
        let track = match rec.track_ids.get(track) {
            Some(&t) => t,
            None => {
                let t = u16::try_from(rec.tracks.len()).unwrap_or(u16::MAX);
                rec.tracks.push(track.to_string());
                rec.track_ids.insert(track.to_string(), t);
                t
            }
        };
        let key = (track, name, kind == EventKind::Span);
        let entry = rec.keys.entry(key).or_insert((0, usize::MAX));
        entry.0 += 1;
        if entry.0 > rec.cap {
            // Fold into the last retained event of this pair: durations
            // and argument values keep summing, so totals stay exact.
            let e = &mut rec.events[entry.1];
            e.dur += dur;
            e.merged += 1;
            for (k, v) in args {
                match e.args.iter_mut().find(|(n, _)| n == k) {
                    Some((_, total)) => *total += v,
                    None => e.args.push((k, *v)),
                }
            }
            return;
        }
        entry.1 = rec.events.len();
        rec.events.push(Event {
            id: rec.events.len() as u64,
            kind,
            clock,
            track,
            name,
            start,
            dur,
            args: args.to_vec(),
            merged: 0,
        });
    });
}

impl Trace {
    /// The track name of an event.
    pub fn track(&self, e: &Event) -> &str {
        &self.tracks[e.track as usize]
    }

    /// Flat counter and span-seconds totals.
    pub fn metrics(&self) -> Metrics {
        let mut m = Metrics::default();
        for e in &self.events {
            m.events += 1 + e.merged;
            let key = format!("{}/{}", self.track(e), e.name);
            match e.kind {
                EventKind::Counter => {
                    let total = e
                        .args
                        .iter()
                        .find(|(n, _)| *n == e.name)
                        .map_or(0.0, |(_, v)| *v);
                    *m.counters.entry(key).or_insert(0.0) += total;
                }
                EventKind::Span => {
                    let map = match e.clock {
                        Clock::Sim => &mut m.sim_span_seconds,
                        Clock::Wall => &mut m.wall_span_seconds,
                    };
                    *map.entry(key).or_insert(0.0) += e.dur;
                }
            }
        }
        m
    }

    /// The [`Clock::Sim`] event sequence as comparable strings: ids,
    /// tracks, names, timestamps, durations, args and fold counts.
    /// Identical across runs and worker counts by construction (wall
    /// events carry the nondeterminism; they are excluded, but they are
    /// recorded at deterministic sequence positions, so the retained ids
    /// here are stable too).
    pub fn deterministic_view(&self) -> Vec<String> {
        self.events
            .iter()
            .filter(|e| e.clock == Clock::Sim)
            .map(|e| {
                let args: Vec<String> = e.args.iter().map(|(k, v)| format!("{k}={v:?}")).collect();
                format!(
                    "{}|{:?}|{}|{}|{:?}|{:?}|{}|{}",
                    e.id,
                    e.kind,
                    self.track(e),
                    e.name,
                    e.start,
                    e.dur,
                    args.join(","),
                    e.merged
                )
            })
            .collect()
    }

    /// Summed span seconds per track, one clock domain only. The
    /// simulator's device + CPU tracks on [`Clock::Sim`] reconstruct its
    /// reported total seconds (the attribution property the acceptance
    /// test pins).
    pub fn span_seconds_by_track(&self, clock: Clock) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            if e.kind == EventKind::Span && e.clock == clock {
                *out.entry(self.track(e).to_string()).or_insert(0.0) += e.dur;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_no_op() {
        assert!(!enabled());
        span(Clock::Sim, "t", "s", 0.0, 1.0, &[]);
        counter(Clock::Sim, "t", "c", 0.0, 1.0);
        assert_eq!(wall_now(), 0.0);
        assert!(finish().is_none());
    }

    #[test]
    fn spans_and_counters_round_trip() {
        start();
        span(
            Clock::Sim,
            "dev:HDD",
            "read",
            0.5,
            2.0,
            &[("bytes", 4096.0)],
        );
        span(
            Clock::Sim,
            "dev:HDD",
            "read",
            2.5,
            1.0,
            &[("bytes", 1024.0)],
        );
        span(Clock::Wall, "cost-w0", "cost", 0.1, 0.2, &[]);
        counter(Clock::Sim, "pool", "hits", 1.0, 3.0);
        counter(Clock::Sim, "pool", "hits", 2.0, 2.0);
        let t = finish().unwrap();
        assert_eq!(t.events.len(), 5);
        let m = t.metrics();
        assert_eq!(m.events, 5);
        assert_eq!(m.counters["pool/hits"], 5.0);
        assert_eq!(m.sim_span_seconds["dev:HDD/read"], 3.0);
        assert_eq!(m.wall_span_seconds["cost-w0/cost"], 0.2);
        assert_eq!(t.span_seconds_by_track(Clock::Sim)["dev:HDD"], 3.0);
    }

    #[test]
    fn cap_folds_events_but_keeps_totals_exact() {
        start_with_cap(4);
        for i in 0..100 {
            span(
                Clock::Sim,
                "dev:HDD",
                "write",
                i as f64,
                1.0,
                &[("bytes", 8.0)],
            );
            counter(Clock::Sim, "pool", "misses", i as f64, 1.0);
        }
        let t = finish().unwrap();
        // 4 retained per (track, name, kind) pair.
        assert_eq!(t.events.len(), 8);
        let m = t.metrics();
        assert_eq!(m.events, 200);
        assert_eq!(m.sim_span_seconds["dev:HDD/write"], 100.0);
        assert_eq!(m.counters["pool/misses"], 100.0);
        let folded = t.events.iter().map(|e| e.merged).sum::<u64>();
        assert_eq!(folded, 192);
        let bytes: f64 = t
            .events
            .iter()
            .flat_map(|e| e.args.iter())
            .filter(|(n, _)| *n == "bytes")
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(bytes, 800.0);
    }

    #[test]
    fn deterministic_view_excludes_wall_events_but_keeps_ids() {
        start();
        span(Clock::Sim, "search", "level", 0.0, 5.0, &[]);
        span(Clock::Wall, "cost-w1", "cost", 0.01, 0.02, &[]);
        span(Clock::Sim, "search", "level", 5.0, 7.0, &[("level", 1.0)]);
        let t = finish().unwrap();
        let v = t.deterministic_view();
        assert_eq!(v.len(), 2);
        assert!(v[0].starts_with("0|Span|search|level|0.0|5.0"));
        assert!(v[1].starts_with("2|Span|search|level|5.0|7.0"), "{}", v[1]);
    }

    #[test]
    fn restart_replaces_the_recorder() {
        start();
        span(Clock::Sim, "a", "x", 0.0, 1.0, &[]);
        start();
        span(Clock::Sim, "b", "y", 0.0, 1.0, &[]);
        let t = finish().unwrap();
        assert_eq!(t.tracks, vec!["b".to_string()]);
        assert_eq!(t.events.len(), 1);
    }

    #[test]
    fn wall_now_advances() {
        start();
        let a = wall_now();
        let b = wall_now();
        assert!(b >= a && a >= 0.0);
        finish();
    }
}
