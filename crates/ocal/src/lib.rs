//! # OCAL — the Out-of-Core Algorithm Language
//!
//! This crate implements the DSL of Klonatos et al., *Automatic Synthesis of
//! Out-of-Core Algorithms* (SIGMOD 2013), §3: Monad Calculus on lists
//! extended with `foldL`, plus the paper's named definitions (Figure 2), the
//! blocked `for` loop, sequentiality annotations and programmer size
//! annotations.
//!
//! Components:
//!
//! * [`ast`] — expressions, definitions, block sizes, annotations;
//! * [`types`] + [`typecheck`] — the Figure 1 type system with unification;
//! * [`value`] + [`eval`] — the reference interpreter (memory-hierarchy
//!   oblivious denotational semantics; ground truth for every rewrite);
//! * [`defs`] — base-language expansions of definitions, with tests that the
//!   efficient built-ins agree with them;
//! * [`parser`] + [`pretty`] — concrete syntax in both directions;
//! * [`gen`] — deterministic type-driven value generation for the rewrite
//!   rules' conservative side-condition checks.
//!
//! # Example
//!
//! ```
//! use ocal::{parse, pretty, typecheck, Evaluator, Type, TypeEnv, Value};
//! use std::collections::BTreeMap;
//!
//! // Example 1 of the paper: the naive nested-loops join.
//! let join = parse(
//!     "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []",
//! ).unwrap();
//!
//! let rel = Type::list(Type::tuple(vec![Type::Int, Type::Int]));
//! let env: TypeEnv = [("R".to_string(), rel.clone()), ("S".to_string(), rel)]
//!     .into_iter().collect();
//! let ty = typecheck(&join, &env).unwrap();
//! assert_eq!(ty.to_string(), "[<<Int, Int>, <Int, Int>>]");
//!
//! let inputs: BTreeMap<String, Value> = [
//!     ("R".to_string(), Value::pair_list(&[(1, 10), (2, 20)])),
//!     ("S".to_string(), Value::pair_list(&[(2, 7), (3, 8)])),
//! ].into_iter().collect();
//! let out = Evaluator::new().run(&join, &inputs).unwrap();
//! assert_eq!(out.to_string(), "[<<2, 20>, <2, 7>>]");
//! assert_eq!(pretty(&join), "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod defs;
pub mod eval;
pub mod gen;
pub mod intern;
pub mod parser;
pub mod pretty;
pub mod typecheck;
pub mod types;
pub mod value;

pub use ast::{BlockSize, CardHint, DefName, Expr, PrimOp, SeqAnnot, SizeHint, TypeEnv};
pub use eval::{EvalError, Evaluator};
pub use intern::{ExprId, Interner};
pub use parser::{parse, ParseError};
pub use pretty::pretty;
pub use typecheck::{infer_type, typecheck, TypeError};
pub use types::Type;
pub use value::{stable_hash, value_cmp, Env, Value};
