//! The OCAL reference interpreter.
//!
//! This interpreter gives the *denotational* semantics of OCAL programs: it
//! runs entirely in memory and ignores the memory hierarchy. It is the
//! ground truth that every transformation rule must preserve, the oracle the
//! execution engine is validated against, and the probe used by the
//! conservative side-condition checks (associativity, order-insensitivity)
//! of the rewrite rules.
//!
//! Block sizes written as named parameters (`[k1]`) are resolved through the
//! evaluator's parameter map; they never change the *result* of a program,
//! only its blocking structure, and the interpreter's test suite asserts
//! exactly that.

use crate::ast::{BlockSize, DefName, Expr, PrimOp};
use crate::value::{stable_hash, value_cmp, Closure, Env, Value};
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::rc::Rc;

/// Errors produced by evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A variable had no binding.
    UnboundVariable(String),
    /// Applied a non-function value.
    NotAFunction(String),
    /// A value had the wrong shape for the operation.
    Shape {
        /// What the operation needed.
        expected: &'static str,
        /// Where it happened.
        context: &'static str,
    },
    /// `head`/`tail` of the empty list (undefined per the paper).
    EmptyList(&'static str),
    /// Integer division or remainder by zero (including `avg []`).
    DivisionByZero,
    /// A named block-size parameter had no value.
    MissingParam(String),
    /// A block-size parameter resolved to zero.
    ZeroBlock(String),
    /// The evaluation step budget was exhausted.
    OutOfFuel,
    /// Tuple projection out of bounds.
    BadProjection(u32),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            EvalError::NotAFunction(d) => write!(f, "cannot apply non-function value {d}"),
            EvalError::Shape { expected, context } => {
                write!(f, "expected {expected} in {context}")
            }
            EvalError::EmptyList(op) => write!(f, "`{op}` of empty list is undefined"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::MissingParam(p) => write!(f, "block-size parameter `{p}` has no value"),
            EvalError::ZeroBlock(p) => write!(f, "block-size parameter `{p}` must be positive"),
            EvalError::OutOfFuel => write!(f, "evaluation step budget exhausted"),
            EvalError::BadProjection(i) => write!(f, "projection .{i} out of bounds"),
        }
    }
}

impl std::error::Error for EvalError {}

/// The reference evaluator.
#[derive(Debug, Clone)]
pub struct Evaluator {
    /// Values for named block-size parameters (`k1`, `s`, …).
    pub params: BTreeMap<String, u64>,
    fuel: u64,
}

/// Default step budget; generous for tests, finite so that an ill-formed
/// `unfoldR` step cannot hang the synthesizer's condition checks.
const DEFAULT_FUEL: u64 = 100_000_000;

impl Default for Evaluator {
    fn default() -> Evaluator {
        Evaluator::new()
    }
}

impl Evaluator {
    /// Creates an evaluator with no parameters and the default fuel budget.
    pub fn new() -> Evaluator {
        Evaluator {
            params: BTreeMap::new(),
            fuel: DEFAULT_FUEL,
        }
    }

    /// Sets the value of a named block-size parameter, builder style.
    pub fn with_param(mut self, name: impl Into<String>, value: u64) -> Evaluator {
        self.params.insert(name.into(), value);
        self
    }

    /// Replaces the fuel budget (number of evaluation steps allowed).
    pub fn with_fuel(mut self, fuel: u64) -> Evaluator {
        self.fuel = fuel;
        self
    }

    /// Evaluates a closed program under top-level `inputs`.
    pub fn run(
        &mut self,
        expr: &Expr,
        inputs: &BTreeMap<String, Value>,
    ) -> Result<Value, EvalError> {
        let env = Env::from_inputs(inputs);
        self.eval(expr, &env)
    }

    fn burn(&mut self) -> Result<(), EvalError> {
        if self.fuel == 0 {
            return Err(EvalError::OutOfFuel);
        }
        self.fuel -= 1;
        Ok(())
    }

    fn block_value(&self, b: &BlockSize) -> Result<u64, EvalError> {
        let v = match b {
            BlockSize::Const(n) => *n,
            BlockSize::Param(p) => *self
                .params
                .get(p)
                .ok_or_else(|| EvalError::MissingParam(p.clone()))?,
        };
        if v == 0 {
            return Err(EvalError::ZeroBlock(b.to_string()));
        }
        Ok(v)
    }

    /// Evaluates `expr` in `env`.
    pub fn eval(&mut self, expr: &Expr, env: &Env) -> Result<Value, EvalError> {
        self.burn()?;
        match expr {
            Expr::Var(v) => env
                .lookup(v)
                .cloned()
                .ok_or_else(|| EvalError::UnboundVariable(v.clone())),
            Expr::Int(n) => Ok(Value::Int(*n)),
            Expr::Bool(b) => Ok(Value::Bool(*b)),
            Expr::Str(s) => Ok(Value::Str(Rc::from(s.as_str()))),
            Expr::Lam { param, body } => Ok(Value::Closure(Rc::new(Closure {
                param: param.clone(),
                body: (**body).clone(),
                env: env.clone(),
            }))),
            Expr::App { func, arg } => {
                let f = self.eval(func, env)?;
                let a = self.eval(arg, env)?;
                self.apply(f, a)
            }
            Expr::Tuple(items) => {
                let mut vs = Vec::with_capacity(items.len());
                for i in items {
                    vs.push(self.eval(i, env)?);
                }
                Ok(Value::tuple(vs))
            }
            Expr::Proj { tuple, index } => {
                let t = self.eval(tuple, env)?;
                match t {
                    Value::Tuple(items) => {
                        let i = *index as usize;
                        if i >= 1 && i <= items.len() {
                            Ok(items[i - 1].clone())
                        } else {
                            Err(EvalError::BadProjection(*index))
                        }
                    }
                    _ => Err(EvalError::Shape {
                        expected: "tuple",
                        context: "projection",
                    }),
                }
            }
            Expr::Singleton(e) => Ok(Value::list(vec![self.eval(e, env)?])),
            Expr::Empty => Ok(Value::list(vec![])),
            Expr::Union { left, right } => {
                let l = self.eval(left, env)?;
                let r = self.eval(right, env)?;
                match (l, r) {
                    (Value::List(a), Value::List(b)) => {
                        let mut out = (*a).clone();
                        out.extend(b.iter().cloned());
                        Ok(Value::list(out))
                    }
                    _ => Err(EvalError::Shape {
                        expected: "two lists",
                        context: "union",
                    }),
                }
            }
            Expr::FlatMap { func } => {
                let f = self.eval(func, env)?;
                Ok(Value::FlatMapF(Rc::new(f)))
            }
            Expr::FoldL { init, func } => {
                let c = self.eval(init, env)?;
                let f = self.eval(func, env)?;
                Ok(Value::FoldLF(Rc::new((c, f))))
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => match self.eval(cond, env)? {
                Value::Bool(true) => self.eval(then_branch, env),
                Value::Bool(false) => self.eval(else_branch, env),
                _ => Err(EvalError::Shape {
                    expected: "boolean",
                    context: "if condition",
                }),
            },
            Expr::Prim { op, args } => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, env)?);
                }
                eval_prim(*op, &vs)
            }
            Expr::For {
                var,
                block,
                source,
                body,
                ..
            } => {
                let src = self.eval(source, env)?;
                let items = match src {
                    Value::List(items) => items,
                    _ => {
                        return Err(EvalError::Shape {
                            expected: "list",
                            context: "for source",
                        })
                    }
                };
                let k = self.block_value(block)? as usize;
                let elementwise = block.is_one();
                let mut out: Vec<Value> = Vec::new();
                let mut run_body = |this: &mut Evaluator, bound: Value| -> Result<(), EvalError> {
                    let inner = env.bind(var.clone(), bound);
                    match this.eval(body, &inner)? {
                        Value::List(vs) => {
                            out.extend(vs.iter().cloned());
                            Ok(())
                        }
                        _ => Err(EvalError::Shape {
                            expected: "list",
                            context: "for body",
                        }),
                    }
                };
                if elementwise {
                    for item in items.iter() {
                        run_body(self, item.clone())?;
                    }
                } else {
                    for chunk in items.chunks(k.max(1)) {
                        run_body(self, Value::list(chunk.to_vec()))?;
                    }
                }
                Ok(Value::list(out))
            }
            Expr::DefRef(def) => Ok(Value::Builtin {
                def: def.clone(),
                applied: Vec::new(),
            }),
            Expr::Sized { expr, .. } => self.eval(expr, env),
        }
    }

    /// Applies a function value to an argument.
    pub fn apply(&mut self, func: Value, arg: Value) -> Result<Value, EvalError> {
        self.burn()?;
        match func {
            Value::Closure(c) => {
                let env = c.env.bind(c.param.clone(), arg);
                self.eval(&c.body, &env)
            }
            Value::FlatMapF(f) => {
                let items = match &arg {
                    Value::List(items) => items.clone(),
                    _ => {
                        return Err(EvalError::Shape {
                            expected: "list",
                            context: "flatMap argument",
                        })
                    }
                };
                let mut out = Vec::new();
                for item in items.iter() {
                    match self.apply((*f).clone(), item.clone())? {
                        Value::List(vs) => out.extend(vs.iter().cloned()),
                        _ => {
                            return Err(EvalError::Shape {
                                expected: "list",
                                context: "flatMap body",
                            })
                        }
                    }
                }
                Ok(Value::list(out))
            }
            Value::FoldLF(cf) => {
                let (init, f) = (&cf.0, &cf.1);
                let items = match &arg {
                    Value::List(items) => items.clone(),
                    _ => {
                        return Err(EvalError::Shape {
                            expected: "list",
                            context: "foldL argument",
                        })
                    }
                };
                let mut acc = init.clone();
                for item in items.iter() {
                    acc = self.apply(f.clone(), Value::tuple(vec![acc, item.clone()]))?;
                }
                Ok(acc)
            }
            Value::Builtin { def, mut applied } => {
                applied.push(arg);
                if applied.len() == def.arity() {
                    self.exec_builtin(&def, applied)
                } else {
                    Ok(Value::Builtin { def, applied })
                }
            }
            other => Err(EvalError::NotAFunction(other.to_string())),
        }
    }

    fn exec_builtin(&mut self, def: &DefName, mut args: Vec<Value>) -> Result<Value, EvalError> {
        match def {
            DefName::Head => {
                let l = take_list(args.remove(0), "head")?;
                l.first().cloned().ok_or(EvalError::EmptyList("head"))
            }
            DefName::Tail => {
                let l = take_list(args.remove(0), "tail")?;
                if l.is_empty() {
                    Err(EvalError::EmptyList("tail"))
                } else {
                    Ok(Value::list(l[1..].to_vec()))
                }
            }
            DefName::Length => {
                let l = take_list(args.remove(0), "length")?;
                Ok(Value::Int(l.len() as i64))
            }
            DefName::Avg => {
                let l = take_list(args.remove(0), "avg")?;
                if l.is_empty() {
                    return Err(EvalError::DivisionByZero);
                }
                let mut sum: i64 = 0;
                for v in &l {
                    sum += v.as_int().ok_or(EvalError::Shape {
                        expected: "integer list",
                        context: "avg",
                    })?;
                }
                Ok(Value::Int(sum / l.len() as i64))
            }
            DefName::TreeFold(k) => {
                let seed = take_list(args.remove(1), "treeFold seed")?;
                let cf = match args.remove(0) {
                    Value::Tuple(items) if items.len() == 2 => items,
                    _ => {
                        return Err(EvalError::Shape {
                            expected: "pair <c, f>",
                            context: "treeFold",
                        })
                    }
                };
                let c = cf[0].clone();
                let f = cf[1].clone();
                let m = self.block_value(k)? as usize;
                if m < 2 {
                    return Err(EvalError::ZeroBlock("treeFold arity".into()));
                }
                if seed.is_empty() {
                    return Ok(c);
                }
                let mut queue: VecDeque<Value> = seed.into();
                while queue.len() > 1 {
                    self.burn()?;
                    let take = queue.len().min(m);
                    let mut group: Vec<Value> = Vec::with_capacity(m);
                    for _ in 0..take {
                        group.push(queue.pop_front().expect("len checked"));
                    }
                    while group.len() < m {
                        group.push(c.clone());
                    }
                    let combined = self.apply(f.clone(), Value::tuple(group))?;
                    queue.push_back(combined);
                }
                Ok(queue.pop_front().expect("non-empty"))
            }
            DefName::UnfoldR { .. } => {
                let state = args.remove(1);
                let f = args.remove(0);
                let mut lists = match state {
                    Value::Tuple(items) => (*items).clone(),
                    _ => {
                        return Err(EvalError::Shape {
                            expected: "tuple of lists",
                            context: "unfoldR",
                        })
                    }
                };
                let mut out: Vec<Value> = Vec::new();
                loop {
                    self.burn()?;
                    let all_empty = lists.iter().all(|l| match l {
                        Value::List(v) => v.is_empty(),
                        _ => false,
                    });
                    if all_empty {
                        break;
                    }
                    let step = self.apply(f.clone(), Value::tuple(lists.clone()))?;
                    match step {
                        Value::Tuple(pair) if pair.len() == 2 => {
                            match &pair[0] {
                                Value::List(vs) => out.extend(vs.iter().cloned()),
                                _ => {
                                    return Err(EvalError::Shape {
                                        expected: "list output",
                                        context: "unfoldR step",
                                    })
                                }
                            }
                            match &pair[1] {
                                Value::Tuple(next) => lists = (**next).clone(),
                                _ => {
                                    return Err(EvalError::Shape {
                                        expected: "tuple state",
                                        context: "unfoldR step",
                                    })
                                }
                            }
                        }
                        _ => {
                            return Err(EvalError::Shape {
                                expected: "pair <out, state>",
                                context: "unfoldR step",
                            })
                        }
                    }
                }
                Ok(Value::list(out))
            }
            DefName::Mrg => {
                let pair = match args.remove(0) {
                    Value::Tuple(items) if items.len() == 2 => items,
                    _ => {
                        return Err(EvalError::Shape {
                            expected: "pair of lists",
                            context: "mrg",
                        })
                    }
                };
                let l1 = take_list(pair[0].clone(), "mrg")?;
                let l2 = take_list(pair[1].clone(), "mrg")?;
                merge_step(&[l1, l2])
            }
            DefName::Zip(_) => {
                let lists = match args.remove(0) {
                    Value::Tuple(items) => items,
                    _ => {
                        return Err(EvalError::Shape {
                            expected: "tuple of lists",
                            context: "zip",
                        })
                    }
                };
                let mut heads = Vec::with_capacity(lists.len());
                let mut tails = Vec::with_capacity(lists.len());
                let mut any_empty = false;
                for l in lists.iter() {
                    match l {
                        Value::List(v) if v.is_empty() => any_empty = true,
                        Value::List(_) => {}
                        _ => {
                            return Err(EvalError::Shape {
                                expected: "list",
                                context: "zip",
                            })
                        }
                    }
                }
                if any_empty {
                    // Terminate gracefully: emit nothing and drain all lists.
                    let empties: Vec<Value> = lists.iter().map(|_| Value::list(vec![])).collect();
                    return Ok(Value::tuple(vec![
                        Value::list(vec![]),
                        Value::tuple(empties),
                    ]));
                }
                for l in lists.iter() {
                    if let Value::List(v) = l {
                        heads.push(v[0].clone());
                        tails.push(Value::list(v[1..].to_vec()));
                    }
                }
                Ok(Value::tuple(vec![
                    Value::list(vec![Value::tuple(heads)]),
                    Value::tuple(tails),
                ]))
            }
            DefName::Partition => {
                let items = take_list(args.remove(0), "partition")?;
                let mut groups: Vec<(Value, Vec<Value>)> = Vec::new();
                for item in items {
                    let (key, rest) = match &item {
                        Value::Tuple(fields) if fields.len() >= 2 => {
                            let key = fields[0].clone();
                            let rest = if fields.len() == 2 {
                                fields[1].clone()
                            } else {
                                Value::tuple(fields[1..].to_vec())
                            };
                            (key, rest)
                        }
                        _ => {
                            return Err(EvalError::Shape {
                                expected: "tuple with >= 2 fields",
                                context: "partition",
                            })
                        }
                    };
                    match groups.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, vs)) => vs.push(rest),
                        None => groups.push((key, vec![rest])),
                    }
                }
                Ok(Value::list(
                    groups
                        .into_iter()
                        .map(|(k, vs)| Value::tuple(vec![k, Value::list(vs)]))
                        .collect(),
                ))
            }
            DefName::HashPartition(s) => {
                let items = take_list(args.remove(0), "hashPartition")?;
                let buckets_n = self.block_value(s)? as usize;
                let mut buckets: Vec<Vec<Value>> = vec![Vec::new(); buckets_n];
                for item in items {
                    let key = match &item {
                        Value::Tuple(fields) if !fields.is_empty() => fields[0].clone(),
                        other => other.clone(),
                    };
                    let b = (stable_hash(&key) % buckets_n as u64) as usize;
                    buckets[b].push(item);
                }
                Ok(Value::list(buckets.into_iter().map(Value::list).collect()))
            }
            DefName::FuncPow(k) => {
                let arg = args.remove(1);
                let f = args.remove(0);
                let width = 1usize << *k;
                let items = match arg {
                    Value::Tuple(items) if items.len() == width => items,
                    _ => {
                        return Err(EvalError::Shape {
                            expected: "2^k-tuple",
                            context: "funcPow",
                        })
                    }
                };
                // funcPow[k](mrg) is interpreted as the 2^k-way merge step
                // (the unfoldR-variant of inc-branching, paper §6.2).
                if let Value::Builtin {
                    def: DefName::Mrg,
                    applied,
                } = &f
                {
                    if applied.is_empty() {
                        let mut lists = Vec::with_capacity(width);
                        for item in items.iter() {
                            lists.push(take_list(item.clone(), "funcPow(mrg)")?);
                        }
                        return merge_step(&lists);
                    }
                }
                // Generic tree application of a binary function.
                self.func_pow_generic(&f, &items)
            }
        }
    }

    fn func_pow_generic(&mut self, f: &Value, items: &[Value]) -> Result<Value, EvalError> {
        if items.len() == 1 {
            return Ok(items[0].clone());
        }
        if items.len() == 2 {
            return self.apply(f.clone(), Value::tuple(items.to_vec()));
        }
        let mid = items.len() / 2;
        let left = self.func_pow_generic(f, &items[..mid])?;
        let right = self.func_pow_generic(f, &items[mid..])?;
        self.apply(f.clone(), Value::tuple(vec![left, right]))
    }
}

fn take_list(v: Value, context: &'static str) -> Result<Vec<Value>, EvalError> {
    match v {
        Value::List(items) => Ok((*items).clone()),
        _ => Err(EvalError::Shape {
            expected: "list",
            context,
        }),
    }
}

/// One step of an n-way merge: emits the smallest head among the non-empty
/// lists and removes it. With all lists empty, emits nothing (termination for
/// `unfoldR`). Ties go to the *later* list, matching the paper's `mrg`
/// (`if head(l1) < head(l2) then … else take l2`).
fn merge_step(lists: &[Vec<Value>]) -> Result<Value, EvalError> {
    let mut best: Option<(usize, &Value)> = None;
    for (i, l) in lists.iter().enumerate() {
        if let Some(h) = l.first() {
            let better = match best {
                None => true,
                Some((_, cur)) => matches!(
                    value_cmp(h, cur),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                ),
            };
            if better {
                best = Some((i, h));
            }
        }
    }
    let state =
        |ls: Vec<Vec<Value>>| -> Value { Value::tuple(ls.into_iter().map(Value::list).collect()) };
    match best {
        None => Ok(Value::tuple(vec![
            Value::list(vec![]),
            state(lists.to_vec()),
        ])),
        Some((i, _)) => {
            let mut next: Vec<Vec<Value>> = lists.to_vec();
            let head = next[i].remove(0);
            Ok(Value::tuple(vec![Value::list(vec![head]), state(next)]))
        }
    }
}

fn eval_prim(op: PrimOp, args: &[Value]) -> Result<Value, EvalError> {
    use PrimOp::*;
    let int = |v: &Value| {
        v.as_int().ok_or(EvalError::Shape {
            expected: "integer",
            context: "arithmetic",
        })
    };
    let boolean = |v: &Value| match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(EvalError::Shape {
            expected: "boolean",
            context: "logic",
        }),
    };
    let cmp = |a: &Value, b: &Value| {
        value_cmp(a, b).ok_or(EvalError::Shape {
            expected: "comparable values of the same shape",
            context: "comparison",
        })
    };
    Ok(match op {
        Eq => Value::Bool(args[0] == args[1]),
        Ne => Value::Bool(args[0] != args[1]),
        Lt => Value::Bool(cmp(&args[0], &args[1])?.is_lt()),
        Le => Value::Bool(cmp(&args[0], &args[1])?.is_le()),
        Gt => Value::Bool(cmp(&args[0], &args[1])?.is_gt()),
        Ge => Value::Bool(cmp(&args[0], &args[1])?.is_ge()),
        Add => Value::Int(int(&args[0])?.wrapping_add(int(&args[1])?)),
        Sub => Value::Int(int(&args[0])?.wrapping_sub(int(&args[1])?)),
        Mul => Value::Int(int(&args[0])?.wrapping_mul(int(&args[1])?)),
        Div => {
            let d = int(&args[1])?;
            if d == 0 {
                return Err(EvalError::DivisionByZero);
            }
            Value::Int(int(&args[0])? / d)
        }
        Mod => {
            let d = int(&args[1])?;
            if d == 0 {
                return Err(EvalError::DivisionByZero);
            }
            Value::Int(int(&args[0])? % d)
        }
        And => Value::Bool(boolean(&args[0])? && boolean(&args[1])?),
        Or => Value::Bool(boolean(&args[0])? || boolean(&args[1])?),
        Not => Value::Bool(!boolean(&args[0])?),
        Hash => Value::Int((stable_hash(&args[0]) & 0x7fff_ffff_ffff_ffff) as i64),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;

    fn inputs(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect()
    }

    fn naive_join() -> Expr {
        let cond = E::binop(PrimOp::Eq, E::var("x").proj(1), E::var("y").proj(1));
        let body = E::if_(
            cond,
            E::tuple(vec![E::var("x"), E::var("y")]).singleton(),
            E::Empty,
        );
        E::for_each("x", E::var("R"), E::for_each("y", E::var("S"), body))
    }

    #[test]
    fn nested_loop_join_semantics() {
        let r = Value::pair_list(&[(1, 10), (2, 20), (3, 30)]);
        let s = Value::pair_list(&[(2, 200), (3, 300), (4, 400), (2, 201)]);
        let out = Evaluator::new()
            .run(&naive_join(), &inputs(&[("R", r), ("S", s)]))
            .unwrap();
        let items = out.as_list().unwrap();
        assert_eq!(items.len(), 3); // keys 2 (twice) and 3.
    }

    #[test]
    fn blocked_join_equals_naive_join() {
        // for (xb [k1] <- R) for (yb [k2] <- S) for (x <- xb) for (y <- yb) ...
        let cond = E::binop(PrimOp::Eq, E::var("x").proj(1), E::var("y").proj(1));
        let body = E::if_(
            cond,
            E::tuple(vec![E::var("x"), E::var("y")]).singleton(),
            E::Empty,
        );
        let blocked = E::for_blocked(
            "xb",
            BlockSize::Param("k1".into()),
            E::var("R"),
            BlockSize::one(),
            E::for_blocked(
                "yb",
                BlockSize::Param("k2".into()),
                E::var("S"),
                BlockSize::one(),
                E::for_each("x", E::var("xb"), E::for_each("y", E::var("yb"), body)),
            ),
        );
        let r = Value::pair_list(&[(1, 1), (2, 2), (3, 3), (4, 4), (5, 5)]);
        let s = Value::pair_list(&[(3, 9), (5, 25), (6, 36)]);
        let env = inputs(&[("R", r), ("S", s)]);
        let naive = Evaluator::new().run(&naive_join(), &env).unwrap();
        for (k1, k2) in [(1u64, 1u64), (2, 2), (3, 5), (7, 1)] {
            let blocked_out = Evaluator::new()
                .with_param("k1", k1)
                .with_param("k2", k2)
                .run(&blocked, &env)
                .unwrap();
            // Blocked evaluation must produce the same multiset; here even
            // the order coincides because blocking preserves iteration order
            // of the (x, y) pairs only when inner loops run per block pair —
            // compare as multisets to be safe.
            let mut a: Vec<String> = naive
                .as_list()
                .unwrap()
                .iter()
                .map(|v| v.to_string())
                .collect();
            let mut b: Vec<String> = blocked_out
                .as_list()
                .unwrap()
                .iter()
                .map(|v| v.to_string())
                .collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "k1={k1} k2={k2}");
        }
    }

    #[test]
    fn fold_sum() {
        let step = E::lam(
            "a",
            E::binop(PrimOp::Add, E::var("a").proj(1), E::var("a").proj(2)),
        );
        let e = E::fold_l(E::Int(0), step).app(E::var("L"));
        let out = Evaluator::new()
            .run(&e, &inputs(&[("L", Value::int_list(&[1, 2, 3, 4]))]))
            .unwrap();
        assert_eq!(out, Value::Int(10));
    }

    #[test]
    fn insertion_sort_via_fold_merge() {
        // foldL([], unfoldR(mrg)) over a list of singleton lists.
        let sort = E::fold_l(
            E::Empty,
            E::def(DefName::unfoldr()).app(E::def(DefName::Mrg)),
        );
        let singletons = Value::list(vec![
            Value::int_list(&[5]),
            Value::int_list(&[1]),
            Value::int_list(&[4]),
            Value::int_list(&[2]),
            Value::int_list(&[3]),
        ]);
        let out = Evaluator::new()
            .run(&sort.app(E::var("R")), &inputs(&[("R", singletons)]))
            .unwrap();
        assert_eq!(out, Value::int_list(&[1, 2, 3, 4, 5]));
    }

    #[test]
    fn tree_fold_merge_sort_all_widths() {
        let singletons: Vec<Value> = [9i64, 3, 7, 1, 8, 2, 6, 5, 4]
            .iter()
            .map(|n| Value::int_list(&[*n]))
            .collect();
        let seed = Value::list(singletons);
        for k in 1u32..=3 {
            let step = E::def(DefName::unfoldr())
                .app(E::def(DefName::FuncPow(k)).app(E::def(DefName::Mrg)));
            let tf = E::def(DefName::TreeFold(BlockSize::Const(1 << k)))
                .app(E::tuple(vec![E::Empty, step]))
                .app(E::var("R"));
            let out = Evaluator::new()
                .run(&tf, &inputs(&[("R", seed.clone())]))
                .unwrap();
            assert_eq!(
                out,
                Value::int_list(&[1, 2, 3, 4, 5, 6, 7, 8, 9]),
                "2^{k}-way merge sort"
            );
        }
    }

    #[test]
    fn zip_reads_columns() {
        let e = E::def(DefName::unfoldr())
            .app(E::def(DefName::Zip(2)))
            .app(E::tuple(vec![E::var("C1"), E::var("C2")]));
        let out = Evaluator::new()
            .run(
                &e,
                &inputs(&[
                    ("C1", Value::int_list(&[1, 2, 3])),
                    ("C2", Value::int_list(&[10, 20, 30])),
                ]),
            )
            .unwrap();
        assert_eq!(
            out,
            Value::list(vec![
                Value::tuple(vec![Value::Int(1), Value::Int(10)]),
                Value::tuple(vec![Value::Int(2), Value::Int(20)]),
                Value::tuple(vec![Value::Int(3), Value::Int(30)]),
            ])
        );
    }

    #[test]
    fn partition_groups_in_first_seen_order() {
        let e = E::def(DefName::Partition).app(E::var("R"));
        let r = Value::pair_list(&[(2, 20), (1, 10), (2, 21), (1, 11), (3, 30)]);
        let out = Evaluator::new().run(&e, &inputs(&[("R", r)])).unwrap();
        let groups = out.as_list().unwrap();
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0].to_string(), "<2, [20, 21]>");
        assert_eq!(groups[1].to_string(), "<1, [10, 11]>");
        assert_eq!(groups[2].to_string(), "<3, [30]>");
    }

    #[test]
    fn hash_partition_is_a_partition() {
        let e = E::def(DefName::HashPartition(BlockSize::Const(4))).app(E::var("R"));
        let items: Vec<(i64, i64)> = (0..50).map(|i| (i % 7, i)).collect();
        let r = Value::pair_list(&items);
        let out = Evaluator::new()
            .run(&e, &inputs(&[("R", r.clone())]))
            .unwrap();
        let buckets = out.as_list().unwrap();
        assert_eq!(buckets.len(), 4);
        let total: usize = buckets.iter().map(|b| b.as_list().unwrap().len()).sum();
        assert_eq!(total, 50);
        // Same key always lands in the same bucket.
        for b in buckets {
            let items = b.as_list().unwrap();
            for item in items {
                let key = match item {
                    Value::Tuple(fs) => fs[0].clone(),
                    _ => unreachable!(),
                };
                let expect = (stable_hash(&key) % 4) as usize;
                let actual = buckets
                    .iter()
                    .position(|bb| bb.as_list().unwrap().iter().any(|x| x == item))
                    .unwrap();
                assert_eq!(actual, expect);
            }
        }
    }

    #[test]
    fn head_tail_avg_length() {
        let env = inputs(&[("L", Value::int_list(&[4, 8, 6]))]);
        let head = E::def(DefName::Head).app(E::var("L"));
        let tail = E::def(DefName::Tail).app(E::var("L"));
        let len = E::def(DefName::Length).app(E::var("L"));
        let avg = E::def(DefName::Avg).app(E::var("L"));
        let mut ev = Evaluator::new();
        assert_eq!(ev.run(&head, &env).unwrap(), Value::Int(4));
        assert_eq!(ev.run(&tail, &env).unwrap(), Value::int_list(&[8, 6]));
        assert_eq!(ev.run(&len, &env).unwrap(), Value::Int(3));
        assert_eq!(ev.run(&avg, &env).unwrap(), Value::Int(6));
        let empty = inputs(&[("L", Value::int_list(&[]))]);
        assert_eq!(ev.run(&head, &empty), Err(EvalError::EmptyList("head")));
    }

    #[test]
    fn fuel_guards_against_runaway() {
        let e = naive_join();
        let r = Value::pair_list(&[(1, 1); 100]);
        let s = Value::pair_list(&[(1, 1); 100]);
        let result = Evaluator::new()
            .with_fuel(1000)
            .run(&e, &inputs(&[("R", r), ("S", s)]));
        assert_eq!(result, Err(EvalError::OutOfFuel));
    }

    #[test]
    fn missing_param_is_reported() {
        let e = E::for_blocked(
            "b",
            BlockSize::Param("k9".into()),
            E::var("L"),
            BlockSize::one(),
            E::var("b"),
        );
        let r = Evaluator::new().run(&e, &inputs(&[("L", Value::int_list(&[1]))]));
        assert_eq!(r, Err(EvalError::MissingParam("k9".into())));
    }
}
