//! Type-driven random value generation.
//!
//! The rewrite rules' side conditions (associativity for *fldL-to-trfld*,
//! order-insensitivity for *order-inputs* and *hash-part*) are undecidable in
//! general; the paper prescribes "a conservative estimation procedure that
//! returns no false positives by deciding a stronger but simpler condition".
//! Part of our procedure is randomized differential testing on small inputs,
//! which needs deterministic random values of a given OCAL type. A tiny
//! splitmix-style generator keeps this crate dependency-free.

use crate::types::Type;
use crate::value::Value;
use std::rc::Rc;

/// A small deterministic PRNG (splitmix64).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (bound must be positive).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }
}

/// Generation bounds.
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// Maximum list length (inclusive).
    pub max_len: usize,
    /// Integers are drawn from `0..int_range`.
    pub int_range: u64,
    /// When true, generated lists of atomic values are sorted ascending —
    /// needed to test conditions that only hold on sorted inputs (merge).
    pub sorted_lists: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            max_len: 6,
            int_range: 8,
            sorted_lists: false,
        }
    }
}

/// Generates a random value of type `ty`.
pub fn random_value(ty: &Type, rng: &mut Rng, cfg: &GenConfig) -> Value {
    match ty {
        Type::Int => Value::Int(rng.below(cfg.int_range) as i64),
        Type::Bool => Value::Bool(rng.below(2) == 1),
        Type::Str => {
            let letters = ["a", "b", "c", "d"];
            Value::Str(Rc::from(letters[rng.below(4) as usize]))
        }
        Type::Tuple(items) => {
            Value::tuple(items.iter().map(|t| random_value(t, rng, cfg)).collect())
        }
        Type::List(elem) => {
            let len = rng.below(cfg.max_len as u64 + 1) as usize;
            let mut items: Vec<Value> = (0..len).map(|_| random_value(elem, rng, cfg)).collect();
            if cfg.sorted_lists {
                items.sort_by(|a, b| {
                    crate::value::value_cmp(a, b).unwrap_or(std::cmp::Ordering::Equal)
                });
            }
            Value::list(items)
        }
        Type::Fun(_, _) | Type::Var(_) => {
            // Function or undetermined types cannot be generated; the side
            // condition checks only ever ask for data types. A sentinel that
            // fails comparison keeps misuse loud in tests.
            Value::list(vec![])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let ty = Type::list(Type::tuple(vec![Type::Int, Type::Int]));
        let cfg = GenConfig::default();
        let a = random_value(&ty, &mut Rng::new(7), &cfg);
        let b = random_value(&ty, &mut Rng::new(7), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn sorted_lists_are_sorted() {
        let ty = Type::list(Type::Int);
        let cfg = GenConfig {
            max_len: 20,
            int_range: 10,
            sorted_lists: true,
        };
        let mut rng = Rng::new(99);
        for _ in 0..20 {
            let v = random_value(&ty, &mut rng, &cfg);
            let items = v.as_list().unwrap();
            for w in items.windows(2) {
                assert!(crate::value::value_cmp(&w[0], &w[1])
                    .map(|o| o.is_le())
                    .unwrap_or(false));
            }
        }
    }

    #[test]
    fn respects_int_range() {
        let cfg = GenConfig {
            max_len: 4,
            int_range: 3,
            sorted_lists: false,
        };
        let mut rng = Rng::new(1);
        for _ in 0..50 {
            match random_value(&Type::Int, &mut rng, &cfg) {
                Value::Int(n) => assert!((0..3).contains(&n)),
                _ => panic!("expected int"),
            }
        }
    }
}
