//! The OCAL type system (paper Figure 1).
//!
//! Values are built from a totally ordered domain `D` of atomic values
//! (integers, booleans, strings) by tuple and list construction:
//!
//! ```text
//! τ ::= D | ⟨τ, …, τ⟩ | [τ]
//! ```
//!
//! Functions have types `τ₁ → τ₂` but are not themselves storable inside
//! lists or tuples of data (they appear only in function position); the type
//! checker nevertheless represents them uniformly.

use std::fmt;

/// An OCAL type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// Atomic integers (element of the ordered domain `D`).
    Int,
    /// Atomic booleans.
    Bool,
    /// Atomic strings.
    Str,
    /// Tuple type `⟨τ₁, …, τₙ⟩`.
    Tuple(Vec<Type>),
    /// List type `[τ]`.
    List(Box<Type>),
    /// Function type `τ₁ → τ₂`.
    Fun(Box<Type>, Box<Type>),
    /// Unification variable (only present during type inference).
    Var(u32),
}

impl Type {
    /// Convenience constructor for `[elem]`.
    pub fn list(elem: Type) -> Type {
        Type::List(Box::new(elem))
    }

    /// Convenience constructor for `⟨items…⟩`.
    pub fn tuple(items: Vec<Type>) -> Type {
        Type::Tuple(items)
    }

    /// Convenience constructor for `arg → ret`.
    pub fn fun(arg: Type, ret: Type) -> Type {
        Type::Fun(Box::new(arg), Box::new(ret))
    }

    /// The element type if this is a list type.
    pub fn elem(&self) -> Option<&Type> {
        match self {
            Type::List(e) => Some(e),
            _ => None,
        }
    }

    /// True for the atomic domain `D` (no tuples/lists/functions inside).
    pub fn is_atomic(&self) -> bool {
        matches!(self, Type::Int | Type::Bool | Type::Str)
    }

    /// True if the type contains no unification variables.
    pub fn is_ground(&self) -> bool {
        match self {
            Type::Int | Type::Bool | Type::Str => true,
            Type::Tuple(items) => items.iter().all(Type::is_ground),
            Type::List(e) => e.is_ground(),
            Type::Fun(a, r) => a.is_ground() && r.is_ground(),
            Type::Var(_) => false,
        }
    }

    /// True if the type describes first-order data (no functions), i.e. a
    /// value that can be stored on a device.
    pub fn is_data(&self) -> bool {
        match self {
            Type::Int | Type::Bool | Type::Str => true,
            Type::Tuple(items) => items.iter().all(Type::is_data),
            Type::List(e) => e.is_data(),
            Type::Fun(_, _) | Type::Var(_) => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "Int"),
            Type::Bool => write!(f, "Bool"),
            Type::Str => write!(f, "Str"),
            Type::Tuple(items) => {
                write!(f, "<")?;
                for (i, t) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ">")
            }
            Type::List(e) => write!(f, "[{e}]"),
            Type::Fun(a, r) => match **a {
                Type::Fun(_, _) => write!(f, "({a}) -> {r}"),
                _ => write!(f, "{a} -> {r}"),
            },
            Type::Var(v) => write!(f, "?t{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        // The paper's example: a join operator over two binary relations on D:
        // <[<D,D>], [<D,D>]> -> [<D,D,D,D>]
        let d = Type::Int;
        let rel = Type::list(Type::tuple(vec![d.clone(), d.clone()]));
        let join = Type::fun(
            Type::tuple(vec![rel.clone(), rel]),
            Type::list(Type::tuple(vec![d.clone(), d.clone(), d.clone(), d])),
        );
        assert_eq!(
            join.to_string(),
            "<[<Int, Int>], [<Int, Int>]> -> [<Int, Int, Int, Int>]"
        );
    }

    #[test]
    fn predicates() {
        assert!(Type::Int.is_atomic());
        assert!(!Type::list(Type::Int).is_atomic());
        assert!(Type::list(Type::tuple(vec![Type::Int, Type::Str])).is_data());
        assert!(!Type::fun(Type::Int, Type::Int).is_data());
        assert!(!Type::List(Box::new(Type::Var(0))).is_ground());
    }
}
