//! A hash-consed term arena for OCAL expressions.
//!
//! The synthesizer's search generates (and re-generates) hundreds of
//! thousands of candidate programs, most of which differ from an already
//! seen program only in generated names. Representing candidates as owned
//! [`Expr`] trees makes deduplication the dominant search cost: every
//! candidate pays an α-canonicalizing clone, a parameter-renaming clone and
//! an `O(size)` tree hash per set operation.
//!
//! This module fixes that with a classic hash-consing arena:
//!
//! * [`ExprId`] — a dense 32-bit handle. Two interned terms are
//!   structurally equal **iff their ids are equal**, so equality and
//!   hashing are O(1) and a dedup set is `HashSet<ExprId>`.
//! * [`Node`] — one expression constructor with [`ExprId`] children and
//!   [`NameId`]-interned variable/parameter names, so node equality and
//!   hashing are word compares with no string traffic. Structure is
//!   shared: interning a candidate that reuses subterms of an existing
//!   program allocates only the nodes along the changed spine.
//! * [`Interner::canonical`] — the search's dedup key
//!   (α-canonicalization plus block-size-parameter renaming in
//!   first-occurrence order, exactly `ocas-rewrite`'s legacy `dedup_key`)
//!   computed and interned in **one pass** without building intermediate
//!   `Expr` trees — and [`Interner::canonical_at`], the same key for
//!   "parent tree with a rewrite spliced in at a path", so duplicate
//!   search candidates are rejected without ever being constructed.
//! * memoized per-id [`Interner::size`] and root [`Interner::typecheck`]
//!   results, so repeated queries on the same term are O(1).
//!
//! The interner is deliberately not thread-safe (`&mut self` to intern):
//! the parallel search keeps one interner on the merge thread and hands
//! workers read-only [`Interner::find_canonical`] snapshots, which is what
//! keeps merged statistics deterministic.

use crate::ast::{BlockSize, DefName, Expr, PrimOp, SeqAnnot, SizeHint, TypeEnv};
use crate::typecheck::{typecheck, TypeError};
use crate::types::Type;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// A fast, non-cryptographic word-at-a-time hasher (the rustc `FxHash`
/// recipe). Interning hashes one shallow [`Node`] per tree position on the
/// search's hottest path; SipHash's per-byte mixing is measurable overhead
/// there and DoS resistance buys nothing for compiler-internal keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`]-keyed maps and sets.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A handle to an interned expression. Equality of handles is structural
/// equality of the underlying terms (within one [`Interner`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

impl ExprId {
    /// The dense index of this id (0-based insertion order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A handle to an interned variable/parameter name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(u32);

impl NameId {
    /// The dense index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interned [`BlockSize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IBlock {
    Const(u64),
    Param(NameId),
}

/// An interned [`DefName`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum IDef {
    Head,
    Tail,
    Length,
    Avg,
    TreeFold(IBlock),
    UnfoldR { b_in: IBlock, b_out: IBlock },
    Mrg,
    Zip(u32),
    Partition,
    HashPartition(IBlock),
    FuncPow(u32),
}

/// One interned expression constructor; children are [`ExprId`]s, names are
/// [`NameId`]s. Mirrors [`Expr`] — see the corresponding variant there for
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Node {
    Var(NameId),
    Int(i64),
    Bool(bool),
    Str(String),
    Lam {
        param: NameId,
        body: ExprId,
    },
    App {
        func: ExprId,
        arg: ExprId,
    },
    Tuple(Vec<ExprId>),
    Proj {
        tuple: ExprId,
        index: u32,
    },
    Singleton(ExprId),
    Empty,
    Union {
        left: ExprId,
        right: ExprId,
    },
    FlatMap {
        func: ExprId,
    },
    FoldL {
        init: ExprId,
        func: ExprId,
    },
    If {
        cond: ExprId,
        then_branch: ExprId,
        else_branch: ExprId,
    },
    Prim {
        op: PrimOp,
        args: Vec<ExprId>,
    },
    For {
        var: NameId,
        block: IBlock,
        source: ExprId,
        out_block: IBlock,
        body: ExprId,
        /// `(from, to)` of the sequentiality annotation, if any.
        seq: Option<(NameId, NameId)>,
    },
    DefRef(IDef),
    Sized {
        expr: ExprId,
        hint: SizeHint,
    },
}

/// The hash-consing arena.
#[derive(Debug, Default)]
pub struct Interner {
    nodes: Vec<Node>,
    sizes: Vec<u32>,
    index: HashMap<Node, ExprId, FxBuildHasher>,
    names: Vec<String>,
    name_index: HashMap<String, NameId, FxBuildHasher>,
    type_memo: HashMap<ExprId, Result<Type, TypeError>>,
    /// Fingerprint of the environment `type_memo` is valid for.
    type_env_tag: Option<u64>,
    /// Cached canonical binder name ids (`%0`, `%1`, …).
    canon_vars: Vec<NameId>,
    /// Cached canonical parameter name ids (`%p0`, `%p1`, …).
    canon_params: Vec<NameId>,
}

/// Canonicalization state: the α-renaming scope, the binder counter and the
/// parameter first-occurrence order. Borrows the names of the expression
/// being canonicalized — nothing is allocated per binder.
#[derive(Default)]
struct CanonCx<'e> {
    scope: Vec<(&'e str, NameId)>,
    counter: usize,
    params: Vec<&'e str>,
}

impl<'e> CanonCx<'e> {
    fn lookup(&self, v: &str) -> Option<NameId> {
        self.scope
            .iter()
            .rev()
            .find(|(orig, _)| *orig == v)
            .map(|(_, canon)| *canon)
    }

    /// Position of `p` in first-occurrence order, registering it if new.
    fn param_pos(&mut self, p: &'e str) -> usize {
        if let Some(i) = self.params.iter().position(|q| *q == p) {
            i
        } else {
            self.params.push(p);
            self.params.len() - 1
        }
    }
}

impl Interner {
    /// An empty arena.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Number of distinct interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The constructor node behind `id`.
    pub fn node(&self, id: ExprId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The string behind an interned name.
    pub fn name(&self, id: NameId) -> &str {
        &self.names[id.index()]
    }

    /// Memoized node count of the term (computed once at intern time).
    pub fn size(&self, id: ExprId) -> usize {
        self.sizes[id.index()] as usize
    }

    /// Interns a name.
    pub fn name_id(&mut self, s: &str) -> NameId {
        if let Some(&id) = self.name_index.get(s) {
            return id;
        }
        let id = NameId(self.names.len() as u32);
        self.names.push(s.to_string());
        self.name_index.insert(s.to_string(), id);
        id
    }

    /// Read-only name lookup.
    pub fn find_name(&self, s: &str) -> Option<NameId> {
        self.name_index.get(s).copied()
    }

    fn insert(&mut self, node: Node) -> ExprId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let size = 1 + node_children(&node)
            .into_iter()
            .map(|c| self.sizes[c.index()])
            .sum::<u32>();
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node.clone());
        self.sizes.push(size);
        self.index.insert(node, id);
        id
    }

    fn iblock(&mut self, b: &BlockSize) -> IBlock {
        match b {
            BlockSize::Const(n) => IBlock::Const(*n),
            BlockSize::Param(p) => IBlock::Param(self.name_id(p)),
        }
    }

    fn iblock_find(&self, b: &BlockSize) -> Option<IBlock> {
        match b {
            BlockSize::Const(n) => Some(IBlock::Const(*n)),
            BlockSize::Param(p) => Some(IBlock::Param(self.find_name(p)?)),
        }
    }

    fn idef(&mut self, d: &DefName) -> IDef {
        match d {
            DefName::Head => IDef::Head,
            DefName::Tail => IDef::Tail,
            DefName::Length => IDef::Length,
            DefName::Avg => IDef::Avg,
            DefName::TreeFold(k) => IDef::TreeFold(self.iblock(k)),
            DefName::UnfoldR { b_in, b_out } => {
                let b_in = self.iblock(b_in);
                let b_out = self.iblock(b_out);
                IDef::UnfoldR { b_in, b_out }
            }
            DefName::Mrg => IDef::Mrg,
            DefName::Zip(n) => IDef::Zip(*n),
            DefName::Partition => IDef::Partition,
            DefName::HashPartition(k) => IDef::HashPartition(self.iblock(k)),
            DefName::FuncPow(k) => IDef::FuncPow(*k),
        }
    }

    fn idef_find(&self, d: &DefName) -> Option<IDef> {
        Some(match d {
            DefName::Head => IDef::Head,
            DefName::Tail => IDef::Tail,
            DefName::Length => IDef::Length,
            DefName::Avg => IDef::Avg,
            DefName::TreeFold(k) => IDef::TreeFold(self.iblock_find(k)?),
            DefName::UnfoldR { b_in, b_out } => IDef::UnfoldR {
                b_in: self.iblock_find(b_in)?,
                b_out: self.iblock_find(b_out)?,
            },
            DefName::Mrg => IDef::Mrg,
            DefName::Zip(n) => IDef::Zip(*n),
            DefName::Partition => IDef::Partition,
            DefName::HashPartition(k) => IDef::HashPartition(self.iblock_find(k)?),
            DefName::FuncPow(k) => IDef::FuncPow(*k),
        })
    }

    fn block_back(&self, b: IBlock) -> BlockSize {
        match b {
            IBlock::Const(n) => BlockSize::Const(n),
            IBlock::Param(p) => BlockSize::Param(self.name(p).to_string()),
        }
    }

    fn def_back(&self, d: &IDef) -> DefName {
        match d {
            IDef::Head => DefName::Head,
            IDef::Tail => DefName::Tail,
            IDef::Length => DefName::Length,
            IDef::Avg => DefName::Avg,
            IDef::TreeFold(k) => DefName::TreeFold(self.block_back(*k)),
            IDef::UnfoldR { b_in, b_out } => DefName::UnfoldR {
                b_in: self.block_back(*b_in),
                b_out: self.block_back(*b_out),
            },
            IDef::Mrg => DefName::Mrg,
            IDef::Zip(n) => DefName::Zip(*n),
            IDef::Partition => DefName::Partition,
            IDef::HashPartition(k) => DefName::HashPartition(self.block_back(*k)),
            IDef::FuncPow(k) => DefName::FuncPow(*k),
        }
    }

    /// Interns `e` as-is (no canonicalization). O(size) the first time, with
    /// every already-known subterm shared.
    pub fn intern(&mut self, e: &Expr) -> ExprId {
        let node = self.shallow(e, |this, c| this.intern(c));
        self.insert(node)
    }

    /// Read-only lookup of an already interned term.
    pub fn find(&self, e: &Expr) -> Option<ExprId> {
        let node = self.try_shallow(e, |this, c| this.find(c))?;
        self.index.get(&node).copied()
    }

    fn canon_var(&mut self, i: usize) -> NameId {
        while self.canon_vars.len() <= i {
            let name = format!("%{}", self.canon_vars.len());
            let id = self.name_id(&name);
            self.canon_vars.push(id);
        }
        self.canon_vars[i]
    }

    fn canon_param(&mut self, i: usize) -> NameId {
        while self.canon_params.len() <= i {
            let name = format!("%p{}", self.canon_params.len());
            let id = self.name_id(&name);
            self.canon_params.push(id);
        }
        self.canon_params[i]
    }

    fn canon_var_find(&self, i: usize) -> Option<NameId> {
        self.canon_vars.get(i).copied()
    }

    fn canon_param_find(&self, i: usize) -> Option<NameId> {
        self.canon_params.get(i).copied()
    }

    /// Interns the **canonical form** of `e` in a single pass: bound
    /// variables are renamed `%0`, `%1`, … in binding order and block-size
    /// parameters `%p0`, `%p1`, … in first-occurrence (pre-order) order.
    ///
    /// The result equals `intern(&dedup_key(e))` for the legacy
    /// `ocas-rewrite` key, but without materializing the three intermediate
    /// trees that function builds — this is the search's per-candidate hot
    /// path.
    pub fn canonical(&mut self, e: &Expr) -> ExprId {
        let mut cx = CanonCx::default();
        self.canon_go(e, &mut cx)
    }

    /// Read-only twin of [`Interner::canonical`]: returns the canonical id
    /// if (and only if) that canonical term is already interned. Used by
    /// parallel search workers to skip re-validating duplicates without
    /// mutating the shared arena.
    pub fn find_canonical(&self, e: &Expr) -> Option<ExprId> {
        let mut cx = CanonCx::default();
        self.canon_find(e, &mut cx)
    }

    /// [`Interner::canonical`] of "`root` with the subterm at `path`
    /// replaced by `replacement`" — without materializing that candidate
    /// tree. `path` is a chain of [`Expr::children`] indices. This is how
    /// the search deduplicates rewrite candidates: the full candidate is
    /// only ever built for the (minority of) keys that turn out to be new.
    pub fn canonical_at(&mut self, root: &Expr, path: &[usize], replacement: &Expr) -> ExprId {
        let mut cx = CanonCx::default();
        self.canon_go_at(root, &mut cx, path, replacement)
    }

    fn canon_block<'e>(&mut self, b: &'e BlockSize, cx: &mut CanonCx<'e>) -> IBlock {
        match b {
            BlockSize::Const(n) => IBlock::Const(*n),
            BlockSize::Param(p) => {
                let pos = cx.param_pos(p);
                IBlock::Param(self.canon_param(pos))
            }
        }
    }

    fn canon_def<'e>(&mut self, d: &'e DefName, cx: &mut CanonCx<'e>) -> IDef {
        match d {
            DefName::TreeFold(k) => IDef::TreeFold(self.canon_block(k, cx)),
            DefName::HashPartition(k) => IDef::HashPartition(self.canon_block(k, cx)),
            DefName::UnfoldR { b_in, b_out } => {
                let b_in = self.canon_block(b_in, cx);
                let b_out = self.canon_block(b_out, cx);
                IDef::UnfoldR { b_in, b_out }
            }
            other => self.idef(other),
        }
    }

    fn canon_go<'e>(&mut self, e: &'e Expr, cx: &mut CanonCx<'e>) -> ExprId {
        let node = match e {
            Expr::Var(v) => match cx.lookup(v) {
                Some(id) => Node::Var(id),
                None => Node::Var(self.name_id(v)),
            },
            Expr::Lam { param, body } => {
                let canon = self.canon_var(cx.counter);
                cx.counter += 1;
                cx.scope.push((param, canon));
                let body = self.canon_go(body, cx);
                cx.scope.pop();
                Node::Lam { param: canon, body }
            }
            Expr::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => {
                // Parameter renaming is pre-order over the node itself
                // (block, then out_block) before either child — this is
                // what `collect_params` does in the legacy key.
                let block = self.canon_block(block, cx);
                let out_block = self.canon_block(out_block, cx);
                let source = self.canon_go(source, cx);
                let canon = self.canon_var(cx.counter);
                cx.counter += 1;
                cx.scope.push((var, canon));
                let body = self.canon_go(body, cx);
                cx.scope.pop();
                Node::For {
                    var: canon,
                    block,
                    source,
                    out_block,
                    body,
                    seq: self.iseq(seq),
                }
            }
            Expr::DefRef(d) => Node::DefRef(self.canon_def(d, cx)),
            other => {
                let node = self.shallow(other, |this, c| this.canon_go(c, cx));
                return self.insert(node);
            }
        };
        self.insert(node)
    }

    fn canon_go_at<'e>(
        &mut self,
        e: &'e Expr,
        cx: &mut CanonCx<'e>,
        path: &[usize],
        replacement: &'e Expr,
    ) -> ExprId {
        let Some((&target, rest)) = path.split_first() else {
            return self.canon_go(replacement, cx);
        };
        let node = match e {
            Expr::Lam { param, body } => {
                debug_assert_eq!(target, 0);
                let canon = self.canon_var(cx.counter);
                cx.counter += 1;
                cx.scope.push((param, canon));
                let body = self.canon_go_at(body, cx, rest, replacement);
                cx.scope.pop();
                Node::Lam { param: canon, body }
            }
            Expr::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => {
                let block = self.canon_block(block, cx);
                let out_block = self.canon_block(out_block, cx);
                let source = if target == 0 {
                    self.canon_go_at(source, cx, rest, replacement)
                } else {
                    self.canon_go(source, cx)
                };
                let canon = self.canon_var(cx.counter);
                cx.counter += 1;
                cx.scope.push((var, canon));
                let body = if target == 1 {
                    self.canon_go_at(body, cx, rest, replacement)
                } else {
                    self.canon_go(body, cx)
                };
                cx.scope.pop();
                Node::For {
                    var: canon,
                    block,
                    source,
                    out_block,
                    body,
                    seq: self.iseq(seq),
                }
            }
            other => {
                let mut i = 0usize;
                let node = self.shallow(other, |this, c| {
                    let id = if i == target {
                        this.canon_go_at(c, cx, rest, replacement)
                    } else {
                        this.canon_go(c, cx)
                    };
                    i += 1;
                    id
                });
                return self.insert(node);
            }
        };
        self.insert(node)
    }

    fn canon_find<'e>(&self, e: &'e Expr, cx: &mut CanonCx<'e>) -> Option<ExprId> {
        let node = match e {
            Expr::Var(v) => match cx.lookup(v) {
                Some(id) => Node::Var(id),
                None => Node::Var(self.find_name(v)?),
            },
            Expr::Lam { param, body } => {
                let canon = self.canon_var_find(cx.counter)?;
                cx.counter += 1;
                cx.scope.push((param, canon));
                let body = self.canon_find(body, cx);
                cx.scope.pop();
                Node::Lam {
                    param: canon,
                    body: body?,
                }
            }
            Expr::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => {
                let block = self.canon_block_find(block, cx)?;
                let out_block = self.canon_block_find(out_block, cx)?;
                let source = self.canon_find(source, cx);
                let canon = self.canon_var_find(cx.counter)?;
                cx.counter += 1;
                cx.scope.push((var, canon));
                let body = self.canon_find(body, cx);
                cx.scope.pop();
                Node::For {
                    var: canon,
                    block,
                    source: source?,
                    out_block,
                    body: body?,
                    seq: self.iseq_find(seq)?,
                }
            }
            Expr::DefRef(d) => {
                let d = match d {
                    DefName::TreeFold(k) => IDef::TreeFold(self.canon_block_find(k, cx)?),
                    DefName::HashPartition(k) => IDef::HashPartition(self.canon_block_find(k, cx)?),
                    DefName::UnfoldR { b_in, b_out } => IDef::UnfoldR {
                        b_in: self.canon_block_find(b_in, cx)?,
                        b_out: self.canon_block_find(b_out, cx)?,
                    },
                    other => self.idef_find(other)?,
                };
                Node::DefRef(d)
            }
            other => self.try_shallow(other, |this, c| this.canon_find(c, cx))?,
        };
        self.index.get(&node).copied()
    }

    fn canon_block_find<'e>(&self, b: &'e BlockSize, cx: &mut CanonCx<'e>) -> Option<IBlock> {
        match b {
            BlockSize::Const(n) => Some(IBlock::Const(*n)),
            BlockSize::Param(p) => {
                let pos = cx.param_pos(p);
                Some(IBlock::Param(self.canon_param_find(pos)?))
            }
        }
    }

    fn iseq(&mut self, seq: &Option<SeqAnnot>) -> Option<(NameId, NameId)> {
        seq.as_ref()
            .map(|s| (self.name_id(&s.from), self.name_id(&s.to)))
    }

    /// `Some(None)`-free read-only twin of [`Interner::iseq`]: `None` when
    /// an annotation name is unknown (so the term cannot be interned yet),
    /// `Some(opt)` otherwise.
    #[allow(clippy::option_option)]
    fn iseq_find(&self, seq: &Option<SeqAnnot>) -> Option<Option<(NameId, NameId)>> {
        match seq {
            None => Some(None),
            Some(s) => Some(Some((self.find_name(&s.from)?, self.find_name(&s.to)?))),
        }
    }

    /// Rebuilds the owned [`Expr`] tree behind `id`.
    pub fn to_expr(&self, id: ExprId) -> Expr {
        match self.node(id) {
            Node::Var(v) => Expr::Var(self.name(*v).to_string()),
            Node::Int(n) => Expr::Int(*n),
            Node::Bool(b) => Expr::Bool(*b),
            Node::Str(s) => Expr::Str(s.clone()),
            Node::Lam { param, body } => Expr::Lam {
                param: self.name(*param).to_string(),
                body: Box::new(self.to_expr(*body)),
            },
            Node::App { func, arg } => Expr::App {
                func: Box::new(self.to_expr(*func)),
                arg: Box::new(self.to_expr(*arg)),
            },
            Node::Tuple(items) => Expr::Tuple(items.iter().map(|i| self.to_expr(*i)).collect()),
            Node::Proj { tuple, index } => Expr::Proj {
                tuple: Box::new(self.to_expr(*tuple)),
                index: *index,
            },
            Node::Singleton(e) => Expr::Singleton(Box::new(self.to_expr(*e))),
            Node::Empty => Expr::Empty,
            Node::Union { left, right } => Expr::Union {
                left: Box::new(self.to_expr(*left)),
                right: Box::new(self.to_expr(*right)),
            },
            Node::FlatMap { func } => Expr::FlatMap {
                func: Box::new(self.to_expr(*func)),
            },
            Node::FoldL { init, func } => Expr::FoldL {
                init: Box::new(self.to_expr(*init)),
                func: Box::new(self.to_expr(*func)),
            },
            Node::If {
                cond,
                then_branch,
                else_branch,
            } => Expr::If {
                cond: Box::new(self.to_expr(*cond)),
                then_branch: Box::new(self.to_expr(*then_branch)),
                else_branch: Box::new(self.to_expr(*else_branch)),
            },
            Node::Prim { op, args } => Expr::Prim {
                op: *op,
                args: args.iter().map(|a| self.to_expr(*a)).collect(),
            },
            Node::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => Expr::For {
                var: self.name(*var).to_string(),
                block: self.block_back(*block),
                source: Box::new(self.to_expr(*source)),
                out_block: self.block_back(*out_block),
                body: Box::new(self.to_expr(*body)),
                seq: seq.map(|(from, to)| SeqAnnot {
                    from: self.name(from).to_string(),
                    to: self.name(to).to_string(),
                }),
            },
            Node::DefRef(d) => Expr::DefRef(self.def_back(d)),
            Node::Sized { expr, hint } => Expr::Sized {
                expr: Box::new(self.to_expr(*expr)),
                hint: hint.clone(),
            },
        }
    }

    /// Memoized whole-term typecheck against `env`. The memo is keyed per
    /// id and tagged with a fingerprint of `env`; checking against a
    /// different environment transparently resets it.
    pub fn typecheck(&mut self, id: ExprId, env: &TypeEnv) -> Result<Type, TypeError> {
        let tag = env_fingerprint(env);
        if self.type_env_tag != Some(tag) {
            self.type_memo.clear();
            self.type_env_tag = Some(tag);
        }
        if let Some(cached) = self.type_memo.get(&id) {
            return cached.clone();
        }
        let result = typecheck(&self.to_expr(id), env);
        self.type_memo.insert(id, result.clone());
        result
    }

    /// Builds the [`Node`] for `e`'s root, interning children via `child`.
    fn shallow<'e>(
        &mut self,
        e: &'e Expr,
        mut child: impl FnMut(&mut Self, &'e Expr) -> ExprId,
    ) -> Node {
        match e {
            Expr::Var(v) => Node::Var(self.name_id(v)),
            Expr::Int(n) => Node::Int(*n),
            Expr::Bool(b) => Node::Bool(*b),
            Expr::Str(s) => Node::Str(s.clone()),
            Expr::Lam { param, body } => {
                let param = self.name_id(param);
                let body = child(self, body);
                Node::Lam { param, body }
            }
            Expr::App { func, arg } => {
                let func = child(self, func);
                let arg = child(self, arg);
                Node::App { func, arg }
            }
            Expr::Tuple(items) => Node::Tuple(items.iter().map(|i| child(self, i)).collect()),
            Expr::Proj { tuple, index } => {
                let tuple = child(self, tuple);
                Node::Proj {
                    tuple,
                    index: *index,
                }
            }
            Expr::Singleton(e) => {
                let e = child(self, e);
                Node::Singleton(e)
            }
            Expr::Empty => Node::Empty,
            Expr::Union { left, right } => {
                let left = child(self, left);
                let right = child(self, right);
                Node::Union { left, right }
            }
            Expr::FlatMap { func } => {
                let func = child(self, func);
                Node::FlatMap { func }
            }
            Expr::FoldL { init, func } => {
                let init = child(self, init);
                let func = child(self, func);
                Node::FoldL { init, func }
            }
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let cond = child(self, cond);
                let then_branch = child(self, then_branch);
                let else_branch = child(self, else_branch);
                Node::If {
                    cond,
                    then_branch,
                    else_branch,
                }
            }
            Expr::Prim { op, args } => Node::Prim {
                op: *op,
                args: args.iter().map(|a| child(self, a)).collect(),
            },
            Expr::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => {
                let var = self.name_id(var);
                let block = self.iblock(block);
                let out_block = self.iblock(out_block);
                let seq = self.iseq(seq);
                let source = child(self, source);
                let body = child(self, body);
                Node::For {
                    var,
                    block,
                    source,
                    out_block,
                    body,
                    seq,
                }
            }
            Expr::DefRef(d) => {
                let d = self.idef(d);
                Node::DefRef(d)
            }
            Expr::Sized { expr, hint } => {
                let expr = child(self, expr);
                Node::Sized {
                    expr,
                    hint: hint.clone(),
                }
            }
        }
    }

    /// Read-only twin of [`Interner::shallow`]; `None` bubbles up when any
    /// child or name is unknown.
    fn try_shallow<'e>(
        &self,
        e: &'e Expr,
        mut child: impl FnMut(&Self, &'e Expr) -> Option<ExprId>,
    ) -> Option<Node> {
        Some(match e {
            Expr::Var(v) => Node::Var(self.find_name(v)?),
            Expr::Int(n) => Node::Int(*n),
            Expr::Bool(b) => Node::Bool(*b),
            Expr::Str(s) => Node::Str(s.clone()),
            Expr::Lam { param, body } => Node::Lam {
                param: self.find_name(param)?,
                body: child(self, body)?,
            },
            Expr::App { func, arg } => Node::App {
                func: child(self, func)?,
                arg: child(self, arg)?,
            },
            Expr::Tuple(items) => Node::Tuple(
                items
                    .iter()
                    .map(|i| child(self, i))
                    .collect::<Option<_>>()?,
            ),
            Expr::Proj { tuple, index } => Node::Proj {
                tuple: child(self, tuple)?,
                index: *index,
            },
            Expr::Singleton(e) => Node::Singleton(child(self, e)?),
            Expr::Empty => Node::Empty,
            Expr::Union { left, right } => Node::Union {
                left: child(self, left)?,
                right: child(self, right)?,
            },
            Expr::FlatMap { func } => Node::FlatMap {
                func: child(self, func)?,
            },
            Expr::FoldL { init, func } => Node::FoldL {
                init: child(self, init)?,
                func: child(self, func)?,
            },
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => Node::If {
                cond: child(self, cond)?,
                then_branch: child(self, then_branch)?,
                else_branch: child(self, else_branch)?,
            },
            Expr::Prim { op, args } => Node::Prim {
                op: *op,
                args: args.iter().map(|a| child(self, a)).collect::<Option<_>>()?,
            },
            Expr::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => Node::For {
                var: self.find_name(var)?,
                block: self.iblock_find(block)?,
                source: child(self, source)?,
                out_block: self.iblock_find(out_block)?,
                body: child(self, body)?,
                seq: self.iseq_find(seq)?,
            },
            Expr::DefRef(d) => Node::DefRef(self.idef_find(d)?),
            Expr::Sized { expr, hint } => Node::Sized {
                expr: child(self, expr)?,
                hint: hint.clone(),
            },
        })
    }
}

/// The direct children of a node.
fn node_children(node: &Node) -> Vec<ExprId> {
    match node {
        Node::Var(_)
        | Node::Int(_)
        | Node::Bool(_)
        | Node::Str(_)
        | Node::Empty
        | Node::DefRef(_) => vec![],
        Node::Lam { body, .. } => vec![*body],
        Node::App { func, arg } => vec![*func, *arg],
        Node::Tuple(items) => items.clone(),
        Node::Proj { tuple, .. } => vec![*tuple],
        Node::Singleton(e) => vec![*e],
        Node::Union { left, right } => vec![*left, *right],
        Node::FlatMap { func } => vec![*func],
        Node::FoldL { init, func } => vec![*init, *func],
        Node::If {
            cond,
            then_branch,
            else_branch,
        } => vec![*cond, *then_branch, *else_branch],
        Node::Prim { args, .. } => args.clone(),
        Node::For { source, body, .. } => vec![*source, *body],
        Node::Sized { expr, .. } => vec![*expr],
    }
}

fn env_fingerprint(env: &TypeEnv) -> u64 {
    let mut h = FxHasher::default();
    for (k, v) in env {
        k.hash(&mut h);
        v.to_string().hash(&mut h);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn interning_is_hash_consed() {
        let mut it = Interner::new();
        let a = parse("for (x <- R) [x]").unwrap();
        let b = parse("for (x <- R) [x]").unwrap();
        let ia = it.intern(&a);
        let ib = it.intern(&b);
        assert_eq!(ia, ib, "structurally equal terms share one id");
        let nodes_before = it.len();
        // A superterm reuses every existing node plus the new spine.
        let c = parse("for (y <- for (x <- R) [x]) [y]").unwrap();
        let ic = it.intern(&c);
        assert_ne!(ic, ia);
        assert!(it.len() > nodes_before);
        assert_eq!(it.to_expr(ic), c);
    }

    #[test]
    fn size_is_memoized_node_count() {
        let mut it = Interner::new();
        let e = parse("for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []").unwrap();
        let id = it.intern(&e);
        assert_eq!(it.size(id), e.node_count());
    }

    #[test]
    fn canonical_collapses_renamings() {
        let mut it = Interner::new();
        let a = parse("for (xB [k1] <- R) for (x <- xB) [x]").unwrap();
        let b = parse("for (yB [k7] <- R) for (x <- yB) [x]").unwrap();
        assert_eq!(it.canonical(&a), it.canonical(&b));
        let c = parse("for (xB [k1] <- S) for (x <- xB) [x]").unwrap();
        assert_ne!(it.canonical(&a), it.canonical(&c));
    }

    #[test]
    fn find_canonical_is_read_only_twin() {
        let mut it = Interner::new();
        let a = parse("for (xB [k1] <- R) for (x <- xB) [x]").unwrap();
        let b = parse("for (yB [k9] <- R) for (z <- yB) [z]").unwrap();
        assert_eq!(it.find_canonical(&a), None, "not interned yet");
        let id = it.canonical(&a);
        let n = it.len();
        assert_eq!(it.find_canonical(&b), Some(id));
        assert_eq!(it.len(), n, "find_canonical must not intern");
    }

    #[test]
    fn roundtrip_preserves_alpha_class() {
        let mut it = Interner::new();
        let e = parse("foldL([], unfoldR(mrg))(R)").unwrap();
        let id = it.canonical(&e);
        let back = it.to_expr(id);
        assert!(back.alpha_eq(&e.alpha_canonical()));
    }

    #[test]
    fn seq_annotations_intern_and_roundtrip() {
        use crate::ast::SeqAnnot;
        let mut it = Interner::new();
        let mut e = parse("for (x <- R) [x]").unwrap();
        if let Expr::For { seq, .. } = &mut e {
            *seq = Some(SeqAnnot {
                from: "HDD".into(),
                to: "RAM".into(),
            });
        }
        let id = it.intern(&e);
        assert_eq!(it.to_expr(id), e);
        // The annotation distinguishes terms.
        let plain = parse("for (x <- R) [x]").unwrap();
        assert_ne!(it.intern(&plain), id);
    }

    #[test]
    fn typecheck_is_memoized() {
        use crate::Type;
        let mut it = Interner::new();
        let e = parse("for (x <- R) [x]").unwrap();
        let env: TypeEnv = [("R".to_string(), Type::list(Type::Int))]
            .into_iter()
            .collect();
        let id = it.intern(&e);
        let t1 = it.typecheck(id, &env).unwrap();
        let t2 = it.typecheck(id, &env).unwrap();
        assert_eq!(t1, t2);
        // A different env invalidates transparently.
        let env2: TypeEnv = [("R".to_string(), Type::list(Type::Bool))]
            .into_iter()
            .collect();
        let t3 = it.typecheck(id, &env2).unwrap();
        assert_ne!(t1, t3);
    }
}
