//! The OCAL abstract syntax tree.
//!
//! OCAL is Monad Calculus on lists extended with `foldL` (paper §3). The
//! constructs here mirror the paper exactly:
//!
//! * λ-abstraction and application (functions take a single, possibly
//!   tuple-typed, argument),
//! * tuples `⟨e₁,…,eₙ⟩` and 1-based projections `e.i`,
//! * singleton `[e]`, empty list `[]`, list union `⊔` (concatenation),
//! * `flatMap(f)` and `foldL(c, f)` as function-forming constructs,
//! * the blocked functional loop `for (x [k] ← e₁) [k₂] e₂` (named
//!   definition in the paper's Figure 2; a first-class construct here because
//!   most transformation rules manipulate it),
//! * named definitions (`head`, `treeFold[k]`, `unfoldR`, `mrg`, …) as
//!   [`DefName`] references — the paper's extensibility mechanism,
//! * sequentiality annotations `[m₁ ≻ m₂]` (rule *seq-ac*) and programmer
//!   result-size annotations (paper §5.1).

use crate::types::Type;
use std::collections::BTreeSet;
use std::fmt;

/// A block/buffer size attached to an iteration construct: either a concrete
/// element count or a named tunable parameter (chosen later by the
/// non-linear optimizer).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BlockSize {
    /// A fixed number of elements.
    Const(u64),
    /// A named parameter, e.g. `k1`, left for the parameter optimizer.
    Param(String),
}

impl BlockSize {
    /// The default block size `1` (element-at-a-time).
    pub fn one() -> BlockSize {
        BlockSize::Const(1)
    }

    /// True if this is the constant `1`.
    pub fn is_one(&self) -> bool {
        matches!(self, BlockSize::Const(1))
    }

    /// The parameter name, if symbolic.
    pub fn param_name(&self) -> Option<&str> {
        match self {
            BlockSize::Param(p) => Some(p),
            BlockSize::Const(_) => None,
        }
    }
}

impl fmt::Display for BlockSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockSize::Const(n) => write!(f, "{n}"),
            BlockSize::Param(p) => write!(f, "{p}"),
        }
    }
}

/// A sequentiality annotation `[m₁ ≻ m₂]` (paper rule *seq-ac*): all data
/// transfers from node `from` to node `to` performed by the annotated loop
/// happen sequentially, so the costing engine may merge their `InitCom`
/// events into `max(1, total / min(maxSeqR, maxSeqW))`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeqAnnot {
    /// Source hierarchy node name.
    pub from: String,
    /// Destination hierarchy node name.
    pub to: String,
}

/// Primitive functions on atomic values (paper §3: boolean connectives,
/// equality/comparison on `D`, constant-memory arithmetic, and a hash
/// function used by hash partitioning).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PrimOp {
    /// Structural equality `==`.
    Eq,
    /// Structural inequality `!=`.
    Ne,
    /// Less-than `<` on the ordered domain `D`.
    Lt,
    /// Less-or-equal `<=`.
    Le,
    /// Greater-than `>`.
    Gt,
    /// Greater-or-equal `>=`.
    Ge,
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer division (truncating; errors on zero).
    Div,
    /// Integer remainder (errors on zero).
    Mod,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Boolean negation.
    Not,
    /// Deterministic hash of an atomic value to a non-negative integer.
    Hash,
}

impl PrimOp {
    /// Number of arguments the primitive takes.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Not | PrimOp::Hash => 1,
            _ => 2,
        }
    }

    /// Concrete-syntax spelling.
    pub fn symbol(self) -> &'static str {
        match self {
            PrimOp::Eq => "==",
            PrimOp::Ne => "!=",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Mod => "%",
            PrimOp::And => "&&",
            PrimOp::Or => "||",
            PrimOp::Not => "!",
            PrimOp::Hash => "hash",
        }
    }
}

/// Named definitions (paper Figure 2). Definitions do not add expressive
/// power — each has a base-language expansion (see [`crate::defs`]) — but
/// they carry efficient built-in implementations, code-generator plugins and
/// cost-function plugins, which is the paper's extensibility story.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DefName {
    /// `head : [τ] → τ` (undefined on the empty list).
    Head,
    /// `tail : [τ] → [τ]` (undefined on the empty list).
    Tail,
    /// `length : [τ] → Int`.
    Length,
    /// `avg : [Int] → Int`.
    Avg,
    /// `treeFold[k](⟨c, f⟩) : [τ] → τ` — tree-shaped bracketing of a k-ary
    /// function; the divide-and-conquer recursion schema behind Merge-Sort.
    TreeFold(BlockSize),
    /// `unfoldR(f) : ⟨[τ₁],…,[τₙ]⟩ → [τᵣ]` — simultaneous iteration over a
    /// tuple of lists, consuming at most one head per list per step. The
    /// blocking fields record the input/output block sizes introduced by the
    /// blocked-`unfoldR` variant of *apply-block* (paper §6.2: "we also use
    /// an analogous rule to introduce bigger blocks to our implementation of
    /// unfoldR"); they do not change the semantics, only the costing.
    UnfoldR {
        /// Input block size (elements fetched per transfer, per list).
        b_in: BlockSize,
        /// Output block size (elements written per transfer).
        b_out: BlockSize,
    },
    /// `mrg : ⟨[τ],[τ]⟩ → ⟨[τ], ⟨[τ],[τ]⟩⟩` — one step of merging two sorted
    /// lists (used as `unfoldR(mrg)`).
    Mrg,
    /// `z : ⟨[τ₁],…,[τₙ]⟩ → ⟨[⟨τ₁,…,τₙ⟩], ⟨[τ₁],…,[τₙ]⟩⟩` — one zip step
    /// over `n` lists (used as `unfoldR(z)` for column-store reads).
    Zip(u32),
    /// `partition : [⟨τ₁,…,τₙ⟩] → [⟨τ₁, [⟨τ₂,…,τₙ⟩]⟩]` — groups tuples by
    /// their first component (paper Figure 2).
    Partition,
    /// `hashPartition[s] : [τ] → [[τ]]` — distributes elements into `s`
    /// buckets by hash of their first component (of the element itself if it
    /// is atomic). Introduced by the *hash-part* rule.
    HashPartition(BlockSize),
    /// `funcPow[k](f)` — the 2ᵏ-ary power of a binary function
    /// (paper Figure 2); `funcPow[k](mrg)` acts as the 2ᵏ-way merge step.
    FuncPow(u32),
}

impl DefName {
    /// Element-at-a-time `unfoldR` (the default, pre-blocking form).
    pub fn unfoldr() -> DefName {
        DefName::UnfoldR {
            b_in: BlockSize::one(),
            b_out: BlockSize::one(),
        }
    }

    /// Number of successive applications needed to saturate the definition.
    pub fn arity(&self) -> usize {
        match self {
            DefName::Head
            | DefName::Tail
            | DefName::Length
            | DefName::Avg
            | DefName::Mrg
            | DefName::Zip(_)
            | DefName::Partition
            | DefName::HashPartition(_) => 1,
            DefName::TreeFold(_) | DefName::UnfoldR { .. } | DefName::FuncPow(_) => 2,
        }
    }

    /// Human-readable name (matches the concrete syntax).
    pub fn name(&self) -> String {
        match self {
            DefName::Head => "head".into(),
            DefName::Tail => "tail".into(),
            DefName::Length => "length".into(),
            DefName::Avg => "avg".into(),
            DefName::TreeFold(k) => format!("treeFold[{k}]"),
            DefName::UnfoldR { b_in, b_out } => {
                if b_in.is_one() && b_out.is_one() {
                    "unfoldR".into()
                } else {
                    format!("unfoldR[{b_in}, {b_out}]")
                }
            }
            DefName::Mrg => "mrg".into(),
            DefName::Zip(n) => format!("zip[{n}]"),
            DefName::Partition => "partition".into(),
            DefName::HashPartition(s) => format!("hashPartition[{s}]"),
            DefName::FuncPow(k) => format!("funcPow[{k}]"),
        }
    }
}

/// A programmer-supplied cardinality expression for size annotations
/// (paper §5.1: "we allow the programmer to annotate any expression with a
/// custom result size estimate").
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CardHint {
    /// A fixed cardinality.
    Const(u64),
    /// The cardinality variable of a named input (e.g. `x` for `length(R)`).
    Var(String),
    /// Sum of two cardinalities.
    Add(Box<CardHint>, Box<CardHint>),
    /// Product of two cardinalities.
    Mul(Box<CardHint>, Box<CardHint>),
    /// `lhs / rhs`, rounded up.
    Div(Box<CardHint>, Box<CardHint>),
}

/// A programmer-supplied annotated-type skeleton for a result size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SizeHint {
    /// An atomic value of the given byte width.
    Atom(u64),
    /// A tuple of hints.
    Tuple(Vec<SizeHint>),
    /// A list with the given element hint and cardinality.
    List(Box<SizeHint>, CardHint),
}

/// An OCAL expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Expr {
    /// A variable reference.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A boolean literal.
    Bool(bool),
    /// A string literal.
    Str(String),
    /// λ-abstraction `λx. body`.
    Lam {
        /// Bound variable.
        param: String,
        /// Function body.
        body: Box<Expr>,
    },
    /// Function application `func(arg)`.
    App {
        /// Function-position expression.
        func: Box<Expr>,
        /// Argument expression.
        arg: Box<Expr>,
    },
    /// Tuple construction `⟨e₁, …, eₙ⟩`.
    Tuple(Vec<Expr>),
    /// 1-based tuple projection `e.i`.
    Proj {
        /// The tuple expression.
        tuple: Box<Expr>,
        /// 1-based component index (paper convention).
        index: u32,
    },
    /// Singleton list `[e]`.
    Singleton(Box<Expr>),
    /// Empty list `[]`.
    Empty,
    /// List union (concatenation) `left ⊔ right`.
    Union {
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `flatMap(func)` — a function value of type `[τ₁] → [τ₂]`.
    FlatMap {
        /// Element function of type `τ₁ → [τ₂]`.
        func: Box<Expr>,
    },
    /// `foldL(init, func)` — a function value of type `[τ₁] → τ₂`.
    FoldL {
        /// Initial accumulator.
        init: Box<Expr>,
        /// Step function of type `⟨τ₂, τ₁⟩ → τ₂`.
        func: Box<Expr>,
    },
    /// Conditional `if cond then e₁ else e₂`.
    If {
        /// Boolean condition.
        cond: Box<Expr>,
        /// Taken when true.
        then_branch: Box<Expr>,
        /// Taken when false.
        else_branch: Box<Expr>,
    },
    /// Saturated primitive application.
    Prim {
        /// The primitive.
        op: PrimOp,
        /// Arguments (`op.arity()` of them).
        args: Vec<Expr>,
    },
    /// Blocked functional loop
    /// `for (var [block] ← source) [out_block] body`, optionally carrying a
    /// sequentiality annotation. With `block == 1` the variable binds each
    /// element; with a larger (or symbolic) block it binds each sub-list of
    /// up to `block` elements. The result is the concatenation of the list
    /// values produced by `body`.
    For {
        /// Loop variable.
        var: String,
        /// Input block size `k` (elements fetched per transfer).
        block: BlockSize,
        /// The iterated list.
        source: Box<Expr>,
        /// Output buffer block size `k₂` (elements written per transfer).
        out_block: BlockSize,
        /// Loop body (must produce a list).
        body: Box<Expr>,
        /// Optional `[m₁ ≻ m₂]` sequentiality annotation.
        seq: Option<SeqAnnot>,
    },
    /// A reference to a named definition.
    DefRef(DefName),
    /// A programmer result-size annotation around an expression.
    Sized {
        /// The annotated expression.
        expr: Box<Expr>,
        /// The asserted result size.
        hint: SizeHint,
    },
}

impl Expr {
    // ---- Smart constructors -------------------------------------------------

    /// Variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// λ-abstraction.
    pub fn lam(param: impl Into<String>, body: Expr) -> Expr {
        Expr::Lam {
            param: param.into(),
            body: Box::new(body),
        }
    }

    /// Application `self(arg)`.
    pub fn app(self, arg: Expr) -> Expr {
        Expr::App {
            func: Box::new(self),
            arg: Box::new(arg),
        }
    }

    /// Tuple construction.
    pub fn tuple(items: Vec<Expr>) -> Expr {
        Expr::Tuple(items)
    }

    /// 1-based projection `self.index`.
    pub fn proj(self, index: u32) -> Expr {
        debug_assert!(index >= 1, "projections are 1-based");
        Expr::Proj {
            tuple: Box::new(self),
            index,
        }
    }

    /// Singleton list `[self]`.
    pub fn singleton(self) -> Expr {
        Expr::Singleton(Box::new(self))
    }

    /// List union `self ⊔ other`.
    pub fn union(self, other: Expr) -> Expr {
        Expr::Union {
            left: Box::new(self),
            right: Box::new(other),
        }
    }

    /// Conditional.
    pub fn if_(cond: Expr, then_branch: Expr, else_branch: Expr) -> Expr {
        Expr::If {
            cond: Box::new(cond),
            then_branch: Box::new(then_branch),
            else_branch: Box::new(else_branch),
        }
    }

    /// Saturated primitive application.
    pub fn prim(op: PrimOp, args: Vec<Expr>) -> Expr {
        debug_assert_eq!(op.arity(), args.len(), "wrong arity for {op:?}");
        Expr::Prim { op, args }
    }

    /// Binary primitive shorthand.
    pub fn binop(op: PrimOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::prim(op, vec![lhs, rhs])
    }

    /// Element-at-a-time `for (var ← source) body`.
    pub fn for_each(var: impl Into<String>, source: Expr, body: Expr) -> Expr {
        Expr::For {
            var: var.into(),
            block: BlockSize::one(),
            source: Box::new(source),
            out_block: BlockSize::one(),
            body: Box::new(body),
            seq: None,
        }
    }

    /// Blocked `for (var [block] ← source) [out_block] body`.
    pub fn for_blocked(
        var: impl Into<String>,
        block: BlockSize,
        source: Expr,
        out_block: BlockSize,
        body: Expr,
    ) -> Expr {
        Expr::For {
            var: var.into(),
            block,
            source: Box::new(source),
            out_block,
            body: Box::new(body),
            seq: None,
        }
    }

    /// `flatMap(func)`.
    pub fn flat_map(func: Expr) -> Expr {
        Expr::FlatMap {
            func: Box::new(func),
        }
    }

    /// `foldL(init, func)`.
    pub fn fold_l(init: Expr, func: Expr) -> Expr {
        Expr::FoldL {
            init: Box::new(init),
            func: Box::new(func),
        }
    }

    /// Named definition reference.
    pub fn def(def: DefName) -> Expr {
        Expr::DefRef(def)
    }

    /// Wraps `self` with a programmer size annotation.
    pub fn sized(self, hint: SizeHint) -> Expr {
        Expr::Sized {
            expr: Box::new(self),
            hint,
        }
    }

    // ---- Traversal ----------------------------------------------------------

    /// Immutable references to the direct subexpressions.
    pub fn children(&self) -> Vec<&Expr> {
        match self {
            Expr::Var(_)
            | Expr::Int(_)
            | Expr::Bool(_)
            | Expr::Str(_)
            | Expr::Empty
            | Expr::DefRef(_) => vec![],
            Expr::Lam { body, .. } => vec![body],
            Expr::App { func, arg } => vec![func, arg],
            Expr::Tuple(items) => items.iter().collect(),
            Expr::Proj { tuple, .. } => vec![tuple],
            Expr::Singleton(e) => vec![e],
            Expr::Union { left, right } => vec![left, right],
            Expr::FlatMap { func } => vec![func],
            Expr::FoldL { init, func } => vec![init, func],
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => vec![cond, then_branch, else_branch],
            Expr::Prim { args, .. } => args.iter().collect(),
            Expr::For { source, body, .. } => vec![source, body],
            Expr::Sized { expr, .. } => vec![expr],
        }
    }

    /// Rebuilds this node with children transformed by `f` (same shape).
    pub fn map_children(&self, mut f: impl FnMut(&Expr) -> Expr) -> Expr {
        match self {
            Expr::Var(_)
            | Expr::Int(_)
            | Expr::Bool(_)
            | Expr::Str(_)
            | Expr::Empty
            | Expr::DefRef(_) => self.clone(),
            Expr::Lam { param, body } => Expr::Lam {
                param: param.clone(),
                body: Box::new(f(body)),
            },
            Expr::App { func, arg } => Expr::App {
                func: Box::new(f(func)),
                arg: Box::new(f(arg)),
            },
            Expr::Tuple(items) => Expr::Tuple(items.iter().map(&mut f).collect()),
            Expr::Proj { tuple, index } => Expr::Proj {
                tuple: Box::new(f(tuple)),
                index: *index,
            },
            Expr::Singleton(e) => Expr::Singleton(Box::new(f(e))),
            Expr::Union { left, right } => Expr::Union {
                left: Box::new(f(left)),
                right: Box::new(f(right)),
            },
            Expr::FlatMap { func } => Expr::FlatMap {
                func: Box::new(f(func)),
            },
            Expr::FoldL { init, func } => Expr::FoldL {
                init: Box::new(f(init)),
                func: Box::new(f(func)),
            },
            Expr::If {
                cond,
                then_branch,
                else_branch,
            } => Expr::If {
                cond: Box::new(f(cond)),
                then_branch: Box::new(f(then_branch)),
                else_branch: Box::new(f(else_branch)),
            },
            Expr::Prim { op, args } => Expr::Prim {
                op: *op,
                args: args.iter().map(&mut f).collect(),
            },
            Expr::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => Expr::For {
                var: var.clone(),
                block: block.clone(),
                source: Box::new(f(source)),
                out_block: out_block.clone(),
                body: Box::new(f(body)),
                seq: seq.clone(),
            },
            Expr::Sized { expr, hint } => Expr::Sized {
                expr: Box::new(f(expr)),
                hint: hint.clone(),
            },
        }
    }

    /// Number of AST nodes (used to bound search).
    pub fn node_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(|c| c.node_count())
            .sum::<usize>()
    }

    /// Recognizes a *fully-applied lambda spine* `((λp₁. … λpₙ. body)(a₁))…(aₙ)`
    /// and returns the `(pᵢ, aᵢ)` bindings in application order together
    /// with the innermost `body`. Returns `None` for anything else —
    /// non-applications, non-lambda heads, and over-applied spines.
    ///
    /// This is the one shared implementation of the "peel a (possibly
    /// curried) wrapper" operation; the engine's lowering, the shape
    /// matchers and the C backend all use it so the
    /// single-argument-application bug class (cf. the `app_size` fix in
    /// `ocas-cost`) cannot silently reappear in one of them.
    pub fn applied_lambda_spine(&self) -> Option<(Vec<(&str, &Expr)>, &Expr)> {
        let mut head = self;
        let mut args: Vec<&Expr> = Vec::new();
        while let Expr::App { func, arg } = head {
            args.push(arg);
            head = func;
        }
        if args.is_empty() || !matches!(head, Expr::Lam { .. }) {
            return None;
        }
        args.reverse();
        let mut bindings = Vec::with_capacity(args.len());
        let mut body = head;
        for arg in args {
            let Expr::Lam { param, body: inner } = body else {
                return None; // over-applied: more arguments than lambdas
            };
            bindings.push((param.as_str(), arg));
            body = inner;
        }
        Some((bindings, body))
    }

    // ---- Binding-aware operations -------------------------------------------

    /// Free variables of the expression.
    pub fn free_vars(&self) -> BTreeSet<String> {
        fn go(e: &Expr, bound: &mut Vec<String>, out: &mut BTreeSet<String>) {
            match e {
                Expr::Var(v) => {
                    if !bound.iter().any(|b| b == v) {
                        out.insert(v.clone());
                    }
                }
                Expr::Lam { param, body } => {
                    bound.push(param.clone());
                    go(body, bound, out);
                    bound.pop();
                }
                Expr::For {
                    var, source, body, ..
                } => {
                    go(source, bound, out);
                    bound.push(var.clone());
                    go(body, bound, out);
                    bound.pop();
                }
                other => {
                    for c in other.children() {
                        go(c, bound, out);
                    }
                }
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut Vec::new(), &mut out);
        out
    }

    /// True if `name` occurs free in the expression. Allocation-free and
    /// early-exiting — this is a hot guard in the rewrite rules, called at
    /// every tree position of every search frontier program.
    pub fn mentions(&self, name: &str) -> bool {
        fn go(e: &Expr, name: &str) -> bool {
            match e {
                Expr::Var(v) => v == name,
                Expr::Lam { param, body } => param != name && go(body, name),
                Expr::For {
                    var, source, body, ..
                } => go(source, name) || (var != name && go(body, name)),
                other => other.children().into_iter().any(|c| go(c, name)),
            }
        }
        go(self, name)
    }

    /// Capture-avoiding substitution of free occurrences of `name` by `with`.
    pub fn subst(&self, name: &str, with: &Expr) -> Expr {
        match self {
            Expr::Var(v) if v == name => with.clone(),
            Expr::Var(_) => self.clone(),
            Expr::Lam { param, body } => {
                if param == name {
                    self.clone()
                } else if with.mentions(param) {
                    let fresh = fresh_name(param, with, body);
                    let renamed = body.subst(param, &Expr::var(fresh.clone()));
                    Expr::Lam {
                        param: fresh,
                        body: Box::new(renamed.subst(name, with)),
                    }
                } else {
                    Expr::Lam {
                        param: param.clone(),
                        body: Box::new(body.subst(name, with)),
                    }
                }
            }
            Expr::For {
                var,
                block,
                source,
                out_block,
                body,
                seq,
            } => {
                let new_source = Box::new(source.subst(name, with));
                if var == name {
                    Expr::For {
                        var: var.clone(),
                        block: block.clone(),
                        source: new_source,
                        out_block: out_block.clone(),
                        body: body.clone(),
                        seq: seq.clone(),
                    }
                } else if with.mentions(var) {
                    let fresh = fresh_name(var, with, body);
                    let renamed = body.subst(var, &Expr::var(fresh.clone()));
                    Expr::For {
                        var: fresh,
                        block: block.clone(),
                        source: new_source,
                        out_block: out_block.clone(),
                        body: Box::new(renamed.subst(name, with)),
                        seq: seq.clone(),
                    }
                } else {
                    Expr::For {
                        var: var.clone(),
                        block: block.clone(),
                        source: new_source,
                        out_block: out_block.clone(),
                        body: Box::new(body.subst(name, with)),
                        seq: seq.clone(),
                    }
                }
            }
            other => other.map_children(|c| c.subst(name, with)),
        }
    }

    /// α-canonical form: bound variables renamed to `%0`, `%1`, … in binding
    /// order. Two α-equivalent expressions have identical canonical forms,
    /// which the search engine uses for deduplication.
    pub fn alpha_canonical(&self) -> Expr {
        fn go(e: &Expr, scope: &mut Vec<(String, String)>, counter: &mut usize) -> Expr {
            match e {
                Expr::Var(v) => {
                    for (orig, canon) in scope.iter().rev() {
                        if orig == v {
                            return Expr::Var(canon.clone());
                        }
                    }
                    e.clone()
                }
                Expr::Lam { param, body } => {
                    let canon = format!("%{counter}");
                    *counter += 1;
                    scope.push((param.clone(), canon.clone()));
                    let body = go(body, scope, counter);
                    scope.pop();
                    Expr::Lam {
                        param: canon,
                        body: Box::new(body),
                    }
                }
                Expr::For {
                    var,
                    block,
                    source,
                    out_block,
                    body,
                    seq,
                } => {
                    let source = go(source, scope, counter);
                    let canon = format!("%{counter}");
                    *counter += 1;
                    scope.push((var.clone(), canon.clone()));
                    let body = go(body, scope, counter);
                    scope.pop();
                    Expr::For {
                        var: canon,
                        block: block.clone(),
                        source: Box::new(source),
                        out_block: out_block.clone(),
                        body: Box::new(body),
                        seq: seq.clone(),
                    }
                }
                other => other.map_children(|c| go(c, scope, counter)),
            }
        }
        go(self, &mut Vec::new(), &mut 0)
    }

    /// α-equivalence.
    pub fn alpha_eq(&self, other: &Expr) -> bool {
        self.alpha_canonical() == other.alpha_canonical()
    }

    /// All block-size parameter names appearing in the expression (the
    /// decision variables handed to the parameter optimizer).
    pub fn block_params(&self) -> BTreeSet<String> {
        fn collect_block(b: &BlockSize, out: &mut BTreeSet<String>) {
            if let BlockSize::Param(p) = b {
                out.insert(p.clone());
            }
        }
        fn go(e: &Expr, out: &mut BTreeSet<String>) {
            if let Expr::For {
                block, out_block, ..
            } = e
            {
                collect_block(block, out);
                collect_block(out_block, out);
            }
            if let Expr::DefRef(d) = e {
                match d {
                    DefName::TreeFold(k) | DefName::HashPartition(k) => collect_block(k, out),
                    DefName::UnfoldR { b_in, b_out } => {
                        collect_block(b_in, out);
                        collect_block(b_out, out);
                    }
                    _ => {}
                }
            }
            for c in e.children() {
                go(c, out);
            }
        }
        let mut out = BTreeSet::new();
        go(self, &mut out);
        out
    }
}

/// Picks a variable name based on `base` that is free in neither `a` nor `b`.
fn fresh_name(base: &str, a: &Expr, b: &Expr) -> String {
    let fa = a.free_vars();
    let fb = b.free_vars();
    let mut i = 0u32;
    loop {
        let cand = format!("{base}_{i}");
        if !fa.contains(&cand) && !fb.contains(&cand) {
            return cand;
        }
        i += 1;
    }
}

/// Type environment for top-level programs: named inputs and their types.
pub type TypeEnv = std::collections::BTreeMap<String, Type>;

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_join() -> Expr {
        // for (x <- R) for (y <- S) if x.1 == y.1 then [<x,y>] else []
        let cond = Expr::binop(PrimOp::Eq, Expr::var("x").proj(1), Expr::var("y").proj(1));
        let body = Expr::if_(
            cond,
            Expr::tuple(vec![Expr::var("x"), Expr::var("y")]).singleton(),
            Expr::Empty,
        );
        Expr::for_each(
            "x",
            Expr::var("R"),
            Expr::for_each("y", Expr::var("S"), body),
        )
    }

    #[test]
    fn free_vars_of_join() {
        let j = naive_join();
        let fv = j.free_vars();
        assert!(fv.contains("R"));
        assert!(fv.contains("S"));
        assert!(!fv.contains("x"));
        assert!(!fv.contains("y"));
    }

    #[test]
    fn subst_avoids_capture() {
        // (λy. x ⊔ y) with x := y  must rename the binder.
        let lam = Expr::lam("y", Expr::var("x").union(Expr::var("y")));
        let result = lam.subst("x", &Expr::var("y"));
        if let Expr::Lam { param, body } = &result {
            assert_ne!(param, "y", "binder must be renamed");
            let fv = body.free_vars();
            assert!(
                fv.contains("y"),
                "substituted var must stay free: {result:?}"
            );
        } else {
            panic!("expected lambda");
        }
    }

    #[test]
    fn alpha_equivalence() {
        let a = Expr::lam("x", Expr::var("x"));
        let b = Expr::lam("y", Expr::var("y"));
        assert!(a.alpha_eq(&b));
        let c = Expr::for_each("i", Expr::var("R"), Expr::var("i").singleton());
        let d = Expr::for_each("j", Expr::var("R"), Expr::var("j").singleton());
        assert!(c.alpha_eq(&d));
        let e = Expr::for_each("i", Expr::var("R"), Expr::var("R").singleton());
        assert!(!c.alpha_eq(&e));
    }

    #[test]
    fn block_params_collected() {
        let e = Expr::for_blocked(
            "xb",
            BlockSize::Param("k1".into()),
            Expr::var("R"),
            BlockSize::Param("k2".into()),
            Expr::var("xb"),
        );
        let ps = e.block_params();
        assert!(ps.contains("k1") && ps.contains("k2"));
    }

    #[test]
    fn node_count_and_children() {
        let j = naive_join();
        assert!(j.node_count() > 10);
        assert_eq!(j.children().len(), 2); // source + body
    }

    #[test]
    fn subst_into_for_source_not_body_var() {
        let e = Expr::for_each("x", Expr::var("R"), Expr::var("x").singleton());
        let r = e.subst("x", &Expr::Int(1));
        // The bound x must be untouched.
        assert!(r.alpha_eq(&e));
        let r2 = e.subst("R", &Expr::var("T"));
        assert!(r2.mentions("T"));
    }
}
