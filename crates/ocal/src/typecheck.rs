//! Type inference for OCAL (paper Figure 1).
//!
//! The paper presents a simply-typed system; definitions like `head : [τ]→τ`
//! are polymorphic schemes instantiated at use sites. We implement standard
//! unification-based inference. Definitions with *shape-dependent* types
//! (`unfoldR`, `partition`, `treeFold[k]`, `funcPow[k]`) are handled by
//! special application rules that first resolve the argument's type — this
//! mirrors the paper's treatment of definitions as language extensions with
//! their own typing plugins.

use crate::ast::{BlockSize, DefName, Expr, PrimOp, TypeEnv};
use crate::types::Type;
use std::collections::BTreeMap;
use std::fmt;

/// Errors produced by type inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A free variable had no type in the environment.
    UnboundVariable(String),
    /// Two types failed to unify.
    Mismatch {
        /// Expected type (after resolution).
        expected: Type,
        /// Found type (after resolution).
        found: Type,
        /// Human-readable location.
        context: String,
    },
    /// A tuple projection was out of bounds or applied to a non-tuple.
    BadProjection {
        /// The resolved type of the projected expression.
        ty: Type,
        /// The 1-based index.
        index: u32,
    },
    /// Occurs-check failure (infinite type).
    InfiniteType,
    /// A shape-dependent definition could not resolve its argument's shape.
    UnresolvedShape {
        /// The definition.
        def: String,
        /// The argument type as far as it resolved.
        ty: Type,
    },
    /// A definition that must be applied appeared bare.
    BareDefinition(String),
    /// `treeFold`/`hashPartition` arity parameters must be concrete to type.
    SymbolicArity(String),
    /// The program type still contains unification variables.
    NotGround(Type),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            TypeError::Mismatch {
                expected,
                found,
                context,
            } => write!(
                f,
                "type mismatch in {context}: expected `{expected}`, found `{found}`"
            ),
            TypeError::BadProjection { ty, index } => {
                write!(f, "cannot project component {index} out of `{ty}`")
            }
            TypeError::InfiniteType => write!(f, "occurs check failed (infinite type)"),
            TypeError::UnresolvedShape { def, ty } => write!(
                f,
                "definition `{def}` needs the shape of its argument, but it only resolved to `{ty}`"
            ),
            TypeError::BareDefinition(d) => {
                write!(f, "definition `{d}` must be applied to its arguments")
            }
            TypeError::SymbolicArity(d) => write!(
                f,
                "definition `{d}` has a symbolic arity parameter; typechecking needs a constant"
            ),
            TypeError::NotGround(t) => {
                write!(f, "program type `{t}` is not fully determined")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Unification state.
struct Infer {
    subst: Vec<Option<Type>>,
    /// In lenient mode (used by [`infer_type`] on open fragments), a
    /// projection out of a still-undetermined type yields a fresh variable
    /// instead of an error; [`typecheck`] stays strict and additionally
    /// requires ground results.
    lenient: bool,
}

impl Infer {
    fn new(lenient: bool) -> Infer {
        Infer {
            subst: Vec::new(),
            lenient,
        }
    }

    fn fresh(&mut self) -> Type {
        let id = self.subst.len() as u32;
        self.subst.push(None);
        Type::Var(id)
    }

    /// Follows the substitution one level.
    fn shallow(&self, t: &Type) -> Type {
        let mut t = t.clone();
        while let Type::Var(v) = t {
            match &self.subst[v as usize] {
                Some(next) => t = next.clone(),
                None => return Type::Var(v),
            }
        }
        t
    }

    /// Fully applies the substitution.
    fn resolve(&self, t: &Type) -> Type {
        match self.shallow(t) {
            Type::Tuple(items) => Type::Tuple(items.iter().map(|i| self.resolve(i)).collect()),
            Type::List(e) => Type::List(Box::new(self.resolve(&e))),
            Type::Fun(a, r) => Type::Fun(Box::new(self.resolve(&a)), Box::new(self.resolve(&r))),
            other => other,
        }
    }

    fn occurs(&self, v: u32, t: &Type) -> bool {
        match self.shallow(t) {
            Type::Var(w) => w == v,
            Type::Tuple(items) => items.iter().any(|i| self.occurs(v, i)),
            Type::List(e) => self.occurs(v, &e),
            Type::Fun(a, r) => self.occurs(v, &a) || self.occurs(v, &r),
            _ => false,
        }
    }

    fn unify(&mut self, a: &Type, b: &Type, context: &str) -> Result<(), TypeError> {
        let (a, b) = (self.shallow(a), self.shallow(b));
        match (&a, &b) {
            (Type::Var(v), Type::Var(w)) if v == w => Ok(()),
            (Type::Var(v), other) | (other, Type::Var(v)) => {
                if self.occurs(*v, other) {
                    return Err(TypeError::InfiniteType);
                }
                self.subst[*v as usize] = Some(other.clone());
                Ok(())
            }
            (Type::Int, Type::Int) | (Type::Bool, Type::Bool) | (Type::Str, Type::Str) => Ok(()),
            (Type::List(x), Type::List(y)) => self.unify(x, y, context),
            (Type::Fun(a1, r1), Type::Fun(a2, r2)) => {
                self.unify(a1, a2, context)?;
                self.unify(r1, r2, context)
            }
            (Type::Tuple(xs), Type::Tuple(ys)) if xs.len() == ys.len() => {
                for (x, y) in xs.iter().zip(ys) {
                    self.unify(x, y, context)?;
                }
                Ok(())
            }
            _ => Err(TypeError::Mismatch {
                expected: self.resolve(&a),
                found: self.resolve(&b),
                context: context.to_string(),
            }),
        }
    }
}

fn const_arity(def: &DefName, k: &BlockSize) -> Result<usize, TypeError> {
    match k {
        BlockSize::Const(n) => Ok(*n as usize),
        BlockSize::Param(_) => Err(TypeError::SymbolicArity(def.name())),
    }
}

/// Infers the type of `expr` under `env` and requires the result to be fully
/// ground (no leftover inference variables).
pub fn typecheck(expr: &Expr, env: &TypeEnv) -> Result<Type, TypeError> {
    let mut infer = Infer::new(false);
    let mut scope: BTreeMap<String, Type> = env.clone();
    let t = infer_expr(&mut infer, &mut scope, expr)?;
    let t = infer.resolve(&t);
    if t.is_ground() {
        Ok(t)
    } else {
        Err(TypeError::NotGround(t))
    }
}

/// Infers the type of `expr` under `env`, allowing non-ground results (useful
/// for checking open program fragments such as bare lambdas).
pub fn infer_type(expr: &Expr, env: &TypeEnv) -> Result<Type, TypeError> {
    let mut infer = Infer::new(true);
    let mut scope: BTreeMap<String, Type> = env.clone();
    let t = infer_expr(&mut infer, &mut scope, expr)?;
    Ok(infer.resolve(&t))
}

fn infer_expr(
    infer: &mut Infer,
    scope: &mut BTreeMap<String, Type>,
    expr: &Expr,
) -> Result<Type, TypeError> {
    match expr {
        Expr::Var(v) => scope
            .get(v)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable(v.clone())),
        Expr::Int(_) => Ok(Type::Int),
        Expr::Bool(_) => Ok(Type::Bool),
        Expr::Str(_) => Ok(Type::Str),
        Expr::Lam { param, body } => {
            let a = infer.fresh();
            let shadowed = scope.insert(param.clone(), a.clone());
            let r = infer_expr(infer, scope, body)?;
            restore(scope, param, shadowed);
            Ok(Type::fun(a, r))
        }
        Expr::App { func, arg } => infer_app(infer, scope, func, arg),
        Expr::Tuple(items) => {
            let mut ts = Vec::with_capacity(items.len());
            for i in items {
                ts.push(infer_expr(infer, scope, i)?);
            }
            Ok(Type::Tuple(ts))
        }
        Expr::Proj { tuple, index } => {
            let t = infer_expr(infer, scope, tuple)?;
            match infer.shallow(&t) {
                Type::Tuple(items) => {
                    let i = *index as usize;
                    if i >= 1 && i <= items.len() {
                        Ok(items[i - 1].clone())
                    } else {
                        Err(TypeError::BadProjection {
                            ty: infer.resolve(&t),
                            index: *index,
                        })
                    }
                }
                Type::Var(_) if infer.lenient => Ok(infer.fresh()),
                other => Err(TypeError::BadProjection {
                    ty: infer.resolve(&other),
                    index: *index,
                }),
            }
        }
        Expr::Singleton(e) => {
            let t = infer_expr(infer, scope, e)?;
            Ok(Type::list(t))
        }
        Expr::Empty => Ok(Type::list(infer.fresh())),
        Expr::Union { left, right } => {
            let l = infer_expr(infer, scope, left)?;
            let r = infer_expr(infer, scope, right)?;
            let elem = infer.fresh();
            infer.unify(&l, &Type::list(elem.clone()), "left of ⊔")?;
            infer.unify(&r, &Type::list(elem.clone()), "right of ⊔")?;
            Ok(Type::list(elem))
        }
        Expr::FlatMap { func } => {
            let a = infer.fresh();
            let r = infer_fun_applied_to(infer, scope, func, a.clone(), "flatMap function")?;
            let b = infer.fresh();
            infer.unify(&r, &Type::list(b.clone()), "flatMap function result")?;
            Ok(Type::fun(Type::list(a), Type::list(b)))
        }
        Expr::FoldL { init, func } => {
            let c = infer_expr(infer, scope, init)?;
            let a = infer.fresh();
            let step_arg = Type::tuple(vec![c.clone(), a.clone()]);
            let r = infer_fun_applied_to(infer, scope, func, step_arg, "foldL step function")?;
            infer.unify(&r, &c, "foldL step function result")?;
            Ok(Type::fun(Type::list(a), c))
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let c = infer_expr(infer, scope, cond)?;
            infer.unify(&c, &Type::Bool, "if condition")?;
            let t = infer_expr(infer, scope, then_branch)?;
            let e = infer_expr(infer, scope, else_branch)?;
            infer.unify(&t, &e, "if branches")?;
            Ok(t)
        }
        Expr::Prim { op, args } => {
            let mut ts = Vec::with_capacity(args.len());
            for a in args {
                ts.push(infer_expr(infer, scope, a)?);
            }
            infer_prim(infer, *op, &ts)
        }
        Expr::For {
            var,
            block,
            source,
            body,
            ..
        } => {
            let s = infer_expr(infer, scope, source)?;
            let elem = infer.fresh();
            infer.unify(&s, &Type::list(elem.clone()), "for source")?;
            // Block size 1 binds elements; larger/symbolic blocks bind
            // sub-lists (paper rule apply-block).
            let bound_ty = if block.is_one() {
                elem
            } else {
                Type::list(elem)
            };
            let shadowed = scope.insert(var.clone(), bound_ty);
            let b = infer_expr(infer, scope, body)?;
            restore(scope, var, shadowed);
            let out_elem = infer.fresh();
            infer.unify(&b, &Type::list(out_elem.clone()), "for body")?;
            Ok(Type::list(out_elem))
        }
        Expr::DefRef(def) => def_scheme(infer, def),
        Expr::Sized { expr, .. } => infer_expr(infer, scope, expr),
    }
}

fn restore(scope: &mut BTreeMap<String, Type>, name: &str, old: Option<Type>) {
    match old {
        Some(t) => {
            scope.insert(name.to_string(), t);
        }
        None => {
            scope.remove(name);
        }
    }
}

/// Simple polymorphic schemes; shape-dependent definitions are rejected here
/// and handled in [`infer_app`].
fn def_scheme(infer: &mut Infer, def: &DefName) -> Result<Type, TypeError> {
    match def {
        DefName::Head => {
            let a = infer.fresh();
            Ok(Type::fun(Type::list(a.clone()), a))
        }
        DefName::Tail => {
            let a = infer.fresh();
            Ok(Type::fun(Type::list(a.clone()), Type::list(a)))
        }
        DefName::Length => {
            let a = infer.fresh();
            Ok(Type::fun(Type::list(a), Type::Int))
        }
        DefName::Avg => Ok(Type::fun(Type::list(Type::Int), Type::Int)),
        DefName::Mrg => {
            let a = infer.fresh();
            let l = Type::list(a);
            let pair = Type::tuple(vec![l.clone(), l.clone()]);
            Ok(Type::fun(pair.clone(), Type::tuple(vec![l, pair])))
        }
        DefName::Zip(n) => {
            let elems: Vec<Type> = (0..*n).map(|_| infer.fresh()).collect();
            let lists: Vec<Type> = elems.iter().cloned().map(Type::list).collect();
            let in_tuple = Type::Tuple(lists.clone());
            let out = Type::tuple(vec![Type::list(Type::Tuple(elems)), Type::Tuple(lists)]);
            Ok(Type::fun(in_tuple, out))
        }
        DefName::HashPartition(_) => {
            let a = infer.fresh();
            Ok(Type::fun(Type::list(a.clone()), Type::list(Type::list(a))))
        }
        DefName::TreeFold(_)
        | DefName::UnfoldR { .. }
        | DefName::Partition
        | DefName::FuncPow(_) => Err(TypeError::BareDefinition(def.name())),
    }
}

fn infer_app(
    infer: &mut Infer,
    scope: &mut BTreeMap<String, Type>,
    func: &Expr,
    arg: &Expr,
) -> Result<Type, TypeError> {
    // Saturated `flatMap(f)(src)`: the function's parameter type comes from
    // the *source*, so infer the source first and apply the function to its
    // element type — otherwise a λ parameter's tuple projections face an
    // unresolved type variable (the GRACE pipeline's `λq. … q.1 … q.2 …`
    // over zipped partition pairs needs this).
    if let Expr::FlatMap { func: f } = func {
        let src = infer_expr(infer, scope, arg)?;
        let elem = infer.fresh();
        infer.unify(&src, &Type::list(elem.clone()), "flatMap source")?;
        let elem = infer.resolve(&elem);
        let r = infer_fun_applied_to(infer, scope, f, elem, "flatMap function")?;
        let b = infer.fresh();
        infer.unify(&r, &Type::list(b.clone()), "flatMap function result")?;
        return Ok(Type::list(b));
    }
    // Saturated `unfoldR(f)(seed)` with a λ step: the step's parameter type
    // comes from the *seed*, so infer the seed first and check the step
    // against it (chicken-and-egg otherwise: the λ's projections need the
    // tuple shape).
    if let Expr::App {
        func: inner_func,
        arg: step,
    } = func
    {
        if matches!(&**inner_func, Expr::DefRef(DefName::UnfoldR { .. }))
            && matches!(&**step, Expr::Lam { .. } | Expr::Sized { .. })
        {
            let seed_ty = infer_expr(infer, scope, arg)?;
            let seed_ty = infer.resolve(&seed_ty);
            let Type::Tuple(lists) = &seed_ty else {
                return Err(TypeError::UnresolvedShape {
                    def: "unfoldR".into(),
                    ty: seed_ty,
                });
            };
            let step_out =
                infer_fun_applied_to(infer, scope, step, seed_ty.clone(), "unfoldR step")?;
            let tr = infer.fresh();
            let expected = Type::tuple(vec![Type::list(tr.clone()), Type::Tuple(lists.clone())]);
            infer.unify(&step_out, &expected, "unfoldR step result")?;
            return Ok(Type::list(tr));
        }
    }
    // Shape-dependent definition applications.
    if let Expr::DefRef(def) = func {
        match def {
            DefName::UnfoldR { .. } => {
                // unfoldR(f) where f : ⟨[t1..tn]⟩ → ⟨[tr], ⟨[t1..tn]⟩⟩.
                let f = infer_expr(infer, scope, arg)?;
                let f = infer.resolve(&f);
                if let Type::Fun(input, output) = &f {
                    if let (Type::Tuple(ins), Type::Tuple(outs)) = (&**input, &**output) {
                        if outs.len() == 2 {
                            if let Type::List(tr) = &outs[0] {
                                infer.unify(&outs[1], input, "unfoldR state")?;
                                let _ = ins;
                                return Ok(Type::fun(
                                    (**input).clone(),
                                    Type::list((**tr).clone()),
                                ));
                            }
                        }
                    }
                }
                return Err(TypeError::UnresolvedShape {
                    def: def.name(),
                    ty: f,
                });
            }
            DefName::Partition => {
                let l = infer_expr(infer, scope, arg)?;
                let l = infer.resolve(&l);
                if let Type::List(elem) = &l {
                    if let Type::Tuple(items) = &**elem {
                        if items.len() >= 2 {
                            let key = items[0].clone();
                            let rest = if items.len() == 2 {
                                items[1].clone()
                            } else {
                                Type::Tuple(items[1..].to_vec())
                            };
                            return Ok(Type::list(Type::tuple(vec![key, Type::list(rest)])));
                        }
                    }
                }
                return Err(TypeError::UnresolvedShape {
                    def: def.name(),
                    ty: l,
                });
            }
            DefName::TreeFold(k) => {
                // treeFold[k](⟨c, f⟩) : [a] → a with f : ⟨a×k⟩ → a.
                let n = const_arity(def, k)?;
                let t = infer_expr(infer, scope, arg)?;
                let a = infer.fresh();
                let f_in = Type::Tuple(vec![a.clone(); n]);
                let expected = Type::tuple(vec![a.clone(), Type::fun(f_in, a.clone())]);
                infer.unify(&t, &expected, "treeFold arguments")?;
                return Ok(Type::fun(Type::list(a.clone()), a));
            }
            DefName::FuncPow(k) => {
                let width = 1usize << *k;
                // funcPow[k](mrg) is the 2^k-way merge *step* (paper §6.2,
                // the unfoldR variant of inc-branching).
                if matches!(arg, Expr::DefRef(DefName::Mrg)) {
                    let a = infer.fresh();
                    let lists = Type::Tuple(vec![Type::list(a.clone()); width]);
                    return Ok(Type::fun(
                        lists.clone(),
                        Type::tuple(vec![Type::list(a), lists]),
                    ));
                }
                // Generic binary-function power: f : ⟨a,a⟩ → a.
                let f = infer_expr(infer, scope, arg)?;
                let a = infer.fresh();
                infer.unify(
                    &f,
                    &Type::fun(Type::tuple(vec![a.clone(), a.clone()]), a.clone()),
                    "funcPow argument",
                )?;
                return Ok(Type::fun(Type::Tuple(vec![a.clone(); width]), a));
            }
            _ => {}
        }
    }
    let a = infer_expr(infer, scope, arg)?;
    infer_fun_applied_to(infer, scope, func, a, "application")
}

/// Infers the result type of `func` applied to an argument of type `arg_ty`.
///
/// When `func` is syntactically a λ, the parameter is bound to `arg_ty`
/// *before* the body is inferred, so that tuple projections on the parameter
/// resolve (OCAL's multi-argument functions are all tuple-typed lambdas —
/// without this, `λ⟨a, x⟩`-style code would need type annotations).
fn infer_fun_applied_to(
    infer: &mut Infer,
    scope: &mut BTreeMap<String, Type>,
    func: &Expr,
    arg_ty: Type,
    context: &str,
) -> Result<Type, TypeError> {
    match func {
        Expr::Lam { param, body } => {
            let shadowed = scope.insert(param.clone(), arg_ty);
            let r = infer_expr(infer, scope, body);
            restore(scope, param, shadowed);
            r
        }
        Expr::Sized { expr, .. } => infer_fun_applied_to(infer, scope, expr, arg_ty, context),
        other => {
            let f = infer_expr(infer, scope, other)?;
            let r = infer.fresh();
            infer.unify(&f, &Type::fun(arg_ty, r.clone()), context)?;
            Ok(r)
        }
    }
}

fn infer_prim(infer: &mut Infer, op: PrimOp, args: &[Type]) -> Result<Type, TypeError> {
    match op {
        PrimOp::Eq | PrimOp::Ne | PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge => {
            infer.unify(&args[0], &args[1], "comparison operands")?;
            Ok(Type::Bool)
        }
        PrimOp::Add | PrimOp::Sub | PrimOp::Mul | PrimOp::Div | PrimOp::Mod => {
            infer.unify(&args[0], &Type::Int, "arithmetic operand")?;
            infer.unify(&args[1], &Type::Int, "arithmetic operand")?;
            Ok(Type::Int)
        }
        PrimOp::And | PrimOp::Or => {
            infer.unify(&args[0], &Type::Bool, "boolean operand")?;
            infer.unify(&args[1], &Type::Bool, "boolean operand")?;
            Ok(Type::Bool)
        }
        PrimOp::Not => {
            infer.unify(&args[0], &Type::Bool, "boolean operand")?;
            Ok(Type::Bool)
        }
        PrimOp::Hash => Ok(Type::Int),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Expr as E;

    fn pair_rel() -> Type {
        Type::list(Type::tuple(vec![Type::Int, Type::Int]))
    }

    fn join_env() -> TypeEnv {
        let mut env = TypeEnv::new();
        env.insert("R".into(), pair_rel());
        env.insert("S".into(), pair_rel());
        env
    }

    fn naive_join() -> Expr {
        let cond = E::binop(PrimOp::Eq, E::var("x").proj(1), E::var("y").proj(1));
        let body = E::if_(
            cond,
            E::tuple(vec![E::var("x"), E::var("y")]).singleton(),
            E::Empty,
        );
        E::for_each("x", E::var("R"), E::for_each("y", E::var("S"), body))
    }

    #[test]
    fn join_types_as_list_of_pairs() {
        let t = typecheck(&naive_join(), &join_env()).unwrap();
        let pair = Type::tuple(vec![Type::Int, Type::Int]);
        assert_eq!(t, Type::list(Type::tuple(vec![pair.clone(), pair])));
    }

    #[test]
    fn blocked_for_binds_sublists() {
        // for (xb [k] <- R) for (x <- xb) [x]  : [<Int,Int>]
        let inner = E::for_each("x", E::var("xb"), E::var("x").singleton());
        let e = E::for_blocked(
            "xb",
            BlockSize::Param("k".into()),
            E::var("R"),
            BlockSize::one(),
            inner,
        );
        let t = typecheck(&e, &join_env()).unwrap();
        assert_eq!(t, pair_rel());
    }

    #[test]
    fn fold_length() {
        // foldL(0, \a. a.1 + 1)(R)
        let step = E::lam("a", E::binop(PrimOp::Add, E::var("a").proj(1), E::Int(1)));
        let e = E::fold_l(E::Int(0), step).app(E::var("R"));
        assert_eq!(typecheck(&e, &join_env()).unwrap(), Type::Int);
    }

    #[test]
    fn head_is_polymorphic() {
        let env: TypeEnv = [("L".to_string(), Type::list(Type::Str))]
            .into_iter()
            .collect();
        let e = E::def(DefName::Head).app(E::var("L"));
        assert_eq!(typecheck(&e, &env).unwrap(), Type::Str);
    }

    #[test]
    fn unfoldr_mrg_merges_two_lists() {
        let env: TypeEnv = [(
            "P".to_string(),
            Type::tuple(vec![Type::list(Type::Int), Type::list(Type::Int)]),
        )]
        .into_iter()
        .collect();
        let e = E::def(DefName::unfoldr())
            .app(E::def(DefName::Mrg))
            .app(E::var("P"));
        assert_eq!(typecheck(&e, &env).unwrap(), Type::list(Type::Int));
    }

    #[test]
    fn treefold_insertion_sort_types() {
        // foldL([], unfoldR(mrg)) : [[Int]] -> [Int]
        let env: TypeEnv = [("R".to_string(), Type::list(Type::list(Type::Int)))]
            .into_iter()
            .collect();
        let sort = E::fold_l(
            E::Empty,
            E::def(DefName::unfoldr()).app(E::def(DefName::Mrg)),
        )
        .app(E::var("R"));
        assert_eq!(typecheck(&sort, &env).unwrap(), Type::list(Type::Int));

        // treeFold[4]([], unfoldR(funcPow[2](mrg))) : [[Int]] -> [Int]
        let step =
            E::def(DefName::unfoldr()).app(E::def(DefName::FuncPow(2)).app(E::def(DefName::Mrg)));
        let tf = E::def(DefName::TreeFold(BlockSize::Const(4)))
            .app(E::tuple(vec![E::Empty, step]))
            .app(E::var("R"));
        assert_eq!(typecheck(&tf, &env).unwrap(), Type::list(Type::Int));
    }

    #[test]
    fn zip_for_column_store() {
        let env: TypeEnv = [(
            "C".to_string(),
            Type::tuple(vec![Type::list(Type::Int), Type::list(Type::Int)]),
        )]
        .into_iter()
        .collect();
        let e = E::def(DefName::unfoldr())
            .app(E::def(DefName::Zip(2)))
            .app(E::var("C"));
        assert_eq!(
            typecheck(&e, &env).unwrap(),
            Type::list(Type::tuple(vec![Type::Int, Type::Int]))
        );
    }

    #[test]
    fn flat_map_over_zipped_partitions_typechecks() {
        // The GRACE pipeline the *hash-part* rule emits: the λ's parameter
        // is a pair of buckets, and its projections must resolve from the
        // zipped source (regression: this used to fail with "cannot
        // project component 1 out of `?t`", so no GRACE candidate ever
        // survived the search's type filter).
        let env = join_env();
        let p = crate::parse(
            "flatMap(\\q. for (x <- q.1) for (y <- q.2) if x.1 == y.1 then [<x, y>] else [])\
             (unfoldR(zip[2])(<hashPartition[s0](R), hashPartition[s0](S)>))",
        )
        .unwrap();
        let join_row = Type::tuple(vec![
            Type::tuple(vec![Type::Int, Type::Int]),
            Type::tuple(vec![Type::Int, Type::Int]),
        ]);
        assert_eq!(typecheck(&p, &env).unwrap(), Type::list(join_row));
    }

    #[test]
    fn partition_groups_by_first() {
        let env: TypeEnv = [("R".to_string(), pair_rel())].into_iter().collect();
        let e = E::def(DefName::Partition).app(E::var("R"));
        assert_eq!(
            typecheck(&e, &env).unwrap(),
            Type::list(Type::tuple(vec![Type::Int, Type::list(Type::Int)]))
        );
    }

    #[test]
    fn hash_partition_buckets() {
        let env: TypeEnv = [("R".to_string(), pair_rel())].into_iter().collect();
        let e = E::def(DefName::HashPartition(BlockSize::Param("s".into()))).app(E::var("R"));
        assert_eq!(typecheck(&e, &env).unwrap(), Type::list(pair_rel()));
    }

    #[test]
    fn errors_are_reported() {
        let env = join_env();
        assert!(matches!(
            typecheck(&E::var("missing"), &env),
            Err(TypeError::UnboundVariable(_))
        ));
        let bad = E::binop(PrimOp::Add, E::var("R"), E::Int(1));
        assert!(matches!(
            typecheck(&bad, &env),
            Err(TypeError::Mismatch { .. })
        ));
        let proj = E::var("R").proj(3);
        assert!(matches!(
            typecheck(&proj, &env),
            Err(TypeError::BadProjection { .. })
        ));
    }

    #[test]
    fn if_branches_must_agree() {
        let e = E::if_(E::Bool(true), E::Int(1), E::Str("x".into()));
        assert!(matches!(
            typecheck(&e, &TypeEnv::new()),
            Err(TypeError::Mismatch { .. })
        ));
    }

    #[test]
    fn order_inputs_wrapper_types() {
        // λp. f(if length(p.1) <= length(p.2) then <p.1,p.2> else <p.2,p.1>)
        // with f the naive join as a lambda over the pair.
        let body = naive_join()
            .subst("R", &E::var("q").proj(1))
            .subst("S", &E::var("q").proj(2));
        let f = E::lam("q", body);
        let len = |i| E::def(DefName::Length).app(E::var("p").proj(i));
        let sel = E::if_(
            E::binop(PrimOp::Le, len(1), len(2)),
            E::tuple(vec![E::var("p").proj(1), E::var("p").proj(2)]),
            E::tuple(vec![E::var("p").proj(2), E::var("p").proj(1)]),
        );
        let wrapped = E::lam("p", f.app(sel));
        let t = infer_type(&wrapped, &TypeEnv::new());
        // Applied to the pair of relations it must produce the join type.
        let applied = wrapped.app(E::tuple(vec![E::var("R"), E::var("S")]));
        let ty = typecheck(&applied, &join_env()).unwrap();
        let pair = Type::tuple(vec![Type::Int, Type::Int]);
        assert_eq!(ty, Type::list(Type::tuple(vec![pair.clone(), pair])));
        assert!(t.is_ok());
    }
}
