//! Runtime values for the OCAL reference interpreter.

use crate::ast::{DefName, Expr};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

/// A runtime value. Data values (`Int`, `Bool`, `Str`, `Tuple`, `List`)
/// correspond to the storable types `τ ::= D | ⟨τ,…⟩ | [τ]`; the remaining
/// variants are function values that only occur in function position.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(Rc<str>),
    /// Tuple of values.
    Tuple(Rc<Vec<Value>>),
    /// List of values.
    List(Rc<Vec<Value>>),
    /// λ-closure.
    Closure(Rc<Closure>),
    /// A (possibly partially applied) named definition.
    Builtin {
        /// The definition.
        def: DefName,
        /// Arguments supplied so far (fewer than `def.arity()`).
        applied: Vec<Value>,
    },
    /// `flatMap(f)` as a function value.
    FlatMapF(Rc<Value>),
    /// `foldL(c, f)` as a function value (`.0` is `c`, `.1` is `f`).
    FoldLF(Rc<(Value, Value)>),
}

/// Captured λ-abstraction.
#[derive(Debug)]
pub struct Closure {
    /// The bound parameter name.
    pub param: String,
    /// The body expression.
    pub body: Expr,
    /// The captured environment.
    pub env: Env,
}

/// A persistent (linked) binding environment; cloning is O(1) and extending
/// does not disturb previously captured closures.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Rc<Frame>>);

#[derive(Debug)]
struct Frame {
    name: String,
    value: Value,
    parent: Env,
}

impl Env {
    /// The empty environment.
    pub fn empty() -> Env {
        Env(None)
    }

    /// Builds an environment from a map of top-level inputs.
    pub fn from_inputs(inputs: &BTreeMap<String, Value>) -> Env {
        let mut env = Env::empty();
        for (k, v) in inputs {
            env = env.bind(k.clone(), v.clone());
        }
        env
    }

    /// Returns a new environment with `name` bound to `value`.
    pub fn bind(&self, name: impl Into<String>, value: Value) -> Env {
        Env(Some(Rc::new(Frame {
            name: name.into(),
            value,
            parent: self.clone(),
        })))
    }

    /// Looks up the innermost binding of `name`.
    pub fn lookup(&self, name: &str) -> Option<&Value> {
        let mut cur = self;
        while let Some(frame) = &cur.0 {
            if frame.name == name {
                return Some(&frame.value);
            }
            cur = &frame.parent;
        }
        None
    }
}

impl Value {
    /// Builds a list of integers.
    pub fn int_list(items: &[i64]) -> Value {
        Value::List(Rc::new(items.iter().copied().map(Value::Int).collect()))
    }

    /// Builds a list of integer pairs (a binary relation).
    pub fn pair_list(items: &[(i64, i64)]) -> Value {
        Value::List(Rc::new(
            items
                .iter()
                .map(|(a, b)| Value::Tuple(Rc::new(vec![Value::Int(*a), Value::Int(*b)])))
                .collect(),
        ))
    }

    /// Builds a list value from parts.
    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Rc::new(items))
    }

    /// Builds a tuple value from parts.
    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(Rc::new(items))
    }

    /// The contained list, if this is a list.
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// The contained integer, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// True for storable (first-order) data values.
    pub fn is_data(&self) -> bool {
        match self {
            Value::Int(_) | Value::Bool(_) | Value::Str(_) => true,
            Value::Tuple(items) | Value::List(items) => items.iter().all(Value::is_data),
            _ => false,
        }
    }

    /// Size of the value in bytes under the cost model's conventions:
    /// atomic values occupy their machine width (8 for `Int`, 1 for `Bool`,
    /// string length for `Str`); tuples and lists are the sum of their parts.
    pub fn byte_size(&self) -> u64 {
        match self {
            Value::Int(_) => 8,
            Value::Bool(_) => 1,
            Value::Str(s) => s.len() as u64,
            Value::Tuple(items) | Value::List(items) => items.iter().map(Value::byte_size).sum(),
            _ => 0,
        }
    }
}

/// Structural equality on data values (function values never compare equal).
impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Tuple(a), Value::Tuple(b)) | (Value::List(a), Value::List(b)) => a == b,
            _ => false,
        }
    }
}

/// Total order on data values of the same shape (the paper's domain `D` is
/// totally ordered; tuples and lists compare lexicographically). Returns
/// `None` when the shapes differ or a function value is involved.
pub fn value_cmp(a: &Value, b: &Value) -> Option<Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Some(x.cmp(y)),
        (Value::Bool(x), Value::Bool(y)) => Some(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Tuple(xs), Value::Tuple(ys)) | (Value::List(xs), Value::List(ys)) => {
            for (x, y) in xs.iter().zip(ys.iter()) {
                match value_cmp(x, y)? {
                    Ordering::Equal => continue,
                    other => return Some(other),
                }
            }
            Some(xs.len().cmp(&ys.len()))
        }
        _ => None,
    }
}

/// Deterministic structural hash (FNV-1a). This is the function behind the
/// `hash` primitive and `hashPartition[s]`; the C code generator emits the
/// same function so partitioning decisions agree across backends.
pub fn stable_hash(v: &Value) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    fn mix(h: u64, byte: u8) -> u64 {
        (h ^ u64::from(byte)).wrapping_mul(PRIME)
    }
    fn go(v: &Value, mut h: u64) -> u64 {
        match v {
            Value::Int(n) => {
                h = mix(h, 1);
                for b in n.to_le_bytes() {
                    h = mix(h, b);
                }
                h
            }
            Value::Bool(b) => mix(mix(h, 2), u8::from(*b)),
            Value::Str(s) => {
                h = mix(h, 3);
                for b in s.bytes() {
                    h = mix(h, b);
                }
                h
            }
            Value::Tuple(items) => {
                h = mix(h, 4);
                for i in items.iter() {
                    h = go(i, h);
                }
                h
            }
            Value::List(items) => {
                h = mix(h, 5);
                for i in items.iter() {
                    h = go(i, h);
                }
                h
            }
            _ => mix(h, 6),
        }
    }
    go(v, OFFSET)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => write!(f, "{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(items) => {
                write!(f, "<")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
            Value::List(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Closure(_) => write!(f, "<closure>"),
            Value::Builtin { def, applied } => {
                write!(f, "<{}:{}/{}>", def.name(), applied.len(), def.arity())
            }
            Value::FlatMapF(_) => write!(f, "<flatMap>"),
            Value::FoldLF(_) => write!(f, "<foldL>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_shadowing() {
        let env = Env::empty()
            .bind("x", Value::Int(1))
            .bind("x", Value::Int(2));
        assert_eq!(env.lookup("x"), Some(&Value::Int(2)));
        assert_eq!(env.lookup("y"), None);
    }

    #[test]
    fn value_ordering_lexicographic() {
        let a = Value::tuple(vec![Value::Int(1), Value::Int(9)]);
        let b = Value::tuple(vec![Value::Int(2), Value::Int(0)]);
        assert_eq!(value_cmp(&a, &b), Some(Ordering::Less));
        let l1 = Value::int_list(&[1, 2]);
        let l2 = Value::int_list(&[1, 2, 3]);
        assert_eq!(value_cmp(&l1, &l2), Some(Ordering::Less));
        assert_eq!(value_cmp(&Value::Int(1), &Value::Bool(true)), None);
    }

    #[test]
    fn stable_hash_is_stable_and_structural() {
        let a = Value::tuple(vec![Value::Int(42), Value::Str("k".into())]);
        let b = Value::tuple(vec![Value::Int(42), Value::Str("k".into())]);
        assert_eq!(stable_hash(&a), stable_hash(&b));
        let c = Value::tuple(vec![Value::Int(43), Value::Str("k".into())]);
        assert_ne!(stable_hash(&a), stable_hash(&c));
        // Lists and tuples with the same content hash differently.
        let t = Value::tuple(vec![Value::Int(1)]);
        let l = Value::list(vec![Value::Int(1)]);
        assert_ne!(stable_hash(&t), stable_hash(&l));
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(7).byte_size(), 8);
        assert_eq!(Value::pair_list(&[(1, 2), (3, 4)]).byte_size(), 32);
    }
}
