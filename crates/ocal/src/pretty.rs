//! Pretty-printing of OCAL expressions in (ASCII) paper-like concrete syntax.
//!
//! The printed form round-trips through [`crate::parser`]:
//!
//! ```text
//! for (x [k1] <- R) [k2] if x.1 == y.1 then [<x, y>] else []
//! \p. foldL(0, \a. a.1 + a.2)(p)
//! treeFold[4](<[], unfoldR(funcPow[2](mrg))>)(R)
//! ```

use crate::ast::{Expr, PrimOp};
use std::fmt;

/// Wrapper giving `Expr` a `Display` with the concrete syntax.
pub struct Pretty<'a>(pub &'a Expr);

impl fmt::Display for Pretty<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self.0, 0)
    }
}

/// Renders an expression to a string in concrete syntax.
pub fn pretty(e: &Expr) -> String {
    Pretty(e).to_string()
}

/// Precedence levels: 0 = lambda/if/for bodies, 2 = `||`, 3 = `&&`,
/// 4 = comparisons, 5 = `+ -`, 6 = `* / %`, 7 = union, 8 = application,
/// 9 = projection/atoms.
fn prim_prec(op: PrimOp) -> u8 {
    match op {
        PrimOp::Or => 2,
        PrimOp::And => 3,
        PrimOp::Eq | PrimOp::Ne | PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge => 4,
        PrimOp::Add | PrimOp::Sub => 5,
        PrimOp::Mul | PrimOp::Div | PrimOp::Mod => 6,
        PrimOp::Not | PrimOp::Hash => 8,
    }
}

fn expr_prec(e: &Expr) -> u8 {
    match e {
        Expr::Lam { .. } | Expr::If { .. } | Expr::For { .. } => 0,
        Expr::Prim { op, .. } => prim_prec(*op),
        Expr::Union { .. } => 7,
        Expr::App { .. } => 8,
        _ => 9,
    }
}

fn write_paren(f: &mut fmt::Formatter<'_>, e: &Expr, min_prec: u8) -> fmt::Result {
    if expr_prec(e) < min_prec {
        write!(f, "(")?;
        write_expr(f, e, 0)?;
        write!(f, ")")
    } else {
        write_expr(f, e, min_prec)
    }
}

fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr, _min: u8) -> fmt::Result {
    match e {
        Expr::Var(v) => write!(f, "{v}"),
        Expr::Int(n) => write!(f, "{n}"),
        Expr::Bool(b) => write!(f, "{b}"),
        Expr::Str(s) => write!(f, "{s:?}"),
        Expr::Lam { param, body } => {
            write!(f, "\\{param}. ")?;
            write_expr(f, body, 0)
        }
        Expr::App { func, arg } => {
            write_paren(f, func, 8)?;
            write!(f, "(")?;
            write_expr(f, arg, 0)?;
            write!(f, ")")
        }
        Expr::Tuple(items) => {
            write!(f, "<")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(f, item, 0)?;
            }
            write!(f, ">")
        }
        Expr::Proj { tuple, index } => {
            write_paren(f, tuple, 9)?;
            write!(f, ".{index}")
        }
        Expr::Singleton(inner) => {
            write!(f, "[")?;
            write_expr(f, inner, 0)?;
            write!(f, "]")
        }
        Expr::Empty => write!(f, "[]"),
        Expr::Union { left, right } => {
            write_paren(f, left, 7)?;
            write!(f, " ++ ")?;
            write_paren(f, right, 8)
        }
        Expr::FlatMap { func } => {
            write!(f, "flatMap(")?;
            write_expr(f, func, 0)?;
            write!(f, ")")
        }
        Expr::FoldL { init, func } => {
            write!(f, "foldL(")?;
            write_expr(f, init, 0)?;
            write!(f, ", ")?;
            write_expr(f, func, 0)?;
            write!(f, ")")
        }
        Expr::If {
            cond,
            then_branch,
            else_branch,
        } => {
            write!(f, "if ")?;
            write_paren(f, cond, 1)?;
            write!(f, " then ")?;
            write_paren(f, then_branch, 1)?;
            write!(f, " else ")?;
            write_expr(f, else_branch, 0)
        }
        Expr::Prim { op, args } => match op {
            PrimOp::Not => {
                write!(f, "!")?;
                write_paren(f, &args[0], 8)
            }
            PrimOp::Hash => {
                write!(f, "hash(")?;
                write_expr(f, &args[0], 0)?;
                write!(f, ")")
            }
            binop => {
                let p = prim_prec(*binop);
                write_paren(f, &args[0], p)?;
                write!(f, " {} ", binop.symbol())?;
                write_paren(f, &args[1], p + 1)
            }
        },
        Expr::For {
            var,
            block,
            source,
            out_block,
            body,
            seq,
        } => {
            write!(f, "for")?;
            if let Some(s) = seq {
                write!(f, "[{} >> {}]", s.from, s.to)?;
            }
            write!(f, " ({var}")?;
            if !block.is_one() {
                write!(f, " [{block}]")?;
            }
            write!(f, " <- ")?;
            write_paren(f, source, 1)?;
            write!(f, ")")?;
            if !out_block.is_one() {
                write!(f, " [{out_block}]")?;
            }
            write!(f, " ")?;
            write_expr(f, body, 0)
        }
        Expr::DefRef(def) => write!(f, "{}", def.name()),
        Expr::Sized { expr, .. } => {
            write!(f, "@sized ")?;
            write_paren(f, expr, 9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{BlockSize, DefName, Expr as E};

    #[test]
    fn join_prints_like_the_paper() {
        let cond = E::binop(PrimOp::Eq, E::var("x").proj(1), E::var("y").proj(1));
        let body = E::if_(
            cond,
            E::tuple(vec![E::var("x"), E::var("y")]).singleton(),
            E::Empty,
        );
        let join = E::for_each("x", E::var("R"), E::for_each("y", E::var("S"), body));
        assert_eq!(
            pretty(&join),
            "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []"
        );
    }

    #[test]
    fn blocked_for_shows_blocks() {
        let e = E::for_blocked(
            "xb",
            BlockSize::Param("k1".into()),
            E::var("R"),
            BlockSize::Param("k2".into()),
            E::var("xb"),
        );
        assert_eq!(pretty(&e), "for (xb [k1] <- R) [k2] xb");
    }

    #[test]
    fn treefold_prints_with_arity() {
        let step =
            E::def(DefName::unfoldr()).app(E::def(DefName::FuncPow(2)).app(E::def(DefName::Mrg)));
        let tf = E::def(DefName::TreeFold(BlockSize::Const(4)))
            .app(E::tuple(vec![E::Empty, step]))
            .app(E::var("R"));
        assert_eq!(
            pretty(&tf),
            "treeFold[4](<[], unfoldR(funcPow[2](mrg))>)(R)"
        );
    }

    #[test]
    fn precedence_parenthesization() {
        let e = E::binop(
            PrimOp::Mul,
            E::binop(PrimOp::Add, E::var("a"), E::var("b")),
            E::var("c"),
        );
        assert_eq!(pretty(&e), "(a + b) * c");
        let l = E::lam("x", E::var("x")).app(E::Int(1));
        assert_eq!(pretty(&l), "(\\x. x)(1)");
    }
}
