//! Parser for the ASCII concrete syntax of OCAL.
//!
//! The syntax is what [`crate::pretty`] prints:
//!
//! ```text
//! program  := expr
//! expr     := '\' IDENT '.' expr                    -- λ-abstraction
//!           | 'if' expr 'then' expr 'else' expr
//!           | 'for' seq? '(' IDENT blk? '<-' expr ')' blk? expr
//!           | binary operator expression
//! seq      := '[' IDENT '>>' IDENT ']'
//! blk      := '[' (NUM | IDENT) ']'
//! atoms    := NUM | 'true' | 'false' | STRING | IDENT | '<' e, … '>'
//!           | '[' e ']' | '[]' | '(' e ')' | definition names
//! postfix  := atom ('(' expr ')' | '.' NUM)*
//! ```
//!
//! Operator precedence (loosest first): `++`, `||`, `&&`, comparisons,
//! `+ -`, `* / %`, prefix `!`/`-`, application/projection.
//!
//! Caveats inherited from using `<`/`>` for both tuples and comparisons:
//! comparisons directly inside tuple literals must be parenthesized, and
//! `<-` always lexes as the `for` arrow (write `a < (-1)` when needed).

use crate::ast::{BlockSize, DefName, Expr, PrimOp, SeqAnnot};
use std::fmt;

/// Parse errors with character positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input.
    pub offset: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(i64),
    Str(String),
    // Punctuation / operators.
    LParen,
    RParen,
    LBracket,
    RBracket,
    Lt,
    Gt,
    Comma,
    Dot,
    Lambda,
    Arrow,    // <-
    SeqArrow, // >>
    PlusPlus, // ++
    EqEq,
    NotEq,
    Le,
    Ge,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    AndAnd,
    OrOr,
    Bang,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>, ParseError> {
        let mut out = Vec::new();
        loop {
            while matches!(self.peek_byte(), Some(b) if b.is_ascii_whitespace()) {
                self.pos += 1;
            }
            let start = self.pos;
            let Some(b) = self.peek_byte() else {
                out.push((start, Tok::Eof));
                return Ok(out);
            };
            let tok = match b {
                b'(' => {
                    self.pos += 1;
                    Tok::LParen
                }
                b')' => {
                    self.pos += 1;
                    Tok::RParen
                }
                b'[' => {
                    self.pos += 1;
                    Tok::LBracket
                }
                b']' => {
                    self.pos += 1;
                    Tok::RBracket
                }
                b',' => {
                    self.pos += 1;
                    Tok::Comma
                }
                b'.' => {
                    self.pos += 1;
                    Tok::Dot
                }
                b'\\' => {
                    self.pos += 1;
                    Tok::Lambda
                }
                b'<' => {
                    self.pos += 1;
                    match self.peek_byte() {
                        Some(b'-') => {
                            self.pos += 1;
                            Tok::Arrow
                        }
                        Some(b'=') => {
                            self.pos += 1;
                            Tok::Le
                        }
                        _ => Tok::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    match self.peek_byte() {
                        Some(b'=') => {
                            self.pos += 1;
                            Tok::Ge
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            Tok::SeqArrow
                        }
                        _ => Tok::Gt,
                    }
                }
                b'+' => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'+') {
                        self.pos += 1;
                        Tok::PlusPlus
                    } else {
                        Tok::Plus
                    }
                }
                b'-' => {
                    self.pos += 1;
                    Tok::Minus
                }
                b'*' => {
                    self.pos += 1;
                    Tok::Star
                }
                b'/' => {
                    self.pos += 1;
                    Tok::Slash
                }
                b'%' => {
                    self.pos += 1;
                    Tok::Percent
                }
                b'!' => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'=') {
                        self.pos += 1;
                        Tok::NotEq
                    } else {
                        Tok::Bang
                    }
                }
                b'=' => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'=') {
                        self.pos += 1;
                        Tok::EqEq
                    } else {
                        return Err(self.error("expected `==`"));
                    }
                }
                b'&' => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'&') {
                        self.pos += 1;
                        Tok::AndAnd
                    } else {
                        return Err(self.error("expected `&&`"));
                    }
                }
                b'|' => {
                    self.pos += 1;
                    if self.peek_byte() == Some(b'|') {
                        self.pos += 1;
                        Tok::OrOr
                    } else {
                        return Err(self.error("expected `||`"));
                    }
                }
                b'"' => {
                    self.pos += 1;
                    let begin = self.pos;
                    while let Some(c) = self.peek_byte() {
                        if c == b'"' {
                            break;
                        }
                        self.pos += 1;
                    }
                    if self.peek_byte() != Some(b'"') {
                        return Err(self.error("unterminated string literal"));
                    }
                    let text = std::str::from_utf8(&self.src[begin..self.pos])
                        .map_err(|_| self.error("invalid utf-8 in string"))?
                        .to_string();
                    self.pos += 1;
                    Tok::Str(text)
                }
                b'0'..=b'9' => {
                    let begin = self.pos;
                    while matches!(self.peek_byte(), Some(c) if c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                    let text = std::str::from_utf8(&self.src[begin..self.pos]).unwrap();
                    let n: i64 = text
                        .parse()
                        .map_err(|_| self.error("integer literal out of range"))?;
                    Tok::Num(n)
                }
                c if c.is_ascii_alphabetic() || c == b'_' => {
                    let begin = self.pos;
                    while matches!(self.peek_byte(), Some(c) if c.is_ascii_alphanumeric() || c == b'_')
                    {
                        self.pos += 1;
                    }
                    Tok::Ident(
                        std::str::from_utf8(&self.src[begin..self.pos])
                            .unwrap()
                            .to_string(),
                    )
                }
                other => {
                    return Err(self.error(format!("unexpected character `{}`", other as char)))
                }
            };
            out.push((start, tok));
        }
    }
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
    /// True while parsing directly inside tuple items, where a bare `<`/`>`
    /// would be ambiguous with the tuple delimiters; comparisons there must
    /// be parenthesized (the pretty printer does so).
    angle: bool,
}

/// Parses a complete OCAL expression.
pub fn parse(src: &str) -> Result<Expr, ParseError> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser {
        toks,
        pos: 0,
        angle: false,
    };
    let e = p.expr()?;
    p.expect(Tok::Eof, "end of input")?;
    Ok(e)
}

impl Parser {
    /// Runs `f` with the angle-ambiguity guard cleared (inside any
    /// explicitly delimited context such as parentheses or brackets).
    fn with_delim<T>(&mut self, f: impl FnOnce(&mut Self) -> T) -> T {
        let saved = std::mem::replace(&mut self.angle, false);
        let r = f(self);
        self.angle = saved;
        r
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].1
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].1
    }

    fn offset(&self) -> usize {
        self.toks[self.pos].0
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].1.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.offset(),
            message: message.into(),
        }
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<(), ParseError> {
        if *self.peek() == tok {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    /// Consumes one `>`. The lexer greedily turns `>>` (two nested tuple
    /// closes) into the sequentiality arrow; when a tuple close is expected,
    /// split that token back into two `>`s.
    fn expect_gt(&mut self) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Gt => {
                self.bump();
                Ok(())
            }
            Tok::SeqArrow => {
                let offset = self.toks[self.pos].0;
                self.toks[self.pos] = (offset + 1, Tok::Gt);
                Ok(())
            }
            other => Err(self.error(format!("expected `>` closing tuple, found {other:?}"))),
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(ParseError {
                offset: self.toks[self.pos.saturating_sub(1)].0,
                message: format!("expected {what}, found {other:?}"),
            }),
        }
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Lambda => {
                self.bump();
                let param = self.ident("lambda parameter")?;
                self.expect(Tok::Dot, "`.` after lambda parameter")?;
                let body = self.expr()?;
                Ok(Expr::lam(param, body))
            }
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                let cond = self.expr()?;
                self.keyword("then")?;
                let t = self.expr()?;
                self.keyword("else")?;
                let e = self.expr()?;
                Ok(Expr::if_(cond, t, e))
            }
            Tok::Ident(kw) if kw == "for" => self.for_expr(),
            _ => self.union_expr(),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.error(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn block_size(&mut self) -> Result<BlockSize, ParseError> {
        // Caller consumed `[`.
        let b = match self.bump() {
            Tok::Num(n) if n > 0 => BlockSize::Const(n as u64),
            Tok::Ident(p) => BlockSize::Param(p),
            other => return Err(self.error(format!("expected block size, found {other:?}"))),
        };
        self.expect(Tok::RBracket, "`]` after block size")?;
        Ok(b)
    }

    fn for_expr(&mut self) -> Result<Expr, ParseError> {
        self.keyword("for")?;
        let mut seq = None;
        if *self.peek() == Tok::LBracket {
            self.bump();
            let from = self.ident("sequentiality source node")?;
            self.expect(Tok::SeqArrow, "`>>` in sequentiality annotation")?;
            let to = self.ident("sequentiality destination node")?;
            self.expect(Tok::RBracket, "`]` closing sequentiality annotation")?;
            seq = Some(SeqAnnot { from, to });
        }
        self.expect(Tok::LParen, "`(` after `for`")?;
        let var = self.ident("loop variable")?;
        let mut block = BlockSize::one();
        if *self.peek() == Tok::LBracket {
            self.bump();
            block = self.block_size()?;
        }
        self.expect(Tok::Arrow, "`<-` in for")?;
        let source = self.with_delim(|p| p.expr())?;
        self.expect(Tok::RParen, "`)` closing for header")?;
        let mut out_block = BlockSize::one();
        if *self.peek() == Tok::LBracket {
            // Lookahead: `[` here is an output block only if it encloses a
            // single number/ident followed by `]` and then more input; an
            // expression like `[x]` (singleton body) is also shaped that way,
            // so we disambiguate: output blocks are only recognized when the
            // token after `]` starts an expression. We prefer the block
            // reading, matching the printer, unless the bracket holds a
            // literal that is itself the entire body.
            let save = self.pos;
            self.bump();
            match (self.peek().clone(), self.peek2().clone()) {
                (Tok::Num(n), Tok::RBracket) if n > 0 => {
                    self.bump();
                    self.bump();
                    if self.starts_expr() {
                        out_block = BlockSize::Const(n as u64);
                    } else {
                        // `[n]` was the body: a singleton literal.
                        let body = Expr::Int(n).singleton();
                        return Ok(Expr::For {
                            var,
                            block,
                            source: Box::new(source),
                            out_block,
                            body: Box::new(body),
                            seq,
                        });
                    }
                }
                (Tok::Ident(p), Tok::RBracket) => {
                    self.bump();
                    self.bump();
                    if self.starts_expr() {
                        out_block = BlockSize::Param(p);
                    } else {
                        let body = Expr::var(p).singleton();
                        return Ok(Expr::For {
                            var,
                            block,
                            source: Box::new(source),
                            out_block,
                            body: Box::new(body),
                            seq,
                        });
                    }
                }
                _ => {
                    self.pos = save;
                }
            }
        }
        let body = self.expr()?;
        Ok(Expr::For {
            var,
            block,
            source: Box::new(source),
            out_block,
            body: Box::new(body),
            seq,
        })
    }

    fn starts_expr(&self) -> bool {
        match self.peek() {
            Tok::Ident(kw) if kw == "then" || kw == "else" => false,
            Tok::Ident(_)
            | Tok::Num(_)
            | Tok::Str(_)
            | Tok::LParen
            | Tok::LBracket
            | Tok::Lt
            | Tok::Lambda
            | Tok::Bang
            | Tok::Minus => true,
            _ => false,
        }
    }

    fn union_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.or_expr()?;
        while *self.peek() == Tok::PlusPlus {
            self.bump();
            let rhs = self.or_expr()?;
            e = e.union(rhs);
        }
        Ok(e)
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.and_expr()?;
        while *self.peek() == Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            e = Expr::binop(PrimOp::Or, e, rhs);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.cmp_expr()?;
        while *self.peek() == Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            e = Expr::binop(PrimOp::And, e, rhs);
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let e = self.add_expr()?;
        let op = match self.peek() {
            Tok::EqEq => Some(PrimOp::Eq),
            Tok::NotEq => Some(PrimOp::Ne),
            Tok::Lt if !self.angle => Some(PrimOp::Lt),
            Tok::Gt if !self.angle => Some(PrimOp::Gt),
            Tok::Le => Some(PrimOp::Le),
            Tok::Ge => Some(PrimOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let rhs = self.add_expr()?;
                Ok(Expr::binop(op, e, rhs))
            }
            None => Ok(e),
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => PrimOp::Add,
                Tok::Minus => PrimOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            e = Expr::binop(op, e, rhs);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => PrimOp::Mul,
                Tok::Slash => PrimOp::Div,
                Tok::Percent => PrimOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            e = Expr::binop(op, e, rhs);
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Bang => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::prim(PrimOp::Not, vec![e]))
            }
            Tok::Minus => {
                self.bump();
                let e = self.unary_expr()?;
                Ok(Expr::binop(PrimOp::Sub, Expr::Int(0), e))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.atom()?;
        loop {
            match self.peek() {
                Tok::LParen => {
                    self.bump();
                    let arg = self.with_delim(|p| p.expr())?;
                    self.expect(Tok::RParen, "`)` closing application")?;
                    e = e.app(arg);
                }
                Tok::Dot => {
                    self.bump();
                    match self.bump() {
                        Tok::Num(n) if n >= 1 => {
                            e = e.proj(n as u32);
                        }
                        other => {
                            return Err(self.error(format!(
                                "expected 1-based projection index, found {other:?}"
                            )))
                        }
                    }
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Parses an optional `[n]`-style static parameter after a definition name.
    fn def_param(&mut self, what: &str) -> Result<BlockSize, ParseError> {
        self.expect(Tok::LBracket, &format!("`[` after {what}"))?;
        self.block_size()
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Num(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Expr::Str(s))
            }
            Tok::LParen => {
                self.bump();
                let e = self.with_delim(|p| p.expr())?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Lt => {
                self.bump();
                let saved = self.angle;
                self.angle = true;
                let first = self.expr();
                self.angle = saved;
                let mut items = vec![first?];
                while *self.peek() == Tok::Comma {
                    self.bump();
                    let saved = self.angle;
                    self.angle = true;
                    let item = self.expr();
                    self.angle = saved;
                    items.push(item?);
                }
                self.expect_gt()?;
                Ok(Expr::Tuple(items))
            }
            Tok::LBracket => {
                self.bump();
                if *self.peek() == Tok::RBracket {
                    self.bump();
                    return Ok(Expr::Empty);
                }
                let e = self.with_delim(|p| p.expr())?;
                self.expect(Tok::RBracket, "`]` closing singleton list")?;
                Ok(e.singleton())
            }
            Tok::Lambda => {
                // A lambda nested in operator position (e.g. as an argument).
                self.expr()
            }
            Tok::Ident(name) => {
                self.bump();
                match name.as_str() {
                    "then" | "else" => {
                        Err(self.error(format!("keyword `{name}` cannot start an expression")))
                    }
                    "true" => Ok(Expr::Bool(true)),
                    "false" => Ok(Expr::Bool(false)),
                    "if" | "for" => {
                        // Control expressions can appear in atom position
                        // when parenthesized at call sites; rewind and parse.
                        self.pos -= 1;
                        self.expr()
                    }
                    "flatMap" => {
                        self.expect(Tok::LParen, "`(` after flatMap")?;
                        let f = self.with_delim(|p| p.expr())?;
                        self.expect(Tok::RParen, "`)` closing flatMap")?;
                        Ok(Expr::flat_map(f))
                    }
                    "foldL" => {
                        self.expect(Tok::LParen, "`(` after foldL")?;
                        let init = self.with_delim(|p| p.expr())?;
                        self.expect(Tok::Comma, "`,` between foldL arguments")?;
                        let f = self.with_delim(|p| p.expr())?;
                        self.expect(Tok::RParen, "`)` closing foldL")?;
                        Ok(Expr::fold_l(init, f))
                    }
                    "hash" => {
                        self.expect(Tok::LParen, "`(` after hash")?;
                        let e = self.with_delim(|p| p.expr())?;
                        self.expect(Tok::RParen, "`)` closing hash")?;
                        Ok(Expr::prim(PrimOp::Hash, vec![e]))
                    }
                    "head" => Ok(Expr::def(DefName::Head)),
                    "tail" => Ok(Expr::def(DefName::Tail)),
                    "length" => Ok(Expr::def(DefName::Length)),
                    "avg" => Ok(Expr::def(DefName::Avg)),
                    "mrg" => Ok(Expr::def(DefName::Mrg)),
                    "unfoldR" => {
                        if *self.peek() == Tok::LBracket {
                            self.bump();
                            let b_in = match self.bump() {
                                Tok::Num(n) if n > 0 => BlockSize::Const(n as u64),
                                Tok::Ident(p) => BlockSize::Param(p),
                                other => {
                                    return Err(
                                        self.error(format!("expected block size, found {other:?}"))
                                    )
                                }
                            };
                            self.expect(Tok::Comma, "`,` between unfoldR block sizes")?;
                            let b_out = match self.bump() {
                                Tok::Num(n) if n > 0 => BlockSize::Const(n as u64),
                                Tok::Ident(p) => BlockSize::Param(p),
                                other => {
                                    return Err(
                                        self.error(format!("expected block size, found {other:?}"))
                                    )
                                }
                            };
                            self.expect(Tok::RBracket, "`]` closing unfoldR block sizes")?;
                            Ok(Expr::def(DefName::UnfoldR { b_in, b_out }))
                        } else {
                            Ok(Expr::def(DefName::unfoldr()))
                        }
                    }
                    "partition" => Ok(Expr::def(DefName::Partition)),
                    "treeFold" => {
                        let k = self.def_param("treeFold")?;
                        Ok(Expr::def(DefName::TreeFold(k)))
                    }
                    "hashPartition" => {
                        let s = self.def_param("hashPartition")?;
                        Ok(Expr::def(DefName::HashPartition(s)))
                    }
                    "zip" => {
                        let n = self.def_param("zip")?;
                        match n {
                            BlockSize::Const(n) => Ok(Expr::def(DefName::Zip(n as u32))),
                            BlockSize::Param(_) => Err(self.error("zip arity must be a constant")),
                        }
                    }
                    "funcPow" => {
                        let k = self.def_param("funcPow")?;
                        match k {
                            BlockSize::Const(k) => Ok(Expr::def(DefName::FuncPow(k as u32))),
                            BlockSize::Param(_) => {
                                Err(self.error("funcPow exponent must be a constant"))
                            }
                        }
                    }
                    _ => Ok(Expr::var(name)),
                }
            }
            other => Err(self.error(format!("unexpected token {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty::pretty;

    fn round_trip(src: &str) {
        let e = parse(src).unwrap_or_else(|err| panic!("parse `{src}`: {err}"));
        let printed = pretty(&e);
        let e2 = parse(&printed).unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        assert_eq!(
            e.alpha_canonical(),
            e2.alpha_canonical(),
            "round trip failed: `{src}` -> `{printed}`"
        );
    }

    #[test]
    fn parses_naive_join() {
        let src = "for (x <- R) for (y <- S) if x.1 == y.1 then [<x, y>] else []";
        let e = parse(src).unwrap();
        assert_eq!(pretty(&e), src);
    }

    #[test]
    fn parses_blocked_join_with_seq_annotation() {
        let src = "for (xb [k1] <- R) for[HDD >> RAM] (yb [k2] <- S) \
                   for (x <- xb) for (y <- yb) if x.1 == y.1 then [<x, y>] else []";
        let e = parse(src).unwrap();
        match &e {
            Expr::For { body, .. } => match &**body {
                Expr::For { seq, .. } => {
                    let s = seq.as_ref().expect("seq annotation");
                    assert_eq!(s.from, "HDD");
                    assert_eq!(s.to, "RAM");
                }
                other => panic!("expected inner for, got {other:?}"),
            },
            other => panic!("expected for, got {other:?}"),
        }
        round_trip(src);
    }

    #[test]
    fn parses_sort_programs() {
        round_trip("foldL([], unfoldR(mrg))(R)");
        round_trip("treeFold[4](<[], unfoldR(funcPow[2](mrg))>)(R)");
    }

    #[test]
    fn parses_lambdas_and_projection() {
        round_trip("\\p. foldL(0, \\a. a.1 + a.2)(p)");
        round_trip("(\\x. x)(42)");
    }

    #[test]
    fn parses_order_inputs_wrapper() {
        round_trip("(\\p. if length(p.1) <= length(p.2) then <p.1, p.2> else <p.2, p.1>)(<R, S>)");
    }

    #[test]
    fn parses_hash_partition_pipeline() {
        round_trip("flatMap(\\q. q.1 ++ q.2)(unfoldR(zip[2])(<hashPartition[s1](R), hashPartition[s1](S)>))");
    }

    #[test]
    fn parses_operators_with_precedence() {
        let e = parse("1 + 2 * 3 == 7 && true").unwrap();
        assert_eq!(pretty(&e), "1 + 2 * 3 == 7 && true");
        round_trip("a ++ b ++ c");
        round_trip("!(x == y)");
        round_trip("hash(x) % 16");
    }

    #[test]
    fn singleton_body_for_is_not_output_block() {
        // `for (x <- R) [x]` — the bracket is a singleton body.
        let e = parse("for (x <- R) [x]").unwrap();
        match &e {
            Expr::For {
                out_block, body, ..
            } => {
                assert!(out_block.is_one());
                assert!(matches!(&**body, Expr::Singleton(_)));
            }
            other => panic!("expected for, got {other:?}"),
        }
        // `for (x <- R) [k2] [x]` — an output block followed by a body.
        let e2 = parse("for (x <- R) [k2] [x]").unwrap();
        match &e2 {
            Expr::For { out_block, .. } => {
                assert_eq!(*out_block, BlockSize::Param("k2".into()));
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn error_reporting() {
        assert!(parse("for x <- R) x").is_err());
        assert!(parse("<1, 2").is_err());
        assert!(parse("1 +").is_err());
        assert!(parse("zip[n]").is_err());
        let err = parse("@#!").unwrap_err();
        assert!(err.offset <= 1);
    }

    #[test]
    fn empty_list_and_union() {
        round_trip("[] ++ [1] ++ [<1, 2>]");
    }
}
