//! Base-language expansions of the named definitions (paper Figure 2).
//!
//! Definitions do not increase the expressiveness of OCAL: each can be
//! expressed in the base language (Monad Calculus + `foldL`). The evaluator
//! ships efficient built-ins (the paper's "code generator plugins" — e.g.
//! the Figure 2 `partition` is quadratic while the plugin is linear), and the
//! test suite checks that built-in and expansion agree on random inputs,
//! which is exactly the paper's soundness story for plugins.

use crate::ast::{DefName, Expr, PrimOp};

/// Returns the base-language expansion of a definition applied to nothing —
/// i.e. a function value — when a closed-form expansion exists.
///
/// `treeFold`, `unfoldR`, `zip`, `partition`, `hashPartition` and `funcPow`
/// have recursive definitions whose faithful base-language forms (given in
/// the paper's Figure 2) rely on padding/queueing tricks that need the same
/// built-in machinery to execute efficiently; for those we return `None`
/// and the built-in is normative.
pub fn expansion(def: &DefName) -> Option<Expr> {
    match def {
        DefName::Head => Some(head_expansion()),
        DefName::Tail => Some(tail_expansion()),
        DefName::Length => Some(length_expansion()),
        DefName::Avg => Some(avg_expansion()),
        DefName::Mrg => Some(mrg_expansion()),
        _ => None,
    }
}

/// `head := λl. foldL(⟨true, 0⟩, λ⟨a, x⟩. if a.1 then ⟨false, x⟩ else a)(l).2`
///
/// The paper seeds the accumulator with a placeholder `0`; here the fold is
/// seeded lazily by pairing a "not yet seen" flag with the running value.
/// On an empty list the placeholder escapes — matching the paper's "undefined
/// on empty" semantics only up to the placeholder value, so the built-in
/// (which errors) is normative for the empty case.
fn head_expansion() -> Expr {
    // λl. foldL(<true, 0>, λa. if a.1.1 then <false, a.2> else a.1)(l).2
    // Using the convention that the step function receives <acc, x> as a pair
    // named `a` with a.1 = acc, a.2 = x.
    let step = Expr::lam(
        "a",
        Expr::if_(
            Expr::var("a").proj(1).proj(1),
            Expr::tuple(vec![Expr::Bool(false), Expr::var("a").proj(2)]),
            Expr::var("a").proj(1),
        ),
    );
    Expr::lam(
        "l",
        Expr::fold_l(Expr::tuple(vec![Expr::Bool(true), Expr::Int(0)]), step)
            .app(Expr::var("l"))
            .proj(2),
    )
}

/// `tail := λl. foldL(⟨true, []⟩, λ⟨a, x⟩. if a.1 then ⟨false, []⟩
///                     else ⟨false, a.2 ⊔ [x]⟩)(l).2`
fn tail_expansion() -> Expr {
    let acc = || Expr::var("a").proj(1);
    let x = || Expr::var("a").proj(2);
    let step = Expr::lam(
        "a",
        Expr::if_(
            acc().proj(1),
            Expr::tuple(vec![Expr::Bool(false), Expr::Empty]),
            Expr::tuple(vec![
                Expr::Bool(false),
                acc().proj(2).union(x().singleton()),
            ]),
        ),
    );
    Expr::lam(
        "l",
        Expr::fold_l(Expr::tuple(vec![Expr::Bool(true), Expr::Empty]), step)
            .app(Expr::var("l"))
            .proj(2),
    )
}

/// `length := foldL(0, λ⟨sum, _⟩. sum + 1)`
fn length_expansion() -> Expr {
    let step = Expr::lam(
        "a",
        Expr::binop(PrimOp::Add, Expr::var("a").proj(1), Expr::Int(1)),
    );
    Expr::fold_l(Expr::Int(0), step)
}

/// `avg := (λx. x.1 / x.2)(foldL(⟨0,0⟩, λ⟨a, x⟩. ⟨a.1 + x, a.2 + 1⟩))`
fn avg_expansion() -> Expr {
    let acc = || Expr::var("a").proj(1);
    let x = || Expr::var("a").proj(2);
    let step = Expr::lam(
        "a",
        Expr::tuple(vec![
            Expr::binop(PrimOp::Add, acc().proj(1), x()),
            Expr::binop(PrimOp::Add, acc().proj(2), Expr::Int(1)),
        ]),
    );
    let ratio = Expr::lam(
        "p",
        Expr::binop(PrimOp::Div, Expr::var("p").proj(1), Expr::var("p").proj(2)),
    );
    Expr::lam(
        "l",
        ratio.app(
            Expr::fold_l(Expr::tuple(vec![Expr::Int(0), Expr::Int(0)]), step).app(Expr::var("l")),
        ),
    )
}

/// `mrg` exactly as in Figure 2: one step of a two-way sorted merge.
fn mrg_expansion() -> Expr {
    let l1 = || Expr::var("p").proj(1);
    let l2 = || Expr::var("p").proj(2);
    let len = |l: Expr| Expr::def(DefName::Length).app(l);
    let head = |l: Expr| Expr::def(DefName::Head).app(l);
    let tail = |l: Expr| Expr::def(DefName::Tail).app(l);
    let is_empty = |l: Expr| Expr::binop(PrimOp::Eq, len(l), Expr::Int(0));

    let both_empty = Expr::binop(PrimOp::And, is_empty(l1()), is_empty(l2()));
    let empty_state = Expr::tuple(vec![Expr::Empty, Expr::Empty]);

    Expr::lam(
        "p",
        Expr::if_(
            both_empty,
            Expr::tuple(vec![Expr::Empty, empty_state]),
            Expr::if_(
                is_empty(l1()),
                Expr::tuple(vec![
                    head(l2()).singleton(),
                    Expr::tuple(vec![Expr::Empty, tail(l2())]),
                ]),
                Expr::if_(
                    is_empty(l2()),
                    Expr::tuple(vec![
                        head(l1()).singleton(),
                        Expr::tuple(vec![tail(l1()), Expr::Empty]),
                    ]),
                    Expr::if_(
                        Expr::binop(PrimOp::Lt, head(l1()), head(l2())),
                        Expr::tuple(vec![
                            head(l1()).singleton(),
                            Expr::tuple(vec![tail(l1()), l2()]),
                        ]),
                        Expr::tuple(vec![
                            head(l2()).singleton(),
                            Expr::tuple(vec![l1(), tail(l2())]),
                        ]),
                    ),
                ),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::Evaluator;
    use crate::value::Value;
    use std::collections::BTreeMap;

    fn apply_fn(f: &Expr, arg: Value) -> Value {
        let mut ev = Evaluator::new();
        let inputs: BTreeMap<String, Value> = [("input".to_string(), arg)].into_iter().collect();
        ev.run(&f.clone().app(Expr::var("input")), &inputs).unwrap()
    }

    #[test]
    fn head_expansion_matches_builtin() {
        let exp = expansion(&DefName::Head).unwrap();
        let builtin = Expr::def(DefName::Head);
        for list in [vec![3i64, 1, 2], vec![42], vec![-1, -2]] {
            let v = Value::int_list(&list);
            assert_eq!(apply_fn(&exp, v.clone()), apply_fn(&builtin, v));
        }
    }

    #[test]
    fn tail_expansion_matches_builtin() {
        let exp = expansion(&DefName::Tail).unwrap();
        let builtin = Expr::def(DefName::Tail);
        for list in [vec![3i64, 1, 2], vec![42], vec![5, 6]] {
            let v = Value::int_list(&list);
            assert_eq!(apply_fn(&exp, v.clone()), apply_fn(&builtin, v));
        }
    }

    #[test]
    fn length_expansion_matches_builtin() {
        let exp = expansion(&DefName::Length).unwrap();
        let builtin = Expr::def(DefName::Length);
        for list in [vec![], vec![1i64], vec![1, 2, 3, 4, 5]] {
            let v = Value::int_list(&list);
            assert_eq!(apply_fn(&exp, v.clone()), apply_fn(&builtin, v));
        }
    }

    #[test]
    fn avg_expansion_matches_builtin() {
        let exp = expansion(&DefName::Avg).unwrap();
        let builtin = Expr::def(DefName::Avg);
        for list in [vec![4i64, 8, 6], vec![10], vec![1, 2]] {
            let v = Value::int_list(&list);
            assert_eq!(apply_fn(&exp, v.clone()), apply_fn(&builtin, v));
        }
    }

    #[test]
    fn mrg_expansion_matches_builtin() {
        let exp = expansion(&DefName::Mrg).unwrap();
        let builtin = Expr::def(DefName::Mrg);
        let cases = [
            (vec![1i64, 3], vec![2i64, 4]),
            (vec![], vec![1]),
            (vec![5], vec![]),
            (vec![], vec![]),
            (vec![2, 2], vec![2]),
        ];
        for (a, b) in cases {
            let v = Value::tuple(vec![Value::int_list(&a), Value::int_list(&b)]);
            assert_eq!(
                apply_fn(&exp, v.clone()),
                apply_fn(&builtin, v),
                "mrg({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn mrg_expansion_drives_unfoldr_merge() {
        // unfoldR over the *expanded* mrg must still fully merge.
        let exp = expansion(&DefName::Mrg).unwrap();
        let merge = Expr::def(DefName::unfoldr()).app(exp);
        let v = Value::tuple(vec![
            Value::int_list(&[1, 4, 6]),
            Value::int_list(&[2, 3, 5, 7]),
        ]);
        assert_eq!(apply_fn(&merge, v), Value::int_list(&[1, 2, 3, 4, 5, 6, 7]));
    }
}
