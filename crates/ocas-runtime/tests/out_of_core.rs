//! The native out-of-core templates: merge passes, column zips and
//! duplicate removal stream blocks through the buffer pool like sort and
//! GRACE — correct against the engine's reference semantics, with peak
//! resident tuple memory bounded by the configured buffers (NOT by input
//! cardinality), and the fsync/`O_DIRECT` disk-bounded timing mode
//! produces identical results.

use ocas_engine::{merge_bufs, MergeKind, Output, Plan, RelSpec, Relation, RowBuf};
use ocas_hierarchy::presets;
use ocas_runtime::{algos, FileBackend, PoolConfig, Runtime, TimingMode};
use ocas_storage::StorageBackend;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generates a sorted unary relation of `card` tuples directly on the
/// backend, in bounded chunks — the in-memory `rows` stay `None`, so the
/// input never resides in RAM (the setup a peak-memory claim needs).
fn streamed_sorted_ints(fb: &mut FileBackend, device: &str, card: u64, seed: u64) -> Relation {
    let file = fb.alloc(device, (card * 8).max(1)).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = 0i64;
    let mut at = 0u64;
    let chunk = 64 * 1024u64;
    let mut buf = RowBuf::new(1);
    let mut bytes = Vec::new();
    while at < card {
        let take = chunk.min(card - at);
        buf.clear();
        for _ in 0..take {
            cur += rng.gen_range(0..3i64);
            buf.push(&[cur]);
        }
        bytes.clear();
        buf.encode_into(8, &mut bytes);
        fb.materialize(file, at * 8, &bytes).unwrap();
        at += take;
    }
    Relation::attach(file, card, 1, card.max(1))
}

#[test]
fn native_merge_zip_dedup_match_the_simulator_through_the_runtime() {
    let h = presets::hdd_ram(1 << 22);
    let rt = Runtime::new(h);

    // Merge pass, every kind that runs on sorted unary lists.
    for kind in [
        MergeKind::SetUnion,
        MergeKind::MultisetUnionSorted,
        MergeKind::MultisetDiffSorted,
    ] {
        let report = rt
            .run_plan(
                &Plan::MergePass {
                    left: 0,
                    right: 1,
                    kind,
                    b_in: 64,
                    output: Output::ToDevice {
                        device: "HDD".into(),
                        buffer_bytes: 1 << 10,
                    },
                },
                &[
                    RelSpec::ints("A", "HDD", 700).sorted().with_key_range(90),
                    RelSpec::ints("B", "HDD", 400).sorted().with_key_range(90),
                ],
                21,
            )
            .unwrap();
        assert!(report.outputs_match(), "{kind:?} diverged from simulator");
        assert!(!report.output.is_empty(), "{kind:?} produced no rows");
        assert!(
            report.peak_resident_bytes.is_some(),
            "{kind:?} must run the native path"
        );
    }

    // Column zip.
    let report = rt
        .run_plan(
            &Plan::ColumnZip {
                columns: vec![0, 1, 2],
                b_in: 32,
                output: Output::ToDevice {
                    device: "HDD".into(),
                    buffer_bytes: 1 << 10,
                },
            },
            &[
                RelSpec::ints("C1", "HDD", 500),
                RelSpec::ints("C2", "HDD", 500),
                RelSpec::ints("C3", "HDD", 500),
            ],
            31,
        )
        .unwrap();
    assert!(report.outputs_match(), "zip diverged from simulator");
    assert_eq!(report.output.len(), 500);
    assert_eq!(report.output.width(), 3);

    // Dedup.
    let report = rt
        .run_plan(
            &Plan::DedupSorted {
                input: 0,
                b_in: 64,
                output: Output::ToDevice {
                    device: "HDD".into(),
                    buffer_bytes: 1 << 10,
                },
            },
            &[RelSpec::ints("L", "HDD", 900).sorted().with_key_range(111)],
            41,
        )
        .unwrap();
    assert!(report.outputs_match(), "dedup diverged from simulator");
    assert!(report.output.len() <= 112, "adjacent duplicates removed");
}

/// The headline out-of-core property: the streaming templates' resident
/// tuple memory is bounded by the configured buffers — below the RAM
/// device size — even when the input is orders of magnitude larger. The
/// inputs are generated straight onto the backing files (`rows: None`),
/// so nothing about the setup holds the relations in memory either.
#[test]
fn streaming_templates_peak_memory_is_bounded_by_ram_not_cardinality() {
    let ram_bytes: u64 = 256 * 1024;
    let h = presets::hdd_ram(ram_bytes);
    let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default()).unwrap();
    // 800k + 400k tuples = 9.6 MB of input against a 256 KiB RAM device.
    let a = streamed_sorted_ints(&mut fb, "HDD", 800_000, 1);
    let b = streamed_sorted_ints(&mut fb, "HDD", 400_000, 2);
    let input_bytes = a.bytes() + b.bytes();
    assert!(input_bytes > 30 * ram_bytes, "input dwarfs RAM");
    let out = Output::ToDevice {
        device: "HDD".into(),
        buffer_bytes: 16 * 1024,
    };

    // Merge: 2 x b_in-tuple cursors + one 16 KiB staging buffer.
    let run =
        algos::merge_pass(&mut fb, &a, &b, MergeKind::MultisetUnionSorted, 1024, &out).unwrap();
    assert_eq!(run.rows, 1_200_000);
    assert!(
        run.peak_resident_bytes <= ram_bytes,
        "merge peak {} exceeds the {} B RAM device",
        run.peak_resident_bytes,
        ram_bytes
    );

    // Dedup: one cursor + staging.
    let run = algos::dedup_sorted(&mut fb, &a, 1024, &out).unwrap();
    assert!(run.rows > 0 && run.rows <= a.card);
    assert!(
        run.peak_resident_bytes <= ram_bytes,
        "dedup peak {}",
        run.peak_resident_bytes
    );

    // Zip: one cursor per column + staging.
    let cols = [a.clone(), b.clone()];
    let run = algos::column_zip(&mut fb, &cols, 1024, &out).unwrap();
    assert_eq!(run.rows, b.card);
    assert!(
        run.peak_resident_bytes <= ram_bytes,
        "zip peak {}",
        run.peak_resident_bytes
    );

    // External sort under the same bound: fan_in*b_in + b_out tuples.
    let run = algos::external_sort(&mut fb, &b, 4, 512, 1024, "HDD", &out).unwrap();
    assert_eq!(run.rows, b.card);
    assert!(
        run.peak_resident_bytes <= ram_bytes,
        "sort peak {} exceeds RAM {}",
        run.peak_resident_bytes,
        ram_bytes
    );
}

/// Correctness of the streaming merge against the engine's batch-level
/// reference semantics, on data read back from the real files.
#[test]
fn native_merge_agrees_with_reference_semantics_on_disk_data() {
    let h = presets::hdd_ram(1 << 22);
    let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default()).unwrap();
    let a = streamed_sorted_ints(&mut fb, "HDD", 5_000, 7);
    let b = streamed_sorted_ints(&mut fb, "HDD", 3_000, 8);
    // Read the generated inputs back (uncharged) for the oracle.
    let mut abuf = RowBuf::new(1);
    let mut bbuf = RowBuf::new(1);
    fb.peek_rows(a.file, 0, a.card, 1, &mut abuf).unwrap();
    fb.peek_rows(b.file, 0, b.card, 1, &mut bbuf).unwrap();
    for kind in [
        MergeKind::SetUnion,
        MergeKind::MultisetUnionSorted,
        MergeKind::MultisetDiffSorted,
    ] {
        let run = algos::merge_pass(&mut fb, &a, &b, kind, 128, &Output::Discard).unwrap();
        assert_eq!(
            run.output,
            merge_bufs(&abuf, &bbuf, kind),
            "{kind:?} diverged from reference semantics"
        );
    }
}

/// The disk-bounded timing mode (fsync + `O_DIRECT` where the platform
/// grants it) produces byte-identical results; its clock includes the
/// write-back + sync work.
#[test]
fn disk_bounded_timing_mode_is_correct_and_charges_the_sync() {
    let h = presets::hdd_ram(1 << 22);
    let plan = Plan::ExternalSort {
        input: 0,
        fan_in: 4,
        b_in: 64,
        b_out: 128,
        scratch: "HDD".into(),
        output: Output::ToDevice {
            device: "HDD".into(),
            buffer_bytes: 1 << 12,
        },
    };
    let specs = [RelSpec::ints("L", "HDD", 20_000)];
    let buffered = Runtime::new(h.clone()).run_plan(&plan, &specs, 5).unwrap();
    let bounded = Runtime::new(h)
        .with_pool(PoolConfig {
            timing: TimingMode::DiskBounded,
            ..PoolConfig::default()
        })
        .run_plan(&plan, &specs, 5)
        .unwrap();
    assert_eq!(
        buffered.output, bounded.output,
        "timing mode changed results"
    );
    assert!(bounded.outputs_match());
    assert!(bounded.wall_seconds > 0.0 && bounded.io_seconds > 0.0);
    // Identical request streams in both modes.
    let bytes = |r: &ocas_runtime::RealReport| {
        r.real_devices
            .iter()
            .map(|(_, s)| (s.bytes_read, s.bytes_written))
            .collect::<Vec<_>>()
    };
    assert_eq!(bytes(&buffered), bytes(&bounded));
}

/// The direct-I/O staging path of the buffer pool is exercised even where
/// `O_DIRECT` itself is unavailable (the aligned-copy logic is identical).
#[test]
fn pool_direct_staging_round_trips() {
    use ocas_runtime::{BufferPool, PolicyKind};
    let dir = std::env::temp_dir().join(format!("ocas-direct-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("staging.bin");
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&path)
        .unwrap();
    file.set_len(1 << 20).unwrap();
    let mut pool = BufferPool::new(file, 4096, 4, PolicyKind::Lru).with_direct(true);
    assert!(pool.is_direct());
    let data: Vec<u8> = (0..9000u32).map(|i| (i % 251) as u8).collect();
    pool.write(100, &data).unwrap();
    pool.flush().unwrap();
    let mut back = vec![0u8; 9000];
    pool.read(100, &mut back).unwrap();
    assert_eq!(back, data);
    let _ = std::fs::remove_dir_all(&dir);
}
