//! Error-classification parity: the same fault plan, applied to the same
//! request stream, must produce the same outcome sequence — success or
//! identically-typed error at every step — whether it is interposed on
//! the device simulator (via [`Faulted`]) or on the real file backend's
//! syscall paths (via [`FileBackend::with_faults`]), and both sides must
//! report identical recovery counters.
//!
//! Requests stay under the 1 MiB chunking threshold so one trait-level
//! request equals one syscall-level request and the per-device fault
//! indices line up by construction. `TornWriteBack` is excluded: the
//! simulator holds no page data to tear, so it is the one kind whose
//! *consequences* (not classification) are backend-specific.

use ocas_hierarchy::presets;
use ocas_runtime::{FileBackend, PoolConfig};
use ocas_storage::{
    FaultKind, FaultOp, FaultPlan, Faulted, RetryPolicy, StorageBackend, StorageSim,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scripted request. File slots index the list of files allocated so
/// far (resolved modulo its length at run time, so both backends resolve
/// identically as long as their outcome histories agree).
#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc(u64),
    Write(usize, u64),
    Read(usize, u64),
}

/// Deterministic request script: starts with an allocation, then mixes
/// small allocs, reads and writes.
fn script(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_5c21);
    let mut ops = vec![Op::Alloc(4096)];
    for _ in 1..n {
        ops.push(match rng.gen_range(0u32..4) {
            0 => Op::Alloc(rng.gen_range(64u64..4096)),
            1 => Op::Write(rng.gen_range(0usize..64), rng.gen_range(2u64..64) * 8),
            _ => Op::Read(rng.gen_range(0usize..64), rng.gen_range(2u64..64) * 8),
        });
    }
    ops
}

/// Runs the script, recording each step's outcome as a display string
/// (`"ok"` or the typed error, which includes device/op/request context).
fn drive<B: StorageBackend>(b: &mut B, ops: &[Op]) -> Vec<String> {
    let mut files: Vec<(ocas_storage::FileId, u64)> = Vec::new();
    let mut outcomes = Vec::new();
    for op in ops {
        let r = match *op {
            Op::Alloc(len) => match b.alloc("HDD", len) {
                Ok(f) => {
                    files.push((f, len));
                    Ok(())
                }
                Err(e) => Err(e),
            },
            Op::Write(slot, len) => match files.is_empty() {
                true => {
                    outcomes.push("skip".to_string());
                    continue;
                }
                false => {
                    let (f, cap) = files[slot % files.len()];
                    b.write(f, 0, len.min(cap))
                }
            },
            Op::Read(slot, len) => match files.is_empty() {
                true => {
                    outcomes.push("skip".to_string());
                    continue;
                }
                false => {
                    let (f, cap) = files[slot % files.len()];
                    b.read(f, 0, len.min(cap))
                }
            },
        };
        outcomes.push(match r {
            Ok(()) => "ok".to_string(),
            Err(e) => format!("err: {e}"),
        });
    }
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sim_and_file_backend_classify_fault_plans_identically(
        seed in 0u64..50_000,
        faults in 0usize..8,
    ) {
        let mut plan = FaultPlan::randomized(seed, &["HDD"], faults, 48);
        plan.specs.retain(|s| s.kind != FaultKind::TornWriteBack);
        let policy = RetryPolicy::default();
        let ops = script(seed, 40);
        let h = presets::hdd_ram(1 << 22);

        let mut sim = Faulted::new(StorageSim::from_hierarchy(&h), plan.clone(), policy);
        let sim_outcomes = drive(&mut sim, &ops);

        let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default())
            .unwrap()
            .with_faults(plan, policy);
        let fb_outcomes = drive(&mut fb, &ops);

        prop_assert_eq!(&sim_outcomes, &fb_outcomes,
            "outcome sequences diverged (seed {}, {} faults)", seed, faults);
        prop_assert_eq!(
            sim.counters(),
            fb.recovery_counters().expect("injector present"),
            "recovery counters diverged (seed {})", seed
        );
    }

    /// With no faults scheduled, the wrapper is a strict no-op on both
    /// backends: everything succeeds.
    #[test]
    fn empty_plans_are_passthrough_on_both_backends(seed in 0u64..10_000) {
        let ops = script(seed, 24);
        let h = presets::hdd_ram(1 << 22);
        let mut sim = Faulted::new(
            StorageSim::from_hierarchy(&h),
            FaultPlan::new(),
            RetryPolicy::default(),
        );
        let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default())
            .unwrap()
            .with_faults(FaultPlan::new(), RetryPolicy::default());
        for out in drive(&mut sim, &ops).iter().chain(drive(&mut fb, &ops).iter()) {
            prop_assert!(out == "ok" || out == "skip", "clean run failed: {}", out);
        }
    }

    /// A plan with a guaranteed early transient burst: both backends give
    /// up after the same number of attempts with the same typed error, and
    /// every per-kind counter matches. (The randomized plans above may
    /// place faults past the script's horizon; this one always fires.)
    #[test]
    fn persistent_faults_exhaust_retries_identically(
        at in 0u64..6,
        seed in 0u64..10_000,
    ) {
        let mut plan = FaultPlan::new();
        for i in at..at + 8 {
            plan = plan.with("HDD", FaultOp::Any, i, FaultKind::Transient);
        }
        let policy = RetryPolicy { max_attempts: 3, ..RetryPolicy::default() };
        let ops = script(seed, 12);
        let h = presets::hdd_ram(1 << 22);

        let mut sim = Faulted::new(StorageSim::from_hierarchy(&h), plan.clone(), policy);
        let sim_outcomes = drive(&mut sim, &ops);
        let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default())
            .unwrap()
            .with_faults(plan, policy);
        let fb_outcomes = drive(&mut fb, &ops);

        prop_assert!(sim_outcomes.iter().any(|o| o.starts_with("err")), "burst must surface");
        prop_assert_eq!(&sim_outcomes, &fb_outcomes);
        let (sc, fc) = (sim.counters(), fb.recovery_counters().expect("injector"));
        prop_assert_eq!(sc, fc);
        prop_assert!(sc.gave_up >= 1);
    }
}
