//! Robustness of the native out-of-core algorithms: graceful ENOSPC
//! degradation (shrink spill extents, fail over to an alternate device)
//! keeps results correct, and every failure path — injected or genuine —
//! leaves the backend clean: no spill extents past the entry watermark,
//! no pinned pages, and typed errors rather than panics.

use ocas_engine::{Output, RelSpec, Relation, RowBuf};
use ocas_hierarchy::{presets, DeviceKind, Hierarchy, NodeProps};
use ocas_runtime::{algos, AlgoError, FileBackend, PoolConfig};
use ocas_storage::{FaultKind, FaultOp, FaultPlan, RetryPolicy, StorageBackend, StorageError};

/// RAM root with the input HDD, a deliberately tiny scratch device, and a
/// roomy fallback device.
fn tiny_scratch_hierarchy(scratch_bytes: u64) -> Hierarchy {
    let mut h = Hierarchy::new(presets::ram_props("RAM", 1 << 22)).expect("root");
    h.add_child("RAM", presets::hdd_props("HDD"), presets::hdd_edge())
        .expect("hdd");
    h.add_child(
        "RAM",
        NodeProps::new("TINY", scratch_bytes, DeviceKind::Hdd).with_pagesize(4096),
        presets::hdd_edge(),
    )
    .expect("tiny");
    h.add_child("RAM", presets::hdd_props("BIG"), presets::hdd_edge())
        .expect("big");
    h
}

fn backend(h: &Hierarchy) -> FileBackend {
    FileBackend::from_hierarchy(h, PoolConfig::default()).unwrap()
}

fn sorted_rows(mut rows: RowBuf) -> RowBuf {
    rows.sort();
    rows
}

#[test]
fn sort_degrades_to_smaller_runs_and_fails_over_with_correct_output() {
    let h = tiny_scratch_hierarchy(4096);
    // Clean oracle: same data, scratch on the roomy device.
    let mut clean = backend(&h);
    let rel = Relation::create(&mut clean, &RelSpec::ints("A", "HDD", 2_000), true, 9).unwrap();
    let oracle = algos::external_sort(&mut clean, &rel, 4, 64, 128, "BIG", &Output::Discard)
        .unwrap()
        .output;

    // Degrading run: scratch is 4 KiB against 16 KB of runs per merge
    // level, so run formation must shrink and eventually fail over.
    let mut fb = backend(&h).with_spill_fallback("BIG");
    let rel = Relation::create(&mut fb, &RelSpec::ints("A", "HDD", 2_000), true, 9).unwrap();
    let run = algos::external_sort(&mut fb, &rel, 4, 64, 128, "TINY", &Output::Discard).unwrap();
    assert_eq!(run.rows, 2_000);
    assert_eq!(run.output, oracle, "degraded sort changed the answer");

    let rec = fb.recovery_counters().expect("degradations recorded");
    assert!(rec.degraded_shrinks > 0, "expected shrink degradations");
    assert_eq!(rec.degraded_failovers, 1, "expected one device failover");
    assert_eq!(fb.pinned_pages(), 0);
}

#[test]
fn grace_join_degrades_spill_partitions_with_correct_output() {
    let h = tiny_scratch_hierarchy(2048);
    let specs = [
        RelSpec::ints("L", "HDD", 800).with_key_range(50),
        RelSpec::ints("R", "HDD", 600).with_key_range(50),
    ];

    let mut clean = backend(&h);
    let l = Relation::create(&mut clean, &specs[0], true, 3).unwrap();
    let r = Relation::create(&mut clean, &specs[1], true, 4).unwrap();
    let oracle = algos::grace_join(&mut clean, &l, &r, 4, 512, "BIG", false, &Output::Discard)
        .unwrap()
        .output;
    assert!(!oracle.is_empty(), "join oracle must produce rows");

    let mut fb = backend(&h).with_spill_fallback("BIG");
    let l = Relation::create(&mut fb, &specs[0], true, 3).unwrap();
    let r = Relation::create(&mut fb, &specs[1], true, 4).unwrap();
    let run = algos::grace_join(&mut fb, &l, &r, 4, 512, "TINY", false, &Output::Discard).unwrap();
    assert_eq!(
        sorted_rows(run.output),
        sorted_rows(oracle),
        "degraded GRACE join changed the answer"
    );

    let rec = fb.recovery_counters().expect("degradations recorded");
    assert!(rec.degradations() > 0, "expected spill degradations");
    assert_eq!(rec.degraded_failovers, 1);
    assert_eq!(fb.pinned_pages(), 0);
}

#[test]
fn injected_no_space_triggers_degradation_not_failure() {
    // A one-shot ENOSPC on the first scratch allocation: the sort shrinks
    // (and the next attempt's request index clears the spec), completing
    // with the right answer on an otherwise roomy device.
    let h = presets::two_hdd_ram(1 << 22);
    let plan = FaultPlan::new().with("HDD2", FaultOp::Alloc, 0, FaultKind::NoSpace);
    let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default())
        .unwrap()
        .with_faults(plan, RetryPolicy::default());
    let rel = Relation::create(&mut fb, &RelSpec::ints("A", "HDD", 1_500), true, 11).unwrap();
    let run = algos::external_sort(&mut fb, &rel, 4, 64, 128, "HDD2", &Output::Discard).unwrap();
    assert_eq!(run.rows, 1_500);
    let rec = fb.recovery_counters().expect("counters with injector");
    assert_eq!(rec.no_space_faults, 1);
    assert!(rec.degraded_shrinks > 0, "ENOSPC must degrade, not fail");
}

/// Satellite: a persistent injected failure mid-sort surfaces a typed
/// error and leaves the backend clean — scratch watermark rolled back to
/// its entry mark, zero pinned pages.
#[test]
fn failed_sort_leaves_no_spill_extents_and_no_pins() {
    let h = presets::two_hdd_ram(1 << 22);
    // Every scratch-device write fails on every retry attempt.
    let mut plan = FaultPlan::new();
    for at in 0..256 {
        plan = plan.with("HDD2", FaultOp::Write, at, FaultKind::Transient);
    }
    let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default())
        .unwrap()
        .with_faults(plan, RetryPolicy::default());
    let rel = Relation::create(&mut fb, &RelSpec::ints("A", "HDD", 2_000), true, 5).unwrap();
    let mark = fb.watermark("HDD2").unwrap();

    let err = algos::external_sort(&mut fb, &rel, 4, 64, 128, "HDD2", &Output::Discard)
        .expect_err("persistent write faults must fail the sort");
    assert!(
        matches!(
            &err,
            AlgoError::Storage(StorageError::Transient { device, .. }) if device == "HDD2"
        ),
        "expected a typed transient error, got: {err}"
    );
    assert_eq!(
        fb.watermark("HDD2").unwrap(),
        mark,
        "failed sort leaked spill extents"
    );
    assert_eq!(fb.pinned_pages(), 0, "failed sort leaked pinned pages");
    let rec = fb.recovery_counters().expect("counters with injector");
    assert!(rec.gave_up >= 1);
}

/// Satellite: a persistent injected failure mid-GRACE-partition surfaces a
/// typed error and leaves the backend clean.
#[test]
fn failed_grace_partition_leaves_no_spill_extents_and_no_pins() {
    let h = presets::two_hdd_ram(1 << 22);
    let mut plan = FaultPlan::new();
    for at in 0..256 {
        plan = plan.with("HDD2", FaultOp::Write, at, FaultKind::Transient);
    }
    let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default())
        .unwrap()
        .with_faults(plan, RetryPolicy::default());
    let l = Relation::create(
        &mut fb,
        &RelSpec::ints("L", "HDD", 800).with_key_range(50),
        true,
        6,
    )
    .unwrap();
    let r = Relation::create(
        &mut fb,
        &RelSpec::ints("R", "HDD", 600).with_key_range(50),
        true,
        7,
    )
    .unwrap();
    let mark = fb.watermark("HDD2").unwrap();

    let err = algos::grace_join(&mut fb, &l, &r, 4, 512, "HDD2", false, &Output::Discard)
        .expect_err("persistent spill faults must fail the join");
    assert!(
        matches!(err, AlgoError::Storage(StorageError::Transient { .. })),
        "expected a typed transient error, got: {err}"
    );
    assert_eq!(
        fb.watermark("HDD2").unwrap(),
        mark,
        "failed join leaked spill extents"
    );
    assert_eq!(fb.pinned_pages(), 0, "failed join leaked pinned pages");
}

/// Transient faults under the default retry policy are invisible to
/// callers: same rows, recovery counters show the retries.
#[test]
fn transient_faults_are_absorbed_by_retries() {
    let h = presets::two_hdd_ram(1 << 22);
    let plan = FaultPlan::new()
        .with("HDD2", FaultOp::Any, 1, FaultKind::Transient)
        .with("HDD2", FaultOp::Any, 9, FaultKind::Transient)
        .with("HDD2", FaultOp::Any, 14, FaultKind::Latency(0.005));
    let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default())
        .unwrap()
        .with_faults(plan, RetryPolicy::default());
    let rel = Relation::create(&mut fb, &RelSpec::ints("A", "HDD", 1_200), true, 13).unwrap();
    let run = algos::external_sort(&mut fb, &rel, 4, 64, 128, "HDD2", &Output::Discard).unwrap();
    assert_eq!(run.rows, 1_200);
    let mut sorted = RowBuf::new(1);
    for row in run.output.iter() {
        sorted.push(row);
    }
    sorted.sort();
    assert_eq!(run.output, sorted, "output must still be sorted");
    let rec = fb.recovery_counters().expect("counters with injector");
    assert!(rec.retry_successes >= 2);
    assert_eq!(rec.gave_up, 0);
    assert!(rec.latency_spikes <= 1);
}
