//! Cross-backend equivalence: the same faithful plan, executed on the
//! device simulator and on real temp files, must produce identical outputs
//! and issue the same request stream (equal read/write byte totals).
//!
//! The property tests use a hierarchy with `pagesize = 1` so the
//! simulator's page rounding is the identity and its byte counters are
//! directly comparable with the real backend's raw request totals.

use ocas_engine::{CpuModel, Executor, JoinPred, MergeKind, Mode, Output, Plan, RelSpec, Relation};
use ocas_hierarchy::{CostPair, DeviceKind, EdgeCosts, Hierarchy, NodeProps, Rat};
use ocas_runtime::{FileBackend, PolicyKind, PoolConfig, Runtime};
use ocas_storage::{StorageBackend, StorageSim};
use proptest::prelude::*;

/// RAM + HDD with byte-granular pages (no page rounding in the simulator).
fn unit_page_hierarchy() -> Hierarchy {
    let mut h =
        Hierarchy::new(NodeProps::new("RAM", 1 << 26, DeviceKind::Ram).with_pagesize(1)).unwrap();
    h.add_child(
        "RAM",
        NodeProps::new("HDD", 1 << 32, DeviceKind::Hdd).with_pagesize(1),
        EdgeCosts::symmetric(CostPair::new(
            Rat::millis(15),
            Rat::new(1, 30 * 1024 * 1024),
        )),
    )
    .unwrap();
    h
}

/// `(read, written)` byte totals of one backend's HDD device.
type ByteTotals = (u64, u64);
/// Outputs and byte totals of the simulated and the real execution.
type BothRuns = (
    ocas_engine::RowBuf,
    ocas_engine::RowBuf,
    ByteTotals,
    ByteTotals,
);

/// Runs `plan` faithfully on both backends over identical relations and
/// returns `(sim outputs, real outputs, sim bytes, real bytes)`.
fn run_both(plan: &Plan, specs: &[RelSpec], seed: u64) -> BothRuns {
    let h = unit_page_hierarchy();

    let sm = StorageSim::from_hierarchy(&h);
    let mut sim = Executor::new(sm, Mode::Faithful, CpuModel::disabled());
    for (i, spec) in specs.iter().enumerate() {
        let rel = Relation::create(&mut sim.sm, spec, true, seed + i as u64).unwrap();
        sim.add_relation(rel);
    }
    let sim_stats = sim.run(plan).expect("simulated run");
    let sim_dev = StorageSim::device_stats(&sim.sm, "HDD").unwrap();

    let fb = FileBackend::from_hierarchy(
        &h,
        PoolConfig {
            page_bytes: 4096,
            frames: 64,
            policy: PolicyKind::Lru,
            ..PoolConfig::default()
        },
    )
    .unwrap();
    let mut real = Executor::new(fb, Mode::Faithful, CpuModel::disabled());
    for (i, spec) in specs.iter().enumerate() {
        let rel = Relation::create(&mut real.sm, spec, true, seed + i as u64).unwrap();
        real.add_relation(rel);
    }
    let real_stats = real.run(plan).expect("real run");
    let real_dev = StorageBackend::device_stats(&real.sm, "HDD").unwrap();

    (
        sim_stats.output.unwrap_or_default(),
        real_stats.output.unwrap_or_default(),
        (sim_dev.bytes_read, sim_dev.bytes_written),
        (real_dev.bytes_read, real_dev.bytes_written),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn bnl_join_same_output_and_bytes_on_both_backends(
        cards in (20u64..140, 10u64..90),
        blocks in (1u64..48, 1u64..48),
        key_range in 5u64..40,
        seed in 0u64..1000,
    ) {
        let specs = [
            RelSpec::pairs("R", "HDD", cards.0).with_key_range(key_range),
            RelSpec::pairs("S", "HDD", cards.1).with_key_range(key_range),
        ];
        let plan = Plan::BnlJoin {
            outer: 0,
            inner: 1,
            k1: blocks.0,
            k2: blocks.1,
            tiling: None,
            pred: JoinPred::KeyEq,
            order_inputs: false,
            output: Output::ToDevice { device: "HDD".into(), buffer_bytes: 512 },
        };
        let (sim_out, real_out, sim_bytes, real_bytes) = run_both(&plan, &specs, seed);
        prop_assert_eq!(sim_out, real_out);
        prop_assert_eq!(sim_bytes, real_bytes);
    }

    #[test]
    fn grace_join_same_output_and_bytes_on_both_backends(
        cards in (30u64..120, 20u64..80),
        partitions in 1u64..9,
        seed in 0u64..1000,
    ) {
        let specs = [
            RelSpec::pairs("R", "HDD", cards.0).with_key_range(25),
            RelSpec::pairs("S", "HDD", cards.1).with_key_range(25),
        ];
        let plan = Plan::GraceJoin {
            left: 0,
            right: 1,
            partitions,
            buffer_bytes: 1 << 10,
            spill: "HDD".into(),
            pred: JoinPred::KeyEq,
            output: Output::ToDevice { device: "HDD".into(), buffer_bytes: 256 },
        };
        let (sim_out, real_out, sim_bytes, real_bytes) = run_both(&plan, &specs, seed);
        prop_assert_eq!(sim_out, real_out);
        prop_assert_eq!(sim_bytes, real_bytes);
    }

    #[test]
    fn merge_and_sort_same_output_and_bytes_on_both_backends(
        cards in (20u64..120, 20u64..120),
        b_in in 4u64..64,
        seed in 0u64..1000,
    ) {
        let specs = [
            RelSpec::ints("A", "HDD", cards.0).sorted(),
            RelSpec::ints("B", "HDD", cards.1).sorted(),
        ];
        let plan = Plan::MergePass {
            left: 0,
            right: 1,
            kind: MergeKind::MultisetUnionSorted,
            b_in,
            output: Output::ToDevice { device: "HDD".into(), buffer_bytes: 256 },
        };
        let (sim_out, real_out, sim_bytes, real_bytes) = run_both(&plan, &specs, seed);
        prop_assert_eq!(sim_out, real_out);
        prop_assert_eq!(sim_bytes, real_bytes);

        let sort_specs = [RelSpec::ints("L", "HDD", cards.0)];
        let sort = Plan::ExternalSort {
            input: 0,
            fan_in: 4,
            b_in,
            b_out: 2 * b_in,
            scratch: "HDD".into(),
            output: Output::ToDevice { device: "HDD".into(), buffer_bytes: 256 },
        };
        let (sim_out, real_out, sim_bytes, real_bytes) = run_both(&sort, &sort_specs, seed);
        prop_assert_eq!(sim_out, real_out);
        prop_assert_eq!(sim_bytes, real_bytes);
    }
}

#[test]
fn real_grace_join_is_correct_and_matches_simulator() {
    let h = unit_page_hierarchy();
    let rt = Runtime::new(h);
    let specs = [
        RelSpec::pairs("R", "HDD", 400).with_key_range(60),
        RelSpec::pairs("S", "HDD", 250).with_key_range(60),
    ];
    let plan = Plan::GraceJoin {
        left: 0,
        right: 1,
        partitions: 8,
        buffer_bytes: 1 << 12,
        spill: "HDD".into(),
        pred: JoinPred::KeyEq,
        output: Output::ToDevice {
            device: "HDD".into(),
            buffer_bytes: 1 << 10,
        },
    };
    let report = rt.run_plan(&plan, &specs, 3).unwrap();
    assert!(
        report.outputs_match(),
        "real ({} rows) vs simulated ({} rows)",
        report.output.len(),
        report.sim_output.len()
    );
    // Brute-force ground truth over the same generated rows.
    let h = unit_page_hierarchy();
    let mut sm = StorageSim::from_hierarchy(&h);
    let r = Relation::create(&mut sm, &specs[0], true, 3).unwrap();
    let s = Relation::create(&mut sm, &specs[1], true, 4).unwrap();
    let (rbuf, sbuf) = (r.collect_rows().unwrap(), s.collect_rows().unwrap());
    let mut expect = Vec::new();
    for x in rbuf.iter() {
        for y in sbuf.iter() {
            if x[0] == y[0] {
                let mut row = x.to_vec();
                row.extend_from_slice(y);
                expect.push(row);
            }
        }
    }
    let mut got = report.output.to_rows();
    got.sort();
    expect.sort();
    assert_eq!(got, expect);
    // Partitions really spilled: the spill device saw both write passes.
    let (_, hdd) = report
        .real_devices
        .iter()
        .find(|(n, _)| n == "HDD")
        .unwrap()
        .clone();
    let input_bytes = 400 * 16 + 250 * 16;
    assert!(
        hdd.bytes_written >= input_bytes,
        "partition pass must write both relations: {hdd:?}"
    );
    assert!(report.wall_seconds > 0.0);
    assert!(report.sim_seconds > 0.0);
}

#[test]
fn real_external_sort_is_correct_and_matches_simulator() {
    let h = unit_page_hierarchy();
    let rt = Runtime::new(h);
    let specs = [RelSpec::ints("L", "HDD", 3000)];
    let plan = Plan::ExternalSort {
        input: 0,
        fan_in: 4,
        b_in: 32,
        b_out: 64,
        scratch: "HDD".into(),
        output: Output::ToDevice {
            device: "HDD".into(),
            buffer_bytes: 1 << 10,
        },
    };
    let report = rt.run_plan(&plan, &specs, 11).unwrap();
    assert_eq!(report.output.len(), 3000);
    assert!(report.output.is_sorted(), "sorted");
    assert!(report.outputs_match());
    // With runs of 4*32+64 = 192 tuples, 3000 tuples form 16 runs and need
    // two 4-way merge levels: scratch traffic far exceeds the input size.
    let (_, hdd) = report
        .real_devices
        .iter()
        .find(|(n, _)| n == "HDD")
        .unwrap()
        .clone();
    assert!(
        hdd.bytes_written > 2 * 3000 * 8,
        "runs + merge levels really hit the scratch device: {hdd:?}"
    );
    // The buffer pools did real paging work.
    let pool_misses: u64 = report.pools.iter().map(|(_, p)| p.misses).sum();
    assert!(pool_misses > 0);
}

#[test]
fn eviction_policies_all_produce_correct_results() {
    for policy in [PolicyKind::Lru, PolicyKind::Clock, PolicyKind::Fifo] {
        let rt = Runtime::new(unit_page_hierarchy()).with_pool(PoolConfig {
            page_bytes: 256,
            frames: 8, // tiny pool: constant eviction pressure
            policy,
            ..PoolConfig::default()
        });
        let specs = [RelSpec::ints("L", "HDD", 500)];
        let plan = Plan::ExternalSort {
            input: 0,
            fan_in: 2,
            b_in: 16,
            b_out: 16,
            scratch: "HDD".into(),
            output: Output::Discard,
        };
        let report = rt.run_plan(&plan, &specs, 7).unwrap();
        assert!(report.output.is_sorted(), "{policy:?} sorted");
        assert_eq!(report.output.len(), 500, "{policy:?} cardinality");
        let evictions: u64 = report.pools.iter().map(|(_, p)| p.evictions).sum();
        assert!(evictions > 0, "{policy:?} must be under eviction pressure");
    }
}

/// Streamed creation writes the backing file per block; the bytes on
/// disk must be identical to what the legacy whole-relation encode +
/// single materialize produced — across sortedness, widths and narrow
/// `col_bytes` (the satellite check for the per-block
/// `encode_into`/`materialize` setup path).
#[test]
fn streamed_creation_writes_byte_identical_files_to_the_legacy_path() {
    use ocas_engine::GenMode;
    use std::io::Read;
    let cases = [
        (false, 1u32, 8u32, 0u64), // unsorted ints, default key range
        (true, 1, 8, 97),          // sorted ints
        (true, 2, 8, 40),          // sorted pairs (lexicographic)
        (true, 1, 1, 50),          // sorted narrow columns
        (false, 3, 4, 33),         // wide tuples, 4-byte columns
    ];
    for (sorted, width, col_bytes, key_range) in cases {
        let read_dev = |mode: GenMode| -> Vec<u8> {
            let h = unit_page_hierarchy();
            let mut fb = FileBackend::from_hierarchy(&h, PoolConfig::default()).unwrap();
            let mut spec = RelSpec::pairs("R", "HDD", 3_000)
                .with_key_range(key_range)
                // Small budget: many per-block materialize calls.
                .with_cache_bytes(512 * u64::from(width) * 8);
            spec.width = width;
            spec.col_bytes = col_bytes;
            spec.sorted = sorted;
            let rel = Relation::create_with(&mut fb, &spec, mode, 7).unwrap();
            fb.flush().unwrap();
            let mut bytes = vec![0u8; rel.bytes() as usize];
            std::fs::File::open(fb.dir().join("HDD.dev"))
                .unwrap()
                .read_exact(&mut bytes)
                .unwrap();
            bytes
        };
        assert_eq!(
            read_dev(GenMode::Streamed),
            read_dev(GenMode::Materialized),
            "sorted={sorted} width={width} col_bytes={col_bytes} key_range={key_range}"
        );
    }
}

/// Narrow-column regression: a faithful plan over 1-byte columns must land
/// on disk in the documented on-disk format (`col_bytes` LE bytes per
/// column), matching how `Relation::create` materializes inputs — not as
/// truncated 8-byte columns.
#[test]
fn narrow_column_output_uses_the_on_disk_tuple_format() {
    let h = unit_page_hierarchy();
    let fb = FileBackend::from_hierarchy(&h, PoolConfig::default()).unwrap();
    let mut ex = Executor::new(fb, Mode::Faithful, CpuModel::disabled());
    let mut spec = RelSpec::ints("L", "HDD", 64).sorted().with_key_range(40);
    spec.col_bytes = 1;
    let rel = Relation::create(&mut ex.sm, &spec, true, 5).unwrap();
    let input_bytes = rel.bytes();
    let rows = rel.collect_rows().unwrap();
    let li = ex.add_relation(rel);
    let stats = ex
        .run(&Plan::DedupSorted {
            input: li,
            b_in: 16,
            output: Output::ToDevice {
                device: "HDD".into(),
                buffer_bytes: 8,
            },
        })
        .unwrap();
    let out_rows = stats.output.unwrap();
    let mut expect = rows;
    expect.dedup();
    assert_eq!(out_rows, expect);
    // The sink's extent starts right after the input allocation (bump
    // allocator); its bytes must be each value's low byte in order.
    ex.sm.flush().unwrap();
    use std::io::{Read, Seek, SeekFrom};
    let path = ex.sm.dir().join("HDD.dev");
    let mut f = std::fs::File::open(path).unwrap();
    f.seek(SeekFrom::Start(input_bytes)).unwrap();
    let mut got = vec![0u8; out_rows.len()];
    f.read_exact(&mut got).unwrap();
    let want: Vec<u8> = out_rows.iter().map(|r| r[0].to_le_bytes()[0]).collect();
    assert_eq!(got, want, "on-disk bytes are col_bytes-wide LE columns");
}
