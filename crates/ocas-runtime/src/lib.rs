//! # ocas-runtime — the real-I/O execution backend
//!
//! The paper validates synthesized algorithms by running generated programs
//! on real hardware. This crate closes the reproduction's corresponding
//! gap: it executes `ocas-engine` plans against **actual files on disk**
//! instead of the device simulator, so wall-clock numbers exist next to
//! simulated seconds, and correctness is checked three ways —
//!
//! > OCAL reference interpreter ≡ simulator faithful mode ≡ real files.
//!
//! Three layers:
//!
//! * [`BufferPool`] — a page-granular cache over one backing file:
//!   pluggable eviction ([`PolicyKind`]: LRU, CLOCK, FIFO), pinned pages,
//!   dirty-page write-back.
//! * [`FileBackend`] — the [`ocas_storage::StorageBackend`] implementation:
//!   one sparse temp file per hierarchy device, bump-allocated extents
//!   (the simulator's allocator, re-enacted on disk), per-device I/O
//!   counters mirroring [`ocas_storage::DeviceStats`], wall-clock charging.
//! * [`algos`] + [`Runtime`] — genuinely out-of-core algorithm
//!   implementations (external merge-sort runs and GRACE partitions really
//!   spill to disk; merge passes, column zips and duplicate removal stream
//!   through bounded cursors — peak resident tuple memory is metered and
//!   independent of input cardinality) and the entry point that runs a
//!   plan for real alongside its simulated twin, returning a
//!   [`RealReport`] with both. [`TimingMode::DiskBounded`] bounds
//!   wall-clock by the disk (fsync + `O_DIRECT` where available) instead
//!   of the kernel page cache.
//!
//! When is which mode authoritative? The **simulator** for paper-scale
//! claims (terabyte workloads, exact modeled devices); the **real backend**
//! for grounding — that a synthesized plan, run against actual bytes,
//! produces exactly the answer the specification's interpreter defines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algos;
pub mod backend;
pub mod pool;
pub mod runtime;

pub use algos::{AlgoError, AlgoRun};
pub use backend::{FileBackend, PoolConfig, TimingMode};
pub use pool::{BufferPool, EvictionPolicy, PolicyKind, PoolStats};
pub use runtime::{RealReport, Runtime, RuntimeError};
