//! The real-I/O storage backend: one temp file per hierarchy device, each
//! fronted by a page-granular [`BufferPool`], implementing the engine's
//! [`StorageBackend`] seam with per-device I/O counters that mirror the
//! simulator's [`DeviceStats`].

use crate::pool::{BufferPool, PolicyKind, PoolStats};
use ocas_hierarchy::Hierarchy;
use ocas_storage::{DeviceStats, FileId, StorageBackend, StorageError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// How wall-clock timing relates to the physical disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Default: I/O goes through the OS page cache; `wall_seconds` on
    /// workloads smaller than free RAM mostly measures `memcpy`.
    #[default]
    Buffered,
    /// fsync-bounded timing: device files are opened with `O_DIRECT` where
    /// the platform allows (Linux, 512-byte-aligned pages, a filesystem
    /// that supports it — probed at startup, silently falling back to
    /// buffered I/O elsewhere), and [`FileBackend::flush`] — write-back +
    /// fsync — charges the clock, so `wall_seconds` reflects the disk
    /// rather than the kernel's RAM.
    DiskBounded,
}

/// Buffer-pool configuration shared by every device of a backend.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Page size in bytes (0 = use each device's hierarchy `pagesize`).
    pub page_bytes: usize,
    /// Frames per device pool.
    pub frames: usize,
    /// Eviction policy.
    pub policy: PolicyKind,
    /// Timing mode (buffered page-cache I/O vs fsync/`O_DIRECT`-bounded).
    pub timing: TimingMode,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            page_bytes: 0,
            frames: 256,
            policy: PolicyKind::Lru,
            timing: TimingMode::Buffered,
        }
    }
}

/// Tries to reopen `path` for direct I/O and probes one aligned read; any
/// failure (unsupported platform, filesystem, or page geometry) returns
/// `None` and the caller stays on buffered I/O.
#[cfg(target_os = "linux")]
fn try_direct_open(path: &Path, page: usize) -> Option<std::fs::File> {
    use std::os::unix::fs::{FileExt, OpenOptionsExt};
    if page % 512 != 0 {
        return None;
    }
    #[cfg(any(target_arch = "aarch64", target_arch = "arm"))]
    const O_DIRECT: i32 = 0o200000;
    #[cfg(not(any(target_arch = "aarch64", target_arch = "arm")))]
    const O_DIRECT: i32 = 0o40000;
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .custom_flags(O_DIRECT)
        .open(path)
        .ok()?;
    let mut probe = vec![0u8; page + 511];
    let off = probe.as_ptr().align_offset(512);
    file.read_at(&mut probe[off..off + page], 0).ok()?;
    Some(file)
}

#[cfg(not(target_os = "linux"))]
fn try_direct_open(_path: &Path, _page: usize) -> Option<std::fs::File> {
    None
}

#[derive(Debug, Clone)]
struct FileMeta {
    device: usize,
    offset: u64,
    len: u64,
}

struct DeviceFile {
    name: String,
    pool: BufferPool,
    stats: DeviceStats,
    /// Next byte position a purely sequential request would start at —
    /// a request elsewhere counts as a seek, mirroring the HDD simulator.
    position: u64,
    /// Pool statistics as of the last emitted obs counter sample, so
    /// tracing emits per-request deltas (only read while tracing).
    obs_pool: PoolStats,
}

impl DeviceFile {
    /// Records one charged request as a wall-clock span on this device's
    /// track, plus counter deltas for any buffer-pool activity it caused.
    fn obs_request(&mut self, name: &'static str, start: f64, dur: f64, bytes: u64, seek: bool) {
        if !ocas_obs::enabled() {
            return;
        }
        ocas_obs::span(
            ocas_obs::Clock::Wall,
            &format!("dev:{}", self.name),
            name,
            start,
            dur,
            &[("bytes", bytes as f64), ("seeks", u64::from(seek) as f64)],
        );
        let s = self.pool.stats();
        let track = format!("pool:{}", self.name);
        for (counter, cur, prev) in [
            ("hits", s.hits, self.obs_pool.hits),
            ("misses", s.misses, self.obs_pool.misses),
            ("evictions", s.evictions, self.obs_pool.evictions),
            ("write_backs", s.write_backs, self.obs_pool.write_backs),
        ] {
            if cur > prev {
                ocas_obs::counter(
                    ocas_obs::Clock::Wall,
                    &track,
                    counter,
                    start + dur,
                    (cur - prev) as f64,
                );
            }
        }
        self.obs_pool = s;
    }
}

/// The real-I/O backend: files on disk, wall-clock accounting.
///
/// Every device of the hierarchy's storage tree maps to one sparse backing
/// file inside a per-backend temp directory; engine file extents are
/// bump-allocated ranges of those files, exactly like the simulator's
/// extent allocator — so a plan executed here issues the same `(device,
/// offset, len)` request stream as on [`ocas_storage::StorageSim`], but
/// each request moves real bytes through the device's buffer pool.
///
/// The backend is built for **faithful-scale** runs (real rows, real
/// bytes). Simulated-mode plans model multi-terabyte transfers; pointing
/// one at a `FileBackend` would faithfully write that much filler.
pub struct FileBackend {
    dir: PathBuf,
    keep_dir: bool,
    timing: TimingMode,
    devices: Vec<DeviceFile>,
    device_by_name: BTreeMap<String, usize>,
    capacity: Vec<u64>,
    allocated: Vec<u64>,
    files: Vec<FileMeta>,
    clock_seconds: f64,
    scratch: Vec<u8>,
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("devices", &self.device_by_name)
            .field("files", &self.files.len())
            .field("clock_seconds", &self.clock_seconds)
            .finish()
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

static BACKEND_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl FileBackend {
    /// Builds a backend in a fresh temp directory (removed on drop).
    pub fn from_hierarchy(h: &Hierarchy, cfg: PoolConfig) -> Result<FileBackend, StorageError> {
        let seq = BACKEND_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ocas-runtime-{}-{seq}", std::process::id()));
        FileBackend::in_dir(h, cfg, &dir, false)
    }

    /// Builds a backend in `dir` (created if missing); `keep` leaves the
    /// directory behind on drop for inspection.
    pub fn in_dir(
        h: &Hierarchy,
        cfg: PoolConfig,
        dir: &Path,
        keep: bool,
    ) -> Result<FileBackend, StorageError> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let mut devices = Vec::new();
        let mut device_by_name = BTreeMap::new();
        let mut capacity = Vec::new();
        for id in h.ids() {
            let props = h.node(id);
            let path = dir.join(format!("{}.dev", props.name));
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .map_err(io_err)?;
            // Sparse up to the device capacity: reads of unwritten ranges
            // see zeros, allocation never preallocates blocks.
            file.set_len(props.size).map_err(io_err)?;
            let page = if cfg.page_bytes > 0 {
                cfg.page_bytes
            } else {
                props.pagesize.clamp(1, 1 << 20) as usize
            };
            // Disk-bounded timing: swap in an O_DIRECT handle when the
            // platform grants one for this page geometry and filesystem.
            let (file, direct) = if cfg.timing == TimingMode::DiskBounded {
                match try_direct_open(&path, page) {
                    Some(f) => (f, true),
                    None => (file, false),
                }
            } else {
                (file, false)
            };
            device_by_name.insert(props.name.clone(), devices.len());
            capacity.push(props.size);
            devices.push(DeviceFile {
                name: props.name.clone(),
                pool: BufferPool::new(file, page, cfg.frames, cfg.policy).with_direct(direct),
                stats: DeviceStats::default(),
                position: 0,
                obs_pool: PoolStats::default(),
            });
        }
        let n = devices.len();
        Ok(FileBackend {
            dir: dir.to_path_buf(),
            keep_dir: keep,
            timing: cfg.timing,
            devices,
            device_by_name,
            capacity,
            allocated: vec![0; n],
            files: Vec::new(),
            clock_seconds: 0.0,
            scratch: Vec::new(),
        })
    }

    /// The backend's temp directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn device_idx(&self, device: &str) -> Result<usize, StorageError> {
        self.device_by_name
            .get(device)
            .copied()
            .ok_or_else(|| StorageError::UnknownDevice(device.to_string()))
    }

    fn meta(&self, file: FileId) -> &FileMeta {
        &self.files[file.0]
    }

    fn check(&self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        let m = self.meta(file);
        if offset + len > m.len {
            return Err(StorageError::OutOfBounds {
                file: file.0,
                end: offset + len,
                len: m.len,
            });
        }
        Ok(())
    }

    /// Charged read of real bytes into `buf` — the data path the
    /// out-of-core algorithms use.
    pub fn read_into(
        &mut self,
        file: FileId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), StorageError> {
        self.check(file, offset, buf.len() as u64)?;
        let m = self.meta(file).clone();
        let pos = m.offset + offset;
        let w0 = ocas_obs::wall_now();
        let t0 = Instant::now();
        let d = &mut self.devices[m.device];
        let seek = pos != d.position;
        if seek {
            d.stats.seeks += 1;
        }
        d.pool.read(pos, buf)?;
        d.position = pos + buf.len() as u64;
        d.stats.bytes_read += buf.len() as u64;
        let dt = t0.elapsed().as_secs_f64();
        d.stats.busy_seconds += dt;
        d.obs_request("read", w0, dt, buf.len() as u64, seek);
        self.clock_seconds += dt;
        Ok(())
    }

    fn write_impl(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        self.check(file, offset, data.len() as u64)?;
        let m = self.meta(file).clone();
        let pos = m.offset + offset;
        let w0 = ocas_obs::wall_now();
        let t0 = Instant::now();
        let d = &mut self.devices[m.device];
        let seek = pos != d.position;
        if seek {
            d.stats.seeks += 1;
        }
        d.pool.write(pos, data)?;
        d.position = pos + data.len() as u64;
        d.stats.bytes_written += data.len() as u64;
        let dt = t0.elapsed().as_secs_f64();
        d.stats.busy_seconds += dt;
        d.obs_request("write", w0, dt, data.len() as u64, seek);
        self.clock_seconds += dt;
        Ok(())
    }

    /// Charged read of `count` tuples of `width` 8-byte columns starting
    /// at tuple `row_offset`, decoded straight into a flat batch through
    /// the backend's reusable scratch buffer — the block-read path of the
    /// out-of-core algorithms (no per-block, per-row or per-column
    /// allocation).
    pub fn read_rows(
        &mut self,
        file: FileId,
        row_offset: u64,
        count: u64,
        width: usize,
        out: &mut ocas_engine::RowBuf,
    ) -> Result<(), StorageError> {
        let tb = width as u64 * 8;
        let bytes = (count * tb) as usize;
        if self.scratch.len() < bytes {
            self.scratch.resize(bytes, 0);
        }
        let mut buf = std::mem::take(&mut self.scratch);
        let r = self.read_into(file, row_offset * tb, &mut buf[..bytes]);
        self.scratch = buf;
        r?;
        out.decode_into(&self.scratch[..bytes]);
        Ok(())
    }

    /// Uncharged tuple read — [`read_rows`](FileBackend::read_rows) for the
    /// harvest path (no clock, no counters, no seek).
    pub fn peek_rows(
        &mut self,
        file: FileId,
        row_offset: u64,
        count: u64,
        width: usize,
        out: &mut ocas_engine::RowBuf,
    ) -> Result<(), StorageError> {
        let tb = width as u64 * 8;
        let bytes = (count * tb) as usize;
        if self.scratch.len() < bytes {
            self.scratch.resize(bytes, 0);
        }
        let mut buf = std::mem::take(&mut self.scratch);
        let r = self.peek(file, row_offset * tb, &mut buf[..bytes]);
        self.scratch = buf;
        r?;
        out.decode_into(&self.scratch[..bytes]);
        Ok(())
    }

    /// Uncharged read of real bytes — the harvest path for pulling results
    /// back out after a measured run (no clock, no counters, no seek).
    pub fn peek(&mut self, file: FileId, offset: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        self.check(file, offset, buf.len() as u64)?;
        let m = self.meta(file).clone();
        self.devices[m.device].pool.read(m.offset + offset, buf)
    }

    /// Pins the pages backing `[offset, offset+len)` of `file` so the pool
    /// cannot evict them (hot block buffers).
    pub fn pin(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        self.check(file, offset, len)?;
        let m = self.meta(file).clone();
        self.devices[m.device].pool.pin(m.offset + offset, len)?;
        Ok(())
    }

    /// Releases a [`pin`](FileBackend::pin).
    pub fn unpin(&mut self, file: FileId, offset: u64, len: u64) {
        let m = self.meta(file).clone();
        self.devices[m.device].pool.unpin(m.offset + offset, len);
    }

    /// Writes every pool's dirty pages back and syncs the files. In
    /// disk-bounded timing mode the write-back + fsync time is charged to
    /// the clock and the device (it *is* disk time); buffered mode leaves
    /// it uncharged, mirroring a page-cache-backed run.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        let charge = self.timing == TimingMode::DiskBounded;
        for d in &mut self.devices {
            let t0 = Instant::now();
            d.pool.flush()?;
            if charge {
                let dt = t0.elapsed().as_secs_f64();
                d.stats.busy_seconds += dt;
                self.clock_seconds += dt;
            }
        }
        Ok(())
    }

    /// The backend's timing mode.
    pub fn timing(&self) -> TimingMode {
        self.timing
    }

    /// True when at least one device pool runs on an `O_DIRECT` handle.
    pub fn any_direct(&self) -> bool {
        self.devices.iter().any(|d| d.pool.is_direct())
    }

    /// Aggregated buffer-pool statistics per device.
    pub fn pool_stats(&self) -> Vec<(String, PoolStats)> {
        self.devices
            .iter()
            .map(|d| (d.name.clone(), d.pool.stats()))
            .collect()
    }

    /// Per-device I/O statistics, in hierarchy order.
    pub fn all_device_stats(&self) -> Vec<(String, DeviceStats)> {
        self.devices
            .iter()
            .map(|d| (d.name.clone(), d.stats))
            .collect()
    }
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        if !self.keep_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

impl StorageBackend for FileBackend {
    fn alloc(&mut self, device: &str, len: u64) -> Result<FileId, StorageError> {
        let d = self.device_idx(device)?;
        if self.allocated[d] + len > self.capacity[d] {
            return Err(StorageError::Full(device.to_string()));
        }
        let offset = self.allocated[d];
        self.allocated[d] += len;
        let id = FileId(self.files.len());
        self.files.push(FileMeta {
            device: d,
            offset,
            len,
        });
        Ok(id)
    }

    fn read(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        // Accounting read: really fetch the bytes (through the pool, off
        // the file) into a scratch buffer, in bounded chunks.
        let mut remaining = len;
        let mut at = offset;
        while remaining > 0 {
            let chunk = remaining.min(1 << 20) as usize;
            if self.scratch.len() < chunk {
                self.scratch.resize(chunk, 0);
            }
            let mut buf = std::mem::take(&mut self.scratch);
            let r = self.read_into(file, at, &mut buf[..chunk]);
            self.scratch = buf;
            r?;
            at += chunk as u64;
            remaining -= chunk as u64;
        }
        Ok(())
    }

    fn write(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        // Accounting write: move that many real filler bytes.
        let mut remaining = len;
        let mut at = offset;
        while remaining > 0 {
            let chunk = remaining.min(1 << 20) as usize;
            if self.scratch.len() < chunk {
                self.scratch.resize(chunk, 0);
            }
            let buf = std::mem::take(&mut self.scratch);
            let r = self.write_impl(file, at, &buf[..chunk]);
            self.scratch = buf;
            r?;
            at += chunk as u64;
            remaining -= chunk as u64;
        }
        Ok(())
    }

    fn write_bytes(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        self.write_impl(file, offset, data)
    }

    fn materialize(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        self.check(file, offset, data.len() as u64)?;
        let m = self.meta(file).clone();
        // Through the pool (cache coherence) but uncharged and without
        // disturbing the sequential-position seek accounting.
        self.devices[m.device].pool.write(m.offset + offset, data)
    }

    fn charge_cpu(&mut self, _seconds: f64) {
        // Real backends measure wall time; modeled CPU would double-count.
    }

    fn clock(&self) -> f64 {
        self.clock_seconds
    }

    fn obs_clock(&self) -> ocas_obs::Clock {
        ocas_obs::Clock::Wall
    }

    fn len(&self, file: FileId) -> u64 {
        self.meta(file).len
    }

    fn device_of(&self, file: FileId) -> &str {
        &self.devices[self.meta(file).device].name
    }

    fn device_stats(&self, device: &str) -> Option<DeviceStats> {
        self.device_by_name
            .get(device)
            .map(|d| self.devices[*d].stats)
    }

    fn truncate_device(&mut self, device: &str, mark: u64) -> Result<(), StorageError> {
        let d = self.device_idx(device)?;
        self.allocated[d] = self.allocated[d].min(mark);
        Ok(())
    }

    fn watermark(&self, device: &str) -> Option<u64> {
        self.device_by_name.get(device).map(|d| self.allocated[*d])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocas_hierarchy::presets;

    fn backend() -> FileBackend {
        let h = presets::hdd_ram(1 << 25);
        FileBackend::from_hierarchy(&h, PoolConfig::default()).unwrap()
    }

    #[test]
    fn bytes_round_trip_through_real_files() {
        let mut b = backend();
        let f = b.alloc("HDD", 4096).unwrap();
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
        b.write_bytes(f, 0, &data).unwrap();
        b.flush().unwrap();
        // The bytes are really on disk (read only the prefix — the device
        // file is sparse up to the hierarchy capacity).
        use std::io::Read;
        let path = b.dir().join("HDD.dev");
        let mut on_disk = vec![0u8; 4096];
        std::fs::File::open(&path)
            .unwrap()
            .read_exact(&mut on_disk)
            .unwrap();
        assert_eq!(on_disk, data);
        let mut buf = vec![0u8; 4096];
        b.read_into(f, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn counters_mirror_device_stats() {
        let mut b = backend();
        let f = b.alloc("HDD", 1 << 16).unwrap();
        b.write(f, 0, 1 << 16).unwrap();
        b.read(f, 0, 1 << 16).unwrap();
        // Jump back: a second read from 0 is a seek.
        b.read(f, 0, 4096).unwrap();
        let s = b.device_stats("HDD").unwrap();
        assert_eq!(s.bytes_written, 1 << 16);
        assert_eq!(s.bytes_read, (1 << 16) + 4096);
        assert!(s.seeks >= 2, "write→read jump and read→read jump: {s:?}");
        assert!(b.clock() > 0.0);
        assert!(s.busy_seconds > 0.0);
    }

    #[test]
    fn materialize_is_uncharged() {
        let mut b = backend();
        let f = b.alloc("HDD", 1024).unwrap();
        b.materialize(f, 0, &[5u8; 1024]).unwrap();
        assert_eq!(b.clock(), 0.0);
        let s = b.device_stats("HDD").unwrap();
        assert_eq!((s.bytes_read, s.bytes_written), (0, 0));
        let mut buf = [0u8; 16];
        b.read_into(f, 100, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 16]);
    }

    #[test]
    fn alloc_bounds_and_capacity() {
        let mut b = backend();
        let f = b.alloc("HDD", 100).unwrap();
        assert!(matches!(
            b.read(f, 64, 100),
            Err(StorageError::OutOfBounds { .. })
        ));
        assert!(matches!(
            b.alloc("nope", 1),
            Err(StorageError::UnknownDevice(_))
        ));
        assert!(matches!(
            b.alloc("RAM", 1 << 40),
            Err(StorageError::Full(_))
        ));
        // truncate_device reuses scratch space.
        let mark = StorageBackend::watermark(&b, "HDD").unwrap();
        b.alloc("HDD", 1 << 20).unwrap();
        b.truncate_device("HDD", mark).unwrap();
        assert_eq!(StorageBackend::watermark(&b, "HDD"), Some(mark));
    }

    #[test]
    fn temp_dir_removed_on_drop() {
        let dir;
        {
            let b = backend();
            dir = b.dir().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "temp dir {dir:?} should be cleaned up");
    }
}
