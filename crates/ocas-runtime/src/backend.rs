//! The real-I/O storage backend: one temp file per hierarchy device, each
//! fronted by a page-granular [`BufferPool`], implementing the engine's
//! [`StorageBackend`] seam with per-device I/O counters that mirror the
//! simulator's [`DeviceStats`].

use crate::pool::{BufferPool, PolicyKind, PoolStats};
use ocas_hierarchy::Hierarchy;
use ocas_storage::fault::{FaultOp, FaultPlan, FaultState, RetryPolicy};
use ocas_storage::{DeviceStats, FileId, RecoveryCounters, StorageBackend, StorageError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// How wall-clock timing relates to the physical disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TimingMode {
    /// Default: I/O goes through the OS page cache; `wall_seconds` on
    /// workloads smaller than free RAM mostly measures `memcpy`.
    #[default]
    Buffered,
    /// fsync-bounded timing: device files are opened with `O_DIRECT` where
    /// the platform allows (Linux, 512-byte-aligned pages, a filesystem
    /// that supports it — probed at startup, silently falling back to
    /// buffered I/O elsewhere), and [`FileBackend::flush`] — write-back +
    /// fsync — charges the clock, so `wall_seconds` reflects the disk
    /// rather than the kernel's RAM.
    DiskBounded,
}

/// Buffer-pool configuration shared by every device of a backend.
#[derive(Debug, Clone, Copy)]
pub struct PoolConfig {
    /// Page size in bytes (0 = use each device's hierarchy `pagesize`).
    pub page_bytes: usize,
    /// Frames per device pool.
    pub frames: usize,
    /// Eviction policy.
    pub policy: PolicyKind,
    /// Timing mode (buffered page-cache I/O vs fsync/`O_DIRECT`-bounded).
    pub timing: TimingMode,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            page_bytes: 0,
            frames: 256,
            policy: PolicyKind::Lru,
            timing: TimingMode::Buffered,
        }
    }
}

/// Tries to reopen `path` for direct I/O and probes one aligned read; any
/// failure (unsupported platform, filesystem, or page geometry) returns
/// `None` and the caller stays on buffered I/O.
#[cfg(target_os = "linux")]
fn try_direct_open(path: &Path, page: usize) -> Option<std::fs::File> {
    use std::os::unix::fs::{FileExt, OpenOptionsExt};
    if page % 512 != 0 {
        return None;
    }
    #[cfg(any(target_arch = "aarch64", target_arch = "arm"))]
    const O_DIRECT: i32 = 0o200000;
    #[cfg(not(any(target_arch = "aarch64", target_arch = "arm")))]
    const O_DIRECT: i32 = 0o40000;
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .custom_flags(O_DIRECT)
        .open(path)
        .ok()?;
    let mut probe = vec![0u8; page + 511];
    let off = probe.as_ptr().align_offset(512);
    file.read_at(&mut probe[off..off + page], 0).ok()?;
    Some(file)
}

#[cfg(not(target_os = "linux"))]
fn try_direct_open(_path: &Path, _page: usize) -> Option<std::fs::File> {
    None
}

#[derive(Debug, Clone)]
struct FileMeta {
    device: usize,
    offset: u64,
    len: u64,
}

struct DeviceFile {
    name: String,
    pool: BufferPool,
    stats: DeviceStats,
    /// Next byte position a purely sequential request would start at —
    /// a request elsewhere counts as a seek, mirroring the HDD simulator.
    position: u64,
    /// Pool statistics as of the last emitted obs counter sample, so
    /// tracing emits per-request deltas (only read while tracing).
    obs_pool: PoolStats,
}

impl DeviceFile {
    /// Records one charged request as a wall-clock span on this device's
    /// track, plus counter deltas for any buffer-pool activity it caused.
    fn obs_request(&mut self, name: &'static str, start: f64, dur: f64, bytes: u64, seek: bool) {
        if !ocas_obs::enabled() {
            return;
        }
        ocas_obs::span(
            ocas_obs::Clock::Wall,
            &format!("dev:{}", self.name),
            name,
            start,
            dur,
            &[("bytes", bytes as f64), ("seeks", u64::from(seek) as f64)],
        );
        let s = self.pool.stats();
        let track = format!("pool:{}", self.name);
        for (counter, cur, prev) in [
            ("hits", s.hits, self.obs_pool.hits),
            ("misses", s.misses, self.obs_pool.misses),
            ("evictions", s.evictions, self.obs_pool.evictions),
            ("write_backs", s.write_backs, self.obs_pool.write_backs),
        ] {
            if cur > prev {
                ocas_obs::counter(
                    ocas_obs::Clock::Wall,
                    &track,
                    counter,
                    start + dur,
                    (cur - prev) as f64,
                );
            }
        }
        self.obs_pool = s;
    }
}

/// Fault-injection state interposed on the backend's real syscall paths
/// ([`FileBackend::read_into`], the write path, and allocation): the plan
/// is consulted per attempt, transients are retried under the policy with
/// backoff charged to the wall-accounted clock.
#[derive(Debug)]
struct Injector {
    state: FaultState,
    policy: RetryPolicy,
}

/// The real-I/O backend: files on disk, wall-clock accounting.
///
/// Every device of the hierarchy's storage tree maps to one sparse backing
/// file inside a per-backend temp directory; engine file extents are
/// bump-allocated ranges of those files, exactly like the simulator's
/// extent allocator — so a plan executed here issues the same `(device,
/// offset, len)` request stream as on [`ocas_storage::StorageSim`], but
/// each request moves real bytes through the device's buffer pool.
///
/// The backend is built for **faithful-scale** runs (real rows, real
/// bytes). Simulated-mode plans model multi-terabyte transfers; pointing
/// one at a `FileBackend` would faithfully write that much filler.
pub struct FileBackend {
    dir: PathBuf,
    keep_dir: bool,
    timing: TimingMode,
    devices: Vec<DeviceFile>,
    device_by_name: BTreeMap<String, usize>,
    capacity: Vec<u64>,
    allocated: Vec<u64>,
    files: Vec<FileMeta>,
    clock_seconds: f64,
    scratch: Vec<u8>,
    injector: Option<Injector>,
    /// Degradations recorded via `note_degradation` (kept even without an
    /// injector: genuine `Full` conditions degrade too).
    recovery: RecoveryCounters,
    /// Alternate spill device the out-of-core algorithms fail over to
    /// when a spill device runs out of space.
    spill_fallback: Option<String>,
}

impl std::fmt::Debug for FileBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileBackend")
            .field("dir", &self.dir)
            .field("devices", &self.device_by_name)
            .field("files", &self.files.len())
            .field("clock_seconds", &self.clock_seconds)
            .finish()
    }
}

fn io_err(e: std::io::Error) -> StorageError {
    StorageError::Io(e.to_string())
}

static BACKEND_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl FileBackend {
    /// Builds a backend in a fresh temp directory (removed on drop).
    pub fn from_hierarchy(h: &Hierarchy, cfg: PoolConfig) -> Result<FileBackend, StorageError> {
        let seq = BACKEND_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("ocas-runtime-{}-{seq}", std::process::id()));
        FileBackend::in_dir(h, cfg, &dir, false)
    }

    /// Builds a backend in `dir` (created if missing); `keep` leaves the
    /// directory behind on drop for inspection.
    pub fn in_dir(
        h: &Hierarchy,
        cfg: PoolConfig,
        dir: &Path,
        keep: bool,
    ) -> Result<FileBackend, StorageError> {
        std::fs::create_dir_all(dir).map_err(io_err)?;
        let mut devices = Vec::new();
        let mut device_by_name = BTreeMap::new();
        let mut capacity = Vec::new();
        for id in h.ids() {
            let props = h.node(id);
            let path = dir.join(format!("{}.dev", props.name));
            let file = std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(true)
                .open(&path)
                .map_err(io_err)?;
            // Sparse up to the device capacity: reads of unwritten ranges
            // see zeros, allocation never preallocates blocks.
            file.set_len(props.size).map_err(io_err)?;
            let page = if cfg.page_bytes > 0 {
                cfg.page_bytes
            } else {
                props.pagesize.clamp(1, 1 << 20) as usize
            };
            // Disk-bounded timing: swap in an O_DIRECT handle when the
            // platform grants one for this page geometry and filesystem.
            let (file, direct) = if cfg.timing == TimingMode::DiskBounded {
                match try_direct_open(&path, page) {
                    Some(f) => (f, true),
                    None => (file, false),
                }
            } else {
                (file, false)
            };
            device_by_name.insert(props.name.clone(), devices.len());
            capacity.push(props.size);
            devices.push(DeviceFile {
                name: props.name.clone(),
                pool: BufferPool::new(file, page, cfg.frames, cfg.policy)
                    .with_direct(direct)
                    .with_label(&props.name),
                stats: DeviceStats::default(),
                position: 0,
                obs_pool: PoolStats::default(),
            });
        }
        let n = devices.len();
        Ok(FileBackend {
            dir: dir.to_path_buf(),
            keep_dir: keep,
            timing: cfg.timing,
            devices,
            device_by_name,
            capacity,
            allocated: vec![0; n],
            files: Vec::new(),
            clock_seconds: 0.0,
            scratch: Vec::new(),
            injector: None,
            recovery: RecoveryCounters::default(),
            spill_fallback: None,
        })
    }

    /// The backend's temp directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Interposes `plan` on the backend's real I/O paths, builder-style:
    /// every charged read/write/alloc attempt consumes one per-device
    /// request index and may fail per the plan; transients are retried
    /// under `policy` with backoff charged to the clock.
    pub fn with_faults(mut self, plan: FaultPlan, policy: RetryPolicy) -> FileBackend {
        self.injector = Some(Injector {
            state: FaultState::new(plan),
            policy,
        });
        self
    }

    /// Names an alternate spill device for ENOSPC fail-over,
    /// builder-style. The out-of-core algorithms consult this when a
    /// spill allocation keeps failing after shrinking.
    pub fn with_spill_fallback(mut self, device: &str) -> FileBackend {
        self.spill_fallback = Some(device.to_string());
        self
    }

    /// The configured ENOSPC fail-over device, if any.
    pub fn spill_fallback(&self) -> Option<&str> {
        self.spill_fallback.as_deref()
    }

    /// Total pages currently pinned across every device pool.
    pub fn pinned_pages(&self) -> u64 {
        self.devices.iter().map(|d| d.pool.pinned_frames()).sum()
    }

    /// Drops every pin on every device pool (error-path cleanup).
    pub fn release_all_pins(&mut self) {
        for d in &mut self.devices {
            d.pool.unpin_all();
        }
    }

    /// Runs one charged request of `len` bytes against device index `d`
    /// through the fault-injection and retry machinery; a backend without
    /// an injector goes straight to `attempt`. `attempt(backend, take)`
    /// issues the real request for `take` bytes — short-transfer faults
    /// re-issue with half the length (charging the partial work) before
    /// failing the attempt transiently.
    fn faulted_io<T>(
        &mut self,
        d: usize,
        op: FaultOp,
        len: u64,
        mut attempt: impl FnMut(&mut FileBackend, u64) -> Result<T, StorageError>,
    ) -> Result<T, StorageError> {
        let Some(mut inj) = self.injector.take() else {
            return attempt(self, len);
        };
        let device = self.devices[d].name.clone();
        let mut retried = false;
        let mut try_no = 0u32;
        let out = loop {
            let (idx, fault) =
                inj.state
                    .on_request(&device, op, ocas_obs::Clock::Wall, self.clock_seconds);
            let transient = match fault {
                None => match attempt(self, len) {
                    Ok(v) => {
                        if retried {
                            inj.state.counters.retry_successes += 1;
                        }
                        break Ok(v);
                    }
                    Err(e) => break Err(e),
                },
                Some(ocas_storage::FaultKind::Latency(extra)) => {
                    self.clock_seconds += extra;
                    match attempt(self, len) {
                        Ok(v) => {
                            if retried {
                                inj.state.counters.retry_successes += 1;
                            }
                            break Ok(v);
                        }
                        Err(e) => break Err(e),
                    }
                }
                Some(ocas_storage::FaultKind::TornWriteBack) => {
                    self.devices[d].pool.schedule_torn(0);
                    match attempt(self, len) {
                        Ok(v) => {
                            if retried {
                                inj.state.counters.retry_successes += 1;
                            }
                            break Ok(v);
                        }
                        Err(e) => break Err(e),
                    }
                }
                Some(ocas_storage::FaultKind::NoSpace) => {
                    break Err(StorageError::NoSpace {
                        device: device.clone(),
                        requested: len,
                    });
                }
                Some(ocas_storage::FaultKind::ShortRead | ocas_storage::FaultKind::ShortWrite)
                    if len > 1 && op != FaultOp::Alloc =>
                {
                    // Move (and charge) half the request, then fail this
                    // attempt; the retry re-issues the full idempotent
                    // request.
                    if let Err(e) = attempt(self, len / 2) {
                        break Err(e);
                    }
                    StorageError::Transient {
                        device: device.clone(),
                        op: op.name(),
                        request: idx,
                    }
                }
                Some(_) => StorageError::Transient {
                    device: device.clone(),
                    op: op.name(),
                    request: idx,
                },
            };
            try_no += 1;
            if try_no >= inj.policy.max_attempts {
                inj.state.counters.gave_up += 1;
                break Err(transient);
            }
            self.clock_seconds += inj.policy.backoff_for(try_no - 1);
            inj.state
                .note_retry(&device, ocas_obs::Clock::Wall, self.clock_seconds);
            retried = true;
        };
        self.injector = Some(inj);
        out
    }

    fn device_idx(&self, device: &str) -> Result<usize, StorageError> {
        self.device_by_name
            .get(device)
            .copied()
            .ok_or_else(|| StorageError::UnknownDevice(device.to_string()))
    }

    /// Looks up a file's extent; a stale or foreign id is a typed error,
    /// not a panic (the trait returns `Result` — callers propagate).
    fn meta(&self, file: FileId) -> Result<&FileMeta, StorageError> {
        self.files
            .get(file.0)
            .ok_or(StorageError::UnknownFile(file.0))
    }

    fn check(&self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        let m = self.meta(file)?;
        if offset + len > m.len {
            return Err(StorageError::OutOfBounds {
                file: file.0,
                end: offset + len,
                len: m.len,
            });
        }
        Ok(())
    }

    /// Charged read of real bytes into `buf` — the data path the
    /// out-of-core algorithms use. Subject to fault injection when the
    /// backend was built [`with_faults`](FileBackend::with_faults).
    pub fn read_into(
        &mut self,
        file: FileId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), StorageError> {
        if self.injector.is_none() {
            return self.read_into_raw(file, offset, buf);
        }
        self.check(file, offset, buf.len() as u64)?;
        let d = self.meta(file)?.device;
        self.faulted_io(d, FaultOp::Read, buf.len() as u64, |b, take| {
            b.read_into_raw(file, offset, &mut buf[..take as usize])
        })
    }

    /// The uninjected body of [`read_into`](FileBackend::read_into).
    fn read_into_raw(
        &mut self,
        file: FileId,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<(), StorageError> {
        self.check(file, offset, buf.len() as u64)?;
        let m = self.meta(file)?.clone();
        let pos = m.offset + offset;
        let w0 = ocas_obs::wall_now();
        let t0 = Instant::now();
        let d = &mut self.devices[m.device];
        let seek = pos != d.position;
        if seek {
            d.stats.seeks += 1;
        }
        d.pool.read(pos, buf)?;
        d.position = pos + buf.len() as u64;
        d.stats.bytes_read += buf.len() as u64;
        let dt = t0.elapsed().as_secs_f64();
        d.stats.busy_seconds += dt;
        d.obs_request("read", w0, dt, buf.len() as u64, seek);
        self.clock_seconds += dt;
        Ok(())
    }

    fn write_impl(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        if self.injector.is_none() {
            return self.write_impl_raw(file, offset, data);
        }
        self.check(file, offset, data.len() as u64)?;
        let d = self.meta(file)?.device;
        self.faulted_io(d, FaultOp::Write, data.len() as u64, |b, take| {
            b.write_impl_raw(file, offset, &data[..take as usize])
        })
    }

    /// The uninjected body of the charged write path.
    fn write_impl_raw(
        &mut self,
        file: FileId,
        offset: u64,
        data: &[u8],
    ) -> Result<(), StorageError> {
        self.check(file, offset, data.len() as u64)?;
        let m = self.meta(file)?.clone();
        let pos = m.offset + offset;
        let w0 = ocas_obs::wall_now();
        let t0 = Instant::now();
        let d = &mut self.devices[m.device];
        let seek = pos != d.position;
        if seek {
            d.stats.seeks += 1;
        }
        d.pool.write(pos, data)?;
        d.position = pos + data.len() as u64;
        d.stats.bytes_written += data.len() as u64;
        let dt = t0.elapsed().as_secs_f64();
        d.stats.busy_seconds += dt;
        d.obs_request("write", w0, dt, data.len() as u64, seek);
        self.clock_seconds += dt;
        Ok(())
    }

    /// Charged read of `count` tuples of `width` 8-byte columns starting
    /// at tuple `row_offset`, decoded straight into a flat batch through
    /// the backend's reusable scratch buffer — the block-read path of the
    /// out-of-core algorithms (no per-block, per-row or per-column
    /// allocation).
    pub fn read_rows(
        &mut self,
        file: FileId,
        row_offset: u64,
        count: u64,
        width: usize,
        out: &mut ocas_engine::RowBuf,
    ) -> Result<(), StorageError> {
        let tb = width as u64 * 8;
        let bytes = (count * tb) as usize;
        if self.scratch.len() < bytes {
            self.scratch.resize(bytes, 0);
        }
        let mut buf = std::mem::take(&mut self.scratch);
        let r = self.read_into(file, row_offset * tb, &mut buf[..bytes]);
        self.scratch = buf;
        r?;
        out.decode_into(&self.scratch[..bytes]);
        Ok(())
    }

    /// Uncharged tuple read — [`read_rows`](FileBackend::read_rows) for the
    /// harvest path (no clock, no counters, no seek).
    pub fn peek_rows(
        &mut self,
        file: FileId,
        row_offset: u64,
        count: u64,
        width: usize,
        out: &mut ocas_engine::RowBuf,
    ) -> Result<(), StorageError> {
        let tb = width as u64 * 8;
        let bytes = (count * tb) as usize;
        if self.scratch.len() < bytes {
            self.scratch.resize(bytes, 0);
        }
        let mut buf = std::mem::take(&mut self.scratch);
        let r = self.peek(file, row_offset * tb, &mut buf[..bytes]);
        self.scratch = buf;
        r?;
        out.decode_into(&self.scratch[..bytes]);
        Ok(())
    }

    /// Uncharged read of real bytes — the harvest path for pulling results
    /// back out after a measured run (no clock, no counters, no seek).
    pub fn peek(&mut self, file: FileId, offset: u64, buf: &mut [u8]) -> Result<(), StorageError> {
        self.check(file, offset, buf.len() as u64)?;
        let m = self.meta(file)?.clone();
        self.devices[m.device].pool.read(m.offset + offset, buf)
    }

    /// Pins the pages backing `[offset, offset+len)` of `file` so the pool
    /// cannot evict them (hot block buffers).
    pub fn pin(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        self.check(file, offset, len)?;
        let m = self.meta(file)?.clone();
        self.devices[m.device].pool.pin(m.offset + offset, len)?;
        Ok(())
    }

    /// Releases a [`pin`](FileBackend::pin). Cleanup path: a stale id is
    /// ignored rather than panicking.
    pub fn unpin(&mut self, file: FileId, offset: u64, len: u64) {
        if let Some(m) = self.files.get(file.0).cloned() {
            self.devices[m.device].pool.unpin(m.offset + offset, len);
        }
    }

    /// Writes every pool's dirty pages back and syncs the files. In
    /// disk-bounded timing mode the write-back + fsync time is charged to
    /// the clock and the device (it *is* disk time); buffered mode leaves
    /// it uncharged, mirroring a page-cache-backed run.
    pub fn flush(&mut self) -> Result<(), StorageError> {
        let charge = self.timing == TimingMode::DiskBounded;
        for d in &mut self.devices {
            let t0 = Instant::now();
            d.pool.flush()?;
            if charge {
                let dt = t0.elapsed().as_secs_f64();
                d.stats.busy_seconds += dt;
                self.clock_seconds += dt;
            }
        }
        Ok(())
    }

    /// The backend's timing mode.
    pub fn timing(&self) -> TimingMode {
        self.timing
    }

    /// True when at least one device pool runs on an `O_DIRECT` handle.
    pub fn any_direct(&self) -> bool {
        self.devices.iter().any(|d| d.pool.is_direct())
    }

    /// Aggregated buffer-pool statistics per device.
    pub fn pool_stats(&self) -> Vec<(String, PoolStats)> {
        self.devices
            .iter()
            .map(|d| (d.name.clone(), d.pool.stats()))
            .collect()
    }

    /// Per-device I/O statistics, in hierarchy order.
    pub fn all_device_stats(&self) -> Vec<(String, DeviceStats)> {
        self.devices
            .iter()
            .map(|d| (d.name.clone(), d.stats))
            .collect()
    }
}

impl Drop for FileBackend {
    fn drop(&mut self) {
        if !self.keep_dir {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

impl FileBackend {
    fn alloc_raw(&mut self, d: usize, device: &str, len: u64) -> Result<FileId, StorageError> {
        if self.allocated[d] + len > self.capacity[d] {
            return Err(StorageError::Full(device.to_string()));
        }
        let offset = self.allocated[d];
        self.allocated[d] += len;
        let id = FileId(self.files.len());
        self.files.push(FileMeta {
            device: d,
            offset,
            len,
        });
        Ok(id)
    }
}

impl StorageBackend for FileBackend {
    fn alloc(&mut self, device: &str, len: u64) -> Result<FileId, StorageError> {
        let d = self.device_idx(device)?;
        if self.injector.is_none() {
            return self.alloc_raw(d, device, len);
        }
        self.faulted_io(d, FaultOp::Alloc, len, |b, _| b.alloc_raw(d, device, len))
    }

    fn read(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        // Accounting read: really fetch the bytes (through the pool, off
        // the file) into a scratch buffer, in bounded chunks.
        let mut remaining = len;
        let mut at = offset;
        while remaining > 0 {
            let chunk = remaining.min(1 << 20) as usize;
            if self.scratch.len() < chunk {
                self.scratch.resize(chunk, 0);
            }
            let mut buf = std::mem::take(&mut self.scratch);
            let r = self.read_into(file, at, &mut buf[..chunk]);
            self.scratch = buf;
            r?;
            at += chunk as u64;
            remaining -= chunk as u64;
        }
        Ok(())
    }

    fn write(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), StorageError> {
        // Accounting write: move that many real filler bytes.
        let mut remaining = len;
        let mut at = offset;
        while remaining > 0 {
            let chunk = remaining.min(1 << 20) as usize;
            if self.scratch.len() < chunk {
                self.scratch.resize(chunk, 0);
            }
            let buf = std::mem::take(&mut self.scratch);
            let r = self.write_impl(file, at, &buf[..chunk]);
            self.scratch = buf;
            r?;
            at += chunk as u64;
            remaining -= chunk as u64;
        }
        Ok(())
    }

    fn write_bytes(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        self.write_impl(file, offset, data)
    }

    fn materialize(&mut self, file: FileId, offset: u64, data: &[u8]) -> Result<(), StorageError> {
        self.check(file, offset, data.len() as u64)?;
        let m = self.meta(file)?.clone();
        // Through the pool (cache coherence) but uncharged and without
        // disturbing the sequential-position seek accounting.
        self.devices[m.device].pool.write(m.offset + offset, data)
    }

    fn charge_cpu(&mut self, _seconds: f64) {
        // Real backends measure wall time; modeled CPU would double-count.
    }

    fn charge_penalty(&mut self, seconds: f64) {
        // Fault-handling penalties (backoff, latency spikes) land on the
        // I/O-accounted clock even on the real backend — they model time
        // the device was unavailable, not CPU work.
        self.clock_seconds += seconds;
    }

    fn clock(&self) -> f64 {
        self.clock_seconds
    }

    fn obs_clock(&self) -> ocas_obs::Clock {
        ocas_obs::Clock::Wall
    }

    fn len(&self, file: FileId) -> u64 {
        self.files.get(file.0).map(|m| m.len).unwrap_or(0)
    }

    fn device_of(&self, file: FileId) -> &str {
        match self.files.get(file.0) {
            Some(m) => &self.devices[m.device].name,
            None => "?",
        }
    }

    fn device_stats(&self, device: &str) -> Option<DeviceStats> {
        self.device_by_name
            .get(device)
            .map(|d| self.devices[*d].stats)
    }

    fn truncate_device(&mut self, device: &str, mark: u64) -> Result<(), StorageError> {
        let d = self.device_idx(device)?;
        self.allocated[d] = self.allocated[d].min(mark);
        Ok(())
    }

    fn watermark(&self, device: &str) -> Option<u64> {
        self.device_by_name.get(device).map(|d| self.allocated[*d])
    }

    fn recovery_counters(&self) -> Option<RecoveryCounters> {
        let mut c = self.recovery;
        if let Some(inj) = &self.injector {
            c.merge(&inj.state.counters);
        }
        for d in &self.devices {
            c.corrupt_pages_detected += d.pool.stats().checksum_failures;
        }
        if c == RecoveryCounters::default() && self.injector.is_none() {
            return None;
        }
        Some(c)
    }

    fn note_degradation(&mut self, device: &str, what: &'static str) {
        self.recovery.note_degradation(what);
        if ocas_obs::enabled() {
            ocas_obs::counter(
                ocas_obs::Clock::Wall,
                &format!("degrade:{device}"),
                what,
                self.clock_seconds,
                1.0,
            );
        }
    }

    fn schedule_torn_write_back(&mut self, device: &str, at: u64) -> bool {
        match self.device_by_name.get(device) {
            Some(&d) => {
                self.devices[d].pool.schedule_torn(at);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ocas_hierarchy::presets;

    fn backend() -> FileBackend {
        let h = presets::hdd_ram(1 << 25);
        FileBackend::from_hierarchy(&h, PoolConfig::default()).unwrap()
    }

    #[test]
    fn bytes_round_trip_through_real_files() {
        let mut b = backend();
        let f = b.alloc("HDD", 4096).unwrap();
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
        b.write_bytes(f, 0, &data).unwrap();
        b.flush().unwrap();
        // The bytes are really on disk (read only the prefix — the device
        // file is sparse up to the hierarchy capacity).
        use std::io::Read;
        let path = b.dir().join("HDD.dev");
        let mut on_disk = vec![0u8; 4096];
        std::fs::File::open(&path)
            .unwrap()
            .read_exact(&mut on_disk)
            .unwrap();
        assert_eq!(on_disk, data);
        let mut buf = vec![0u8; 4096];
        b.read_into(f, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
    }

    #[test]
    fn counters_mirror_device_stats() {
        let mut b = backend();
        let f = b.alloc("HDD", 1 << 16).unwrap();
        b.write(f, 0, 1 << 16).unwrap();
        b.read(f, 0, 1 << 16).unwrap();
        // Jump back: a second read from 0 is a seek.
        b.read(f, 0, 4096).unwrap();
        let s = b.device_stats("HDD").unwrap();
        assert_eq!(s.bytes_written, 1 << 16);
        assert_eq!(s.bytes_read, (1 << 16) + 4096);
        assert!(s.seeks >= 2, "write→read jump and read→read jump: {s:?}");
        assert!(b.clock() > 0.0);
        assert!(s.busy_seconds > 0.0);
    }

    #[test]
    fn materialize_is_uncharged() {
        let mut b = backend();
        let f = b.alloc("HDD", 1024).unwrap();
        b.materialize(f, 0, &[5u8; 1024]).unwrap();
        assert_eq!(b.clock(), 0.0);
        let s = b.device_stats("HDD").unwrap();
        assert_eq!((s.bytes_read, s.bytes_written), (0, 0));
        let mut buf = [0u8; 16];
        b.read_into(f, 100, &mut buf).unwrap();
        assert_eq!(buf, [5u8; 16]);
    }

    #[test]
    fn alloc_bounds_and_capacity() {
        let mut b = backend();
        let f = b.alloc("HDD", 100).unwrap();
        assert!(matches!(
            b.read(f, 64, 100),
            Err(StorageError::OutOfBounds { .. })
        ));
        assert!(matches!(
            b.alloc("nope", 1),
            Err(StorageError::UnknownDevice(_))
        ));
        assert!(matches!(
            b.alloc("RAM", 1 << 40),
            Err(StorageError::Full(_))
        ));
        // truncate_device reuses scratch space.
        let mark = StorageBackend::watermark(&b, "HDD").unwrap();
        b.alloc("HDD", 1 << 20).unwrap();
        b.truncate_device("HDD", mark).unwrap();
        assert_eq!(StorageBackend::watermark(&b, "HDD"), Some(mark));
    }

    #[test]
    fn unknown_file_is_typed_not_panic() {
        let mut b = backend();
        let stale = ocas_storage::FileId(999);
        assert!(matches!(
            b.read_into(stale, 0, &mut [0u8; 8]),
            Err(StorageError::UnknownFile(999))
        ));
        assert!(matches!(
            b.write_bytes(stale, 0, &[0u8; 8]),
            Err(StorageError::UnknownFile(999))
        ));
        assert_eq!(StorageBackend::len(&b, stale), 0);
        assert_eq!(b.device_of(stale), "?");
        b.unpin(stale, 0, 8); // cleanup path: silently ignored
    }

    #[test]
    fn injected_transient_retries_on_real_files() {
        use ocas_storage::{FaultKind, FaultOp, FaultPlan, RetryPolicy};
        let h = presets::hdd_ram(1 << 25);
        let plan = FaultPlan::new().with("HDD", FaultOp::Write, 1, FaultKind::Transient);
        let mut b = FileBackend::from_hierarchy(&h, PoolConfig::default())
            .unwrap()
            .with_faults(plan, RetryPolicy::default());
        let f = b.alloc("HDD", 4096).unwrap();
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 13) as u8).collect();
        // alloc = HDD request 0; this write fires the fault, retries, and
        // the data still lands intact.
        b.write_bytes(f, 0, &data).unwrap();
        let mut buf = vec![0u8; 4096];
        b.read_into(f, 0, &mut buf).unwrap();
        assert_eq!(buf, data);
        let c = b.recovery_counters().unwrap();
        assert_eq!(c.transient_faults, 1);
        assert_eq!(c.retry_successes, 1);
        // Backoff was charged to the wall-accounted clock.
        assert!(b.clock() >= 0.001);
    }

    #[test]
    fn injected_no_space_is_typed_and_leaves_capacity() {
        use ocas_storage::{FaultKind, FaultOp, FaultPlan, RetryPolicy};
        let h = presets::hdd_ram(1 << 25);
        let plan = FaultPlan::new().with("HDD", FaultOp::Alloc, 1, FaultKind::NoSpace);
        let mut b = FileBackend::from_hierarchy(&h, PoolConfig::default())
            .unwrap()
            .with_faults(plan, RetryPolicy::default());
        b.alloc("HDD", 1024).unwrap();
        let before = StorageBackend::watermark(&b, "HDD").unwrap();
        let err = b.alloc("HDD", 2048).unwrap_err();
        assert!(
            matches!(err, StorageError::NoSpace { ref device, requested }
                if device == "HDD" && requested == 2048)
        );
        assert_eq!(StorageBackend::watermark(&b, "HDD"), Some(before));
        // The next (degraded) attempt consumes a later index and works.
        b.alloc("HDD", 2048).unwrap();
    }

    #[test]
    fn injected_torn_write_back_detected_end_to_end() {
        use ocas_storage::{FaultKind, FaultOp, FaultPlan, RetryPolicy};
        let h = presets::hdd_ram(1 << 25);
        // Small pool so the torn page is evicted and must be re-read.
        let cfg = PoolConfig {
            frames: 2,
            ..PoolConfig::default()
        };
        let plan = FaultPlan::new().with("HDD", FaultOp::Write, 1, FaultKind::TornWriteBack);
        let mut b = FileBackend::from_hierarchy(&h, cfg)
            .unwrap()
            .with_faults(plan, RetryPolicy::default());
        let page = 4096u64;
        let f = b.alloc("HDD", 8 * page).unwrap();
        let mut data = vec![0x11u8; page as usize];
        data[page as usize / 2..].fill(0x22);
        // Request 1 schedules the tear; the write itself succeeds.
        b.write_bytes(f, 0, &data).unwrap();
        // Push the page out through a 2-frame pool and pull it back in.
        for i in 1..6u64 {
            b.write_bytes(f, i * page, &data).unwrap();
        }
        let mut buf = vec![0u8; page as usize];
        let got = (0..8u64)
            .map(|i| b.read_into(f, i * page, &mut buf))
            .find(|r| r.is_err());
        let err = got
            .expect("torn page must surface on some re-read")
            .unwrap_err();
        assert!(
            matches!(err, StorageError::CorruptPage { ref device, .. } if device == "HDD"),
            "{err:?}"
        );
        let c = b.recovery_counters().unwrap();
        assert_eq!(c.torn_write_backs, 1);
        assert!(c.corrupt_pages_detected >= 1);
    }

    #[test]
    fn temp_dir_removed_on_drop() {
        let dir;
        {
            let b = backend();
            dir = b.dir().to_path_buf();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "temp dir {dir:?} should be cleaned up");
    }
}
